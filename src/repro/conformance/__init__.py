"""Conformance subsystem: the compiler testing the compiler.

Four cooperating layers, all deterministic and replayable:

* :mod:`.coverage` / :mod:`.corpus` / :mod:`.mutate` / :mod:`.fuzzer`
  -- coverage-guided differential fuzzing: a feedback signal over rule
  firings, e-class shapes, and emitted VIR opcodes (fed from the
  observability subsystem), a mutation engine, an on-disk seed corpus,
  and the campaign driver with its random-ablation baseline;
* :mod:`.shrink` / :mod:`.replay` -- delta-debugging any divergent
  kernel down to a minimal repro packaged as a replayable pytest case
  under ``tests/repros/``;
* :mod:`.metamorphic` -- interpreter-free oracles: lane permutation,
  zero padding, affine identity wrapping, and constant-fold inverses,
  with output-equivalence and cost-monotonicity checks;
* :mod:`.golden` -- a blessed regression corpus pinning VIR
  fingerprints and costs for the paper kernels, with a
  ``repro conformance bless`` flow and drift diffs.

Exercised from the CLI via ``repro conformance ...`` and from CI via
the tier-1 lane (fast subset) plus the nightly conformance job.
"""

from .corpus import Corpus, spec_from_json, spec_key, spec_to_json
from .coverage import CoverageMap, bucket, result_features
from .fuzzer import (
    CampaignReport,
    campaign_to_json,
    conformance_options,
    render_campaign_report,
    run_campaign,
)
from .golden import DriftReport, bless, check, compute_entries, golden_options
from .metamorphic import (
    MetamorphicOutcome,
    Transform,
    check_spec,
    default_transforms,
    render_outcomes,
    run_metamorphic,
)
from .mutate import MUTATIONS, mutate
from .replay import ReplayReport, options_from_json, options_to_json, replay_repro
from .shrink import (
    ShrinkReport,
    divergence_predicate,
    repro_payload,
    shrink,
    spec_size,
    write_repro,
)

__all__ = [
    "Corpus",
    "CoverageMap",
    "CampaignReport",
    "DriftReport",
    "MetamorphicOutcome",
    "MUTATIONS",
    "ReplayReport",
    "ShrinkReport",
    "Transform",
    "bless",
    "bucket",
    "campaign_to_json",
    "check",
    "check_spec",
    "compute_entries",
    "conformance_options",
    "default_transforms",
    "divergence_predicate",
    "golden_options",
    "mutate",
    "options_from_json",
    "options_to_json",
    "render_campaign_report",
    "render_outcomes",
    "replay_repro",
    "repro_payload",
    "result_features",
    "run_campaign",
    "run_metamorphic",
    "shrink",
    "spec_from_json",
    "spec_key",
    "spec_size",
    "spec_to_json",
    "write_repro",
]
