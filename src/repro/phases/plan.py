"""Phase plans: declarative schedules for phased saturation.

A :class:`PhasePlan` is an ordered list of :class:`Phase` entries.
Each phase names a rewrite-rule subset by *tag* (see
``repro.rules.build_ruleset(only_tags=...)``), carries its own
iteration / node / time budgets, a target :class:`~.sketch.Sketch`,
and an *on-miss* policy deciding what happens when the phase's
extracted term does not satisfy the sketch:

* ``extend`` -- re-seed a fresh e-graph from the extracted term and run
  the phase again (up to ``extend_limit`` rounds).  Because re-seeding
  resets the cumulative e-node counter and drops every non-extracted
  e-class, each round gets the phase's full node budget back -- this is
  the mechanism that lets phased runs finish kernels whose monolithic
  saturation blows the same budget.
* ``skip`` -- accept the term as-is and move on (best-effort phases).
* ``fail`` -- abort the plan; the compiler's degradation ladder falls
  back to the last successful phase's term.

Node budgets are *relative* by default: ``max(node_floor,
node_factor * seed)`` where ``seed`` is the cumulative node count right
after the phase's input term is loaded into a fresh e-graph.  One
default plan therefore scales from a 150-node kernel to a 9000-node
MatMul without per-kernel tuning; an absolute ``node_limit`` can still
be pinned per phase.

Plans are picklable (they cross the worker-process boundary inside
``CompileOptions``) and have a stable, content-bearing ``repr`` -- the
artifact cache and the checkpoint key both hash it, and the plan
:meth:`~PhasePlan.fingerprint` is part of every per-phase checkpoint
key so a resume can never apply a checkpoint from a different plan.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .sketch import (
    All,
    Contains,
    NoneOf,
    Not,
    Sketch,
    sketch_from_json,
)

__all__ = [
    "ON_MISS_POLICIES",
    "Phase",
    "PhasePlan",
    "default_plan",
    "plan_from_json",
    "load_plan_file",
]

ON_MISS_POLICIES = ("extend", "skip", "fail")

#: Scalar arithmetic operators a fully vectorized term must not contain.
SCALAR_ARITH_OPS = ("*", "+", "-", "/")


@dataclass(frozen=True)
class Phase:
    """One saturation phase.

    ``rule_tags`` selects the rule subset (empty tuple = all rules);
    ``iter_limit`` is the per-round iteration budget; the node budget
    resolves via :meth:`resolve_node_limit`.  ``time_limit`` of ``None``
    inherits the compile-wide budget.
    """

    name: str
    rule_tags: Tuple[str, ...] = ()
    iter_limit: int = 10
    node_floor: int = 4_000
    node_factor: float = 1.5
    node_limit: Optional[int] = None
    time_limit: Optional[float] = None
    sketch: Optional[Sketch] = None
    on_miss: str = "extend"
    extend_limit: int = 8

    def __post_init__(self) -> None:
        if self.on_miss not in ON_MISS_POLICIES:
            raise ValueError(
                f"phase {self.name!r}: on_miss must be one of "
                f"{ON_MISS_POLICIES}, got {self.on_miss!r}"
            )
        if self.iter_limit < 1:
            raise ValueError(f"phase {self.name!r}: iter_limit must be >= 1")
        if self.extend_limit < 1:
            raise ValueError(f"phase {self.name!r}: extend_limit must be >= 1")
        # Canonicalize the tag order so repr (and hence the plan
        # fingerprint) is independent of how the tuple was written.
        object.__setattr__(self, "rule_tags", tuple(sorted(self.rule_tags)))

    def resolve_node_limit(self, seed_version: int) -> int:
        """The node budget for one round seeded at ``seed_version``."""
        if self.node_limit is not None:
            return self.node_limit
        return max(self.node_floor, int(self.node_factor * seed_version))

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "rule_tags": list(self.rule_tags),
            "iter_limit": self.iter_limit,
            "node_floor": self.node_floor,
            "node_factor": self.node_factor,
            "on_miss": self.on_miss,
            "extend_limit": self.extend_limit,
        }
        if self.node_limit is not None:
            out["node_limit"] = self.node_limit
        if self.time_limit is not None:
            out["time_limit"] = self.time_limit
        if self.sketch is not None:
            out["sketch"] = self.sketch.to_json()
        return out

    def __repr__(self) -> str:
        return (
            f"Phase({self.name!r}, tags={list(self.rule_tags)!r}, "
            f"iters={self.iter_limit}, floor={self.node_floor}, "
            f"factor={self.node_factor}, limit={self.node_limit}, "
            f"time={self.time_limit}, sketch={self.sketch!r}, "
            f"on_miss={self.on_miss!r}, extends={self.extend_limit})"
        )


@dataclass(frozen=True)
class PhasePlan:
    """An ordered sequence of phases with a content fingerprint."""

    name: str
    phases: Tuple[Phase, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"plan {self.name!r} has no phases")
        object.__setattr__(self, "phases", tuple(self.phases))

    def fingerprint(self) -> str:
        """Content digest of the plan (part of every phase checkpoint
        key: resuming under an edited plan must miss cleanly)."""
        return hashlib.sha256(repr(self).encode()).hexdigest()[:16]

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "phases": [phase.to_json() for phase in self.phases],
        }

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self.phases)
        return f"PhasePlan({self.name!r}, [{inner}])"


def default_plan(width: int = 4) -> PhasePlan:
    """The shipped 3-phase schedule: layout -> vectorize -> cleanup.

    Mirrors the progression the paper's monolithic run discovers
    implicitly, but with per-phase budgets:

    1. **layout** -- scalar normalization plus list splitting.  The goal
       sketch asks for the ``Concat``-of-``Vec`` overlay and *no*
       remaining ``List`` spine; its required/forbidden ops bias the
       extraction, which matters because the plain cost model prefers
       the scalar ``List`` form whenever the split introduced zero
       padding (e.g. 2DConv's 121-element output at width 4).
    2. **vectorize** -- lane-wise fusion into ``VecMAC``/``VecMul``
       chains.  This is the explosive phase; the extend policy keeps
       re-seeding from the best term so far until no scalar arithmetic
       remains, each round with a fresh node budget.
    3. **cleanup** -- scalar simplification and vector identities over
       the final shape (zero-lane elimination, MAC re-fusion); a miss
       here is acceptable, hence ``skip``.
    """
    no_scalar_arith = NoneOf(SCALAR_ARITH_OPS)
    return PhasePlan(
        name=f"default-w{width}",
        phases=(
            Phase(
                name="layout",
                rule_tags=("scalar", "split"),
                iter_limit=8,
                sketch=All(
                    Contains("Concat"), Contains("Vec"), Not(Contains("List"))
                ),
                on_miss="extend",
                extend_limit=2,
            ),
            Phase(
                name="vectorize",
                rule_tags=("vectorize", "mac", "vector-identity"),
                iter_limit=12,
                sketch=no_scalar_arith,
                on_miss="extend",
                extend_limit=8,
            ),
            Phase(
                name="cleanup",
                rule_tags=("scalar", "vector-identity"),
                iter_limit=8,
                sketch=no_scalar_arith,
                on_miss="skip",
                extend_limit=1,
            ),
        ),
    )


def plan_from_json(obj: Dict[str, Any]) -> PhasePlan:
    """Build a plan from its JSON form (the ``--phase-plan`` file)."""
    phases = []
    for entry in obj.get("phases", ()):
        sketch = entry.get("sketch")
        phases.append(
            Phase(
                name=entry["name"],
                rule_tags=tuple(entry.get("rule_tags", ())),
                iter_limit=int(entry.get("iter_limit", 10)),
                node_floor=int(entry.get("node_floor", 4_000)),
                node_factor=float(entry.get("node_factor", 1.5)),
                node_limit=(
                    int(entry["node_limit"])
                    if entry.get("node_limit") is not None
                    else None
                ),
                time_limit=(
                    float(entry["time_limit"])
                    if entry.get("time_limit") is not None
                    else None
                ),
                sketch=sketch_from_json(sketch) if sketch is not None else None,
                on_miss=entry.get("on_miss", "extend"),
                extend_limit=int(entry.get("extend_limit", 8)),
            )
        )
    return PhasePlan(name=obj.get("name", "custom"), phases=tuple(phases))


def load_plan_file(path: str) -> PhasePlan:
    """Load a plan from a JSON file (CLI ``--phase-plan PATH``)."""
    with open(path, "r", encoding="utf-8") as handle:
        return plan_from_json(json.load(handle))
