"""Ablation studies.

* :func:`run_vector_ablation` -- Section 5.6: compile with vector
  rewrite rules disabled (symbolic evaluation + scalar rules + LVN
  only) and compare against the full compiler.  The paper reports
  2.2x (scalar-only) vs 3.1x (full) over the best baseline, with the
  non-vectorized code *faster* on 4 of 21 kernels.
* :func:`run_lvn_ablation` -- Section 4's claim that local value
  numbering collapses the unrolled output by orders of magnitude
  (QProd: >100k lines of C++ down to <500).
* :func:`run_cost_ablation` -- Section 6's portability discussion: on
  a machine *without* a fast unrestricted shuffle, the same generated
  kernels lose much of their advantage (DESIGN.md design-choice
  ablation).
* :func:`run_ac_ablation` -- Section 3.3: full associativity /
  commutativity rules explode the e-graph; the custom searchers
  recover the profitable cases at a fraction of the size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..backend.codegen import c_line_count
from ..baselines import baseline_program
from ..egraph.egraph import EGraph
from ..egraph.runner import Runner
from ..kernels import make_matmul, make_qprod, table1_kernels
from ..kernels.base import Kernel
from ..machine import fusion_g3, no_shuffle_machine
from ..rules import build_ruleset
from .common import (
    Budget,
    DEFAULT_BUDGET,
    SweepError,
    compile_kernel_resilient,
    compile_kernel_with_budget,
    geomean,
    measure,
    render_sweep_errors,
    render_table,
)

__all__ = [
    "VectorAblationRow",
    "run_vector_ablation",
    "render_vector_ablation",
    "run_lvn_ablation",
    "run_cost_ablation",
    "run_ac_ablation",
]

PAPER_SCALAR_ONLY_GEOMEAN = 2.2
PAPER_FULL_GEOMEAN = 3.1
PAPER_SCALAR_WINS = 4


@dataclass
class VectorAblationRow:
    kernel: str
    vector_cycles: float
    scalar_cycles: float
    best_baseline_cycles: float
    correct: bool

    @property
    def scalar_wins(self) -> bool:
        return self.scalar_cycles < self.vector_cycles


@dataclass
class VectorAblationResult:
    rows: List[VectorAblationRow]
    geomean_vector: float
    geomean_scalar: float
    scalar_wins: int
    errors: List[SweepError] = field(default_factory=list)


def run_vector_ablation(
    budget: Budget = DEFAULT_BUDGET,
    kernels: Optional[Sequence[Kernel]] = None,
    seed: int = 0,
) -> VectorAblationResult:
    """Compile each kernel with and without the vector rules.

    Per-kernel failures (on either configuration) are recorded and the
    sweep continues; geomeans cover the survivors."""
    rows: List[VectorAblationRow] = []
    errors: List[SweepError] = []
    for kernel in kernels if kernels is not None else table1_kernels():
        full = compile_kernel_resilient(kernel, budget, errors=errors)
        if full is None:
            continue
        scalar = compile_kernel_resilient(
            kernel, budget, errors=errors, enable_vector_rules=False
        )
        if scalar is None:
            continue
        vec_cycles, ok1 = measure(full.program, kernel, seed)
        sc_cycles, ok2 = measure(scalar.program, kernel, seed)

        best = None
        for name in ("naive", "naive-fixed", "nature", "eigen"):
            program = baseline_program(name, kernel)
            if program is None:
                continue
            cycles, _ = measure(program, kernel, seed)
            best = cycles if best is None else min(best, cycles)
        rows.append(
            VectorAblationRow(
                kernel=kernel.name,
                vector_cycles=vec_cycles,
                scalar_cycles=sc_cycles,
                best_baseline_cycles=best if best is not None else float("nan"),
                correct=ok1 and ok2,
            )
        )
    vec_ratios = [r.best_baseline_cycles / r.vector_cycles for r in rows]
    sc_ratios = [r.best_baseline_cycles / r.scalar_cycles for r in rows]
    return VectorAblationResult(
        rows=rows,
        geomean_vector=geomean(vec_ratios) if vec_ratios else float("nan"),
        geomean_scalar=geomean(sc_ratios) if sc_ratios else float("nan"),
        scalar_wins=sum(1 for r in rows if r.scalar_wins),
        errors=errors,
    )


def render_vector_ablation(result: VectorAblationResult) -> str:
    table = render_table(
        ["Kernel", "Vector cycles", "Scalar-only cycles", "Best baseline", "Scalar wins"],
        [
            [r.kernel, r.vector_cycles, r.scalar_cycles, r.best_baseline_cycles,
             "yes" if r.scalar_wins else ""]
            for r in result.rows
        ],
        title="Section 5.6 vectorization ablation",
    )
    text = (
        f"{table}\n\n"
        f"Geomean over best baseline: full {result.geomean_vector:.2f}x "
        f"(paper {PAPER_FULL_GEOMEAN}x), scalar-only "
        f"{result.geomean_scalar:.2f}x (paper {PAPER_SCALAR_ONLY_GEOMEAN}x)\n"
        f"Kernels where scalar-only wins: {result.scalar_wins}/"
        f"{len(result.rows)} (paper {PAPER_SCALAR_WINS}/21)"
    )
    if result.errors:
        text += "\n" + render_sweep_errors(result.errors)
    return text


@dataclass
class LvnAblationResult:
    kernel: str
    lines_without_lvn: int
    lines_with_lvn: int

    @property
    def reduction_factor(self) -> float:
        return self.lines_without_lvn / max(1, self.lines_with_lvn)


def run_lvn_ablation(
    budget: Budget = DEFAULT_BUDGET, kernel: Optional[Kernel] = None
) -> LvnAblationResult:
    """Section 4's LVN/CSE effect.

    The "without" side tree-expands the fully unrolled spec with no
    hash-consed sharing -- the naive code generation the paper
    describes producing >100k lines of C++; the "with" side is the
    shipping pipeline (DAG lowering + LVN + DCE).  The paper quotes
    QProd; the *magnitude* of the effect shows best on QRDecomp 3x3,
    whose unrolled tree is ~50k nodes sharing a 143-node DAG, so that
    is the default here (pass ``kernel`` to measure others).
    """
    from ..backend.lower import lower_spec_program
    from ..kernels import make_qr

    kernel = kernel or make_qr(3)
    result = compile_kernel_with_budget(kernel, budget)
    expanded = lower_spec_program(
        result.spec, result.spec.term, share_subterms=False
    )
    return LvnAblationResult(
        kernel=kernel.name,
        lines_without_lvn=c_line_count(expanded),
        lines_with_lvn=c_line_count(result.program),
    )


@dataclass
class CostAblationResult:
    kernel: str
    fusion_cycles: float
    no_shuffle_cycles: float

    @property
    def slowdown(self) -> float:
        return self.no_shuffle_cycles / self.fusion_cycles


def run_cost_ablation(
    budget: Budget = DEFAULT_BUDGET, kernel: Optional[Kernel] = None, seed: int = 0
) -> CostAblationResult:
    """Run the same generated kernel on the no-fast-shuffle machine
    (Section 6): data movement dominates without the G3's shuffle."""
    kernel = kernel or make_matmul(3, 3, 3)
    compiled = compile_kernel_with_budget(kernel, budget)
    fusion, _ = measure(compiled.program, kernel, seed, machine=fusion_g3())
    slow, _ = measure(compiled.program, kernel, seed, machine=no_shuffle_machine())
    return CostAblationResult(
        kernel=kernel.name, fusion_cycles=fusion, no_shuffle_cycles=slow
    )


@dataclass
class AcAblationResult:
    kernel: str
    nodes_without_ac: int
    nodes_with_ac: int
    iterations_without_ac: int
    iterations_with_ac: int

    @property
    def growth_factor(self) -> float:
        return self.nodes_with_ac / max(1, self.nodes_without_ac)


def run_ac_ablation(
    kernel: Optional[Kernel] = None, seconds: float = 5.0
) -> AcAblationResult:
    """E-graph size with and without full AC rules on a small kernel
    (Section 3.3's memory-blowup argument, at a survivable scale)."""
    kernel = kernel or make_matmul(2, 2, 2)
    sizes = {}
    iters = {}
    for label, enable_ac in (("off", False), ("on", True)):
        egraph = EGraph()
        egraph.add_term(kernel.spec().term)
        rules = build_ruleset(width=4, enable_ac=enable_ac)
        report = Runner(
            rules, iter_limit=30, node_limit=300_000, time_limit=seconds
        ).run(egraph)
        sizes[label] = egraph.num_nodes
        iters[label] = len(report.iterations)
    return AcAblationResult(
        kernel=kernel.name,
        nodes_without_ac=sizes["off"],
        nodes_with_ac=sizes["on"],
        iterations_without_ac=iters["off"],
        iterations_with_ac=iters["on"],
    )
