"""Satellite: shuffle-selection boundaries in the backend.

The lowering strategy for a gathered ``Vec`` (see
``backend/lower.py:_gather_from_array``) picks, in order: a contiguous
vector load, a single-register ``vshuffle`` when every index falls in
one aligned window, one two-register ``vselect`` for two windows, and
*nested* selects for three or more.  Cross-array gathers always merge
with selects and are priced above single-array shuffles by the cost
model (``costs.py``: vec_select > vec_shuffle), so extraction prefers
single-array data movement when both express the same kernel.

A bare gather is cheapest as scalar code, so each spec multiplies the
gathered lanes by a contiguously-loaded vector -- that makes the
vector form win and forces the backend through the gather paths.
"""

import pytest

from repro.compiler import CompileOptions, compile_spec
from repro.dsl.ast import Term, get
from repro.frontend.lift import ArrayDecl, Spec

WIDTH = 4


def _options():
    return CompileOptions(
        time_limit=None,
        iter_limit=10,
        node_limit=10_000,
        validate=True,
        track_memory=False,
        seed=0,
    )


def _gather_spec(name, arrays, indices):
    """out[i] = arrays_i[indices_i] * c[i] with c loaded contiguously."""
    decls = tuple(ArrayDecl(n, length) for n, length in arrays)
    elements = tuple(
        Term("*", (get(array, index), get("c", lane)))
        for lane, (array, index) in enumerate(indices)
    )
    return Spec(
        name=name,
        inputs=decls + (ArrayDecl("c", WIDTH),),
        outputs=(ArrayDecl("out", len(elements)),),
        term=Term("List", elements),
    )


def _compile(spec):
    result = compile_spec(spec, _options())
    assert result.validated, spec.name
    return result


def test_single_window_gather_uses_one_vshuffle():
    """All indices inside one aligned window: a single-register
    permutation, never a two-register select."""
    spec = _gather_spec(
        "shuffle-1win",
        [("a", 8)],
        [("a", 3), ("a", 1), ("a", 2), ("a", 0)],
    )
    ops = _compile(spec).program.opcode_histogram()
    assert ops.get("vshuffle") == 1
    assert "vselect" not in ops


def test_two_window_gather_uses_one_vselect():
    """Indices spanning two aligned windows of the same array: exactly
    one two-register select and no shuffle."""
    spec = _gather_spec(
        "select-2win",
        [("a", 8)],
        [("a", 0), ("a", 5), ("a", 2), ("a", 7)],
    )
    ops = _compile(spec).program.opcode_histogram()
    assert ops.get("vselect") == 1
    assert "vshuffle" not in ops


def test_three_window_gather_nests_vselects():
    """Three windows need nested selects: the first merges two windows,
    each further window folds in with one more select."""
    spec = _gather_spec(
        "select-3win",
        [("a", 12)],
        [("a", 1), ("a", 6), ("a", 10), ("a", 3)],
    )
    ops = _compile(spec).program.opcode_histogram()
    assert ops.get("vselect") == 2
    assert "vshuffle" not in ops


def test_contiguous_run_is_a_plain_vector_load():
    """The degenerate boundary: a unit-stride gather is a vload, with
    no data-movement instruction at all."""
    spec = _gather_spec(
        "contiguous",
        [("a", 4)],
        [("a", 0), ("a", 1), ("a", 2), ("a", 3)],
    )
    ops = _compile(spec).program.opcode_histogram()
    assert "vshuffle" not in ops and "vselect" not in ops
    assert ops.get("vload", 0) >= 2  # the gather and the c operand


def test_single_array_gather_cheaper_than_cross_array():
    """Same lane structure, but lanes drawn from two arrays must pay
    the select premium: extraction cost strictly above the single-array
    shuffle version, and the lowered code carries a vselect."""
    single = _gather_spec(
        "pref-one-array",
        [("a", 4)],
        [("a", 3), ("a", 1), ("a", 2), ("a", 0)],
    )
    cross = _gather_spec(
        "pref-two-array",
        [("a", 4), ("b", 4)],
        [("a", 3), ("b", 1), ("a", 2), ("b", 0)],
    )
    single_result = _compile(single)
    cross_result = _compile(cross)
    assert single_result.cost < cross_result.cost
    single_ops = single_result.program.opcode_histogram()
    cross_ops = cross_result.program.opcode_histogram()
    assert "vselect" not in single_ops
    assert cross_ops.get("vselect", 0) >= 1
