"""Figure 6 reproduction: the saturation-timeout ablation.

The paper compiles MatMul 10x10*10x10 under timeouts of {10, 30, 60,
120, 180} seconds and shows kernel quality improving monotonically:
at 10 s Diospyros already beats the naive kernel (1,568 cycles) but
not Nature (1,241); by 180 s it saturates and beats Nature (847
cycles).  We run the same sweep with budgets scaled to our engine and
plot cycles against the Nature and naive reference lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..baselines import baseline_program
from ..kernels import make_matmul
from .common import (
    Budget,
    SweepError,
    compile_kernel_resilient,
    measure,
    render_sweep_errors,
    render_table,
)

__all__ = ["Figure6Point", "Figure6Result", "run_figure6", "render_figure6"]

#: The paper's reference numbers for this experiment.
PAPER_NAIVE_CYCLES = 1568
PAPER_NATURE_CYCLES = 1241
PAPER_SATURATED_CYCLES = 847
PAPER_TIMEOUTS = (10, 30, 60, 120, 180)


@dataclass
class Figure6Point:
    paper_seconds: float
    actual_seconds: float
    cycles: float
    timed_out: bool
    correct: bool


@dataclass
class Figure6Result:
    points: List[Figure6Point]
    nature_cycles: Optional[float]
    naive_cycles: float
    naive_fixed_cycles: float
    #: Budgets whose compilation failed (the sweep continues).
    errors: List[SweepError] = field(default_factory=list)

    @property
    def monotone_improving(self) -> bool:
        """Longer budgets should never produce (meaningfully) worse
        kernels; small plateaus are expected once saturated."""
        cycles = [p.cycles for p in self.points]
        return all(b <= a * 1.05 for a, b in zip(cycles, cycles[1:]))

    @property
    def crosses_nature(self) -> bool:
        if self.nature_cycles is None or not self.points:
            return False
        return self.points[-1].cycles < self.nature_cycles


def run_figure6(
    paper_timeouts: Sequence[float] = PAPER_TIMEOUTS,
    scale: float = 0.1,
    seed: int = 0,
    service=None,
) -> Figure6Result:
    """Compile MatMul 10x10 under each (scaled) timeout and measure.
    ``service`` routes compilations through the sandboxed worker pool
    and artifact cache (see :mod:`repro.service`)."""
    kernel = make_matmul(10, 10, 10)

    points: List[Figure6Point] = []
    errors: List[SweepError] = []
    for paper_seconds in paper_timeouts:
        budget = Budget.from_paper(paper_seconds, scale)
        result = compile_kernel_resilient(
            kernel, budget, errors=errors, service=service
        )
        if result is None:
            continue
        cycles, ok = measure(result.program, kernel, seed)
        points.append(
            Figure6Point(
                paper_seconds=paper_seconds,
                actual_seconds=budget.seconds,
                cycles=cycles,
                timed_out=result.timed_out,
                correct=ok,
            )
        )

    nature = baseline_program("nature", kernel)
    nature_cycles = measure(nature, kernel, seed)[0] if nature else None
    naive_cycles = measure(baseline_program("naive", kernel), kernel, seed)[0]
    fixed_cycles = measure(baseline_program("naive-fixed", kernel), kernel, seed)[0]
    return Figure6Result(
        points=points,
        nature_cycles=nature_cycles,
        naive_cycles=naive_cycles,
        naive_fixed_cycles=fixed_cycles,
        errors=errors,
    )


def render_figure6(result: Figure6Result) -> str:
    table = render_table(
        ["Paper timeout (s)", "Our budget (s)", "Cycles", "Timed out", "Correct"],
        [
            [p.paper_seconds, p.actual_seconds, p.cycles,
             "yes" if p.timed_out else "", "yes" if p.correct else "NO"]
            for p in result.points
        ],
        title="Figure 6 reproduction: timeout vs 10x10 MatMul cycles",
    )
    lines = [
        table,
        "",
        f"Reference lines: Nature {result.nature_cycles} "
        f"(paper {PAPER_NATURE_CYCLES}), naive {result.naive_cycles} "
        f"(paper {PAPER_NAIVE_CYCLES}), naive-fixed {result.naive_fixed_cycles}",
        f"Monotone improvement with budget: {result.monotone_improving}",
        f"Final kernel beats Nature: {result.crosses_nature} "
        f"(paper: yes, {PAPER_SATURATED_CYCLES} vs {PAPER_NATURE_CYCLES})",
    ]
    if result.errors:
        lines.append(render_sweep_errors(result.errors))
    return "\n".join(lines)
