"""Fixed-size matrix multiplication kernels.

``C (m x n) = A (m x k) * B (k x n)``.  The paper's sizes range from
2x2*2x2 (where generic libraries drown in control overhead) to
16x16*16x16 (where saturation times out and partial vectorization must
still win).
"""

from __future__ import annotations

from .base import Kernel

__all__ = ["make_matmul", "matmul_reference"]


def matmul_reference(m: int, k: int, n: int):
    """The classic triple loop with accumulation."""

    def matmul(a, b, c) -> None:
        for row in range(m):
            for col in range(n):
                for inner in range(k):
                    c[row][col] += a[row][inner] * b[inner][col]

    return matmul


def make_matmul(m: int, k: int, n: int) -> Kernel:
    """A fixed-size matrix-multiply kernel instance."""
    return Kernel(
        name=f"matmul-{m}x{k}-{k}x{n}",
        category="MatMul",
        size_label=f"{m}x{k}, {k}x{n}",
        reference=matmul_reference(m, k, n),
        inputs=(("a", (m, k)), ("b", (k, n))),
        outputs=(("c", (m, n)),),
        params={"m": m, "k": k, "n": n},
    )
