"""The TV experiment (paper Section 3.4 / artifact A.4(2)):
translation-validate the compiler's output on the evaluation kernels.

The full 21-kernel sweep is the benchmark harness's job; here we cover
one kernel per category end-to-end, which exercises every validation
path (structural, canonical, randomized fallback)."""

import pytest

from repro.compiler import CompileOptions, compile_spec
from repro.kernels import make_conv2d, make_matmul, make_qprod, make_qr

OPTIONS = CompileOptions(time_limit=8.0, node_limit=60_000, validate=True)


@pytest.mark.parametrize(
    "kernel",
    [
        make_matmul(2, 2, 2),
        make_matmul(2, 3, 3),
        make_conv2d(3, 3, 2, 2),
        make_qprod(),
    ],
    ids=lambda k: k.name,
)
def test_kernel_validates(kernel):
    result = compile_spec(kernel.spec(), OPTIONS)
    assert result.validation is not None
    assert result.validated, [
        (l.index, l.method, l.detail) for l in result.validation.failing_lanes()
    ]


def test_qr3_validates_with_random_fallback():
    """QR's lanes overflow the canonical form; randomized differential
    validation must take over and accept."""
    result = compile_spec(make_qr(3).spec(), OPTIONS)
    assert result.validated
    assert result.validation.methods_used.get("random", 0) > 0


def test_validation_not_run_when_disabled():
    from dataclasses import replace

    result = compile_spec(
        make_matmul(2, 2, 2).spec(), replace(OPTIONS, validate=False)
    )
    assert result.validation is None
    assert not result.validated
