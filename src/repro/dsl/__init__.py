"""The Diospyros abstract vector DSL (paper Figure 3).

Submodules:

* :mod:`repro.dsl.ast`    -- immutable term representation and constructors.
* :mod:`repro.dsl.ops`    -- operator catalogue (arity, kind, semantics).
* :mod:`repro.dsl.parser` -- s-expression parser / printer.
* :mod:`repro.dsl.interp` -- concrete reference interpreter.
"""

from .ast import (
    Term,
    add,
    call,
    concat,
    div,
    get,
    lst,
    map_terms,
    mul,
    neg,
    num,
    sgn,
    sqrt,
    sub,
    substitute,
    subterms,
    sym,
    term_depth,
    term_size,
    unique_size,
    vec,
    vec_add,
    vec_div,
    vec_mac,
    vec_minus,
    vec_mul,
    vec_neg,
    vec_sgn,
    vec_sqrt,
)
from .interp import EvalError, evaluate, evaluate_output
from .ops import OPS, OpInfo, OpKind, register_op
from .parser import ParseError, parse, parse_many

__all__ = [
    "Term",
    "add",
    "call",
    "concat",
    "div",
    "get",
    "lst",
    "map_terms",
    "mul",
    "neg",
    "num",
    "sgn",
    "sqrt",
    "sub",
    "substitute",
    "subterms",
    "sym",
    "term_depth",
    "term_size",
    "unique_size",
    "vec",
    "vec_add",
    "vec_div",
    "vec_mac",
    "vec_minus",
    "vec_mul",
    "vec_neg",
    "vec_sgn",
    "vec_sqrt",
    "EvalError",
    "evaluate",
    "evaluate_output",
    "OPS",
    "OpInfo",
    "OpKind",
    "register_op",
    "ParseError",
    "parse",
    "parse_many",
]
