"""Cost models for extraction.

The paper's cost model (Section 3.4) is deliberately high-level: a
fixed cost per DSL operator, with the one subtlety that ``Vec`` -- the
data-movement construct -- is charged by *where its lanes come from*:

* lanes that are literals (especially zeros) are nearly free;
* lanes gathered from a **single input array** are cheap: contiguous
  runs lower to a vector load, anything else to one single-register
  shuffle (``PDX_SHFL``);
* lanes gathered **across arrays** need two-register selects
  (``PDX_SEL``), possibly nested -- more expensive;
* lanes that are *computed scalars* force scalar computation plus an
  insertion into the vector register -- the most expensive option.

This mirrors the Fusion G3's fast unrestricted shuffle (the paper notes
the model would fit less well on machines without one; the weights here
are configurable for exactly that experiment -- see
``benchmarks/test_ablation_cost.py``).

All costs are strictly positive per node, preserving the monotonicity
extraction requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from .egraph.egraph import ENode
from .egraph.extract import CostFunction, Extractor

__all__ = ["CostConfig", "DiospyrosCostModel", "TermSizeCostModel", "lane_kind"]


@dataclass(frozen=True)
class CostConfig:
    """Weights of the abstract cost model.

    The defaults encode "a vector op does the work of ``vector_width``
    scalar ops in one instruction, and in-register data movement is
    cheap but not free".
    """

    vector_width: int = 4
    #: Literal leaves (Num / Symbol).
    literal: float = 0.1
    #: A scalar ``Get`` outside any Vec: one scalar load.
    scalar_get: float = 0.2
    #: One scalar arithmetic operation (+, -, *, /, neg, sqrt, sgn, Call).
    scalar_op: float = 2.0
    #: One vector arithmetic operation (VecAdd ... VecMAC).
    vector_op: float = 1.0
    #: Vec whose lanes are a contiguous run from one array: vector load.
    vec_contiguous: float = 1.0
    #: Vec gathering from a single array (or zeros): one shuffle.
    vec_shuffle: float = 1.6
    #: Base cost of a cross-array gather: a two-register select.
    vec_select: float = 3.0
    #: Extra select cost per additional source array beyond two.
    vec_extra_array: float = 1.5
    #: Penalty per lane whose value is a computed scalar (must be
    #: calculated on the scalar unit and inserted into the register).
    vec_scalar_lane: float = 5.0
    #: Vec made entirely of literals: materialized constant register.
    vec_literal: float = 0.5
    #: Structural glue (List / Concat) per node.
    structure: float = 0.1

    def scaled_for_no_shuffle_target(self) -> "CostConfig":
        """A variant modelling a DSP *without* a flexible shuffle
        (Section 6's portability discussion): in-register permutation
        becomes nearly as expensive as recomputing on the scalar unit."""
        return replace(self, vec_shuffle=8.0, vec_select=12.0, vec_extra_array=6.0)


def lane_kind(
    extractor: Extractor, eclass_id: int
) -> Tuple[str, Optional[str], Optional[int]]:
    """Classify a Vec lane by its chosen representative.

    Returns one of ``("zero", None, None)``, ``("lit", None, None)``,
    ``("get", array_name, index)`` or ``("scalar", None, None)``.
    """
    node = extractor.best_node(eclass_id)
    if node is None:
        return ("scalar", None, None)
    if node.op == "Num":
        return ("zero", None, None) if node.value == 0 else ("lit", None, None)
    if node.op == "Get":
        array_node = extractor.best_node(node.children[0])
        index_node = extractor.best_node(node.children[1])
        if (
            array_node is not None
            and index_node is not None
            and array_node.op == "Symbol"
            and index_node.op == "Num"
        ):
            return ("get", str(array_node.value), int(index_node.value))
    if node.op == "Symbol":
        return ("lit", None, None)
    return ("scalar", None, None)


class DiospyrosCostModel(CostFunction):
    """The paper's abstract cost model, parameterized by
    :class:`CostConfig`."""

    _VECTOR_OPS = {
        "VecAdd",
        "VecMinus",
        "VecMul",
        "VecDiv",
        "VecMAC",
        "VecNeg",
        "VecSqrt",
        "VecSgn",
    }
    _SCALAR_OPS = {"+", "-", "*", "/", "neg", "sqrt", "sgn", "Call"}

    def __init__(self, config: Optional[CostConfig] = None) -> None:
        self.config = config or CostConfig()

    def node_cost(
        self, extractor: Extractor, node: ENode, child_costs: List[float]
    ) -> float:
        cfg = self.config
        children_total = sum(child_costs)
        op = node.op
        if op in ("Num", "Symbol"):
            return cfg.literal
        if op == "Get":
            return cfg.scalar_get + children_total
        if op in self._SCALAR_OPS:
            return cfg.scalar_op + children_total
        if op in self._VECTOR_OPS:
            return cfg.vector_op + children_total
        if op in ("List", "Concat"):
            return cfg.structure + children_total
        if op == "Vec":
            return self._vec_cost(extractor, node) + children_total
        # Unknown operators (user extensions) default to scalar cost so
        # they are never accidentally free.
        return cfg.scalar_op + children_total

    def _vec_cost(self, extractor: Extractor, node: ENode) -> float:
        """Data-movement cost of materializing a Vec's lanes into one
        vector register, judged from where each lane's value lives."""
        cfg = self.config
        arrays = []
        indices = []
        scalar_lanes = 0
        literal_lanes = 0
        get_lanes = 0
        for child in node.children:
            kind, array, index = lane_kind(extractor, child)
            if kind in ("zero", "lit"):
                literal_lanes += 1
            elif kind == "get":
                get_lanes += 1
                if array not in arrays:
                    arrays.append(array)
                indices.append(index)
            else:
                scalar_lanes += 1

        penalty = cfg.vec_scalar_lane * scalar_lanes
        if get_lanes == 0:
            # Pure literals (e.g. an all-zero accumulator seed) or pure
            # computed lanes.
            return cfg.vec_literal + penalty
        if len(arrays) == 1:
            if scalar_lanes == 0 and literal_lanes == 0 and self._is_contiguous(indices):
                return cfg.vec_contiguous
            return cfg.vec_shuffle + penalty
        extra = max(0, len(arrays) - 2) * cfg.vec_extra_array
        return cfg.vec_select + extra + penalty

    @staticmethod
    def _is_contiguous(indices: List[Optional[int]]) -> bool:
        if not indices or any(i is None for i in indices):
            return False
        return all(b == a + 1 for a, b in zip(indices, indices[1:]))


class ScalarOnlyCostModel(CostFunction):
    """Extraction model that refuses vector forms: vector operators
    and data-movement constructs cost a prohibitive amount, so the
    extracted program is the best purely scalar one (original spec
    modulo scalar simplification).  Used by the Section 5.6 ablation
    and by the backend's candidate-selection step."""

    _FORBIDDEN = {
        "Vec",
        "Concat",
        "VecAdd",
        "VecMinus",
        "VecMul",
        "VecDiv",
        "VecMAC",
        "VecNeg",
        "VecSqrt",
        "VecSgn",
    }
    _PROHIBITIVE = 1e12

    def node_cost(
        self, extractor: Extractor, node: ENode, child_costs: List[float]
    ) -> float:
        if node.op in self._FORBIDDEN:
            return self._PROHIBITIVE + sum(child_costs)
        return 1.0 + sum(child_costs)


class TermSizeCostModel(CostFunction):
    """Extract the syntactically smallest term (every node costs 1).

    Used by tests and by the scalar-only ablation, where there is no
    vector/data-movement distinction to model.
    """

    def node_cost(
        self, extractor: Extractor, node: ENode, child_costs: List[float]
    ) -> float:
        return 1.0 + sum(child_costs)
