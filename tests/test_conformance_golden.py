"""Golden regression corpus: bless/check round trip, drift detection
with per-field diffs, and (slow) the committed corpus itself."""

import json

import pytest

from repro.conformance.golden import (
    GOLDEN_KERNELS,
    GOLDEN_SCHEMA,
    bless,
    check,
    compute_entries,
    default_corpus_path,
    golden_options,
)

SMALL = ("matmul-2x2-2x2",)


@pytest.fixture(scope="module")
def blessed(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("golden") / "corpus.json")
    bless(path, names=SMALL, options=golden_options())
    return path


def test_bless_then_check_is_clean(blessed):
    report = check(blessed, options=golden_options())
    assert report.ok, report.render()
    assert report.checked == len(SMALL)
    assert not report.drifted and not report.missing and not report.unblessed


def test_tampered_entry_reports_field_level_drift(blessed, tmp_path):
    payload = json.load(open(blessed))
    name = SMALL[0]
    payload["entries"][name]["cost"] += 1.0
    payload["entries"][name]["fingerprint"] = "0" * 16
    tampered = str(tmp_path / "tampered.json")
    with open(tampered, "w") as handle:
        json.dump(payload, handle)
    report = check(tampered, options=golden_options())
    assert not report.ok
    diffs = "\n".join(report.drifted[name])
    assert "cost" in diffs and "fingerprint" in diffs


def test_missing_and_unblessed_kernels_are_reported(blessed, tmp_path):
    payload = json.load(open(blessed))
    payload["entries"]["phantom-kernel"] = dict(
        payload["entries"][SMALL[0]]
    )
    edited = str(tmp_path / "edited.json")
    with open(edited, "w") as handle:
        json.dump(payload, handle)
    report = check(edited, names=SMALL, options=golden_options())
    assert report.missing == ["phantom-kernel"]
    assert not report.ok

    del payload["entries"][SMALL[0]]
    with open(edited, "w") as handle:
        json.dump(payload, handle)
    report = check(edited, names=SMALL, options=golden_options())
    assert report.unblessed == list(SMALL)
    assert not report.ok


def test_schema_mismatch_raises(tmp_path):
    bogus = str(tmp_path / "bogus.json")
    with open(bogus, "w") as handle:
        json.dump({"schema": "bogus", "entries": {}}, handle)
    with pytest.raises(ValueError):
        check(bogus)


def test_unknown_kernel_rejected():
    with pytest.raises((KeyError, ValueError)):
        compute_entries(("no-such-kernel",), golden_options())


def test_entries_are_deterministic(blessed):
    """The same kernel compiled twice yields identical fingerprints --
    the property the whole corpus rests on."""
    first = compute_entries(SMALL, golden_options())
    second = compute_entries(SMALL, golden_options())
    assert first == second
    blessed_entries = json.load(open(blessed))["entries"]
    assert first == blessed_entries


@pytest.mark.slow
def test_committed_corpus_has_not_drifted():
    """The real drift gate: the checked-in corpus must match a fresh
    compile of every paper kernel.  Re-bless deliberately with
    ``repro conformance bless`` after an intentional change."""
    report = check(default_corpus_path())
    assert report.checked == len(GOLDEN_KERNELS)
    assert report.ok, report.render()


def test_committed_corpus_file_is_well_formed():
    payload = json.load(open(default_corpus_path()))
    assert payload["schema"] == GOLDEN_SCHEMA
    assert sorted(payload["entries"]) == sorted(GOLDEN_KERNELS)
    for entry in payload["entries"].values():
        assert set(entry) >= {
            "fingerprint",
            "cost",
            "instructions",
            "opcodes",
            "stop_reason",
        }
