"""Supervisor + worker pool: blast-radius containment for compiles.

:class:`CompileService` runs each :func:`repro.compiler.compile_spec`
in a sandboxed subprocess (``fork`` start method, ``resource`` rlimits,
hard kill-timeout) so an OOM, hang, or hard crash in one kernel can
never take down a sweep.  Around the worker it layers:

* **jittered exponential-backoff retries at shrinking budgets** --
  failures classified by :func:`repro.errors.is_resource_failure`
  (node-limit / memory / worker death) are retried with time *and*
  node budgets scaled by ``shrink_factor ** attempt`` and a shifted
  differential seed, after a deterministic jittered backoff sleep;
  logic errors fail fast;
* **a per-kernel circuit breaker** -- after ``strike_threshold``
  failed attempts a kernel's breaker opens and further compiles raise
  :class:`repro.errors.CircuitOpenError` immediately, so one
  pathological kernel cannot monopolize a batch;
* **the crash-safe artifact cache** (:mod:`repro.service.cache`) --
  consulted before any worker is spawned, written after any
  non-degraded success; hits are marked ``diagnostics.cache_hit``.

``compile_many`` fans a batch out over a bounded thread pool, each
thread supervising its own subprocess; results come back in input
order with per-item errors instead of a batch abort.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import random
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _mp_wait
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..chaos.inject import chaos_flag, current_plan, set_attempt
from ..compiler import CompileOptions, CompileResult, compile_spec
from ..errors import (
    CircuitOpenError,
    CompileError,
    DeadlineExceededError,
    ShutdownError,
    WorkerCrashError,
    WorkerTimeoutError,
    is_resource_failure,
    stage_error,
)
from ..frontend.lift import Spec
from ..observability import current_session, event as _obs_event, span as _obs_span
from ..seeding import stable_rng
from .cache import ArtifactCache
from .worker import CompileTask, FaultInjection, WorkerLimits, worker_main

__all__ = [
    "RetryPolicy",
    "ServiceStats",
    "BatchItem",
    "BoundedLog",
    "CompileService",
]

#: Wall-clock ceiling when neither the limits nor the options give one.
_DEFAULT_KILL_TIMEOUT = 120.0

#: How much of a dead worker's stderr the supervisor keeps.
_STDERR_TAIL_LINES = 50

#: Residual budget below which a deadline-carrying compile is shed
#: *before* forking a worker -- less than this cannot produce anything
#: useful, so spending a fork + saturation startup on it is waste.
_MIN_DEADLINE_BUDGET = 0.05

#: Grace on top of the residual deadline budget before the supervisor
#: SIGKILLs a worker that ignores its cooperative deadline (a chaos
#: sleep, a tight C loop): small enough that a shed surfaces within a
#: couple of seconds of the deadline, large enough for a clean exit.
_DEADLINE_KILL_GRACE = 2.0

#: Default ring capacity of ``CompileService.breaker_log``.
_BREAKER_LOG_LIMIT = 1024


class BoundedLog:
    """Append-only ring buffer with drop accounting.

    ``CompileService.breaker_log`` used to be a bare list: every breaker
    transition of a long-lived service accumulated forever -- an
    unbounded-memory bug for exactly the deployment the gateway exists
    for.  This keeps the last ``maxlen`` entries, counts what it
    dropped (``dropped`` / ``total``), and the chaos breaker-legality
    checker uses the drop count to replay a truncated log leniently
    instead of reporting false protocol violations.
    """

    def __init__(self, maxlen: int = _BREAKER_LOG_LIMIT) -> None:
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self.maxlen = maxlen
        self.dropped = 0
        self.total = 0
        self._entries: deque = deque(maxlen=maxlen)

    def append(self, entry: Dict[str, object]) -> None:
        if len(self._entries) == self.maxlen:
            self.dropped += 1
        self._entries.append(entry)
        self.total += 1

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index):
        return list(self._entries)[index]

    def clear(self) -> None:
        self._entries.clear()
        self.dropped = 0
        self.total = 0


def _obs_count(name: str, help_text: str, **labels: str) -> None:
    """Bump a service counter on the ambient metrics registry, if any."""
    session = current_session()
    if session is None or session.metrics is None:
        return
    counter = session.metrics.counter(
        name, help_text, labels=tuple(sorted(labels)) if labels else ()
    )
    (counter.labels(**labels) if labels else counter).inc()


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff / shrink / circuit-breaker knobs."""

    #: Total attempts per compile call (1 = no retries).
    max_attempts: int = 3
    #: First backoff sleep in seconds; attempt ``i`` sleeps
    #: ``base * factor**(i-1)`` +- ``jitter`` fraction.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    #: Budget scale per retry: attempt ``i`` runs at
    #: ``shrink_factor**i`` of the original time *and* node budgets.
    shrink_factor: float = 0.5
    min_node_limit: int = 1_000
    min_time_limit: float = 0.25
    #: Failed attempts per kernel before its circuit breaker opens.
    strike_threshold: int = 5

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        base = self.backoff_base * (self.backoff_factor ** max(0, attempt - 1))
        return base * (1.0 + self.backoff_jitter * rng.uniform(-1.0, 1.0))

    def shrunk_options(self, options: CompileOptions, attempt: int) -> CompileOptions:
        if attempt == 0:
            return options
        factor = self.shrink_factor ** attempt
        changes: Dict[str, object] = {
            "node_limit": max(
                self.min_node_limit, int(options.node_limit * factor)
            ),
            # Shift the differential seed so a retried validation does
            # not replay the exact samples of the failed attempt.
            "seed": options.seed + attempt,
        }
        if options.time_limit is not None:
            changes["time_limit"] = max(
                self.min_time_limit, options.time_limit * factor
            )
        return dataclasses.replace(options, **changes)


@dataclass
class ServiceStats:
    """Aggregate counters across one :class:`CompileService`."""

    #: Compilations actually executed (cache hits excluded).
    compiles: int = 0
    cache_hits: int = 0
    retries: int = 0
    worker_crashes: int = 0
    worker_timeouts: int = 0
    breaker_trips: int = 0
    failures: int = 0
    #: Compiles shed with DeadlineExceededError before a worker was
    #: forked (residual budget too small to finish).
    deadline_sheds: int = 0

    def summary(self) -> str:
        return (
            f"service: {self.compiles} compiles, {self.cache_hits} cache "
            f"hits, {self.retries} retries, {self.worker_crashes} worker "
            f"crashes, {self.worker_timeouts} kill-timeouts, "
            f"{self.breaker_trips} breaker trips, "
            f"{self.deadline_sheds} deadline sheds, "
            f"{self.failures} failures"
        )


@dataclass
class BatchItem:
    """Outcome of one kernel inside ``compile_many``."""

    name: str
    result: Optional[CompileResult] = None
    error: Optional[BaseException] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


class CompileService:
    """Process-isolated, cached, fault-tolerant compilation front end.

    Thread-safe: ``compile_many`` supervises several workers from a
    thread pool, and independent callers may share one instance (and
    therefore one cache and one set of circuit breakers).
    """

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        limits: Optional[WorkerLimits] = None,
        policy: Optional[RetryPolicy] = None,
        max_workers: Optional[int] = None,
        isolate: bool = True,
        seed: int = 0,
        cache_degraded: bool = False,
        inject_for: Optional[Dict[str, FaultInjection]] = None,
        checkpoint_dir: Optional[str] = None,
        breaker_log_limit: int = _BREAKER_LOG_LIMIT,
    ) -> None:
        self.cache = cache
        self.limits = limits or WorkerLimits()
        self.policy = policy or RetryPolicy()
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self.isolate = isolate
        self.seed = seed
        self.cache_degraded = cache_degraded
        #: Test/CLI fault-injection surface: kernel name -> injection,
        #: delivered to that kernel's workers (see service/worker.py).
        self.inject_for = dict(inject_for or {})
        #: When set, every compile runs with persistent saturation
        #: checkpoints under this directory (unless its options already
        #: name one), so a retry after a worker death resumes from the
        #: dead worker's last end-of-iteration state (DESIGN.md §11).
        self.checkpoint_dir = checkpoint_dir
        self.stats = ServiceStats()
        self._strikes: Dict[str, int] = {}
        self._lock = threading.Lock()
        #: Ring-buffered record of circuit-breaker transitions
        #: (``strike`` / ``open`` / ``reject`` / ``close`` / ``reset``),
        #: consumed by the chaos invariant "breaker transitions are
        #: legal" (repro/chaos/invariants.py).  Bounded so a long-lived
        #: service cannot grow memory without limit; the invariant
        #: checker reads ``breaker_log.dropped`` and replays a
        #: truncated log leniently.  (The flight-recorder event stream
        #: these transitions also feed is ring-bounded by construction
        #: -- ``FlightRecorder`` uses ``deque(maxlen=...)``.)
        self.breaker_log: BoundedLog = BoundedLog(breaker_log_limit)
        #: Graceful-drain latch: once set, new compiles are refused with
        #: ShutdownError, in-flight failures stop retrying, and live
        #: workers are killed + reaped by their supervising threads.
        self._draining = threading.Event()
        self._live: List[object] = []
        self._previous_handlers: Dict[int, object] = {}
        if isolate and hasattr(multiprocessing, "get_all_start_methods") and (
            "fork" in multiprocessing.get_all_start_methods()
        ):
            self._ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX fallback
            self._ctx = multiprocessing.get_context()

    # ------------------------------------------------------ public API

    def compile_spec(
        self,
        spec: Spec,
        options: Optional[CompileOptions] = None,
        inject: Optional[FaultInjection] = None,
    ) -> CompileResult:
        """Compile one spec with caching, isolation, and retries.

        Raises the final attempt's (reconstructed) staged error when
        every attempt failed, or :class:`CircuitOpenError` when the
        kernel's breaker is already open.
        """
        if self._draining.is_set():
            raise ShutdownError("service is draining", kernel=spec.name)
        options = options or CompileOptions()
        if self.checkpoint_dir is not None and options.checkpoint_dir is None:
            options = dataclasses.replace(
                options, checkpoint_dir=self.checkpoint_dir
            )
        if inject is None:
            inject = self.inject_for.get(spec.name)

        with _obs_span(
            "service.compile", kernel=spec.name, isolate=self.isolate
        ) as svc_span:
            key = None
            if self.cache is not None:
                key = self.cache.key_for(spec, options)
                cached = self.cache.get(key)
                if cached is not None:
                    cached.diagnostics.cache_hit = True
                    with self._lock:
                        self.stats.cache_hits += 1
                    _obs_count(
                        "repro_service_cache_hits_total",
                        "Artifact-cache hits served without spawning a worker",
                    )
                    if svc_span is not None:
                        svc_span.set(cache_hit=True)
                    return cached

            with self._lock:
                strikes = self._strikes.get(spec.name, 0)
                if strikes >= self.policy.strike_threshold:
                    self.stats.breaker_trips += 1
                    self._breaker_event(spec.name, "reject", strikes)
                    _obs_count(
                        "repro_service_breaker_trips_total",
                        "Compiles refused because the kernel's breaker is open",
                    )
                    _obs_event(
                        "breaker_open", kernel=spec.name, strikes=strikes
                    )
                    raise CircuitOpenError(
                        f"circuit breaker open after {strikes} strikes",
                        kernel=spec.name,
                    )

            rng = stable_rng(self.seed, "supervisor-jitter", spec.name)
            last_error: Optional[BaseException] = None
            for attempt in range(self.policy.max_attempts):
                if attempt > 0:
                    with self._lock:
                        self.stats.retries += 1
                    _obs_count(
                        "repro_service_retries_total",
                        "Shrunk-budget retry attempts after a failure",
                    )
                    # A jittered backoff must never sleep past the
                    # request's deadline: clamp to the residual budget
                    # so a doomed retry fails fast at the shed below
                    # instead of sleeping first and failing late.
                    delay = self.policy.backoff_delay(attempt, rng)
                    if options.deadline is not None:
                        delay = min(
                            delay, max(0.0, options.deadline - time.time())
                        )
                    if delay > 0:
                        time.sleep(delay)
                # Deadline propagation: shed *before* forking a worker
                # when the residual budget cannot cover a useful
                # attempt.  The typed error chains the failure that
                # consumed the budget, so a post-mortem still shows why.
                if options.deadline is not None:
                    residual = options.deadline - time.time()
                    if residual < _MIN_DEADLINE_BUDGET:
                        with self._lock:
                            self.stats.deadline_sheds += 1
                            self.stats.failures += 1
                        _obs_count(
                            "repro_service_deadline_sheds_total",
                            "Compiles shed pre-fork on an expired deadline",
                        )
                        _obs_event(
                            "deadline_shed",
                            kernel=spec.name,
                            attempt=attempt,
                            residual=residual,
                        )
                        if svc_span is not None:
                            svc_span.set(failed=True, deadline_shed=True)
                        raise DeadlineExceededError(
                            f"residual deadline budget {residual:.3f}s is "
                            f"below the {_MIN_DEADLINE_BUDGET:.2f}s floor; "
                            f"shed before forking a worker "
                            f"(attempt {attempt})",
                            kernel=spec.name,
                            deadline=options.deadline,
                            residual=residual,
                        ) from last_error
                shrunk = self.policy.shrunk_options(options, attempt)
                with self._lock:
                    self.stats.compiles += 1
                with _obs_span(
                    "service.attempt", kernel=spec.name, attempt=attempt
                ) as att_span:
                    try:
                        result = self._run_once(spec, shrunk, attempt, inject)
                    except Exception as exc:  # noqa: BLE001 - classified below
                        if self._draining.is_set():
                            # The drain killed (or preempted) this
                            # worker: retrying inside a dying supervisor
                            # is pointless, and the failure must not
                            # count as a strike against the kernel.
                            raise ShutdownError(
                                "service drained mid-compile",
                                kernel=spec.name,
                            ) from exc
                        last_error = exc
                        if att_span is not None:
                            att_span.set(
                                failed=True,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        with self._lock:
                            new_strikes = self._strikes.get(spec.name, 0) + 1
                            self._strikes[spec.name] = new_strikes
                            self._breaker_event(spec.name, "strike", new_strikes)
                            if new_strikes == self.policy.strike_threshold:
                                self._breaker_event(
                                    spec.name, "open", new_strikes
                                )
                        if not is_resource_failure(exc):
                            break
                        continue
                    self._adopt_worker_trace(result)
                with self._lock:
                    if self._strikes.get(spec.name, 0):
                        self._breaker_event(spec.name, "close", 0)
                    self._strikes[spec.name] = 0
                result.diagnostics.attempts = attempt + 1
                if self.cache is not None and key is not None:
                    # A deadline-clamped compile that timed out produced
                    # a barely-saturated artifact; the cache key excludes
                    # the deadline, so caching it would serve the rushed
                    # result to unconstrained requests.  Skip it.
                    rushed = options.deadline is not None and result.timed_out
                    if (self.cache_degraded or not result.degraded) and not rushed:
                        self.cache.put(key, result)
                return result

            with self._lock:
                self.stats.failures += 1
            if svc_span is not None:
                svc_span.set(failed=True)
            assert last_error is not None
            raise last_error

    def compile_many(
        self,
        specs: Sequence[Spec],
        options: Optional[CompileOptions] = None,
        per_spec_options: Optional[Sequence[Optional[CompileOptions]]] = None,
    ) -> List[BatchItem]:
        """Compile a batch concurrently; results in input order."""
        from concurrent.futures import ThreadPoolExecutor

        items: List[BatchItem] = [BatchItem(name=s.name) for s in specs]

        def one(index: int) -> None:
            start = time.perf_counter()
            opts = options
            if per_spec_options is not None and per_spec_options[index] is not None:
                opts = per_spec_options[index]
            try:
                items[index].result = self.compile_spec(specs[index], opts)
            except Exception as exc:  # noqa: BLE001 - reported per item
                items[index].error = exc
            items[index].elapsed = time.perf_counter() - start

        workers = max(1, min(self.max_workers, len(specs) or 1))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(one, range(len(specs))))
        return items

    def reset_breaker(self, kernel: Optional[str] = None) -> None:
        with self._lock:
            if kernel is None:
                for name in list(self._strikes):
                    if self._strikes[name]:
                        self._breaker_event(name, "reset", 0)
                self._strikes.clear()
            else:
                if self._strikes.get(kernel, 0):
                    self._breaker_event(kernel, "reset", 0)
                self._strikes.pop(kernel, None)

    def strikes(self, kernel: str) -> int:
        with self._lock:
            return self._strikes.get(kernel, 0)

    def _breaker_event(self, kernel: str, transition: str, strikes: int) -> None:
        """Append one breaker transition (caller holds ``_lock``)."""
        self.breaker_log.append(
            {
                "kernel": kernel,
                "event": transition,
                "strikes": strikes,
                "time": time.time(),
            }
        )

    # ------------------------------------------------- graceful shutdown

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def shutdown(self, kill_inflight: bool = True) -> None:
        """Drain the service: refuse new compiles, stop retry loops, and
        (by default) SIGKILL every in-flight worker.

        Killed workers are reaped by their own supervising threads --
        the kill makes the worker's sentinel fire, ``_drive_worker``'s
        ``finally`` joins and closes the process, and ``_run_isolated``
        unlinks the stderr scratch file -- so a drained batch leaves no
        zombies and no scratch litter (asserted in tests).  Safe to call
        from a signal handler and idempotent.
        """
        self._draining.set()
        _obs_event("service_shutdown", kill_inflight=kill_inflight)
        if not kill_inflight:
            return
        with self._lock:
            procs = list(self._live)
        for proc in procs:
            try:
                self._kill(proc)
            except Exception:  # pragma: no cover - already reaped/closed
                pass

    def resume(self) -> None:
        """Clear the drain latch (tests / long-lived servers that drain
        and then accept work again)."""
        self._draining.clear()

    def install_signal_handlers(self, signums: Optional[Sequence[int]] = None):
        """Install SIGTERM/SIGINT handlers that drain this service.

        Returns the mapping of previous handlers (also remembered for
        :meth:`uninstall_signal_handlers`).  A no-op off the main thread
        -- CPython only delivers signals there, and ``signal.signal``
        raises anywhere else.  The previous handler is chained after the
        drain so embedding applications keep their own cleanup.
        """
        import signal as _signal

        if threading.current_thread() is not threading.main_thread():
            return {}
        if signums is None:
            signums = (_signal.SIGTERM, _signal.SIGINT)
        previous: Dict[int, object] = {}

        def _drain_handler(signum, frame):
            self.shutdown()
            prev = previous.get(signum)
            if callable(prev):
                prev(signum, frame)

        for signum in signums:
            previous[signum] = _signal.signal(signum, _drain_handler)
        self._previous_handlers = dict(previous)
        return previous

    def uninstall_signal_handlers(self) -> None:
        import signal as _signal

        for signum, prev in self._previous_handlers.items():
            try:
                _signal.signal(signum, prev)  # type: ignore[arg-type]
            except (TypeError, ValueError):  # pragma: no cover
                pass
        self._previous_handlers = {}

    def _register(self, proc) -> None:
        with self._lock:
            self._live.append(proc)

    def _unregister(self, proc) -> None:
        with self._lock:
            try:
                self._live.remove(proc)
            except ValueError:  # pragma: no cover - double unregister
                pass

    # --------------------------------------------------- worker driving

    @staticmethod
    def _adopt_worker_trace(result: CompileResult) -> None:
        """Re-parent the worker's exported spans under the supervisor's
        current span, so one trace shows the whole fork round-trip."""
        session = current_session()
        data = getattr(result, "observability", None)
        if session is None or session.tracer is None or data is None:
            return
        if not data.spans:
            return
        parent = session.tracer.current_span()
        session.tracer.adopt(
            data.spans, parent.span_id if parent is not None else None
        )

    def _run_once(
        self,
        spec: Spec,
        options: CompileOptions,
        attempt: int,
        inject: Optional[FaultInjection],
    ) -> CompileResult:
        # Parent-side chaos context: attempt-scoped FaultSpecs (e.g.
        # "fail only the first attempt") match against this.
        set_attempt(attempt)
        if not self.isolate:
            if inject is not None and inject.fires_on(attempt):
                if inject.mode in ("sigkill", "hang", "oom"):
                    raise WorkerCrashError(
                        f"simulated in-process {inject.mode}", kernel=spec.name
                    )
                inject.trigger()
            return compile_spec(spec, options)
        return self._run_isolated(spec, options, attempt, inject)

    def _run_isolated(
        self,
        spec: Spec,
        options: CompileOptions,
        attempt: int,
        inject: Optional[FaultInjection],
    ) -> CompileResult:
        limits = self.limits.derive(options.time_limit)
        if options.deadline is not None:
            # The kill-timeout is normally a generous 3x backstop over
            # the cooperative time limit; with a client deadline the
            # worker must die shortly after the budget runs out so the
            # typed deadline error surfaces within bound instead of
            # minutes later.
            residual = max(0.0, options.deadline - time.time())
            ceiling = residual + _DEADLINE_KILL_GRACE
            if limits.kill_timeout is None or limits.kill_timeout > ceiling:
                limits = dataclasses.replace(limits, kill_timeout=ceiling)
        stderr_path = self._stderr_scratch(spec.name, attempt)
        task = CompileTask(
            spec=spec,
            options=options,
            limits=limits,
            attempt=attempt,
            inject=inject,
            stderr_path=stderr_path,
            # The chaos plan crosses the fork so worker-side seams
            # (runner.iteration, checkpoint.write, ...) fire inside the
            # sandbox; each attempt's worker starts from the parent's
            # counter snapshot, keeping per-attempt firing deterministic.
            chaos_plan=current_plan(),
        )
        try:
            return self._drive_worker(spec, task, limits, stderr_path)
        finally:
            if stderr_path is not None:
                try:
                    os.unlink(stderr_path)
                except OSError:
                    pass

    def _drive_worker(
        self,
        spec: Spec,
        task: CompileTask,
        limits: WorkerLimits,
        stderr_path: Optional[str],
    ) -> CompileResult:
        if chaos_flag("worker.spawn"):
            raise WorkerCrashError(
                "injected worker spawn failure", kernel=spec.name
            )
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, task),
            name=f"repro-worker-{spec.name}-a{task.attempt}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._register(proc)
        kill_timeout = limits.kill_timeout or _DEFAULT_KILL_TIMEOUT
        deadline = time.monotonic() + kill_timeout
        message = None
        try:
            while message is None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._kill(proc)
                    with self._lock:
                        self.stats.worker_timeouts += 1
                    _obs_count(
                        "repro_service_worker_timeouts_total",
                        "Workers SIGKILLed at the hard kill-timeout",
                    )
                    tail = self._read_stderr_tail(stderr_path)
                    _obs_event(
                        "worker_timeout",
                        kernel=spec.name,
                        attempt=task.attempt,
                        kill_timeout=kill_timeout,
                        stderr_tail=tail or "",
                    )
                    raise WorkerTimeoutError(
                        f"worker exceeded the {kill_timeout:.1f}s kill-timeout "
                        f"and was SIGKILLed",
                        kernel=spec.name,
                        signal=9,
                        stderr_tail=tail,
                    )
                ready = _mp_wait([parent_conn, proc.sentinel], timeout=remaining)
                if parent_conn in ready:
                    try:
                        message = parent_conn.recv()
                    except (EOFError, OSError):
                        break  # died between poll and send
                elif ready:  # sentinel only: process exited
                    # Drain a message sent just before death, if any.
                    if parent_conn.poll(0.25):
                        try:
                            message = parent_conn.recv()
                        except (EOFError, OSError):
                            message = None
                    break
        finally:
            self._unregister(proc)
            exitcode = self._reap(proc)
            parent_conn.close()

        if message is not None and chaos_flag("worker.result"):
            # Simulate the result message being lost on the pipe: the
            # compile follows the worker-crash path even though the
            # worker exited cleanly.
            message = None

        if message is None:
            sig = -exitcode if exitcode is not None and exitcode < 0 else None
            with self._lock:
                self.stats.worker_crashes += 1
            _obs_count(
                "repro_service_worker_crashes_total",
                "Workers that died without delivering a result",
            )
            tail = self._read_stderr_tail(stderr_path)
            _obs_event(
                "worker_crash",
                kernel=spec.name,
                attempt=task.attempt,
                exitcode=exitcode,
                signal=sig,
                stderr_tail=tail or "",
            )
            raise WorkerCrashError(
                "worker died without a result "
                + (
                    f"(signal {sig})"
                    if sig is not None
                    else f"(exit code {exitcode})"
                ),
                kernel=spec.name,
                exitcode=exitcode,
                signal=sig,
                stderr_tail=tail,
            )

        kind, payload = message
        if kind == "ok":
            return payload
        type_name, stage, text = payload
        # Reconstruct a staged error; keep the original type name in the
        # message so is_resource_failure's text taxonomy still matches
        # (e.g. a worker-side MemoryError).
        error = stage_error(stage)(f"{type_name}: {text}", kernel=spec.name)
        tail = self._read_stderr_tail(stderr_path)
        if tail:
            error.partial["stderr_tail"] = tail
        raise error

    @staticmethod
    def _stderr_scratch(kernel: str, attempt: int) -> Optional[str]:
        """A scratch file the worker dup2s its stderr onto.  ``None``
        (no capture) when the temp dir is unusable."""
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in kernel)
        try:
            fd, path = tempfile.mkstemp(
                prefix=f"repro-worker-{safe}-a{attempt}-", suffix=".stderr"
            )
            os.close(fd)
            return path
        except OSError:  # pragma: no cover - no writable tmp
            return None

    @staticmethod
    def _read_stderr_tail(
        path: Optional[str], max_lines: int = _STDERR_TAIL_LINES
    ) -> Optional[str]:
        """Last ``max_lines`` lines of the worker's stderr scratch file
        (``None`` when nothing was captured)."""
        if path is None:
            return None
        try:
            with open(path, "r", errors="replace") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return None
        if not lines:
            return None
        return "\n".join(lines[-max_lines:])

    @staticmethod
    def _kill(proc) -> None:
        try:
            proc.kill()
        except (AttributeError, OSError):  # pragma: no cover
            try:
                proc.terminate()
            except OSError:
                pass

    def _reap(self, proc) -> Optional[int]:
        """Join (force-killing if stuck), close, return the exit code."""
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - stuck in uninterruptible IO
            self._kill(proc)
            proc.join(timeout=5.0)
        exitcode = proc.exitcode
        if hasattr(proc, "close"):
            try:
                proc.close()
            except ValueError:  # pragma: no cover
                pass
        return exitcode
