"""Unit tests for extraction and the cost models."""

import pytest

from repro.costs import (
    CostConfig,
    DiospyrosCostModel,
    ScalarOnlyCostModel,
    TermSizeCostModel,
    lane_kind,
)
from repro.dsl import parse
from repro.egraph import EGraph, Extractor, Runner, rewrite
from repro.rules import build_ruleset


def saturated_graph(text, rules=None):
    eg = EGraph()
    root = eg.add_term(parse(text))
    Runner(rules or [rewrite("add-0", "(+ ?a 0)", "?a")]).run(eg)
    return eg, root


class TestExtractor:
    def test_extracts_simplified_form(self):
        eg, root = saturated_graph("(+ (Get a 0) 0)")
        result = Extractor(eg, TermSizeCostModel()).extract(root)
        assert result.term == parse("(Get a 0)")

    def test_cost_reported(self):
        eg, root = saturated_graph("(+ (Get a 0) 0)")
        result = Extractor(eg, TermSizeCostModel()).extract(root)
        assert result.cost == 3.0  # Get, Symbol, Num

    def test_extraction_without_rewrites_returns_input(self):
        eg = EGraph()
        root = eg.add_term(parse("(* (Get a 1) (Get b 2))"))
        result = Extractor(eg).extract(root)
        assert result.term == parse("(* (Get a 1) (Get b 2))")

    def test_best_cost_and_node(self):
        eg, root = saturated_graph("(+ x 0)")
        ex = Extractor(eg, TermSizeCostModel())
        assert ex.best_cost(root) == 1.0
        assert ex.best_node(root).op == "Symbol"

    def test_shared_subterms_extract_consistently(self):
        eg = EGraph()
        root = eg.add_term(parse("(* (+ q 0) (+ q 0))"))
        Runner([rewrite("add-0", "(+ ?a 0)", "?a")]).run(eg)
        term = Extractor(eg, TermSizeCostModel()).extract(root).term
        assert term == parse("(* q q)")
        # The two children are literally the same object (DAG sharing).
        assert term.args[0] is term.args[1]

    def test_nonmonotonic_cost_rejected(self):
        from repro.egraph.extract import CostFunction

        class Broken(CostFunction):
            def node_cost(self, extractor, node, child_costs):
                return 0.0  # not strictly positive -> no fixpoint proof

        eg = EGraph()
        root = eg.add_term(parse("(+ 1 2)"))
        # Zero-cost everywhere converges trivially here (no cycles),
        # so this should still extract -- the guard is about cycles.
        result = Extractor(eg, Broken()).extract(root)
        assert result.cost == 0.0


class TestLaneKind:
    def _extractor(self, text):
        eg = EGraph()
        root = eg.add_term(parse(text))
        return Extractor(eg, DiospyrosCostModel()), eg, root

    def test_get_lane(self):
        ex, eg, root = self._extractor("(Get arr 5)")
        assert lane_kind(ex, root) == ("get", "arr", 5)

    def test_zero_lane(self):
        ex, eg, root = self._extractor("0")
        assert lane_kind(ex, root) == ("zero", None, None)

    def test_literal_lane(self):
        ex, eg, root = self._extractor("3")
        assert lane_kind(ex, root) == ("lit", None, None)

    def test_scalar_lane(self):
        ex, eg, root = self._extractor("(+ (Get a 0) (Get a 1))")
        assert lane_kind(ex, root)[0] == "scalar"


class TestDiospyrosCostModel:
    def _cost(self, text):
        eg = EGraph()
        root = eg.add_term(parse(text))
        ex = Extractor(eg, DiospyrosCostModel())
        return ex.best_cost(root)

    def test_contiguous_vec_cheaper_than_shuffle(self):
        contiguous = self._cost("(Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))")
        shuffled = self._cost("(Vec (Get a 3) (Get a 1) (Get a 0) (Get a 2))")
        assert contiguous < shuffled

    def test_single_array_cheaper_than_cross_array(self):
        single = self._cost("(Vec (Get a 3) (Get a 1) (Get a 0) (Get a 2))")
        cross = self._cost("(Vec (Get a 0) (Get b 1) (Get a 2) (Get b 3))")
        assert single < cross

    def test_extra_arrays_cost_more(self):
        two = self._cost("(Vec (Get a 0) (Get b 1) (Get a 2) (Get b 3))")
        three = self._cost("(Vec (Get a 0) (Get b 1) (Get c 2) (Get b 3))")
        assert two < three

    def test_scalar_lane_penalized(self):
        pure = self._cost("(Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))")
        mixed = self._cost("(Vec (Get a 0) (Get a 1) (Get a 2) (+ (Get a 3) 1))")
        assert pure + DiospyrosCostModel().config.vec_scalar_lane <= mixed

    def test_zero_vec_is_cheap(self):
        assert self._cost("(Vec 0 0 0 0)") < self._cost(
            "(Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"
        )

    def test_vector_op_cheaper_than_scalar_equivalent(self):
        vector = self._cost(
            "(VecAdd (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"
            " (Vec (Get b 0) (Get b 1) (Get b 2) (Get b 3)))"
        )
        scalar = self._cost(
            "(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1))"
            " (+ (Get a 2) (Get b 2)) (+ (Get a 3) (Get b 3)))"
        )
        assert vector < scalar

    def test_no_shuffle_variant_raises_movement_cost(self):
        base = CostConfig()
        harsh = base.scaled_for_no_shuffle_target()
        assert harsh.vec_shuffle > base.vec_shuffle
        assert harsh.vec_select > base.vec_select

    def test_end_to_end_prefers_vectorized(self):
        eg = EGraph()
        root = eg.add_term(
            parse(
                "(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1))"
                " (+ (Get a 2) (Get b 2)) (+ (Get a 3) (Get b 3)))"
            )
        )
        Runner(build_ruleset(4)).run(eg)
        term = Extractor(eg, DiospyrosCostModel()).extract(root).term
        assert term.op in ("Vec", "VecAdd", "Concat")
        assert "VecAdd" in term.to_sexpr()


class TestScalarOnlyCostModel:
    def test_never_extracts_vector_forms(self):
        eg = EGraph()
        root = eg.add_term(
            parse(
                "(List (+ (Get a 0) (Get b 0)) (+ (Get a 1) (Get b 1))"
                " (+ (Get a 2) (Get b 2)) (+ (Get a 3) (Get b 3)))"
            )
        )
        Runner(build_ruleset(4)).run(eg)
        term = Extractor(eg, ScalarOnlyCostModel()).extract(root).term
        assert "Vec" not in term.to_sexpr()
        assert term.op == "List"
