"""Loop-construction helpers for parametric-size baseline kernels.

Parametric kernels (the paper's *Naive* and the generic library
baselines) must pay real control costs: loop-counter updates,
compare-and-branch, and address arithmetic on runtime indices.  This
module provides a small structured-emission layer over the IR so the
baseline generators read like the loops they model.

The emitted loop shape is ``i = 0; top: if (i >= n) goto end; body;
i += 1; goto top; end:`` -- three overhead instructions per iteration
plus the body, a fair model of a DSP with hardware loop assistance
(the unconditional back-edge costs one cycle; only *conditional*
branches pay the taken penalty).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, Union

from ..backend import vir
from ..backend.vir import Program, RegAllocator

__all__ = ["LoopEmitter"]


class LoopEmitter:
    """Structured scalar/vector emission with loops and guards."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.regs = RegAllocator()
        self._labels = 0

    # -- primitives ----------------------------------------------------

    def fresh_label(self, hint: str = "L") -> str:
        self._labels += 1
        return f"{hint}{self._labels}"

    def const(self, value: float) -> str:
        reg = self.regs.scalar()
        self.program.emit(vir.SConst(reg, float(value)))
        return reg

    def binary(self, op: str, a: str, b: str) -> str:
        reg = self.regs.scalar()
        self.program.emit(vir.SBin(op, reg, a, b))
        return reg

    def unary(self, op: str, a: str) -> str:
        reg = self.regs.scalar()
        self.program.emit(vir.SUn(op, reg, a))
        return reg

    def add(self, a: str, b: str) -> str:
        return self.binary("+", a, b)

    def mul(self, a: str, b: str) -> str:
        return self.binary("*", a, b)

    def load_idx(self, array: str, idx: str, offset: int = 0) -> str:
        reg = self.regs.scalar()
        self.program.emit(vir.SLoadIdx(reg, array, idx, offset))
        return reg

    def store_idx(self, array: str, idx: str, src: str, offset: int = 0) -> None:
        self.program.emit(vir.SStoreIdx(array, idx, src, offset))

    # -- vector primitives (for the hand-vectorized library baselines) -

    def vconst(self, values) -> str:
        reg = self.regs.vector()
        self.program.emit(vir.VConst(reg, tuple(values)))
        return reg

    def vzero(self) -> str:
        return self.vconst((0.0,) * self.program.vector_width)

    def vsplat(self, scalar: str) -> str:
        reg = self.regs.vector()
        self.program.emit(vir.VSplat(reg, scalar))
        return reg

    def vload_idx(self, array: str, idx: str, offset: int = 0) -> str:
        reg = self.regs.vector()
        self.program.emit(vir.VLoadIdx(reg, array, idx, offset))
        return reg

    def vmac(self, acc: str, a: str, b: str) -> str:
        reg = self.regs.vector()
        self.program.emit(vir.VMac(reg, acc, a, b))
        return reg

    def vmac_into(self, acc: str, a: str, b: str) -> None:
        """Accumulate in place (dst == acc), the idiom of vector loops."""
        self.program.emit(vir.VMac(acc, acc, a, b))

    def vstore_idx(self, array: str, idx: str, src: str, count: int, offset: int = 0) -> None:
        self.program.emit(vir.VStoreIdx(array, idx, src, count, offset))

    # -- structured control --------------------------------------------

    def loop(self, count: Union[int, str], body: Callable[[str], None]) -> None:
        """``for i in range(count): body(i)`` with the counter in a
        register.  ``count`` may be an immediate (materialized once,
        as a compiler would hoist it) or an existing register."""
        count_reg = self.const(count) if isinstance(count, int) else count
        i = self.const(0)
        top = self.fresh_label("loop")
        end = self.fresh_label("end")
        one = self.const(1)
        self.program.emit(vir.Label(top))
        self.program.emit(vir.Branch("ge", i, count_reg, end))
        body(i)
        self.program.emit(vir.SBin("+", i, i, one))
        self.program.emit(vir.Jump(top))
        self.program.emit(vir.Label(end))

    def loop_range(
        self,
        start: Union[int, str],
        stop: Union[int, str],
        body: Callable[[str], None],
    ) -> None:
        """``for i in range(start, stop): body(i)`` -- the ranged loops
        of library code (e.g. Householder updates over rows >= k)."""
        stop_reg = self.const(stop) if isinstance(stop, int) else stop
        start_reg = self.const(start) if isinstance(start, int) else start
        i = self.binary("+", start_reg, self.const(0))
        top = self.fresh_label("loop")
        end = self.fresh_label("end")
        one = self.const(1)
        self.program.emit(vir.Label(top))
        self.program.emit(vir.Branch("ge", i, stop_reg, end))
        body(i)
        self.program.emit(vir.SBin("+", i, i, one))
        self.program.emit(vir.Jump(top))
        self.program.emit(vir.Label(end))

    def loop_step(
        self,
        start: Union[int, str],
        stop_exclusive: Union[int, str],
        step: Union[int, str],
        body: Callable[[str], None],
    ) -> None:
        """``for (i = start; i < stop_exclusive; i += step): body(i)``
        -- the chunked vector loops of library kernels
        (``for (j = 0; j + 4 <= n; j += 4)`` is
        ``loop_step(0, n - 3, 4, ...)``)."""
        stop_reg = (
            self.const(stop_exclusive)
            if isinstance(stop_exclusive, int)
            else stop_exclusive
        )
        step_reg = self.const(step) if isinstance(step, int) else step
        start_reg = self.const(start) if isinstance(start, int) else start
        i = self.binary("+", start_reg, self.const(0))
        top = self.fresh_label("loop")
        end = self.fresh_label("end")
        self.program.emit(vir.Label(top))
        self.program.emit(vir.Branch("ge", i, stop_reg, end))
        body(i)
        self.program.emit(vir.SBin("+", i, i, step_reg))
        self.program.emit(vir.Jump(top))
        self.program.emit(vir.Label(end))

    def guard(
        self,
        conditions: Sequence[Tuple[str, str, str]],
        body: Callable[[], None],
    ) -> None:
        """Run ``body`` only when every ``(cond, a, b)`` holds -- the
        boundary-``if`` of the convolution loops.  Each condition is
        compiled to a skip-branch on its negation."""
        skip = self.fresh_label("skip")
        negation = {"lt": "ge", "le": "gt", "eq": "ne", "ne": "eq", "ge": "lt", "gt": "le"}
        for cond, a, b in conditions:
            self.program.emit(vir.Branch(negation[cond], a, b, skip))
        body()
        self.program.emit(vir.Label(skip))
