"""Metrics registry: counters, gauges, fixed-bucket histograms.

A deliberately small Prometheus-flavoured metrics surface for the
compilation pipeline:

.. code-block:: python

    registry = MetricsRegistry()
    compiles = registry.counter(
        "repro_compiles_total", "Compilations finished", labels=("status",)
    )
    compiles.labels(status="ok").inc()

    registry.to_prometheus()  # text exposition format
    registry.to_json()        # versioned JSON snapshot

Design points:

* **labels are declared up front** and every child is keyed by its
  label *values*, so the exposition output is stable and sorted;
* **histograms use fixed buckets** chosen at declaration -- observing
  is one bisect plus two adds, no allocation;
* the registry is **thread-safe** (one lock around mutation; reads
  take the same lock and copy);
* when observability is disabled the pipeline holds no registry at all
  (see :mod:`repro.observability.config`), so the disabled path costs
  one ``None`` check per site.

:func:`parse_prometheus` parses the exposition format back into
samples; ``tests/test_observability.py`` round-trips every metric kind
through it.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus",
    "render_prometheus",
]

METRICS_SCHEMA = "repro_metrics/v1"

#: Default histogram buckets: exponential seconds ladder suiting both
#: sub-millisecond stage times and multi-minute saturations.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 180.0
)

LabelValues = Tuple[str, ...]


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


class _Metric:
    """Base: a named family with a fixed label schema."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.help = help_text
        self.label_names = tuple(labels)
        self._lock = lock
        self._children: Dict[LabelValues, object] = {}

    def labels(self, **values: str):
        if set(values) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(values))}"
            )
        key = tuple(str(values[n]) for n in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def _default_child(self):
        """The label-less child (valid only when no labels declared)."""
        if self.label_names:
            raise ValueError(f"{self.name} requires labels {self.label_names}")
        return self.labels()

    def _new_child(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def _child_items(self) -> List[Tuple[LabelValues, object]]:
        with self._lock:
            return sorted(self._children.items())


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Counter(_Metric):
    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Metric):
    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _HistogramChild:
    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +Inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1


class Histogram(_Metric):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str],
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labels, lock)
        cleaned = tuple(sorted(float(b) for b in buckets))
        if not cleaned:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = cleaned

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


class MetricsRegistry:
    """A process-local collection of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # -- declaration ---------------------------------------------------

    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._declare(Counter, name, help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._declare(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(f"{name} already registered as "
                                     f"{existing.kind}")
                return existing
            metric = Histogram(name, help_text, labels, self._lock, buckets)
            self._metrics[name] = metric
            return metric

    def _declare(self, cls, name, help_text, labels):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"{name} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help_text, labels, self._lock)
            self._metrics[name] = metric
            return metric

    # -- export --------------------------------------------------------

    def _families(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        """Flat ``(name, labels, value)`` samples, histograms expanded
        into ``_bucket``/``_sum``/``_count`` series -- the same shape
        :func:`parse_prometheus` returns, enabling round-trip tests."""
        out: List[Tuple[str, Dict[str, str], float]] = []
        for metric in self._families():
            names = metric.label_names
            for values, child in metric._child_items():
                base = dict(zip(names, values))
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, count in zip(
                        child.buckets + (math.inf,), child.counts
                    ):
                        cumulative += count
                        labels = dict(base)
                        labels["le"] = _format_value(bound)
                        out.append(
                            (metric.name + "_bucket", labels, float(cumulative))
                        )
                    out.append((metric.name + "_sum", base, child.total))
                    out.append(
                        (metric.name + "_count", dict(base), float(child.count))
                    )
                else:
                    out.append((metric.name, base, child.value))
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format."""
        return render_prometheus(self.to_json())

    def to_json(self) -> Dict:
        """Versioned JSON snapshot (samples + family metadata)."""
        return {
            "schema": METRICS_SCHEMA,
            "families": [
                {
                    "name": m.name,
                    "kind": m.kind,
                    "help": m.help,
                    "labels": list(m.label_names),
                }
                for m in self._families()
            ],
            "samples": [
                {"name": name, "labels": labels, "value": value}
                for name, labels, value in self.samples()
            ],
        }


def render_prometheus(snapshot: Dict) -> str:
    """Render exposition text from a :meth:`MetricsRegistry.to_json`
    snapshot.

    Sessions export only the JSON form; the text form is rendered on
    demand from it (``ObservabilityData.prometheus``), keeping the
    per-compile export path off the hot loop.  Sample order and label
    order come straight from the snapshot, so the output is byte-equal
    to rendering from the live registry.
    """
    if not snapshot:
        return ""
    samples = snapshot.get("samples", [])
    lines: List[str] = []
    for family in snapshot.get("families", []):
        name, kind = family["name"], family["kind"]
        lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        wanted = (
            {name + "_bucket", name + "_sum", name + "_count"}
            if kind == "histogram"
            else {name}
        )
        for sample in samples:
            if sample["name"] not in wanted:
                continue
            label_txt = ""
            if sample["labels"]:
                inner = ",".join(
                    f'{key}="{_escape(value)}"'
                    for key, value in sample["labels"].items()
                )
                label_txt = "{" + inner + "}"
            lines.append(
                f"{sample['name']}{label_txt} "
                f"{_format_value(sample['value'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse exposition text back into ``(name, labels, value)`` samples.

    Supports exactly what :meth:`MetricsRegistry.to_prometheus` emits
    (enough for round-trip testing and simple scrape assertions).
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {raw!r}")
        labels: Dict[str, str] = {}
        name = name_part
        if "{" in name_part:
            name, _, rest = name_part.partition("{")
            body = rest.rsplit("}", 1)[0]
            labels = _parse_labels(body)
        value = float(value_part.replace("+Inf", "inf").replace("-Inf", "-inf"))
        samples.append((name, labels, value))
    return samples


def _parse_labels(body: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        key = body[i:eq].strip().lstrip(",").strip()
        assert body[eq + 1] == '"', "label values must be quoted"
        j = eq + 2
        chunks: List[str] = []
        while body[j] != '"':
            if body[j] == "\\":
                nxt = body[j + 1]
                chunks.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt)
                )
                j += 2
            else:
                chunks.append(body[j])
                j += 1
        labels[key] = "".join(chunks)
        i = j + 1
    return labels
