"""Evaluation harness: one module per paper artifact.

* :mod:`repro.evaluation.table1`    -- Table 1 (compile time / memory).
* :mod:`repro.evaluation.figure5`   -- Figure 5 (kernel speedups).
* :mod:`repro.evaluation.figure6`   -- Figure 6 (timeout ablation).
* :mod:`repro.evaluation.ablation`  -- Section 5.6 vectorization
  ablation, plus LVN / cost-model / AC design-choice ablations.
* :mod:`repro.evaluation.casestudy` -- Section 5.7 Theia case study.

Run from the command line::

    python -m repro.evaluation figure5 --scale 0.05
"""

from .ablation import (
    run_ac_ablation,
    run_cost_ablation,
    run_lvn_ablation,
    run_vector_ablation,
    render_vector_ablation,
)
from .casestudy import render_casestudy, run_casestudy
from .common import Budget, DEFAULT_BUDGET, geomean, render_table
from .figure5 import Figure5Result, render_figure5, run_figure5
from .figure6 import Figure6Result, render_figure6, run_figure6
from .table1 import Table1Row, render_table1, run_table1

__all__ = [
    "run_ac_ablation",
    "run_cost_ablation",
    "run_lvn_ablation",
    "run_vector_ablation",
    "render_vector_ablation",
    "render_casestudy",
    "run_casestudy",
    "Budget",
    "DEFAULT_BUDGET",
    "geomean",
    "render_table",
    "Figure5Result",
    "render_figure5",
    "run_figure5",
    "Figure6Result",
    "render_figure6",
    "run_figure6",
    "Table1Row",
    "render_table1",
    "run_table1",
]
