"""Coverage map over compiler behaviors, the fuzzer's feedback signal.

Pure random kernel generation (``repro.validation.fuzz``) samples the
same easy region of program space over and over; equality-saturation
compilers break in the *rare* regions -- an explosive rule getting
banned, extraction on a node-limited graph, a three-window nested
select.  Coverage-guided fuzzing needs a cheap, deterministic notion of
"this input exercised something new".  Ours is a set of string
**features** drawn from three observation planes:

* **rule firings** -- which rewrite rules matched / applied / were
  banned, with log-bucketed match loads (from ``RunReport.rule_stats``
  and the PR-4 MetricsRegistry snapshot);
* **e-class shape signatures** -- which operator mixes coexisted in
  final e-classes (recorded by the runner into the PR-4 FlightRecorder
  as an ``egraph_shapes`` event; see ``EGraph.shape_signatures``);
* **emitted VIR opcode mix** -- which IR opcodes the backend produced,
  with log-bucketed counts, plus degradation rungs and stop reasons.

Counts are bucketed by bit length so the feature universe stays small
and saturates: a kernel only "adds coverage" when it reaches a
behavior *class* no earlier kernel reached.  All features are plain
strings, so the map serializes losslessly to JSON for the on-disk
corpus and CI artifacts.

Timing, memory, and wall-clock derived values are deliberately
excluded: the same kernel must produce the same features on any
machine, or deterministic replay (and the CI coverage gate) breaks.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Set, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compiler import CompileResult
    from ..observability import ObservabilityData

__all__ = [
    "COVERAGE_SCHEMA",
    "CoverageMap",
    "bucket",
    "result_features",
    "observability_features",
]

COVERAGE_SCHEMA = "conformance_coverage/v1"


def bucket(count: int, cap: int = 12) -> int:
    """Log2 bucket of a non-negative count (0->0, 1->1, 2-3->2, ...),
    saturating at ``cap``.

    Bucketing keeps the feature universe finite: "this rule matched
    ~2^k times" is a behavior class, the exact count is noise.  The
    saturation cap matters for *guidance* quality -- without it,
    high-count planes become an unbounded size lottery that rewards
    whichever generator happens to produce the largest kernels, and
    the map stops distinguishing behavior from bulk.
    """
    return min(max(0, int(count)).bit_length(), cap)


class CoverageMap:
    """A growing set of observed behavior features.

    The map is insertion-order independent (it renders sorted) and
    JSON round-trippable; :meth:`add_all` reports how many features
    were new, which is the fuzzer's "keep this seed" signal.
    """

    def __init__(self, features: Optional[Iterable[str]] = None) -> None:
        self._features: Set[str] = set(features or ())

    # -- growth --------------------------------------------------------

    def add(self, feature: str) -> bool:
        """Add one feature; True when it was new."""
        if feature in self._features:
            return False
        self._features.add(feature)
        return True

    def add_all(self, features: Iterable[str]) -> int:
        """Add many features; returns the number that were new."""
        new = 0
        for feature in features:
            if feature not in self._features:
                self._features.add(feature)
                new += 1
        return new

    def novel(self, features: Iterable[str]) -> List[str]:
        """The subset of ``features`` not yet in the map (no mutation)."""
        return sorted(f for f in set(features) if f not in self._features)

    # -- queries -------------------------------------------------------

    @property
    def cardinality(self) -> int:
        return len(self._features)

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, feature: str) -> bool:
        return feature in self._features

    def features(self) -> List[str]:
        return sorted(self._features)

    def by_plane(self) -> Dict[str, int]:
        """Feature counts grouped by their ``plane:`` prefix."""
        planes: Dict[str, int] = {}
        for feature in self._features:
            plane = feature.split(":", 1)[0]
            planes[plane] = planes.get(plane, 0) + 1
        return dict(sorted(planes.items()))

    # -- serialization -------------------------------------------------

    def to_json(self) -> Dict:
        return {
            "schema": COVERAGE_SCHEMA,
            "cardinality": self.cardinality,
            "planes": self.by_plane(),
            "features": self.features(),
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "CoverageMap":
        if payload.get("schema") != COVERAGE_SCHEMA:
            raise ValueError(
                f"coverage schema mismatch: {payload.get('schema')!r} != "
                f"{COVERAGE_SCHEMA!r}"
            )
        return cls(payload.get("features", ()))

    def dump_to(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load_from(cls, path: str) -> "CoverageMap":
        with open(path) as handle:
            return cls.from_json(json.load(handle))


# ----------------------------------------------------------------------
# Feature extraction
# ----------------------------------------------------------------------


def result_features(result: "CompileResult") -> Set[str]:
    """Every coverage feature one compilation exhibited.

    Draws on the always-present saturation report and program, plus --
    when the compile ran under an observability session -- the metrics
    registry snapshot and flight-recorder events riding on
    ``result.observability``.
    """
    features: Set[str] = set()
    report = result.report

    # Saturation plane: stop reason, iteration-count bucket, rule loads.
    features.add(f"stop:{report.stop_reason}")
    features.add(f"iters:{bucket(len(report.iterations))}")
    features.add(f"nodes:{bucket(result.egraph_nodes)}")
    for name, stats in report.rule_stats.items():
        if stats.matches:
            features.add(f"rule:{name}")
            features.add(f"rule-load:{name}:{bucket(stats.matches, cap=6)}")
        if stats.applied:
            features.add(f"rule-applied:{name}")
        if stats.times_banned:
            features.add(f"banned:{name}")

    # Backend plane: emitted VIR opcode mix.
    for opcode, count in result.program.opcode_histogram().items():
        features.add(f"opcode:{opcode}")
        features.add(f"opcode-count:{opcode}:{bucket(count)}")

    # Robustness plane: degradation rungs, retries, swallowed errors.
    for degradation in result.diagnostics.degradations:
        features.add(f"degrade:{degradation.stage}")
    for stage in result.diagnostics.retries:
        features.add(f"retry:{stage}")
    if result.diagnostics.unvalidated:
        features.add("unvalidated:true")

    if result.observability is not None:
        features |= observability_features(result.observability)
    return features


def observability_features(data: "ObservabilityData") -> Set[str]:
    """Features mined from a PR-4 observability export: flight-recorder
    events (including the ``egraph_shapes`` feed) and labelled metric
    families from the MetricsRegistry snapshot."""
    features: Set[str] = set()
    for event in data.recorder.get("events", ()):
        kind = event.get("kind", "?")
        if kind == "egraph_shapes":
            for signature in event.get("details", {}).get("signatures", ()):
                features.add(f"shape:{signature}")
        else:
            features.add(f"event:{kind}")
    for sample in data.metrics.get("samples", ()):
        name = sample.get("name", "")
        # Wall-clock and memory families are excluded wholesale: even
        # their *presence* (histogram bucket labels) is a timing
        # artifact, not a behavior class.
        if "seconds" in name or "bytes" in name:
            continue
        labels = sample.get("labels") or {}
        if labels:
            rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            features.add(f"metric:{sample['name']}{{{rendered}}}")
    return features
