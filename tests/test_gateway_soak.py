"""The ``repro serve --bench`` soak harness, at unit-test scale.

Full-size soaks (the committed ``benchmarks/soak_baseline.json``, the
serve-smoke CI job) take ~25s; these runs shrink every phase to keep
tier-1 fast, skip the latency gates (meaningless at this scale), and
check the machinery: open-loop schedule determinism, report shape,
invariant wiring, dedup probes, and the chaos seams.
"""

import dataclasses

from repro.service import (
    GatewayConfig,
    SoakConfig,
    render_soak_report,
    run_soak_sync,
)
from repro.service.soak import SOAK_SCHEMA, soak_kernels
from repro.chaos.inject import FaultPlan, FaultSpec

MINI = SoakConfig(
    seed=0,
    unloaded_seconds=0.6,
    sustained_seconds=1.2,
    burst_seconds=0.8,
    recovery_seconds=0.4,
    unloaded_rate=2.0,
    sustained_rate=6.0,
    hot_fraction=0.85,
    hot_epoch_seconds=0.5,
    dedup_probes=1,
    dedup_probe_size=6,
    lru_capacity=32,
    gateway=GatewayConfig(
        max_queue_depth=8,
        concurrency=1,
        codel_target=0.05,
        codel_interval=0.2,
        default_deadline=2.0,
    ),
)


def test_mini_soak_report_shape_and_invariants(tmp_path):
    report = run_soak_sync(MINI, scratch_dir=str(tmp_path), gate_latency=False)
    assert report["schema"] == SOAK_SCHEMA
    assert set(report["phases"]) == {
        "unloaded", "sustained", "burst", "recovery",
    }
    for phase in report["phases"].values():
        assert phase["arrivals"] >= 0
        assert "latency_ms" in phase and "shed_latency_ms" in phase
    # Invariants must hold even at toy scale: typed errors only,
    # bounded queue, no starvation, legal breaker log, clean cache.
    assert report["violations"] == []
    assert report["gates"]["zero-violations"]["ok"]
    assert report["ok"], render_soak_report(report)


def test_mini_soak_dedup_probe_fully_collapses(tmp_path):
    report = run_soak_sync(MINI, scratch_dir=str(tmp_path), gate_latency=False)
    dedup = report["dedup"]
    assert dedup["probes"] == 1
    assert dedup["submitted"] == 6
    # 6 identical fresh-key concurrent submits: 1 leader + 5 coalesced.
    assert dedup["coalesced"] == 5


def test_soak_schedule_is_deterministic(tmp_path):
    from repro.service.soak import _Soak
    from repro.service.gateway import CompileGateway
    from repro.service import CompileService

    service = CompileService(cache=None, isolate=False)
    plan_a = _Soak(MINI, CompileGateway(service)).arrivals()
    plan_b = _Soak(MINI, CompileGateway(service)).arrivals()
    assert [(o, p, t, s.name, opt.seed) for o, p, t, s, opt in plan_a] == [
        (o, p, t, s.name, opt.seed) for o, p, t, s, opt in plan_b
    ]
    other = _Soak(dataclasses.replace(MINI, seed=7), CompileGateway(service))
    assert plan_a != other.arrivals()


def test_soak_kernels_shapes():
    hot, unique = soak_kernels()
    assert len(hot) == 3
    assert unique.name == "soak-mm5"


def test_mini_soak_with_chaos_plan(tmp_path):
    """Chaos seams fire, latency gates auto-skip, invariants still hold."""
    plan = FaultPlan(
        [
            FaultSpec("gateway.enqueue", "sleep", nth=4, seconds=0.05),
            FaultSpec("gateway.client", "flag", probability=0.4, max_fires=3),
            FaultSpec("gateway.flood", "flag", probability=0.2, max_fires=1),
        ],
        seed=1,
    )
    report = run_soak_sync(MINI, chaos=plan, scratch_dir=str(tmp_path))
    assert report["chaos"] is not None and len(report["chaos"]) > 0
    assert "admitted-p99" not in report["gates"]  # auto-skipped
    assert report["violations"] == []
    assert report["ok"], render_soak_report(report)


def test_render_soak_report_is_printable(tmp_path):
    report = run_soak_sync(MINI, scratch_dir=str(tmp_path), gate_latency=False)
    text = render_soak_report(report)
    assert text.startswith("soak:")
    assert "RESULT:" in text
    assert "gate" in text
