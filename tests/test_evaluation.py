"""Tests of the evaluation harness (repro.evaluation), run on small
kernel subsets so the suite stays fast."""

import math

import pytest

from repro.evaluation import (
    Budget,
    geomean,
    render_figure5,
    render_figure6,
    render_table,
    render_table1,
    render_vector_ablation,
    run_ac_ablation,
    run_cost_ablation,
    run_figure5,
    run_figure6,
    run_lvn_ablation,
    run_table1,
    run_vector_ablation,
)
from repro.kernels import make_conv2d, make_matmul

FAST = Budget(paper_seconds=180, seconds=3.0, node_limit=30_000, iter_limit=25)
SUBSET = [make_matmul(2, 2, 2), make_conv2d(3, 3, 2, 2)]


class TestCommon:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geomean_skips_nonpositive(self):
        assert geomean([4.0, 0.0]) == pytest.approx(4.0)

    def test_geomean_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_render_table(self):
        text = render_table(["A", "B"], [[1, 2.5], ["x", None]], title="T")
        assert "T" in text and "2.50" in text and "x" in text

    def test_budget_scaling(self):
        b = Budget.from_paper(180, 0.1)
        assert b.seconds == 18.0
        assert b.paper_seconds == 180

    def test_budget_options(self):
        options = FAST.options(enable_vector_rules=False)
        assert options.time_limit == 3.0
        assert not options.enable_vector_rules


class TestTable1:
    def test_rows_for_subset(self):
        rows = run_table1(FAST, SUBSET, track_memory=False)
        assert len(rows) == 2
        row = rows[0]
        assert row.kernel == "matmul-2x2-2x2"
        assert row.compile_time > 0
        assert row.egraph_nodes > 0
        assert row.paper_time == 1.9  # from the embedded paper table

    def test_render(self):
        rows = run_table1(FAST, SUBSET, track_memory=False)
        text = render_table1(rows, FAST)
        assert "Table 1" in text
        assert "matmul-2x2-2x2" in text
        assert "Timed out:" in text

    def test_memory_tracked_when_requested(self):
        rows = run_table1(FAST, SUBSET[:1], track_memory=True)
        assert rows[0].peak_memory_mb is not None


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5(FAST, SUBSET)

    def test_all_correct(self, result):
        assert result.all_correct

    def test_diospyros_beats_fixed_on_small_kernels(self, result):
        for row in result.rows:
            assert row.speedup_over_fixed("diospyros") > 1.0

    def test_availability_holes(self, result):
        conv = result.row("2dconv-3x3-2x2")
        assert conv.cycles["eigen"] is None
        assert conv.cycles["expert"] is None

    def test_geomean_positive(self, result):
        assert result.geomean_vs_best > 1.0

    def test_best_baseline_is_min(self, result):
        row = result.row("matmul-2x2-2x2")
        candidates = [
            row.cycles[n]
            for n in ("naive", "naive-fixed", "nature", "eigen")
            if row.cycles[n] is not None
        ]
        assert row.best_baseline_cycles() == min(candidates)

    def test_render(self, result):
        text = render_figure5(result, FAST)
        assert "Geomean" in text and "paper: 3.1x" in text

    def test_unknown_row(self, result):
        with pytest.raises(KeyError):
            result.row("nope")


class TestFigure6:
    def test_sweep_shapes(self):
        result = run_figure6(paper_timeouts=(5, 60), scale=0.05, seed=1)
        assert len(result.points) == 2
        assert all(p.correct for p in result.points)
        # More budget never (meaningfully) hurts.
        assert result.monotone_improving
        text = render_figure6(result)
        assert "Figure 6" in text


class TestAblations:
    def test_vector_ablation(self):
        result = run_vector_ablation(FAST, SUBSET[:1])
        row = result.rows[0]
        assert row.correct
        assert row.vector_cycles < row.scalar_cycles  # 2x2 matmul vectorizes well
        assert result.geomean_vector > result.geomean_scalar
        assert "ablation" in render_vector_ablation(result).lower()

    def test_lvn_ablation(self):
        result = run_lvn_ablation(FAST)
        assert result.lines_with_lvn < result.lines_without_lvn
        assert result.reduction_factor > 1.0

    def test_cost_ablation(self):
        result = run_cost_ablation(FAST, make_matmul(2, 2, 2))
        assert result.no_shuffle_cycles > result.fusion_cycles
        assert result.slowdown > 1.0

    def test_ac_ablation(self):
        result = run_ac_ablation(make_matmul(2, 2, 2), seconds=2.0)
        assert result.nodes_with_ac > result.nodes_without_ac
        assert result.growth_factor > 1.0


class TestCli:
    def test_main_runs_figure5_subset(self, capsys):
        from repro.evaluation.__main__ import main

        assert main(["figure5", "--kernels", "matmul-2x2", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_main_rejects_unknown_filter(self):
        from repro.evaluation.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure5", "--kernels", "zzz"])
