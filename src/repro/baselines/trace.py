"""Register-level tracing: compile a reference kernel to unrolled
scalar IR by executing it on register-valued operands.

This is how we model what an optimizing compiler (``xt-xcc -O3``)
produces for a **fixed-size** scalar kernel: the loops unroll away
(bounds are compile-time), accumulators that live in source-level
locals are register-allocated, and every remaining array access
becomes a load/store.  Two fidelity knobs:

* ``cache_loads`` -- whether repeated reads of the same input element
  reuse one load.  The *naive fixed-size* baseline leaves this off
  (without C ``restrict``, the compiler must assume the output buffer
  may alias the inputs and cannot keep input elements in registers
  across output stores); the *Eigen-like* baseline turns it on
  (expression templates read each operand element into a local once).
* No algebraic CSE is performed either way -- that is precisely the
  advantage the paper attributes to Diospyros's symbolic evaluation +
  LVN even without vectorization (Section 5.6), so giving it to the
  baselines would model a compiler stronger than the one measured.

The traced kernel is the same Python source that lifting and concrete
testing run, so the three agree by construction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..backend import vir
from ..backend.vir import Program, RegAllocator
from ..frontend.lift import Shape, Spec
from ..kernels.base import Kernel

__all__ = ["TraceEmitter", "trace_kernel"]


class TraceEmitter:
    """Emits scalar IR while a reference kernel executes."""

    def __init__(self, program: Program, cache_loads: bool = False) -> None:
        self.program = program
        self.regs = RegAllocator()
        self.cache_loads = cache_loads
        self._const_cache: Dict[float, str] = {}
        self._load_cache: Dict[Tuple[str, int], str] = {}

    def const(self, value: float) -> str:
        reg = self._const_cache.get(value)
        if reg is None:
            reg = self.regs.scalar()
            self.program.emit(vir.SConst(reg, float(value)))
            self._const_cache[value] = reg
        return reg

    def load(self, array: str, offset: int) -> str:
        key = (array, offset)
        if self.cache_loads:
            cached = self._load_cache.get(key)
            if cached is not None:
                return cached
        reg = self.regs.scalar()
        self.program.emit(vir.SLoad(reg, array, offset))
        if self.cache_loads:
            self._load_cache[key] = reg
        return reg

    def binary(self, op: str, a: "RVal", b: "RVal") -> "RVal":
        reg = self.regs.scalar()
        self.program.emit(vir.SBin(op, reg, a.reg, b.reg))
        return RVal(self, reg)

    def unary(self, op: str, a: "RVal") -> "RVal":
        reg = self.regs.scalar()
        self.program.emit(vir.SUn(op, reg, a.reg))
        return RVal(self, reg)

    def value(self, v: Union["RVal", int, float]) -> "RVal":
        if isinstance(v, RVal):
            return v
        return RVal(self, self.const(float(v)))


class RVal:
    """A scalar value held in a register; arithmetic emits IR."""

    __slots__ = ("emitter", "reg")

    def __init__(self, emitter: TraceEmitter, reg: str) -> None:
        self.emitter = emitter
        self.reg = reg

    def _bin(self, op: str, other, reverse: bool = False):
        # Constant folding on literal operands -- the trivial strength
        # reduction any compiler performs (x+0, x*1, x*0, x/1).
        if isinstance(other, (int, float)):
            literal = float(other)
            if op == "+" and literal == 0.0:
                return self
            if op == "-" and literal == 0.0:
                return -self if reverse else self
            if op == "*":
                if literal == 1.0:
                    return self
                if literal == 0.0:
                    return 0.0
            if op == "/" and not reverse and literal == 1.0:
                return self
        other = self.emitter.value(other)
        if reverse:
            return self.emitter.binary(op, other, self)
        return self.emitter.binary(op, self, other)

    def __add__(self, other):
        return self._bin("+", other)

    def __radd__(self, other):
        return self._bin("+", other, reverse=True)

    def __sub__(self, other):
        return self._bin("-", other)

    def __rsub__(self, other):
        return self._bin("-", other, reverse=True)

    def __mul__(self, other):
        return self._bin("*", other)

    def __rmul__(self, other):
        return self._bin("*", other, reverse=True)

    def __truediv__(self, other):
        return self._bin("/", other)

    def __rtruediv__(self, other):
        return self._bin("/", other, reverse=True)

    def __neg__(self):
        return self.emitter.unary("neg", self)

    def __repro_sqrt__(self):
        return self.emitter.unary("sqrt", self)

    def __repro_sgn__(self):
        return self.emitter.unary("sgn", self)


class _TraceInputArray:
    """Input array wrapper: reads emit loads."""

    def __init__(self, emitter: TraceEmitter, name: str, shape) -> None:
        self.emitter = emitter
        self.name = name
        self.shape = shape if not isinstance(shape, int) else None
        self.length = shape if isinstance(shape, int) else shape[0] * shape[1]

    def __len__(self):
        return self.shape[0] if self.shape else self.length

    def flat(self, index: int) -> RVal:
        return RVal(self.emitter, self.emitter.load(self.name, index))

    def __getitem__(self, index):
        if isinstance(index, tuple):
            row, col = index
            return self.flat(row * self.shape[1] + col)
        if self.shape:
            return _TraceRow(self, index)
        return self.flat(index)

    def __iter__(self):
        return (self[i] for i in range(len(self)))


class _TraceRow:
    def __init__(self, array: _TraceInputArray, row: int) -> None:
        self.array = array
        self.row = row

    def __len__(self):
        return self.array.shape[1]

    def __getitem__(self, col: int) -> RVal:
        return self.array.flat(self.row * self.array.shape[1] + col)

    def __iter__(self):
        return (self[c] for c in range(len(self)))


class _TraceOutputArray:
    """Output array wrapper: values accumulate in registers (the
    compiler register-allocates source-level accumulators) and are
    stored once at :meth:`finish`."""

    def __init__(self, length: int, shape) -> None:
        self.length = length
        self.shape = shape if not isinstance(shape, int) else None
        self.values: List[Union[RVal, float]] = [0.0] * length

    def __len__(self):
        return self.shape[0] if self.shape else self.length

    def _pair_index(self, row: int, col: int) -> int:
        return row * self.shape[1] + col

    def __getitem__(self, index):
        if isinstance(index, tuple):
            return self.values[self._pair_index(*index)]
        if self.shape:
            return _TraceOutRow(self, index)
        return self.values[index]

    def __setitem__(self, index, value):
        if isinstance(index, tuple):
            self.values[self._pair_index(*index)] = value
        else:
            self.values[index] = value


class _TraceOutRow:
    def __init__(self, array: _TraceOutputArray, row: int) -> None:
        self.array = array
        self.row = row

    def __len__(self):
        return self.array.shape[1]

    def __getitem__(self, col: int):
        return self.array.values[self.array._pair_index(self.row, col)]

    def __setitem__(self, col: int, value):
        self.array.values[self.array._pair_index(self.row, col)] = value


def trace_kernel(
    kernel: Kernel, name_suffix: str, cache_loads: bool = False
) -> Program:
    """Compile ``kernel`` to unrolled straight-line scalar IR.

    The combined output buffer layout matches Diospyros's (all outputs
    concatenated into ``out``), so every implementation of a kernel is
    compared on identical ABIs.
    """
    spec = kernel.spec()
    program = Program(
        name=f"{kernel.name}-{name_suffix}",
        inputs={d.name: d.length for d in spec.inputs},
        outputs={"out": spec.n_outputs},
        vector_width=4,
    )
    emitter = TraceEmitter(program, cache_loads=cache_loads)
    inputs = [
        _TraceInputArray(emitter, d.name, d.shape) for d in spec.inputs
    ]
    outputs = [_TraceOutputArray(d.length, d.shape) for d in spec.outputs]
    kernel.reference(*inputs, *outputs)

    offset = 0
    for out in outputs:
        for value in out.values:
            if isinstance(value, RVal):
                program.emit(vir.SStore("out", offset, value.reg))
            elif float(value) != 0.0:
                reg = emitter.const(float(value))
                program.emit(vir.SStore("out", offset, reg))
            # Exact zeros need no store: output buffers start zeroed.
            offset += 1
    return program
