"""Vectorization rewrite rules (paper Sections 3.2-3.3).

Three rule families turn a lifted scalar spec into vector code:

1. **List splitting** -- a ``List`` is equivalent to a concatenation of
   machine-width ``Vec`` chunks, padding the tail with zeros
   (Section 3.2).  Implemented as a custom rule because the chunk count
   depends on the list length.

2. **Zero-aware binary/unary lane vectorization** -- ``(Vec (+ a b)
   (+ c d) ...)``  becomes ``(VecAdd (Vec a c ...) (Vec b d ...))``.
   Lanes are allowed to be the literal zero (or another literal), which
   is what lets kernels whose shape does not fill the vector width
   still vectorize (the paper's ``(Vec (+ a b) 0 (+ c d) 0)`` example).
   A single pattern cannot express "each lane is either the operator
   or zero" without enumerating every zero position, hence a custom
   searcher (Section 3.3).

3. **Vector identities** -- fused multiply–accumulate introduction
   ``(VecAdd a (VecMul b c)) <=> (VecMAC a b c)`` (Figure 4) and
   zero-vector simplifications.

For commutative operators the searchers emit a *second* candidate with
each lane's operands sorted by a data-locality key (array name, then
index), so the e-graph also contains the variant whose operand vectors
gather from a single input array each -- the layout the cost model
prefers.  This is our deterministic stand-in for exploring "many
possible shuffles" via AC-rewriting, which the paper disables at scale
for memory reasons (Section 3.3).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..dsl.ops import SCALAR_BINOPS, SCALAR_UNOPS
from ..egraph.egraph import EGraph, ENode
from ..egraph.rewrite import CustomRewrite, Match, Rewrite, SearchContext, rewrite

__all__ = [
    "list_split_rule",
    "binary_vectorize_rule",
    "unary_vectorize_rule",
    "vector_identity_rules",
    "class_is_zero",
    "operand_sort_key",
]

_COMMUTATIVE = {"+", "*"}

#: Identity to place in the second operand of a padded lane so that the
#: lane still computes zero: 0 op identity == 0.
_PAD_SECOND_OPERAND = {"+": 0.0, "-": 0.0, "*": 1.0, "/": 1.0}


def class_is_zero(egraph: EGraph, eclass_id: int) -> bool:
    """True when the class contains the literal 0."""
    return any(
        n.op == "Num" and n.value == 0 for n in egraph.nodes_of(eclass_id)
    )


def _class_literal(egraph: EGraph, eclass_id: int) -> Optional[float]:
    """The numeric literal in the class, if any."""
    for n in egraph.nodes_of(eclass_id):
        if n.op == "Num":
            return float(n.value)  # type: ignore[arg-type]
    return None


def operand_sort_key(egraph: EGraph, eclass_id: int) -> Tuple[int, str, float]:
    """Locality key used to canonically order commutative operands.

    ``Get`` operands sort first, grouped by array name then index, so
    that sorting each lane's operand pair tends to put reads of the
    *same* array in the *same* operand vector.
    """
    best: Optional[Tuple[int, str, float]] = None
    for node in egraph.nodes_of(eclass_id):
        key: Optional[Tuple[int, str, float]] = None
        if node.op == "Get":
            array = _symbol_name(egraph, node.children[0])
            index = _num_value(egraph, node.children[1])
            if array is not None and index is not None:
                key = (0, array, index)
        elif node.op == "Num":
            key = (1, "", float(node.value))  # type: ignore[arg-type]
        if key is not None and (best is None or key < best):
            best = key
    return best if best is not None else (2, "", float(egraph.find(eclass_id)))


def _symbol_name(egraph: EGraph, eclass_id: int) -> Optional[str]:
    for node in egraph.nodes_of(eclass_id):
        if node.op == "Symbol":
            return str(node.value)
    return None


def _num_value(egraph: EGraph, eclass_id: int) -> Optional[float]:
    lit = _class_literal(egraph, eclass_id)
    return lit


# ---------------------------------------------------------------------------
# 1. List splitting
# ---------------------------------------------------------------------------


def list_split_rule(width: int) -> Rewrite:
    """``(List e0 ... en)`` => nested ``Concat`` of width-sized ``Vec``
    chunks, the tail padded with literal zeros.

    A one-element chunk count yields a bare ``Vec``.  The rewrite is
    idempotent: re-running it adds nothing new, so saturation detects
    convergence.
    """

    def searcher(egraph: EGraph, ctx: SearchContext) -> List[Match]:
        matches: List[Match] = []
        candidates = egraph.classes_with_op(
            "List", since=ctx.since, counters=ctx.counters
        )
        for cid in candidates:
            for node in egraph.nodes_of(cid):
                if node.op != "List":
                    continue
                lanes = node.children

                def build(
                    eg: EGraph, _lanes: Tuple[int, ...] = lanes
                ) -> int:
                    return _build_chunks(eg, _lanes, width)

                # Width rides along as a string: a bare non-negative
                # int would be canonicalized as a class id.
                key = (cid, lanes, f"w{width}")
                matches.append(Match(cid, build, "list-split", dedup_key=key))
        return matches

    return CustomRewrite(
        f"list-split-w{width}", searcher, tags=("split", "vector")
    )


def _build_chunks(egraph: EGraph, lanes: Sequence[int], width: int) -> int:
    zero = egraph.add(ENode("Num", (), 0))
    chunks: List[int] = []
    for start in range(0, len(lanes), width):
        chunk = list(lanes[start : start + width])
        while len(chunk) < width:
            chunk.append(zero)
        chunks.append(egraph.add(ENode("Vec", tuple(chunk))))
    result = chunks[-1]
    for chunk_id in reversed(chunks[:-1]):
        result = egraph.add(ENode("Concat", (chunk_id, result)))
    return result


# ---------------------------------------------------------------------------
# 2. Lane-wise vectorization (custom searchers)
# ---------------------------------------------------------------------------

#: Per-lane classification for the binary rule: the operator's two
#: operand classes, or a padding constant pair.
_LaneBin = Tuple[int, int]


def _match_binary_lane(
    egraph: EGraph, lane: int, op: str
) -> Optional[List[_LaneBin]]:
    """All ways this lane can feed a lane of ``VecOp``.

    Returns a list of (a, b) operand-class candidate pairs (commutative
    operators contribute the swapped pair as well), or pads when the
    lane is a literal; ``None`` when the lane cannot participate.
    """
    candidates: List[_LaneBin] = []
    for node in egraph.nodes_of(lane):
        if node.op == op:
            a, b = node.children
            candidates.append((a, b))
            if op in _COMMUTATIVE and a != b:
                candidates.append((b, a))
    if candidates:
        return candidates
    literal = _class_literal(egraph, lane)
    if literal is not None:
        # A literal lane x can pass through as (x op identity).
        return [(-1, -1)]  # sentinel: resolved at build time
    return None


def binary_vectorize_rule(width: int) -> Rewrite:
    """Vectorize ``Vec`` nodes whose lanes apply one binary scalar
    operator (allowing literal/zero lanes)."""

    def searcher(egraph: EGraph, ctx: SearchContext) -> List[Match]:
        matches: List[Match] = []
        candidates = egraph.classes_with_op(
            "Vec", since=ctx.since, counters=ctx.counters
        )
        for root in candidates:
            for node in egraph.nodes_of(root):
                if node.op != "Vec" or len(node.children) != width:
                    continue
                for op, vec_op in SCALAR_BINOPS.items():
                    matches.extend(
                        _binary_matches_for(egraph, root, node, op, vec_op)
                    )
        return matches

    return CustomRewrite(
        f"vec-binop-w{width}", searcher, tags=("vectorize", "vector")
    )


def _binary_matches_for(
    egraph: EGraph, root: int, node: ENode, op: str, vec_op: str
) -> List[Match]:
    lanes = node.children
    per_lane: List[List[_LaneBin]] = []
    op_lanes = 0
    for lane in lanes:
        found = _match_binary_lane(egraph, lane, op)
        if found is None:
            return []
        if found[0] != (-1, -1):
            op_lanes += 1
        per_lane.append(found)
    if op_lanes == 0:
        return []

    def assemble(choice: List[_LaneBin]) -> Callable[[EGraph], int]:
        def build(eg: EGraph) -> int:
            first: List[int] = []
            second: List[int] = []
            for lane, (a, b) in zip(lanes, choice):
                if (a, b) == (-1, -1):
                    # Literal pass-through lane: x op identity == x.
                    first.append(lane)
                    pad = _PAD_SECOND_OPERAND[op]
                    second.append(eg.add(ENode("Num", (), pad)))
                else:
                    first.append(a)
                    second.append(b)
            va = eg.add(ENode("Vec", tuple(first)))
            vb = eg.add(ENode("Vec", tuple(second)))
            return eg.add(ENode(vec_op, (va, vb)))

        return build

    def dedup_key(choice: List[_LaneBin]) -> Tuple:
        # Lanes matter beyond the choice: literal pass-through lanes
        # ((-1, -1) sentinels) reuse the lane class itself at build
        # time.  Sentinels are negative, so canonicalization never
        # confuses them with class ids.
        return (root, vec_op) + tuple(lanes) + tuple(choice)

    # Candidate 1: first discovered operand order per lane.
    identity_choice = [options[0] for options in per_lane]
    matches = [
        Match(
            root,
            assemble(identity_choice),
            f"vec-{op}",
            dedup_key=dedup_key(identity_choice),
        )
    ]

    # Candidate 2 (commutative ops): per-lane operands sorted by the
    # locality key, aligning same-array reads into the same operand.
    if op in _COMMUTATIVE:
        sorted_choice: List[_LaneBin] = []
        for options in per_lane:
            best = options[0]
            if best != (-1, -1):
                a, b = best
                if operand_sort_key(egraph, b) < operand_sort_key(egraph, a):
                    best = (b, a)
            sorted_choice.append(best)
        if sorted_choice != identity_choice:
            matches.append(
                Match(
                    root,
                    assemble(sorted_choice),
                    f"vec-{op}-sorted",
                    dedup_key=dedup_key(sorted_choice),
                )
            )
    return matches


def unary_vectorize_rule(width: int) -> Rewrite:
    """Vectorize ``Vec`` nodes whose lanes apply one unary scalar
    operator (allowing zero lanes, which all of neg/sqrt/sgn fix)."""

    def searcher(egraph: EGraph, ctx: SearchContext) -> List[Match]:
        matches: List[Match] = []
        candidates = egraph.classes_with_op(
            "Vec", since=ctx.since, counters=ctx.counters
        )
        for root in candidates:
            for node in egraph.nodes_of(root):
                if node.op != "Vec" or len(node.children) != width:
                    continue
                for op, vec_op in SCALAR_UNOPS.items():
                    match = _unary_match_for(egraph, root, node, op, vec_op)
                    if match is not None:
                        matches.append(match)
        return matches

    return CustomRewrite(
        f"vec-unop-w{width}", searcher, tags=("vectorize", "vector")
    )


def _unary_match_for(
    egraph: EGraph, root: int, node: ENode, op: str, vec_op: str
) -> Optional[Match]:
    lanes = node.children
    args: List[Optional[int]] = []
    op_lanes = 0
    for lane in lanes:
        found = None
        for candidate in egraph.nodes_of(lane):
            if candidate.op == op:
                found = candidate.children[0]
                break
        if found is not None:
            op_lanes += 1
            args.append(found)
        elif class_is_zero(egraph, lane):
            args.append(None)  # resolved to literal 0 at build time
        else:
            return None
    if op_lanes == 0:
        return None

    def build(eg: EGraph) -> int:
        zero = eg.add(ENode("Num", (), 0))
        lane_ids = tuple(zero if a is None else a for a in args)
        inner = eg.add(ENode("Vec", lane_ids))
        return eg.add(ENode(vec_op, (inner,)))

    # -2 marks zero-pad lanes (negative => never mistaken for a class).
    key = (root, vec_op) + tuple(-2 if a is None else a for a in args)
    return Match(root, build, f"vec-{op}", dedup_key=key)


# ---------------------------------------------------------------------------
# 3. Vector identities
# ---------------------------------------------------------------------------


def _zero_vec_pattern(width: int) -> str:
    return "(Vec " + " ".join(["0"] * width) + ")"


def vector_identity_rules(width: int) -> List[Rewrite]:
    """Syntactic rules over vector operators: MAC fusion (Figure 4) and
    zero-vector simplification."""
    zvec = _zero_vec_pattern(width)
    rules = [
        rewrite("mac-fuse", "(VecAdd ?a (VecMul ?b ?c))", "(VecMAC ?a ?b ?c)"),
        rewrite("mac-fuse-l", "(VecAdd (VecMul ?b ?c) ?a)", "(VecMAC ?a ?b ?c)"),
        rewrite("mac-unfuse", "(VecMAC ?a ?b ?c)", "(VecAdd ?a (VecMul ?b ?c))"),
        rewrite("mac-zero-acc", f"(VecMAC {zvec} ?b ?c)", "(VecMul ?b ?c)"),
        rewrite("mac-zero-mul-r", f"(VecMAC ?a ?b {zvec})", "?a"),
        rewrite("mac-zero-mul-l", f"(VecMAC ?a {zvec} ?c)", "?a"),
        rewrite("vecadd-zero-r", f"(VecAdd ?a {zvec})", "?a"),
        rewrite("vecadd-zero-l", f"(VecAdd {zvec} ?a)", "?a"),
        rewrite("vecminus-zero", f"(VecMinus ?a {zvec})", "?a"),
        rewrite("vecmul-zero-r", f"(VecMul ?a {zvec})", zvec),
        rewrite("vecmul-zero-l", f"(VecMul {zvec} ?a)", zvec),
    ]
    for rule in rules:
        rule.tags = frozenset({"vector-identity", "vector"})
    return rules
