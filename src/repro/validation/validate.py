"""Translation validation (paper Section 3.4).

After extraction, Diospyros checks that the optimized vector-DSL
program is equivalent to the lifted specification for *all* inputs,
removing the rewrite rules and the saturation engine from the trusted
computing base.  Our validator:

1. **Flattens** the vectorized program back to one scalar expression
   per output lane (pure symbolic evaluation of the vector structure --
   ``VecMAC``/``VecAdd``/``Concat`` etc. are unfolded lane-wise).
   Padding lanes beyond the spec's output count are ignored, mirroring
   the zero-padding rules.
2. Proves each lane equal to the corresponding spec expression over
   the reals via rational-function canonicalization
   (:mod:`repro.validation.canon`) -- a decision procedure for this
   fragment, standing in for the paper's SMT query.
3. Falls back to **randomized differential testing** for lanes whose
   polynomial form explodes (deep QR-style kernels) or that contain
   uninterpreted calls with user-supplied concrete semantics, mirroring
   the paper's optional user-provided function semantics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..chaos.inject import chaos_point
from ..dsl.ast import Term, unique_size
from ..dsl.interp import evaluate_output

#: Lanes with more unique nodes than this skip the canonical decision
#: procedure (polynomial expansion would overflow anyway).
_CANON_SIZE_GATE = 200
from ..frontend.lift import Spec, random_inputs
from .canon import CanonLimits, CanonOverflow, equivalent

__all__ = ["flatten_to_scalars", "ValidationResult", "LaneResult", "validate"]


def flatten_to_scalars(term: Term) -> List[Term]:
    """Unfold a vector-DSL program into per-lane scalar expressions.

    This is symbolic evaluation of the *vector structure only*: vector
    operators distribute over lanes, ``Concat`` concatenates, ``List``
    flattens.  Scalar subterms pass through untouched.
    """
    op = term.op
    if op == "List":
        lanes: List[Term] = []
        for item in term.args:
            lanes.extend(flatten_to_scalars(item))
        return lanes
    if op == "Concat":
        return flatten_to_scalars(term.args[0]) + flatten_to_scalars(term.args[1])
    if op == "Vec":
        return list(term.args)
    if op in ("VecAdd", "VecMinus", "VecMul", "VecDiv"):
        scalar_op = {"VecAdd": "+", "VecMinus": "-", "VecMul": "*", "VecDiv": "/"}[op]
        left = flatten_to_scalars(term.args[0])
        right = flatten_to_scalars(term.args[1])
        if len(left) != len(right):
            raise ValueError(f"lane mismatch in {op}: {len(left)} vs {len(right)}")
        return [Term(scalar_op, (a, b)) for a, b in zip(left, right)]
    if op == "VecMAC":
        acc = flatten_to_scalars(term.args[0])
        a = flatten_to_scalars(term.args[1])
        b = flatten_to_scalars(term.args[2])
        if not len(acc) == len(a) == len(b):
            raise ValueError("lane mismatch in VecMAC")
        return [Term("+", (c, Term("*", (x, y)))) for c, x, y in zip(acc, a, b)]
    if op in ("VecNeg", "VecSqrt", "VecSgn"):
        scalar_op = {"VecNeg": "neg", "VecSqrt": "sqrt", "VecSgn": "sgn"}[op]
        return [Term(scalar_op, (a,)) for a in flatten_to_scalars(term.args[0])]
    # A scalar expression is a single lane.
    return [term]


@dataclass
class LaneResult:
    """Validation outcome for one output lane."""

    index: int
    ok: bool
    method: str  # "structural" | "canonical" | "random"
    detail: str = ""


@dataclass
class ValidationResult:
    """Outcome of validating one compilation."""

    ok: bool
    lanes: List[LaneResult] = field(default_factory=list)

    @property
    def methods_used(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for lane in self.lanes:
            counts[lane.method] = counts.get(lane.method, 0) + 1
        return counts

    def failing_lanes(self) -> List[LaneResult]:
        return [l for l in self.lanes if not l.ok]


def validate(
    spec: Spec,
    optimized: Term,
    limits: Optional[CanonLimits] = None,
    random_trials: int = 8,
    tolerance: float = 1e-6,
    rng: Optional[random.Random] = None,
    funcs: Optional[Mapping[str, Callable[..., float]]] = None,
    seed: Optional[int] = None,
) -> ValidationResult:
    """Validate ``optimized`` against ``spec``.

    Each output lane is checked structurally, then canonically
    (decision procedure over the reals), then -- only if the canonical
    form overflows or involves uninterpreted calls -- by randomized
    differential evaluation with the given number of trials.

    The randomized lanes draw from ``rng`` if given, else from a fresh
    ``random.Random(seed)``; ``seed`` defaults to the historical 1234
    so existing callers keep their exact sampling.  Callers that retry
    (``compile_spec``'s validation rung) shift the seed between
    attempts so reruns are reproducible but varied.
    """
    from ..observability import current_session, span

    limits = limits or CanonLimits()
    rng = rng or random.Random(1234 if seed is None else seed)
    funcs = dict(funcs or {})

    with span("validation.validate", kernel=spec.name) as vspan:
        spec_lanes = flatten_to_scalars(spec.term)
        opt_lanes = flatten_to_scalars(optimized)
        n = spec.n_outputs
        if len(opt_lanes) < n:
            if vspan is not None:
                vspan.set(ok=False, reason="lane_count_mismatch")
            return ValidationResult(
                ok=False,
                lanes=[
                    LaneResult(0, False, "structural",
                               f"optimized program has {len(opt_lanes)} lanes, "
                               f"spec needs {n}")
                ],
            )

        # Pre-generate shared random environments so the fallback lanes
        # are all checked against the same samples.
        envs = [random_inputs(spec, rng) for _ in range(random_trials)]

        lanes: List[LaneResult] = []
        all_ok = True
        for i in range(n):
            lane = _validate_lane(
                i, spec_lanes[i], opt_lanes[i], limits, envs, tolerance, funcs
            )
            lanes.append(lane)
            all_ok = all_ok and lane.ok
        result = ValidationResult(ok=all_ok, lanes=lanes)
        if vspan is not None:
            vspan.set(ok=all_ok, lanes=n, methods=result.methods_used)
        session = current_session()
        if session is not None and session.metrics is not None:
            counter = session.metrics.counter(
                "repro_validation_lanes_total",
                "Validated output lanes, by proof method and verdict",
                labels=("method", "verdict"),
            )
            for lane in lanes:
                counter.labels(
                    method=lane.method, verdict="ok" if lane.ok else "fail"
                ).inc()
        return result


def _validate_lane(
    index: int,
    spec_lane: Term,
    opt_lane: Term,
    limits: CanonLimits,
    envs: Sequence[Mapping[str, Sequence[float]]],
    tolerance: float,
    funcs: Mapping[str, Callable[..., float]],
) -> LaneResult:
    chaos_point("validate.lane")
    if spec_lane == opt_lane:
        return LaneResult(index, True, "structural")
    has_calls = _contains_call(spec_lane) or _contains_call(opt_lane)
    # Deep DAGs (QR-style kernels) explode under polynomial expansion;
    # skip straight to randomized testing rather than burn the canon
    # work budget lane after lane.
    too_deep = (
        unique_size(spec_lane) > _CANON_SIZE_GATE
        or unique_size(opt_lane) > _CANON_SIZE_GATE
    )
    if not has_calls and not too_deep:
        try:
            if equivalent(spec_lane, opt_lane, limits):
                return LaneResult(index, True, "canonical")
            # A positive answer is always sound.  A NEGATIVE answer is
            # only decisive for pure rational expressions: sqrt/sgn
            # subterms are keyed by non-reduced rational forms, so two
            # equal-but-differently-written arguments yield distinct
            # atoms (incompleteness, not unsoundness).  Fall back to
            # randomized testing in that case.
            if not (_contains_irrational(spec_lane) or _contains_irrational(opt_lane)):
                return LaneResult(
                    index, False, "canonical", "canonical forms differ"
                )
        except CanonOverflow:
            pass  # fall through to randomized testing
        except ZeroDivisionError as exc:
            return LaneResult(index, False, "canonical", str(exc))
    return _random_lane(index, spec_lane, opt_lane, envs, tolerance, funcs)


def _random_lane(
    index: int,
    spec_lane: Term,
    opt_lane: Term,
    envs: Sequence[Mapping[str, Sequence[float]]],
    tolerance: float,
    funcs: Mapping[str, Callable[..., float]],
) -> LaneResult:
    if _contains_call(spec_lane) and not funcs:
        # Mirrors the paper: uninterpreted calls with no user-provided
        # semantics can cause spurious failures, so we refuse to claim
        # success and report the situation instead.
        return LaneResult(
            index,
            False,
            "random",
            "lane uses uninterpreted functions and no concrete semantics "
            "were provided (see paper Section 3.4)",
        )
    for env in envs:
        try:
            expected = evaluate_output(spec_lane, env, funcs)[0]
            actual = evaluate_output(opt_lane, env, funcs)[0]
        except (ValueError, ZeroDivisionError):
            # A randomly-invalid input (negative sqrt, zero divisor):
            # skip the sample rather than mis-reporting.
            continue
        scale = max(1.0, abs(expected))
        if abs(expected - actual) > tolerance * scale:
            return LaneResult(
                index,
                False,
                "random",
                f"mismatch: expected {expected!r}, got {actual!r}",
            )
    return LaneResult(index, True, "random")


def _contains_call(term: Term) -> bool:
    return _contains_op(term, ("Call",))


def _contains_irrational(term: Term) -> bool:
    """True when the lane contains operators outside the rational
    fragment (sqrt/sgn), for which the canonicalizer is sound but
    incomplete."""
    return _contains_op(term, ("sqrt", "sgn"))


def _contains_op(term: Term, ops) -> bool:
    seen = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if t in seen:
            continue
        seen.add(t)
        if t.op in ops:
            return True
        stack.extend(t.args)
    return False
