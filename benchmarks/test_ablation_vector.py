"""Section 5.6 vectorization ablation (experiment A-vec in DESIGN.md).

Compile a representative kernel subset with vector rewrite rules
disabled (symbolic evaluation + scalar rules + LVN only) and compare.
Paper: scalar-only still beats the best baseline 2.2x on average (vs
3.1x with vector rules), and on a few kernels scalar-only *wins*.
"""

import pytest

from conftest import compile_cached, run_checked
from repro.evaluation.common import geomean, measure
from repro.kernels import make_conv2d, make_matmul, make_qprod, make_qr

SUBSET = [
    make_matmul(2, 2, 2),
    make_matmul(3, 3, 3),
    make_matmul(4, 4, 4),
    make_conv2d(3, 3, 2, 2),
    make_conv2d(4, 4, 3, 3),
    make_qprod(),
    make_qr(3),
]

_results = {}


def _cycles(kernel, vector: bool):
    key = (kernel.name, vector)
    if key not in _results:
        compiled = compile_cached(kernel, enable_vector_rules=vector)
        cycles, ok = measure(compiled.program, kernel)
        assert ok, f"{kernel.name} vector={vector} wrong output"
        _results[key] = cycles
    return _results[key]


@pytest.mark.parametrize("kernel", SUBSET, ids=lambda k: k.name)
@pytest.mark.parametrize("vector", [True, False], ids=["vector", "scalar-only"])
def test_ablation_cell(benchmark, kernel, vector):
    cycles = _cycles(kernel, vector)
    benchmark.pedantic(lambda: cycles, rounds=1, iterations=1)
    benchmark.extra_info["cycles"] = cycles


class TestAblationShapes:
    def test_vector_rules_help_on_average(self, benchmark):
        def check():
            vector_gm = geomean(
                [_cycles(k, False) / _cycles(k, True) for k in SUBSET]
            )
            print(f"\nVector rules improve scalar-only by {vector_gm:.2f}x geomean")
            assert vector_gm > 1.0

        run_checked(benchmark, check)

    def test_scalar_only_wins_somewhere(self, benchmark):
        """Paper: 4/21 kernels run faster without vector rewriting
        (deep division/sqrt kernels); our QR shows the same sign."""

        def check():
            wins = [k.name for k in SUBSET if _cycles(k, False) < _cycles(k, True)]
            print(f"\nScalar-only wins on: {wins}")
            assert "qrdecomp-3x3" in wins

        run_checked(benchmark, check)

    def test_scalar_only_never_wrong(self, benchmark):
        def check():
            for kernel in SUBSET:
                _cycles(kernel, False)  # assertion inside

        run_checked(benchmark, check)
