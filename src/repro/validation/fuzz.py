"""Differential-fuzzing correctness oracle (active miscompile hunting).

Translation validation (Section 3.4) proves one compilation's output
equivalent to its spec; this module turns the same trusted artifacts
into an *active* detector: generate randomized small kernels straight
from the frontend's specification language, push each through the full
pipeline (saturation, extraction, lowering, LVN), and cross-check

* the **scalar interpreter on the lifted spec** (the semantics ground
  truth),
* the scalar interpreter on the **extracted/optimized term** (isolates
  rewrite/extraction bugs), and
* the **machine simulator on the lowered vector IR** (isolates
  lowering/LVN/codegen bugs)

on shared random inputs.  Any disagreement is a
:class:`FuzzDivergence` carrying the full reproducer (seed, kernel
s-expression, lane, values) -- the CI smoke job fails on the first
one.

Compilation can run in-process or through a
:class:`repro.service.CompileService` worker pool (``--isolate``), in
which case a fuzzed kernel that OOMs or hangs the compiler is contained
and reported instead of killing the campaign.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..compiler import CompileOptions, CompileResult, compile_spec
from ..dsl.ast import Term, get, lst, num
from ..dsl.interp import evaluate_output
from ..frontend.lift import ArrayDecl, Spec, random_inputs
from ..machine import simulate
from ..seeding import stable_rng

__all__ = [
    "FuzzDivergence",
    "FuzzReport",
    "random_spec",
    "check_result",
    "run_fuzz",
    "render_fuzz_report",
    "SMOKE_COUNT",
    "smoke_options",
]

#: CI smoke-mode campaign size (acceptance: >= 200 kernels, fixed seed).
SMOKE_COUNT = 200


def smoke_options(seed: int = 0) -> CompileOptions:
    """Tiny per-kernel budgets so a 200-kernel campaign fits in the CI
    smoke job's ~60 s envelope.  Validation is off: the oracle itself
    is the check, and it also covers the backend stages validation
    never sees."""
    return CompileOptions(
        time_limit=0.5,
        node_limit=4_000,
        iter_limit=8,
        validate=False,
        track_memory=False,
        seed=seed,
    )


# ----------------------------------------------------------------------
# Kernel generation
# ----------------------------------------------------------------------

_BINOPS = ("+", "-", "*")


def _random_expr(
    rng: random.Random,
    inputs: Tuple[ArrayDecl, ...],
    depth: int,
    pool: List[Term],
) -> Term:
    """One random scalar expression over ``Get``s of the inputs.

    ``pool`` collects generated subexpressions and is occasionally
    sampled, so specs exhibit the DAG sharing that real lifted kernels
    (QR-style reuse) have -- sharing is what LVN and the memoizing
    interpreter exist for, so the fuzzer must produce it.
    """
    if pool and rng.random() < 0.15:
        return rng.choice(pool)
    if depth <= 0 or rng.random() < 0.25:
        if rng.random() < 0.2:
            # Halves keep float arithmetic exact-ish across engines.
            leaf = num(rng.randint(-4, 4) / 2.0)
        else:
            decl = rng.choice(inputs)
            leaf = get(decl.name, rng.randrange(decl.length))
        pool.append(leaf)
        return leaf
    roll = rng.random()
    if roll < 0.12:
        expr = Term("neg", (_random_expr(rng, inputs, depth - 1, pool),))
    elif roll < 0.2:
        # Division only by constants bounded away from zero: the oracle
        # must never diverge because of a sampled zero denominator.
        denom = rng.choice((-2.0, -1.5, 1.5, 2.0, 4.0))
        expr = Term(
            "/", (_random_expr(rng, inputs, depth - 1, pool), num(denom))
        )
    else:
        op = rng.choice(_BINOPS)
        expr = Term(
            op,
            (
                _random_expr(rng, inputs, depth - 1, pool),
                _random_expr(rng, inputs, depth - 1, pool),
            ),
        )
    pool.append(expr)
    return expr


def random_spec(
    rng: random.Random,
    index: int = 0,
    max_inputs: int = 2,
    max_input_len: int = 6,
    max_outputs: int = 6,
    max_depth: int = 3,
) -> Spec:
    """Generate one random small kernel specification.

    The shape envelope (few small arrays, shallow expressions) is tuned
    so each kernel compiles in well under a second while still
    exercising list splitting, zero padding, vectorization, shuffles,
    and MAC fusion.
    """
    inputs = tuple(
        ArrayDecl(f"in{i}", rng.randint(1, max_input_len))
        for i in range(rng.randint(1, max_inputs))
    )
    n_outputs = rng.randint(1, max_outputs)
    pool: List[Term] = []
    elements = [
        _random_expr(rng, inputs, rng.randint(1, max_depth), pool)
        for _ in range(n_outputs)
    ]
    return Spec(
        name=f"fuzz-{index}",
        inputs=inputs,
        outputs=(ArrayDecl("out", n_outputs),),
        term=lst(*elements),
    )


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------


@dataclass
class FuzzDivergence:
    """One interpreter/simulator disagreement, with its reproducer."""

    kernel: str
    stage: str  # "extraction" (interp vs interp) | "backend" (vs simulator)
    trial: int
    lane: int
    expected: float
    actual: float
    spec_sexpr: str
    optimized_sexpr: str

    def __str__(self) -> str:
        return (
            f"{self.kernel} [{self.stage}] trial {self.trial} lane "
            f"{self.lane}: expected {self.expected!r}, got {self.actual!r}\n"
            f"  spec:      {self.spec_sexpr}\n"
            f"  optimized: {self.optimized_sexpr}"
        )


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    requested: int
    seed: int
    generated: int = 0
    compiled: int = 0
    degraded: int = 0
    checked_trials: int = 0
    #: (kernel, error) pairs for kernels whose *compilation* failed --
    #: robustness data, not correctness verdicts.
    compile_failures: List[Tuple[str, str]] = field(default_factory=list)
    divergences: List[FuzzDivergence] = field(default_factory=list)
    elapsed: float = 0.0
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return not self.divergences


def check_result(
    spec: Spec,
    result: CompileResult,
    rng: random.Random,
    trials: int = 3,
    tolerance: float = 1e-5,
) -> List[FuzzDivergence]:
    """Cross-check one compilation on ``trials`` random inputs."""
    divergences: List[FuzzDivergence] = []
    n = spec.n_outputs
    for trial in range(trials):
        env = random_inputs(spec, rng)
        expected = evaluate_output(spec.term, env)[:n]
        optimized = evaluate_output(result.optimized, env)[:n]
        simulated = simulate(result.program, env).output("out")[:n]
        for stage, actual in (("extraction", optimized), ("backend", simulated)):
            for lane, (want, got) in enumerate(zip(expected, actual)):
                scale = max(1.0, abs(want))
                if abs(want - got) > tolerance * scale + 1e-9:
                    divergences.append(
                        FuzzDivergence(
                            kernel=spec.name,
                            stage=stage,
                            trial=trial,
                            lane=lane,
                            expected=want,
                            actual=got,
                            spec_sexpr=spec.term.to_sexpr(),
                            optimized_sexpr=result.optimized.to_sexpr(),
                        )
                    )
    return divergences


def run_fuzz(
    count: int = SMOKE_COUNT,
    seed: int = 0,
    options: Optional[CompileOptions] = None,
    trials: int = 3,
    tolerance: float = 1e-5,
    service=None,
    time_budget: Optional[float] = None,
    max_inputs: int = 2,
    max_input_len: int = 6,
    max_outputs: int = 6,
    max_depth: int = 3,
) -> FuzzReport:
    """Run a fuzzing campaign of ``count`` random kernels.

    Fully deterministic for a given ``(count, seed, options)`` triple:
    generation, input sampling, and compilation seeds all derive from
    ``seed`` via :func:`repro.seeding.stable_seed` (SHA-256 based), so a
    divergence replays byte-identically across machines regardless of
    ``PYTHONHASHSEED``.  When ``service`` (a :class:`repro.service.CompileService`)
    is given, compilations run in sandboxed workers and a crashing
    fuzzed kernel is recorded in ``compile_failures`` instead of
    killing the campaign.  ``time_budget`` truncates the campaign
    (reported, never silent).
    """
    options = options or smoke_options(seed)
    # Domain-separated stable streams: generation and per-kernel input
    # sampling derive from ``seed`` without ever touching ``hash()``.
    gen_rng = stable_rng(seed, "fuzz-gen")
    report = FuzzReport(requested=count, seed=seed)
    started = time.perf_counter()
    for index in range(count):
        if time_budget is not None and time.perf_counter() - started > time_budget:
            report.truncated = True
            break
        spec = random_spec(
            gen_rng,
            index,
            max_inputs=max_inputs,
            max_input_len=max_input_len,
            max_outputs=max_outputs,
            max_depth=max_depth,
        )
        report.generated += 1
        try:
            if service is not None:
                result = service.compile_spec(spec, options)
            else:
                result = compile_spec(spec, options)
        except Exception as exc:  # noqa: BLE001 - campaign must continue
            report.compile_failures.append(
                (spec.name, f"{type(exc).__name__}: {exc}")
            )
            continue
        report.compiled += 1
        if result.degraded:
            report.degraded += 1
        check_rng = stable_rng(seed, "fuzz-check", index)
        report.divergences.extend(
            check_result(spec, result, check_rng, trials, tolerance)
        )
        report.checked_trials += trials
    report.elapsed = time.perf_counter() - started
    return report


def render_fuzz_report(report: FuzzReport, verbose: bool = False) -> str:
    lines = [
        f"fuzz campaign: seed {report.seed}, {report.generated}/"
        f"{report.requested} kernels generated"
        + (" (TRUNCATED by time budget)" if report.truncated else ""),
        f"  compiled: {report.compiled} "
        f"({report.degraded} degraded, {len(report.compile_failures)} "
        f"compile failures)",
        f"  differential trials: {report.checked_trials} "
        f"({report.elapsed:.1f}s elapsed)",
        f"  divergences: {len(report.divergences)}",
    ]
    for div in report.divergences:
        lines.append(str(div))
    if verbose and report.compile_failures:
        lines.append("compile failures:")
        lines.extend(f"  {name}: {err}" for name, err in report.compile_failures)
    lines.append("VERDICT: " + ("OK" if report.ok else "DIVERGENCE DETECTED"))
    return "\n".join(lines)
