"""Unit tests for the machine model and cycle simulator
(repro.machine)."""

import pytest

from repro.backend import vir
from repro.backend.vir import Program
from repro.machine import MachineConfig, fusion_g3, no_shuffle_machine, simulate
from repro.machine.config import static_cycles
from repro.machine.simulator import SimulationError


def program(instrs, inputs=None, outputs=None, width=4):
    p = Program(
        "t",
        inputs=inputs or {"a": 8},
        outputs=outputs or {"out": 4},
        vector_width=width,
    )
    p.extend(instrs)
    return p


A = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]


class TestScalarInstructions:
    def test_const_store(self):
        p = program([vir.SConst("s0", 2.5), vir.SStore("out", 0, "s0")])
        r = simulate(p, {"a": A})
        assert r.output("out")[0] == 2.5

    def test_load_binary_store(self):
        p = program([
            vir.SLoad("s0", "a", 1),
            vir.SLoad("s1", "a", 3),
            vir.SBin("*", "s2", "s0", "s1"),
            vir.SStore("out", 0, "s2"),
        ])
        assert simulate(p, {"a": A}).output("out")[0] == 8.0

    def test_unary_ops(self):
        p = program([
            vir.SConst("s0", -9.0),
            vir.SUn("neg", "s1", "s0"),
            vir.SUn("sqrt", "s2", "s1"),
            vir.SUn("sgn", "s3", "s0"),
            vir.SStore("out", 0, "s2"),
            vir.SStore("out", 1, "s3"),
        ])
        out = simulate(p, {"a": A}).output("out")
        assert out[0] == 3.0 and out[1] == -1.0

    def test_indexed_load_store(self):
        p = program([
            vir.SConst("s0", 2.0),
            vir.SLoadIdx("s1", "a", "s0", offset=1),  # a[3]
            vir.SStoreIdx("out", "s0", "s1", offset=1),  # out[3]
        ])
        assert simulate(p, {"a": A}).output("out")[3] == 4.0

    def test_min_max(self):
        p = program([
            vir.SConst("s0", 2.0),
            vir.SConst("s1", 5.0),
            vir.SBin("min", "s2", "s0", "s1"),
            vir.SBin("max", "s3", "s0", "s1"),
            vir.SStore("out", 0, "s2"),
            vir.SStore("out", 1, "s3"),
        ])
        out = simulate(p, {"a": A}).output("out")
        assert out[:2] == [2.0, 5.0]

    def test_undefined_register_read(self):
        p = program([vir.SStore("out", 0, "snope")])
        with pytest.raises(SimulationError):
            simulate(p, {"a": A})


class TestVectorInstructions:
    def test_vload_vstore(self):
        p = program([vir.VLoad("v0", "a", 2), vir.VStore("out", 0, "v0", 4)])
        assert simulate(p, {"a": A}).output("out") == [3.0, 4.0, 5.0, 6.0]

    def test_partial_store(self):
        p = program([vir.VLoad("v0", "a", 0), vir.VStore("out", 0, "v0", 2)])
        assert simulate(p, {"a": A}).output("out") == [1.0, 2.0, 0.0, 0.0]

    def test_vshuffle(self):
        p = program([
            vir.VLoad("v0", "a", 0),
            vir.VShuffle("v1", "v0", (3, 3, 0, 1)),
            vir.VStore("out", 0, "v1", 4),
        ])
        assert simulate(p, {"a": A}).output("out") == [4.0, 4.0, 1.0, 2.0]

    def test_vselect(self):
        p = program([
            vir.VLoad("v0", "a", 0),
            vir.VLoad("v1", "a", 4),
            vir.VSelect("v2", "v0", "v1", (1, 2, 0, 5)),
            vir.VStore("out", 0, "v2", 4),
        ])
        assert simulate(p, {"a": A}).output("out") == [2.0, 3.0, 1.0, 6.0]

    def test_vbin_and_vmac(self):
        p = program([
            vir.VLoad("v0", "a", 0),
            vir.VLoad("v1", "a", 4),
            vir.VBin("+", "v2", "v0", "v1"),
            vir.VMac("v3", "v2", "v0", "v1"),
            vir.VStore("out", 0, "v3", 4),
        ])
        # (a0+a4) + a0*a4 lanes
        assert simulate(p, {"a": A}).output("out") == [11.0, 20.0, 31.0, 44.0]

    def test_vinsert_and_vsplat(self):
        p = program([
            vir.SConst("s0", 9.0),
            vir.VSplat("v0", "s0"),
            vir.SConst("s1", 1.0),
            vir.VInsert("v1", "v0", 2, "s1"),
            vir.VStore("out", 0, "v1", 4),
        ])
        assert simulate(p, {"a": A}).output("out") == [9.0, 9.0, 1.0, 9.0]

    def test_vconst(self):
        p = program([vir.VConst("v0", (1.0, 2.0, 3.0, 4.0)), vir.VStore("out", 0, "v0", 4)])
        assert simulate(p, {"a": A}).output("out") == [1.0, 2.0, 3.0, 4.0]

    def test_vload_out_of_range(self):
        p = program([vir.VLoad("v0", "a", 6), vir.VStore("out", 0, "v0", 4)])
        with pytest.raises(SimulationError):
            simulate(p, {"a": A})

    def test_shuffle_index_out_of_range(self):
        p = program([vir.VLoad("v0", "a", 0), vir.VShuffle("v1", "v0", (0, 1, 2, 9))])
        with pytest.raises(SimulationError):
            simulate(p, {"a": A})

    def test_input_padding(self):
        """Inputs shorter than the declared (padded) length are
        zero-filled, the DSP aligned-buffer convention."""
        p = program([vir.VLoad("v0", "a", 4), vir.VStore("out", 0, "v0", 4)])
        r = simulate(p, {"a": [1.0, 2.0, 3.0, 4.0, 5.0]})
        assert r.output("out") == [5.0, 0.0, 0.0, 0.0]


class TestControlFlow:
    def _sum_loop(self, n):
        """sum 0..n-1 into out[0] via a real loop."""
        return program([
            vir.SConst("acc", 0.0),
            vir.SConst("i", 0.0),
            vir.SConst("n", float(n)),
            vir.SConst("one", 1.0),
            vir.Label("top"),
            vir.Branch("ge", "i", "n", "end"),
            vir.SBin("+", "acc", "acc", "i"),
            vir.SBin("+", "i", "i", "one"),
            vir.Jump("top"),
            vir.Label("end"),
            vir.SStore("out", 0, "acc"),
        ])

    def test_loop_computes_sum(self):
        assert simulate(self._sum_loop(10), {"a": A}).output("out")[0] == 45.0

    def test_branch_taken_penalty_counted(self):
        machine = fusion_g3()
        r5 = simulate(self._sum_loop(5), {"a": A}, machine)
        r6 = simulate(self._sum_loop(6), {"a": A}, machine)
        per_iter = r6.cycles - r5.cycles
        # Each extra iteration: branch(1) + add + add + jump(1) = 4,
        # no taken penalty on the backedge path, plus loop exit moves.
        assert per_iter >= 4

    def test_undefined_label(self):
        p = program([vir.Jump("nowhere")])
        with pytest.raises(ValueError):
            simulate(p, {"a": A})

    def test_duplicate_label(self):
        p = program([vir.Label("x"), vir.Label("x")])
        with pytest.raises(ValueError):
            simulate(p, {"a": A})

    def test_runaway_loop_guard(self):
        p = program([vir.Label("top"), vir.Jump("top")])
        machine = MachineConfig(max_instructions=1000)
        with pytest.raises(SimulationError, match="instruction limit"):
            simulate(p, {"a": A}, machine)


class TestCycleAccounting:
    def test_cycles_sum_of_costs(self):
        machine = fusion_g3()
        p = program([
            vir.SConst("s0", 1.0),
            vir.SUn("sqrt", "s1", "s0"),
            vir.SStore("out", 0, "s1"),
        ])
        r = simulate(p, {"a": A}, machine)
        expected = (
            machine.cost("sconst") + machine.cost("sun.sqrt") + machine.cost("sstore")
        )
        assert r.cycles == expected

    def test_breakdown_sums_to_total(self):
        p = program([
            vir.VLoad("v0", "a", 0),
            vir.VBin("*", "v1", "v0", "v0"),
            vir.VStore("out", 0, "v1", 4),
        ])
        r = simulate(p, {"a": A})
        assert sum(r.cycle_breakdown.values()) == r.cycles

    def test_static_cycles_matches_simulation(self):
        p = program([
            vir.VLoad("v0", "a", 0),
            vir.VUn("sqrt", "v1", "v0"),
            vir.VStore("out", 0, "v1", 4),
        ])
        r = simulate(p, {"a": A})
        assert static_cycles(p) == r.cycles

    def test_static_cycles_rejects_loops(self):
        p = program([vir.Label("x")])
        with pytest.raises(ValueError):
            static_cycles(p)

    def test_no_shuffle_machine_pricier_movement(self):
        fast = fusion_g3()
        slow = no_shuffle_machine()
        assert slow.cost("vshuffle") > fast.cost("vshuffle")
        assert slow.cost("vselect") > fast.cost("vselect")
        assert slow.cost("vmac") == fast.cost("vmac")

    def test_unknown_opcode_cost(self):
        with pytest.raises(KeyError):
            fusion_g3().cost("warp-drive")

    def test_deterministic(self):
        p = self_prog = program([
            vir.VLoad("v0", "a", 0),
            vir.VBin("+", "v1", "v0", "v0"),
            vir.VStore("out", 0, "v1", 4),
        ])
        r1 = simulate(p, {"a": A})
        r2 = simulate(p, {"a": A})
        assert r1.cycles == r2.cycles
        assert r1.outputs == r2.outputs


class TestProgramChecks:
    def test_input_longer_than_declared_rejected(self):
        p = program([vir.SLoad("s0", "a", 0), vir.SStore("out", 0, "s0")])
        with pytest.raises(SimulationError):
            simulate(p, {"a": [0.0] * 99})

    def test_array_both_input_output_rejected(self):
        p = Program("t", inputs={"out": 4}, outputs={"out": 4})
        with pytest.raises(SimulationError):
            simulate(p, {"out": [0.0] * 4})

    def test_opcode_histogram(self):
        p = program([
            vir.VLoad("v0", "a", 0),
            vir.VLoad("v1", "a", 4),
            vir.VStore("out", 0, "v0", 4),
        ])
        assert p.opcode_histogram() == {"vload": 2, "vstore": 1}
