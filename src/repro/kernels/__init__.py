"""Benchmark kernels: the 21 Table-1 instances plus factories for
arbitrary sizes."""

from __future__ import annotations

from typing import Dict, List

from .base import Kernel
from .conv2d import make_conv2d
from .extra import (
    extra_kernels,
    make_batch_dot,
    make_correlate_valid,
    make_inverse2x2,
    make_matvec,
    make_normalize,
    make_quat_to_rot,
)
from .matmul import make_matmul
from .qprod import make_qprod
from .qr import make_qr

__all__ = [
    "Kernel",
    "extra_kernels",
    "make_batch_dot",
    "make_correlate_valid",
    "make_inverse2x2",
    "make_matvec",
    "make_normalize",
    "make_quat_to_rot",
    "make_conv2d",
    "make_matmul",
    "make_qprod",
    "make_qr",
    "table1_kernels",
    "get_kernel",
]

#: The exact Table 1 benchmark list: (category, constructor args).
_TABLE1 = [
    ("2DConv", (3, 3, 2, 2)),
    ("2DConv", (3, 3, 3, 3)),
    ("2DConv", (3, 5, 3, 3)),
    ("2DConv", (4, 4, 3, 3)),
    ("2DConv", (8, 8, 3, 3)),
    ("2DConv", (10, 10, 2, 2)),
    ("2DConv", (10, 10, 3, 3)),
    ("2DConv", (10, 10, 4, 4)),
    ("2DConv", (16, 16, 2, 2)),
    ("2DConv", (16, 16, 3, 3)),
    ("2DConv", (16, 16, 4, 4)),
    ("MatMul", (2, 2, 2)),
    ("MatMul", (2, 3, 3)),
    ("MatMul", (3, 3, 3)),
    ("MatMul", (4, 4, 4)),
    ("MatMul", (8, 8, 8)),
    ("MatMul", (10, 10, 10)),
    ("MatMul", (16, 16, 16)),
    ("QProd", ()),
    ("QRDecomp", (3,)),
    ("QRDecomp", (4,)),
]

_FACTORIES = {
    "2DConv": make_conv2d,
    "MatMul": make_matmul,
    "QProd": make_qprod,
    "QRDecomp": make_qr,
}


def table1_kernels() -> List[Kernel]:
    """Fresh instances of all 21 evaluation kernels, in Table 1 order."""
    return [_FACTORIES[category](*args) for category, args in _TABLE1]


def _parse_parametric(name: str) -> Kernel:
    """Build a 2DConv/MatMul kernel from a parametric registry name.

    The phased-saturation benchmarks use sizes beyond the Table 1 list
    (e.g. ``2dconv-8x8-4x4``); any ``2dconv-RxC-FRxFC`` /
    ``matmul-MxK-KxN`` name resolves through the same factories the
    table uses, so the conformance and bench harnesses can address
    them uniformly."""
    parts = name.split("-")
    dims = [tuple(int(d) for d in p.split("x")) for p in parts[1:]]
    if parts[0] == "2dconv" and len(dims) == 2 and all(len(d) == 2 for d in dims):
        return make_conv2d(dims[0][0], dims[0][1], dims[1][0], dims[1][1])
    if parts[0] == "matmul" and len(dims) == 2 and all(len(d) == 2 for d in dims):
        (a_rows, a_cols), (b_rows, b_cols) = dims
        if a_cols != b_rows:
            raise ValueError(f"matmul shape mismatch in {name!r}")
        return make_matmul(a_rows, a_cols, b_cols)
    raise ValueError(f"not a parametric kernel name: {name!r}")


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by registry name: the Table 1 list first, then
    the parametric ``2dconv-*``/``matmul-*`` naming scheme."""
    for kernel in table1_kernels():
        if kernel.name == name:
            return kernel
    try:
        return _parse_parametric(name)
    except ValueError:
        pass
    raise KeyError(f"unknown kernel {name!r}")
