"""Graceful shutdown / drain of the compile service.

The satellite bugfix under test: a SIGTERM (or an explicit
``shutdown()``) must kill and *reap* in-flight workers -- no zombies,
no orphaned stderr scratch files -- refuse new work with a typed
:class:`~repro.errors.ShutdownError`, never count drain casualties as
circuit-breaker strikes, and support resuming afterwards.
"""

import glob
import os
import signal
import tempfile
import threading
import time

import pytest

from repro.compiler import CompileOptions
from repro.errors import CompileError, ShutdownError
from repro.frontend.lift import lift
from repro.service import (
    CompileService,
    FaultInjection,
    RetryPolicy,
    WorkerLimits,
)

FAST = CompileOptions(
    time_limit=5.0, node_limit=20_000, iter_limit=8, validate=False
)
QUICK = RetryPolicy(max_attempts=2, backoff_base=0.01, backoff_jitter=0.0)


def _spec(name="shutdown-k"):
    def body(a, b, out):
        for i in range(2):
            out[i] = a[i] * b[i] + a[i]

    return lift(name, body, [("a", 2), ("b", 2)], [("out", 2)])


def _worker_scratch_files():
    return glob.glob(os.path.join(tempfile.gettempdir(), "repro-worker-*"))


def test_draining_service_refuses_new_work():
    service = CompileService(cache=None, isolate=False, policy=QUICK)
    service.shutdown()
    assert service.draining
    with pytest.raises(ShutdownError) as info:
        service.compile_spec(_spec(), FAST)
    assert isinstance(info.value, CompileError)  # typed, taxonomy error
    service.resume()
    assert not service.draining
    assert service.compile_spec(_spec(), FAST).program


def test_shutdown_kills_and_reaps_inflight_workers():
    """Drain mid-compile: the hanging worker is SIGKILLed and reaped by
    its supervising thread, the caller gets ShutdownError (not a raw
    crash), no strike is recorded, and no scratch files survive."""
    spec = _spec("shutdown-hang")
    service = CompileService(
        cache=None,
        isolate=True,
        policy=QUICK,
        limits=WorkerLimits(kill_timeout=120.0),
    )
    before = set(_worker_scratch_files())
    errors = []

    def compile_one():
        try:
            service.compile_spec(spec, FAST, inject=FaultInjection("hang"))
        except BaseException as exc:  # noqa: BLE001 - inspected below
            errors.append(exc)

    thread = threading.Thread(target=compile_one)
    thread.start()
    deadline = time.monotonic() + 10.0
    while not service._live and time.monotonic() < deadline:
        time.sleep(0.01)
    assert service._live, "worker never spawned"
    proc = service._live[0]

    service.shutdown()
    thread.join(timeout=15.0)
    assert not thread.is_alive(), "drain did not unblock the supervisor"

    assert len(errors) == 1 and isinstance(errors[0], ShutdownError)
    # The worker was reaped, not zombified: the supervising thread
    # joined and *closed* the process object (close() raises while the
    # child is unreaped), and the live registry is empty.
    assert service._live == []
    with pytest.raises(ValueError, match="closed"):
        proc.is_alive()
    # A drain is not the kernel's fault.
    assert service.strikes(spec.name) == 0
    assert not any(
        e["event"] == "strike" and e["kernel"] == spec.name
        for e in service.breaker_log
    )
    # No orphaned stderr scratch files.
    assert set(_worker_scratch_files()) <= before


def test_drain_casualties_are_not_retried():
    """With retries available, a drained compile still fails immediately
    with ShutdownError instead of burning shrunk-budget attempts."""
    spec = _spec("shutdown-once")
    service = CompileService(
        cache=None,
        isolate=True,
        policy=RetryPolicy(max_attempts=5, backoff_base=0.01, backoff_jitter=0.0),
        limits=WorkerLimits(kill_timeout=120.0),
    )
    result = {}

    def compile_one():
        try:
            service.compile_spec(spec, FAST, inject=FaultInjection("hang"))
        except BaseException as exc:  # noqa: BLE001
            result["error"] = exc

    thread = threading.Thread(target=compile_one)
    thread.start()
    deadline = time.monotonic() + 10.0
    while not service._live and time.monotonic() < deadline:
        time.sleep(0.01)
    service.shutdown()
    thread.join(timeout=15.0)
    assert isinstance(result.get("error"), ShutdownError)
    assert service.stats.retries == 0


def test_signal_handler_drains_and_chains(monkeypatch):
    """``install_signal_handlers`` wires SIGTERM to ``shutdown`` and
    chains a callable previous handler; uninstall restores it."""
    service = CompileService(cache=None, isolate=False, policy=QUICK)
    chained = []
    previous = signal.signal(signal.SIGTERM, lambda s, f: chained.append(s))
    try:
        installed = service.install_signal_handlers((signal.SIGTERM,))
        assert signal.SIGTERM in installed
        os.kill(os.getpid(), signal.SIGTERM)
        # CPython delivers the signal on the main thread at the next
        # bytecode boundary; the sleep yields one.
        time.sleep(0.05)
        assert service.draining
        assert chained == [signal.SIGTERM], "previous handler must chain"
        service.uninstall_signal_handlers()
        handler = signal.getsignal(signal.SIGTERM)
        os.kill(os.getpid(), signal.SIGTERM)
        time.sleep(0.05)
        assert chained == [signal.SIGTERM, signal.SIGTERM]
    finally:
        signal.signal(signal.SIGTERM, previous)
    service.resume()


def test_install_signal_handlers_is_noop_off_main_thread():
    service = CompileService(cache=None, isolate=False, policy=QUICK)
    out = {}

    def worker():
        out["result"] = service.install_signal_handlers()

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert out["result"] == {}


def test_compile_many_drains_cleanly():
    """Shutdown during a batch: every unfinished item fails with
    ShutdownError, nothing hangs, and the pool winds down."""
    specs = [_spec(f"shutdown-batch-{i}") for i in range(4)]
    service = CompileService(
        cache=None,
        isolate=True,
        policy=QUICK,
        max_workers=2,
        limits=WorkerLimits(kill_timeout=120.0),
        inject_for={s.name: FaultInjection("hang") for s in specs},
    )
    done = {}

    def run_batch():
        done["items"] = service.compile_many(specs, FAST)

    thread = threading.Thread(target=run_batch)
    thread.start()
    deadline = time.monotonic() + 10.0
    while not service._live and time.monotonic() < deadline:
        time.sleep(0.01)
    service.shutdown()
    thread.join(timeout=30.0)
    assert not thread.is_alive(), "batch did not drain"
    items = done["items"]
    assert len(items) == 4
    assert all(not item.ok for item in items)
    assert all(isinstance(item.error, ShutdownError) for item in items)
    assert service._live == []
