"""Lowering the extracted vector-DSL program to the vector IR
(paper Section 4).

The interesting work is translating ``Vec`` terms: each lane may name
an arbitrary memory location, a literal, or a computed scalar, and the
backend must realize that data movement with the machine's actual
instructions.  The plan, mirroring Section 5.1:

* lanes forming a constant-offset run from one array -> one ``vload``;
* lanes gathered from one array -> aligned covering ``vload`` windows
  combined by one ``vshuffle`` (single window) or ``vselect`` chains
  (multiple windows -- "to implement arbitrary shuffles with more than
  two registers, Diospyros uses nested select instructions");
* lanes from several arrays -> per-array gathers merged lane-wise with
  further selects;
* literal lanes -> a ``vconst`` register merged in;
* computed-scalar lanes -> scalar code plus ``vinsert``.

Lowering memoizes on DSL terms, so the hash-consed sharing of the
extracted program carries over to the IR; the LVN pass
(:mod:`repro.backend.lvn`) then removes any remaining redundancy
across distinct-but-equal instruction sequences.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dsl.ast import Term
from ..frontend.lift import Spec
from . import vir
from .vir import Program, RegAllocator

__all__ = ["LoweringError", "lower_term", "lower_spec_program", "OUT"]

#: Name of the combined output buffer every lowered kernel writes.
OUT = "out"


class LoweringError(RuntimeError):
    """Raised when a term cannot be lowered (malformed program or an
    uninterpreted call with no target intrinsic)."""


_VBIN = {"VecAdd": "+", "VecMinus": "-", "VecMul": "*", "VecDiv": "/"}
_VUN = {"VecNeg": "neg", "VecSqrt": "sqrt", "VecSgn": "sgn"}
_SBIN = {"+", "-", "*", "/"}
_SUN = {"neg", "sqrt", "sgn"}


def lower_term(
    term: Term,
    inputs: Dict[str, int],
    n_outputs: int,
    width: int = 4,
    name: str = "kernel",
    share_subterms: bool = True,
) -> Program:
    """Lower an extracted program to a straight-line IR kernel.

    ``inputs`` maps input array names to their flat lengths; the kernel
    writes its ``n_outputs`` results to the combined buffer ``out``
    (padding lanes beyond ``n_outputs`` are not stored).

    ``share_subterms=False`` disables the hash-consed lowering memo,
    re-materializing every occurrence of every subterm -- the naive
    lowering the paper's Section 4 describes ("over 100,000 lines of
    C++"), kept for the LVN ablation.
    """
    # Input buffers are padded up to a vector-width multiple, the
    # standard DSP convention (aligned, padded buffers); this lets the
    # backend use whole-register loads on short arrays (e.g. a 3-vector
    # translation).  The simulator zero-fills the padding.
    padded = {
        array: max(length, ((length + width - 1) // width) * width)
        for array, length in inputs.items()
    }
    program = Program(
        name=name,
        inputs=padded,
        outputs={OUT: n_outputs},
        vector_width=width,
    )
    lowerer = _Lowerer(program, width, share_subterms)
    lowerer.lower_root(term, n_outputs)
    return program


def lower_spec_program(
    spec: Spec, term: Term, width: int = 4, share_subterms: bool = True
) -> Program:
    """Lower ``term`` using the array declarations of ``spec``."""
    from ..observability import span

    inputs = {d.name: d.length for d in spec.inputs}
    with span("backend.lower", kernel=spec.name, width=width) as s:
        program = lower_term(
            term, inputs, spec.n_outputs, width, name=spec.name,
            share_subterms=share_subterms,
        )
        if s is not None:
            s.set(instructions=len(program))
    return program


class _Lowerer:
    def __init__(
        self, program: Program, width: int, share_subterms: bool = True
    ) -> None:
        self.program = program
        self.width = width
        self.share = share_subterms
        self.regs = RegAllocator()
        self._scalar_memo: Dict[Term, str] = {}
        self._vector_memo: Dict[Term, str] = {}

    # ------------------------------------------------------------------
    # Roots
    # ------------------------------------------------------------------

    def lower_root(self, term: Term, n_outputs: int) -> None:
        if term.op == "List":
            # Scalar path: the e-graph never vectorized (or vector
            # rules were disabled); emit scalar code per element.
            if len(term.args) != n_outputs:
                raise LoweringError(
                    f"List has {len(term.args)} elements, expected {n_outputs}"
                )
            for index, element in enumerate(term.args):
                reg = self.lower_scalar(element)
                self.program.emit(vir.SStore(OUT, index, reg))
            return
        chunks = _flatten_concat(term)
        if len(chunks) * self.width < n_outputs:
            raise LoweringError(
                f"vectorized program covers {len(chunks) * self.width} lanes, "
                f"spec needs {n_outputs}"
            )
        for k, chunk in enumerate(chunks):
            offset = k * self.width
            count = min(self.width, n_outputs - offset)
            if count <= 0:
                break  # pure-padding tail chunk
            reg = self.lower_vector(chunk)
            self.program.emit(vir.VStore(OUT, offset, reg, count))

    # ------------------------------------------------------------------
    # Vector expressions
    # ------------------------------------------------------------------

    def lower_vector(self, term: Term) -> str:
        memo = self._vector_memo.get(term) if self.share else None
        if memo is not None:
            return memo
        op = term.op
        if op == "Vec":
            reg = self._lower_vec(term)
        elif op in _VBIN:
            a = self.lower_vector(term.args[0])
            b = self.lower_vector(term.args[1])
            reg = self.regs.vector()
            self.program.emit(vir.VBin(_VBIN[op], reg, a, b))
        elif op == "VecMAC":
            acc = self.lower_vector(term.args[0])
            a = self.lower_vector(term.args[1])
            b = self.lower_vector(term.args[2])
            reg = self.regs.vector()
            self.program.emit(vir.VMac(reg, acc, a, b))
        elif op in _VUN:
            a = self.lower_vector(term.args[0])
            reg = self.regs.vector()
            self.program.emit(vir.VUn(_VUN[op], reg, a))
        else:
            raise LoweringError(f"cannot lower {op!r} as a vector expression")
        self._vector_memo[term] = reg
        return reg

    def _lower_vec(self, term: Term) -> str:
        width = self.width
        lanes = term.args
        if len(lanes) != width:
            raise LoweringError(
                f"Vec has {len(lanes)} lanes; backend expects machine width {width}"
            )

        literals: Dict[int, float] = {}
        gathers: Dict[str, List[Tuple[int, int]]] = {}
        scalars: Dict[int, Term] = {}
        for pos, lane in enumerate(lanes):
            if lane.is_num:
                literals[pos] = float(lane.value)  # type: ignore[arg-type]
            elif (
                lane.op == "Get"
                and lane.args[0].op == "Symbol"
                and lane.args[1].op == "Num"
            ):
                array = str(lane.args[0].value)
                index = int(lane.args[1].value)  # type: ignore[arg-type]
                gathers.setdefault(array, []).append((pos, index))
            else:
                scalars[pos] = lane

        parts: List[Tuple[str, Set[int]]] = []
        for array, pairs in gathers.items():
            parts.append(self._gather_from_array(array, pairs))
        if literals:
            values = tuple(literals.get(pos, 0.0) for pos in range(width))
            reg = self.regs.vector()
            self.program.emit(vir.VConst(reg, values))
            parts.append((reg, set(literals)))

        if not parts:
            # Every lane is a computed scalar: start from zeros.
            reg = self.regs.vector()
            self.program.emit(vir.VConst(reg, (0.0,) * width))
            current, covered = reg, set()
        else:
            current, covered = parts[0]
            for reg, positions in parts[1:]:
                merged = self.regs.vector()
                indices = tuple(
                    width + pos if pos in positions else pos for pos in range(width)
                )
                self.program.emit(vir.VSelect(merged, current, reg, indices))
                current = merged
                covered = covered | positions

        for pos, lane in scalars.items():
            sreg = self.lower_scalar(lane)
            inserted = self.regs.vector()
            self.program.emit(vir.VInsert(inserted, current, pos, sreg))
            current = inserted
        return current

    def _gather_from_array(
        self, array: str, pairs: List[Tuple[int, int]]
    ) -> Tuple[str, Set[int]]:
        """Materialize a register holding ``array[index]`` in lane
        ``pos`` for each (pos, index) pair; other lanes are don't-care.
        Returns (register, covered lane positions)."""
        width = self.width
        length = self._array_length(array)
        positions = {pos for pos, _ in pairs}

        # Constant-offset run: array[base + pos] for every pair -- one
        # contiguous vector load covers it (don't-care lanes included).
        diffs = {index - pos for pos, index in pairs}
        if len(diffs) == 1 and length >= width:
            base = diffs.pop()
            if 0 <= base and base + width <= length:
                reg = self.regs.vector()
                self.program.emit(vir.VLoad(reg, array, base))
                return reg, positions

        if length < width:
            # Array too short for any vector load: scalar loads plus
            # inserts (short inputs like a 3-vector translation).
            reg = self.regs.vector()
            self.program.emit(vir.VConst(reg, (0.0,) * width))
            current = reg
            for pos, index in pairs:
                sreg = self.regs.scalar()
                self.program.emit(vir.SLoad(sreg, array, index))
                inserted = self.regs.vector()
                self.program.emit(vir.VInsert(inserted, current, pos, sreg))
                current = inserted
            return current, positions

        # Aligned covering windows.
        bases = sorted({min((index // width) * width, length - width) for _, index in pairs})
        loads: Dict[int, str] = {}
        for base in bases:
            reg = self.regs.vector()
            self.program.emit(vir.VLoad(reg, array, base))
            loads[base] = reg

        def window_of(index: int) -> int:
            for base in bases:
                if base <= index < base + width:
                    return base
            raise LoweringError(f"no window covers {array}[{index}]")

        lane_window = {pos: window_of(index) for pos, index in pairs}
        lane_index = dict(pairs)

        if len(bases) == 1:
            base = bases[0]
            indices = tuple(
                lane_index[pos] - base if pos in positions else 0
                for pos in range(width)
            )
            reg = self.regs.vector()
            self.program.emit(vir.VShuffle(reg, loads[base], indices))
            return reg, positions

        # First select merges the two most-used windows lane-ordered;
        # subsequent selects fold in one window each (nested selects).
        first, second = bases[0], bases[1]
        indices = []
        satisfied: Set[int] = set()
        for pos in range(width):
            if pos in positions and lane_window[pos] == first:
                indices.append(lane_index[pos] - first)
                satisfied.add(pos)
            elif pos in positions and lane_window[pos] == second:
                indices.append(width + lane_index[pos] - second)
                satisfied.add(pos)
            else:
                indices.append(0)
        current = self.regs.vector()
        self.program.emit(
            vir.VSelect(current, loads[first], loads[second], tuple(indices))
        )
        for base in bases[2:]:
            indices = []
            for pos in range(width):
                if pos in positions and lane_window[pos] == base:
                    indices.append(width + lane_index[pos] - base)
                    satisfied.add(pos)
                else:
                    indices.append(pos)
            merged = self.regs.vector()
            self.program.emit(
                vir.VSelect(merged, current, loads[base], tuple(indices))
            )
            current = merged
        return current, positions

    def _array_length(self, array: str) -> int:
        try:
            return self.program.inputs[array]
        except KeyError as exc:
            raise LoweringError(f"unknown input array {array!r}") from exc

    # ------------------------------------------------------------------
    # Scalar expressions
    # ------------------------------------------------------------------

    def lower_scalar(self, term: Term) -> str:
        memo = self._scalar_memo.get(term) if self.share else None
        if memo is not None:
            return memo
        op = term.op
        reg = self.regs.scalar()
        if op == "Num":
            self.program.emit(vir.SConst(reg, float(term.value)))  # type: ignore[arg-type]
        elif op == "Get":
            if term.args[0].op != "Symbol" or term.args[1].op != "Num":
                raise LoweringError(f"non-canonical Get: {term}")
            array = str(term.args[0].value)
            self._array_length(array)  # existence check
            self.program.emit(
                vir.SLoad(reg, array, int(term.args[1].value))  # type: ignore[arg-type]
            )
        elif op in _SBIN:
            a = self.lower_scalar(term.args[0])
            b = self.lower_scalar(term.args[1])
            self.program.emit(vir.SBin(op, reg, a, b))
        elif op in _SUN:
            a = self.lower_scalar(term.args[0])
            self.program.emit(vir.SUn(op, reg, a))
        elif op == "Call":
            raise LoweringError(
                f"user function {term.value!r} has no target intrinsic; register "
                "one via the backend's instruction table (paper Section 6)"
            )
        else:
            raise LoweringError(f"cannot lower {op!r} as a scalar expression")
        self._scalar_memo[term] = reg
        return reg


def _flatten_concat(term: Term) -> List[Term]:
    if term.op == "Concat":
        return _flatten_concat(term.args[0]) + _flatten_concat(term.args[1])
    return [term]
