"""Span tracing for the compilation pipeline.

A :class:`Tracer` produces nested **spans** -- named intervals with
wall-clock and CPU duration, free-form attributes, and point-in-time
events -- via a context-manager/decorator API:

.. code-block:: python

    tracer = Tracer()
    with tracer.span("saturation", kernel="matmul-2x2-2x2") as s:
        ...
        s.event("node_limit", nodes=40_000)

Spans nest per *thread* (each thread has its own ancestry stack), and
span ids embed the producing process id, so spans recorded inside a
forked sandbox worker (``repro.service``) can be shipped back over the
result pipe as plain dicts and **re-parented** into the supervisor's
trace with :meth:`Tracer.adopt` -- the worker's root spans become
children of the supervisor's attempt span, and the Chrome exporter
keeps them on their own ``pid`` track.

Two export formats:

* :func:`to_json` / :func:`parse_json` -- the repro schema
  (:data:`TRACE_SCHEMA`), a versioned round-trippable list of span
  dicts;
* :func:`to_chrome` -- the Chrome trace-event format (load the file in
  ``chrome://tracing`` or https://ui.perfetto.dev): complete (``X``)
  events for spans, instant (``i``) events for span events.

The tracer is thread-safe; when tracing is disabled the pipeline never
constructs one (see :mod:`repro.observability.config`), so the
disabled-path overhead is a single context-variable read per
instrumentation site.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "TRACE_SCHEMA",
    "Span",
    "Tracer",
    "to_json",
    "parse_json",
    "to_chrome",
    "validate_spans",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
]

#: Version tag embedded in every span export; parsers refuse unknown
#: schemas instead of mis-reading them.
TRACE_SCHEMA = "repro_trace/v1"


@dataclass
class Span:
    """One named interval in a trace."""

    name: str
    span_id: str
    parent_id: Optional[str]
    #: Wall-clock start, seconds since the epoch.
    start: float
    #: Wall-clock duration in seconds (0 until the span closes).
    duration: float = 0.0
    #: CPU time consumed by the owning thread inside the span.
    cpu: float = 0.0
    pid: int = 0
    tid: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)
    #: Point events: ``{"name": ..., "ts": epoch_seconds, "attributes": {...}}``.
    events: List[Dict[str, Any]] = field(default_factory=list)
    ok: bool = True

    # -- recording -----------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes: Any) -> None:
        self.events.append(
            {"name": name, "ts": time.time(), "attributes": dict(attributes)}
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "cpu": self.cpu,
            "pid": self.pid,
            "tid": self.tid,
            "attributes": dict(self.attributes),
            "events": list(self.events),
            "ok": self.ok,
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Span":
        return Span(
            name=payload["name"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start=payload["start"],
            duration=payload.get("duration", 0.0),
            cpu=payload.get("cpu", 0.0),
            pid=payload.get("pid", 0),
            tid=payload.get("tid", 0),
            attributes=dict(payload.get("attributes", {})),
            events=list(payload.get("events", [])),
            ok=payload.get("ok", True),
        )


class _SpanHandle:
    """Context manager opening/closing one span on the tracer."""

    __slots__ = ("_tracer", "_span", "_perf0", "_cpu0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._perf0 = time.perf_counter()
        self._cpu0 = time.thread_time()
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        span.duration = time.perf_counter() - self._perf0
        span.cpu = time.thread_time() - self._cpu0
        if exc is not None:
            span.ok = False
            span.attributes.setdefault(
                "error", f"{type(exc).__name__}: {exc}"
            )
        self._tracer._pop(span)
        return False


class Tracer:
    """Thread-safe span recorder with per-thread ancestry stacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: List[Span] = []
        self._counter = itertools.count(1)
        self._pid = os.getpid()

    # -- span lifecycle ------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        """Open a child of the current thread's active span."""
        parent = self.current_span()
        span = Span(
            name=name,
            span_id=f"{self._pid:x}.{next(self._counter)}",
            parent_id=parent.span_id if parent is not None else None,
            start=time.time(),
            pid=self._pid,
            tid=threading.get_ident() & 0xFFFFFFFF,
            attributes=dict(attributes),
        )
        return _SpanHandle(self, span)

    def traced(self, name: Optional[str] = None):
        """Decorator form: trace every call of the wrapped function."""

        def decorate(fn):
            import functools

            label = name or fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(label):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def current_span(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def event(self, name: str, **attributes: Any) -> None:
        """Attach an event to the current span (dropped when no span is
        open -- events always need an owning interval)."""
        span = self.current_span()
        if span is not None:
            span.event(name, **attributes)

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - misuse guard
            stack.remove(span)
        with self._lock:
            self._spans.append(span)

    # -- collection ----------------------------------------------------

    def export(self) -> List[Dict[str, Any]]:
        """All *closed* spans as picklable dicts (pipe-safe)."""
        with self._lock:
            return [s.to_dict() for s in self._spans]

    def adopt(
        self, spans: List[Dict[str, Any]], parent_id: Optional[str] = None
    ) -> int:
        """Merge foreign span dicts (e.g. from a forked worker) into
        this trace, re-parenting their roots under ``parent_id``.

        A foreign *root* is a span whose ``parent_id`` is ``None`` or
        refers to no span in the adopted batch (its parent lived in a
        process whose trace never made it back).  Returns the number of
        adopted spans.
        """
        batch = [Span.from_dict(p) for p in spans]
        ids = {s.span_id for s in batch}
        for span in batch:
            if span.parent_id is None or span.parent_id not in ids:
                span.parent_id = parent_id
        with self._lock:
            self._spans.extend(batch)
        return len(batch)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# ----------------------------------------------------------------------
# Exporters / parsers
# ----------------------------------------------------------------------


def to_json(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Versioned repro-schema export."""
    return {"schema": TRACE_SCHEMA, "spans": list(spans)}


def parse_json(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Parse a repro-schema export, refusing unknown schemas."""
    schema = payload.get("schema")
    if schema != TRACE_SCHEMA:
        raise ValueError(
            f"unsupported trace schema {schema!r} (expected {TRACE_SCHEMA!r})"
        )
    spans = payload.get("spans")
    if not isinstance(spans, list):
        raise ValueError("trace export has no span list")
    validate_spans(spans)
    return spans


_REQUIRED_SPAN_KEYS = ("name", "span_id", "start", "duration")


def validate_spans(spans: List[Dict[str, Any]]) -> None:
    """Structural validation of a span list (raises ``ValueError``)."""
    ids = set()
    for i, span in enumerate(spans):
        if not isinstance(span, dict):
            raise ValueError(f"span {i} is not an object")
        for key in _REQUIRED_SPAN_KEYS:
            if key not in span:
                raise ValueError(f"span {i} is missing {key!r}")
        ids.add(span["span_id"])
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in ids:
            raise ValueError(
                f"span {span['span_id']} has dangling parent {parent!r}"
            )


def to_chrome(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Chrome trace-event format (``chrome://tracing`` / Perfetto)."""
    events: List[Dict[str, Any]] = []
    for span in spans:
        args = {str(k): v for k, v in span.get("attributes", {}).items()}
        if not span.get("ok", True):
            args.setdefault("ok", False)
        events.append(
            {
                "name": span["name"],
                "ph": "X",
                "ts": span["start"] * 1e6,
                "dur": max(span.get("duration", 0.0), 0.0) * 1e6,
                "pid": span.get("pid", 0),
                "tid": span.get("tid", 0),
                "cat": "repro",
                "args": args,
            }
        )
        for event in span.get("events", []):
            events.append(
                {
                    "name": event["name"],
                    "ph": "i",
                    "ts": event.get("ts", span["start"]) * 1e6,
                    "pid": span.get("pid", 0),
                    "tid": span.get("tid", 0),
                    "s": "t",
                    "cat": "repro",
                    "args": {
                        str(k): v
                        for k, v in event.get("attributes", {}).items()
                    },
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA},
    }


def validate_chrome_trace(payload: Dict[str, Any]) -> int:
    """Validate a Chrome trace-event document; returns the event count.

    Checks the keys ``chrome://tracing`` actually requires: an event
    list where every entry has a name, a phase, and a numeric
    timestamp, and every complete (``X``) event a numeric duration.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace has no traceEvents")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        if not event.get("name"):
            raise ValueError(f"traceEvents[{i}] has no name")
        if event.get("ph") not in ("X", "i", "B", "E", "M"):
            raise ValueError(
                f"traceEvents[{i}] has unsupported phase {event.get('ph')!r}"
            )
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"traceEvents[{i}] has a non-numeric ts")
        if event["ph"] == "X" and not isinstance(
            event.get("dur"), (int, float)
        ):
            raise ValueError(f"traceEvents[{i}] (complete) has no dur")
    return len(events)


def validate_chrome_trace_file(path: str) -> int:
    """CI helper: load + validate a Chrome trace file."""
    with open(path) as handle:
        return validate_chrome_trace(json.load(handle))
