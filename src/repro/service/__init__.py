"""Compilation service layer: process isolation, durable artifacts.

The paper's pipeline survives partial failure *inside* one compilation
(extraction works on partially saturated e-graphs, PR 1's degradation
ladder catches stage crashes).  This package extends that stance to the
process level, which is what a long-running evaluation sweep -- or a
compile server -- actually needs:

* :mod:`repro.service.cache` -- a crash-safe, content-keyed on-disk
  artifact cache: completed :class:`~repro.compiler.CompileResult`\\ s
  are persisted via temp-file + atomic rename with checksums, so a
  ``kill -9`` mid-write can never corrupt an entry and reruns are
  warm-start.
* :mod:`repro.service.worker` -- the sandboxed subprocess body: applies
  ``resource`` rlimits (address space, CPU) before compiling, so an
  OOM or a runaway e-graph in one kernel dies alone.
* :mod:`repro.service.supervisor` -- :class:`CompileService`: a
  supervisor + worker pool with hard kill-timeouts, jittered
  exponential-backoff retries at shrinking budgets (reusing the
  :func:`repro.errors.is_resource_failure` taxonomy), and a per-kernel
  circuit breaker.

* :mod:`repro.service.checkpoint` -- persistent saturation checkpoints:
  the runner's end-of-iteration snapshot serialized to a content-keyed
  scratch file, so a retry after a worker crash *resumes* saturation
  from the last completed iteration instead of starting over.

The evaluation sweeps (``python -m repro.evaluation ... --isolate
--cache-dir DIR``), the ``python -m repro serve`` CLI verb, the chaos
campaigns (``python -m repro chaos``), and the fuzzing oracle
(:mod:`repro.validation.fuzz`) all run on top of this layer.
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    FsckIssue,
    FsckReport,
    cache_key,
    code_fingerprint,
)
from .checkpoint import (
    CheckpointStore,
    FileCheckpointer,
    SaturationState,
    saturation_key,
)
from .supervisor import (
    BatchItem,
    CompileService,
    RetryPolicy,
    ServiceStats,
)
from .worker import FaultInjection, WorkerLimits

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "FsckIssue",
    "FsckReport",
    "cache_key",
    "code_fingerprint",
    "CheckpointStore",
    "FileCheckpointer",
    "SaturationState",
    "saturation_key",
    "BatchItem",
    "CompileService",
    "RetryPolicy",
    "ServiceStats",
    "FaultInjection",
    "WorkerLimits",
]
