"""Baseline kernel implementations for the evaluation (Figure 5):
Naive, Naive fixed-size, Nature-like vendor library, Eigen-like
portable library, and the expert hand-tuned comparison kernel."""

from typing import Callable, Dict, Optional

from ..backend.vir import Program
from ..kernels.base import Kernel
from .eigen import eigen_kernel, eigen_qr
from .expert import expert_kernel, expert_matmul_2x3_3x3
from .naive import naive_fixed, naive_parametric
from .nature import nature_conv2d, nature_kernel, nature_matmul
from .trace import TraceEmitter, trace_kernel

__all__ = [
    "BASELINES",
    "baseline_program",
    "eigen_kernel",
    "eigen_qr",
    "expert_kernel",
    "expert_matmul_2x3_3x3",
    "naive_fixed",
    "naive_parametric",
    "nature_conv2d",
    "nature_kernel",
    "nature_matmul",
    "TraceEmitter",
    "trace_kernel",
]

#: Baseline name -> builder.  Builders return ``None`` when the
#: baseline does not provide the kernel (missing Figure 5 bars).
BASELINES: Dict[str, Callable[[Kernel], Optional[Program]]] = {
    "naive": naive_parametric,
    "naive-fixed": naive_fixed,
    "nature": nature_kernel,
    "eigen": eigen_kernel,
    "expert": expert_kernel,
}


def baseline_program(name: str, kernel: Kernel) -> Optional[Program]:
    """Build baseline ``name`` for ``kernel`` (``None`` if unavailable)."""
    try:
        builder = BASELINES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown baseline {name!r}; available: {sorted(BASELINES)}"
        ) from exc
    return builder(kernel)
