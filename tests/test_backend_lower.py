"""Unit tests for lowering (repro.backend.lower): every gather
strategy class, the scalar path, and differential correctness."""

import pytest

from repro.backend import vir
from repro.backend.lower import LoweringError, lower_term
from repro.dsl import evaluate_output, parse
from repro.machine import simulate

A = [float(x) for x in range(1, 13)]  # a = 1..12
B = [float(x) for x in range(101, 113)]


def lower_and_run(text, inputs=None, n_outputs=None, width=4, env=None):
    term = parse(text)
    inputs = inputs or {"a": 12, "b": 12}
    env = env or {"a": A, "b": B}
    if n_outputs is None:
        n_outputs = len(evaluate_output(term, env))
    program = lower_term(term, inputs, n_outputs, width)
    result = simulate(program, env)
    expected = evaluate_output(term, env)[:n_outputs]
    assert result.output("out") == pytest.approx(expected)
    return program, result


class TestVecGatherStrategies:
    def test_contiguous_load(self):
        program, _ = lower_and_run("(Vec (Get a 4) (Get a 5) (Get a 6) (Get a 7))")
        hist = program.opcode_histogram()
        assert hist == {"vload": 1, "vstore": 1}

    def test_constant_offset_run_uses_single_load(self):
        """Indices base+pos with don't-care holes still lower to one
        vload (the offset-run generalization)."""
        program, _ = lower_and_run("(Vec (Get a 2) (Get a 3) (Get a 4) (Get a 5))")
        assert program.opcode_histogram()["vload"] == 1

    def test_single_window_shuffle(self):
        program, _ = lower_and_run("(Vec (Get a 3) (Get a 1) (Get a 0) (Get a 2))")
        hist = program.opcode_histogram()
        assert hist.get("vshuffle") == 1
        assert hist.get("vload") == 1

    def test_broadcast_shuffle(self):
        program, _ = lower_and_run("(Vec (Get a 1) (Get a 1) (Get a 1) (Get a 1))")
        hist = program.opcode_histogram()
        assert hist.get("vshuffle") == 1

    def test_two_windows_single_select(self):
        program, _ = lower_and_run("(Vec (Get a 0) (Get a 5) (Get a 1) (Get a 6))")
        hist = program.opcode_histogram()
        assert hist.get("vselect") == 1
        assert hist.get("vload") == 2

    def test_three_windows_nested_selects(self):
        """More than two source registers need nested selects
        (paper Section 5.1)."""
        program, _ = lower_and_run("(Vec (Get a 0) (Get a 5) (Get a 9) (Get a 1))")
        hist = program.opcode_histogram()
        assert hist.get("vselect") == 2
        assert hist.get("vload") == 3

    def test_cross_array_select(self):
        program, _ = lower_and_run("(Vec (Get a 0) (Get b 1) (Get a 2) (Get b 3))")
        hist = program.opcode_histogram()
        assert hist.get("vselect", 0) >= 1

    def test_literal_lanes_vconst(self):
        program, _ = lower_and_run("(Vec 1 2 3 4)")
        assert program.opcode_histogram() == {"vconst": 1, "vstore": 1}

    def test_mixed_literal_and_gets(self):
        program, _ = lower_and_run("(Vec (Get a 0) 0 (Get a 2) 0)")
        hist = program.opcode_histogram()
        assert "vconst" in hist and "vselect" in hist

    def test_computed_scalar_lane_insert(self):
        program, _ = lower_and_run(
            "(Vec (Get a 0) (Get a 1) (Get a 2) (+ (Get b 0) (Get b 1)))"
        )
        hist = program.opcode_histogram()
        assert hist.get("vinsert") == 1
        assert hist.get("sbin.+") == 1

    def test_short_array_scalar_inserts(self):
        """Arrays shorter than the vector width still work (scalar
        loads + inserts); buffers are padded so loads stay in bounds."""
        program = lower_term(
            parse("(Vec (Get t 0) (Get t 1) (Get t 2) 0)"), {"t": 3}, 4
        )
        result = simulate(program, {"t": [7.0, 8.0, 9.0]})
        assert result.output("out") == [7.0, 8.0, 9.0, 0.0]

    def test_tail_window_clamped(self):
        """An index in the final partial window clamps the load base."""
        program = lower_term(
            parse("(Vec (Get c 5) (Get c 1) (Get c 0) (Get c 2))"), {"c": 6}, 4
        )
        result = simulate(program, {"c": [float(i) for i in range(6)]})
        assert result.output("out") == [5.0, 1.0, 0.0, 2.0]


class TestVectorOps:
    def test_vecadd(self):
        program, _ = lower_and_run(
            "(VecAdd (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"
            " (Vec (Get b 0) (Get b 1) (Get b 2) (Get b 3)))"
        )
        assert program.opcode_histogram()["vbin.+"] == 1

    def test_vecmac_chain(self):
        program, _ = lower_and_run(
            "(VecMAC (VecMul (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"
            " (Vec (Get b 0) (Get b 1) (Get b 2) (Get b 3)))"
            " (Vec (Get a 4) (Get a 5) (Get a 6) (Get a 7))"
            " (Vec (Get b 4) (Get b 5) (Get b 6) (Get b 7)))"
        )
        hist = program.opcode_histogram()
        assert hist["vmac"] == 1 and hist["vbin.*"] == 1

    def test_unary(self):
        lower_and_run("(VecNeg (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3)))")
        lower_and_run("(VecSqrt (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3)))")
        lower_and_run("(VecSgn (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3)))")

    def test_concat_stores_chunks(self):
        program, result = lower_and_run(
            "(Concat (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"
            " (Vec (Get a 4) (Get a 5) (Get a 6) (Get a 7)))"
        )
        assert program.opcode_histogram()["vstore"] == 2

    def test_padding_chunk_partial_store(self):
        """A 6-output program stores 4 + 2 lanes."""
        term = (
            "(Concat (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"
            " (Vec (Get a 4) (Get a 5) 0 0))"
        )
        program = lower_term(parse(term), {"a": 12}, 6)
        result = simulate(program, {"a": A})
        assert result.output("out") == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        stores = [i for i in program.instructions if isinstance(i, vir.VStore)]
        assert [s.count for s in stores] == [4, 2]

    def test_memoized_subterms_lowered_once(self):
        shared = "(Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"
        program, _ = lower_and_run(f"(VecAdd (VecMul {shared} {shared}) {shared})")
        assert program.opcode_histogram()["vload"] == 1


class TestScalarPath:
    def test_list_of_scalars(self):
        program, _ = lower_and_run(
            "(List (+ (Get a 0) (Get b 0)) (* (Get a 1) (Get b 1)))"
        )
        hist = program.opcode_histogram()
        assert hist["sstore"] == 2
        assert "vload" not in hist

    def test_scalar_expression_tree(self):
        lower_and_run("(List (/ (+ (Get a 0) (Get a 1)) (sqrt (Get a 2))))")

    def test_scalar_memoization(self):
        program, _ = lower_and_run(
            "(List (* (+ (Get a 0) (Get a 1)) (+ (Get a 0) (Get a 1))))"
        )
        assert program.opcode_histogram()["sbin.+"] == 1


class TestErrors:
    def test_unknown_array(self):
        with pytest.raises(LoweringError):
            lower_term(parse("(Vec (Get zz 0) 0 0 0)"), {"a": 4}, 4)

    def test_wrong_vec_width(self):
        with pytest.raises(LoweringError):
            lower_term(parse("(Vec (Get a 0) (Get a 1))"), {"a": 4}, 4)

    def test_call_unlowered(self):
        with pytest.raises(LoweringError, match="intrinsic"):
            lower_term(parse("(List (myfn (Get a 0)))"), {"a": 4}, 1)

    def test_list_arity_mismatch(self):
        with pytest.raises(LoweringError):
            lower_term(parse("(List (Get a 0))"), {"a": 4}, 3)

    def test_insufficient_lanes(self):
        with pytest.raises(LoweringError, match="covers"):
            lower_term(parse("(Vec (Get a 0) 0 0 0)"), {"a": 4}, 9)

    def test_input_padding_declared(self):
        program = lower_term(parse("(Vec (Get t 0) 0 0 0)"), {"t": 3}, 4)
        assert program.inputs["t"] == 4
