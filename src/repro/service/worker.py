"""Subprocess body for sandboxed compilation.

One worker process runs exactly one :func:`repro.compiler.compile_spec`
under ``resource`` rlimits and ships the result (or an encoded failure)
back over a pipe.  The hard wall-clock kill is the supervisor's job --
a process cannot reliably SIGKILL itself out of a tight C loop -- but
the limits applied here make the common blast radii self-terminating:

* ``RLIMIT_AS`` caps the address space, so a runaway e-graph gets a
  ``MemoryError`` (or dies) inside its own process instead of taking
  the sweep down with the host OOM killer;
* ``RLIMIT_CPU`` delivers SIGXCPU/SIGKILL when the compile spins past
  its CPU budget -- the backstop for busy-loops that never check the
  cooperative deadline.

The module also carries the **fault-injection surface** used by the
robustness tests and the ``--inject`` CLI flag: a
:class:`FaultInjection` travels with the task and fires *inside the
worker*, so tests exercise the real kill/retry/cache paths rather than
monkeypatched stand-ins.
"""

from __future__ import annotations

import dataclasses
import math
import os
import signal
import time
from dataclasses import dataclass
from typing import Optional, Tuple

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

__all__ = ["WorkerLimits", "FaultInjection", "CompileTask", "worker_main"]


@dataclass(frozen=True)
class WorkerLimits:
    """Sandbox limits for one compilation subprocess.

    ``None`` disables the corresponding limit.  ``cpu_seconds`` and
    ``kill_timeout`` default to being *derived* from the compilation's
    own ``time_limit`` (see :func:`derive`): the CPU budget is a 3x
    backstop over the cooperative deadline, the kill-timeout a 3x +
    grace wall-clock ceiling enforced by the supervisor.
    """

    address_space_bytes: Optional[int] = None
    cpu_seconds: Optional[int] = None
    kill_timeout: Optional[float] = None

    def derive(self, time_limit: Optional[float]) -> "WorkerLimits":
        """Fill unset CPU / kill budgets from a compile time limit."""
        cpu = self.cpu_seconds
        kill = self.kill_timeout
        if time_limit is not None:
            if cpu is None:
                cpu = int(math.ceil(time_limit * 3)) + 10
            if kill is None:
                kill = time_limit * 3.0 + 15.0
        return dataclasses.replace(
            self, cpu_seconds=cpu, kill_timeout=kill
        )


@dataclass(frozen=True)
class FaultInjection:
    """Deterministic fault injected inside the worker.

    ``mode`` is one of ``sigkill`` (the process SIGKILLs itself
    mid-compile), ``oom`` (allocates until the rlimit / MemoryError),
    ``hang`` (spins past the kill-timeout), ``raise`` (throws a plain
    RuntimeError).  ``attempts`` lists the 0-based attempt indices the
    fault fires on, so "crash once then succeed" is expressible.
    """

    mode: str
    attempts: Tuple[int, ...] = (0,)

    def fires_on(self, attempt: int) -> bool:
        return attempt in self.attempts

    def trigger(self) -> None:
        import sys

        # Announce the fault on stderr first: real crashes (glibc abort
        # messages, OOM-killer notes, assertion failures) leave a trace
        # there, and the supervisor's stderr-tail capture is tested
        # against exactly this behaviour.
        print(f"injected worker fault: {self.mode}", file=sys.stderr, flush=True)
        if self.mode == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.mode == "oom":
            hog = []
            while True:  # dies via rlimit or MemoryError
                hog.append(bytearray(16 * 1024 * 1024))
        elif self.mode == "hang":
            while True:
                time.sleep(0.05)
        elif self.mode == "raise":
            raise RuntimeError("injected worker fault")
        else:
            raise ValueError(f"unknown fault-injection mode {self.mode!r}")


@dataclass(frozen=True)
class CompileTask:
    """Everything a worker needs: picklable under any start method."""

    spec: object  # repro.frontend.lift.Spec
    options: object  # repro.compiler.CompileOptions
    limits: WorkerLimits
    attempt: int = 0
    inject: Optional[FaultInjection] = None
    #: When set, the worker dup2s fd 2 onto this file so the supervisor
    #: can read the stderr tail of a worker that died uncleanly (a
    #: SIGKILLed process cannot flush a pipe, but the file survives).
    stderr_path: Optional[str] = None
    #: Chaos fault plan (repro.chaos.FaultPlan), installed process-wide
    #: inside the worker so worker-side injection seams fire in the
    #: sandbox.  Travels as a pickled snapshot of the parent's plan:
    #: each attempt's worker starts from the same counters, so firing
    #: is deterministic per attempt.
    chaos_plan: Optional[object] = None


def _redirect_stderr(path: str) -> None:
    """Point fd 2 (and ``sys.stderr``) at ``path``, line-buffered."""
    import sys

    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o600)
        os.dup2(fd, 2)
        os.close(fd)
        sys.stderr = os.fdopen(2, "w", buffering=1, closefd=False)
    except OSError:  # pragma: no cover - scratch dir vanished
        pass


def _apply_rlimits(limits: WorkerLimits) -> None:
    if resource is None:  # pragma: no cover - non-POSIX
        return
    if limits.address_space_bytes is not None:
        _set_rlimit(resource.RLIMIT_AS, limits.address_space_bytes)
    if limits.cpu_seconds is not None:
        # soft limit raises SIGXCPU (default: kill); hard limit +5 is
        # the unconditional SIGKILL backstop.
        _set_rlimit(
            resource.RLIMIT_CPU, limits.cpu_seconds, limits.cpu_seconds + 5
        )


def _set_rlimit(which: int, soft: int, hard: Optional[int] = None) -> None:
    hard = hard if hard is not None else soft
    try:
        _, old_hard = resource.getrlimit(which)
        if old_hard != resource.RLIM_INFINITY:
            soft = min(soft, old_hard)
            hard = min(hard, old_hard)
        resource.setrlimit(which, (soft, hard))
    except (ValueError, OSError):  # pragma: no cover - container quirks
        pass


def _encode_error(exc: BaseException) -> Tuple[str, str, str]:
    """(type name, stage, message) -- enough for the supervisor to
    reconstruct a classification without unpickling arbitrary exception
    state (partial artifacts may hold unpicklable e-graphs)."""
    return (
        type(exc).__name__,
        getattr(exc, "stage", "compile"),
        str(exc),
    )


def worker_main(conn, task: CompileTask) -> None:
    """Entry point of the sandboxed subprocess."""
    from ..compiler import compile_spec  # after fork: cheap

    try:
        if task.stderr_path is not None:
            _redirect_stderr(task.stderr_path)
        _apply_rlimits(task.limits)
        if task.chaos_plan is not None:
            from ..chaos.inject import install_plan

            install_plan(task.chaos_plan, attempt=task.attempt)
        if task.inject is not None and task.inject.fires_on(task.attempt):
            task.inject.trigger()
        result = compile_spec(task.spec, task.options)
        try:
            conn.send(("ok", result))
        except Exception:
            # Unpicklable payload (e.g. closure-carrying extra_rules in
            # the captured options): strip the offender and retry once.
            result.options = dataclasses.replace(result.options, extra_rules=())
            conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - must never die silently
        try:
            # The traceback goes to stderr (the supervisor's scratch
            # file) so it survives even when the pipe send fails.
            import sys
            import traceback

            traceback.print_exc(file=sys.stderr)
            sys.stderr.flush()
        except Exception:
            pass
        try:
            conn.send(("error", _encode_error(exc)))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
