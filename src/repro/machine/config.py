"""Machine model configuration.

The paper evaluates on the Tensilica Fusion G3 through ``xt-run``, a
deterministic cycle-level simulator with an ideal unit-delay memory
(Section 5.2).  We cannot license that simulator, so
:class:`MachineConfig` defines a parametric stand-in: a per-opcode
cycle table over the vector IR, with the Fusion-G3-flavoured defaults
below.  The table encodes the economics that drive every result in the
paper's evaluation:

* one vector op retires the work of ``vector_width`` scalar ops in a
  single instruction slot;
* the "fast, unrestricted shuffle" (Section 3.4) makes in-register
  data movement cost one cycle, same as a load -- this is exactly the
  property Diospyros's cost model banks on;
* division and square root are iterative and expensive, as on real
  DSP float pipelines;
* taken branches pay a pipeline-refill penalty, which is what makes
  generic-size library loops lose on tiny kernels (the paper's
  "control overhead of the parametrized unrolling").

All values are plain data: the portability ablation re-runs the whole
evaluation with a different table (e.g. :func:`no_shuffle_machine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["MachineConfig", "fusion_g3", "no_shuffle_machine"]


def _default_cost_table() -> Dict[str, float]:
    return {
        # Scalar unit.
        "sconst": 1.0,
        "smove": 1.0,
        "sbin.+": 1.0,
        "sbin.-": 1.0,
        "sbin.*": 1.0,
        "sbin./": 8.0,
        "sbin.min": 1.0,
        "sbin.max": 1.0,
        "sun.neg": 1.0,
        "sun.sqrt": 12.0,
        "sun.sgn": 1.0,
        "sload": 1.0,
        "sload.idx": 1.0,
        "sstore": 1.0,
        "sstore.idx": 1.0,
        # Vector unit.
        "vconst": 1.0,
        "vload": 1.0,
        "vload.idx": 1.0,
        "vstore": 1.0,
        "vstore.idx": 1.0,
        "vshuffle": 1.0,
        "vselect": 1.0,
        "vbin.+": 1.0,
        "vbin.-": 1.0,
        "vbin.*": 1.0,
        "vbin./": 10.0,
        "vun.neg": 1.0,
        "vun.sqrt": 14.0,
        "vun.sgn": 1.0,
        "vmac": 1.0,
        "vinsert": 2.0,
        "vsplat": 1.0,
        # Control flow.
        "label": 0.0,
        "jump": 1.0,
        "branch": 1.0,
    }


@dataclass(frozen=True)
class MachineConfig:
    """A simulated DSP target."""

    name: str = "fusion-g3-like"
    vector_width: int = 4
    cost_table: Dict[str, float] = field(default_factory=_default_cost_table)
    #: Extra cycles charged when a branch is taken (pipeline refill).
    branch_taken_penalty: float = 2.0
    #: Safety valve: abort simulations that exceed this many executed
    #: instructions (runaway loops in buggy kernels).
    max_instructions: int = 20_000_000

    def cost(self, opcode: str) -> float:
        try:
            return self.cost_table[opcode]
        except KeyError as exc:
            raise KeyError(f"no cycle cost for opcode {opcode!r}") from exc


def static_cycles(program, machine: "MachineConfig" = None) -> float:
    """Cycle count of a straight-line program without executing it.

    For branch-free code the simulator's accounting is exactly the sum
    of per-opcode costs, so this is both fast and exact; it is what the
    backend's candidate-selection step compares.  Raises ``ValueError``
    on programs with control flow (their cycle count is input-shaped).
    """
    machine = machine or MachineConfig()
    if not program.is_straight_line():
        raise ValueError("static_cycles requires a straight-line program")
    return sum(machine.cost(instr.opcode) for instr in program.instructions)


def fusion_g3() -> MachineConfig:
    """The default 4-wide target modelled on the Tensilica Fusion G3."""
    return MachineConfig()


def no_shuffle_machine() -> MachineConfig:
    """A hypothetical DSP without a fast unrestricted shuffle
    (Section 6's portability caveat): in-register permutations cost
    nearly as much as redoing the loads."""
    table = _default_cost_table()
    table["vshuffle"] = 6.0
    table["vselect"] = 8.0
    table["vinsert"] = 6.0
    return MachineConfig(name="no-shuffle-dsp", cost_table=table)
