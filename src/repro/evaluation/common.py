"""Shared infrastructure for the evaluation harness.

The paper's evaluation ran equality saturation with a 3-minute timeout
and a 10M-node limit on a Xeon server, against the licensed ``xt-run``
simulator.  Our engine is pure Python, so budgets are scaled: a
:class:`Budget` carries the *paper-equivalent* seconds (what the
experiment id means) and the *actual* seconds given to our runner.
EXPERIMENTS.md records the mapping used for every reported number.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..compiler import CompileOptions, CompileResult, compile_spec
from ..errors import CompileError, is_resource_failure
from ..kernels.base import Kernel
from ..machine import MachineConfig, fusion_g3, simulate

__all__ = [
    "Budget",
    "DEFAULT_BUDGET",
    "SweepError",
    "compile_kernel_with_budget",
    "compile_kernel_resilient",
    "measure",
    "check_correct",
    "geomean",
    "render_table",
    "render_sweep_errors",
]


@dataclass(frozen=True)
class Budget:
    """A saturation budget with its paper-equivalent label.

    ``paper_seconds`` is what the experiment nominally allows (the
    paper's 180 s default); ``seconds`` is the wall-clock given to our
    Python engine.  The default scale maps the paper's 180 s to 18 s,
    i.e. a 10:1 ratio; pass ``scale=1.0`` for a paper-duration run.
    """

    paper_seconds: float
    seconds: float
    node_limit: int = 200_000
    iter_limit: int = 60

    @staticmethod
    def from_paper(paper_seconds: float, scale: float = 0.1) -> "Budget":
        return Budget(paper_seconds=paper_seconds, seconds=paper_seconds * scale)

    def options(self, **overrides) -> CompileOptions:
        base = CompileOptions(
            time_limit=self.seconds,
            node_limit=self.node_limit,
            iter_limit=self.iter_limit,
            validate=False,
            track_memory=False,
        )
        return replace(base, **overrides)


#: The evaluation default: the paper's 180 s scaled 10:1.
DEFAULT_BUDGET = Budget.from_paper(180.0)


def compile_kernel_with_budget(
    kernel: Kernel, budget: Budget = DEFAULT_BUDGET, **overrides
) -> CompileResult:
    """Compile one benchmark kernel under a budget."""
    return compile_spec(kernel.spec(), budget.options(**overrides))


@dataclass
class SweepError:
    """One failed kernel in an evaluation sweep.

    The harness records these and keeps going, so a single pathological
    kernel cannot kill a 21-kernel Table 1 / Figure 5 run; aggregates
    (geomean etc.) are computed over the survivors.
    """

    kernel: str
    stage: str
    error: str
    elapsed: float
    retried: bool = False

    def __str__(self) -> str:
        retry = " (after halved-budget retry)" if self.retried else ""
        return (
            f"{self.kernel}: {self.stage} failed after {self.elapsed:.2f}s"
            f"{retry} -- {self.error}"
        )


#: Retry taxonomy now lives in :mod:`repro.errors` so the compilation
#: service shares it; the old private name stays importable.
_is_resource_failure = is_resource_failure


def compile_kernel_resilient(
    kernel: Kernel,
    budget: Budget = DEFAULT_BUDGET,
    errors: Optional[List[SweepError]] = None,
    service=None,
    **overrides,
) -> Optional[CompileResult]:
    """Compile one kernel, surviving failures.

    On an exception the error is recorded in ``errors`` (stage,
    exception text, elapsed seconds) and ``None`` is returned so the
    sweep continues.  Node-limit / memory failures get one bounded
    retry at a *halved budget* first -- both the wall-clock and the
    node limit are halved, so a node-limit overflow does not retry
    straight into the same doomed ceiling.

    When ``service`` (a :class:`repro.service.CompileService`) is
    given, the compilation routes through its sandboxed worker pool and
    artifact cache instead; the service runs its own backoff/shrink
    retry loop, so the local halved-budget retry is skipped and only
    the final failure is recorded here.
    """
    start = time.perf_counter()
    retried = False
    if service is not None:
        try:
            return service.compile_spec(kernel.spec(), budget.options(**overrides))
        except Exception as exc:
            failure: BaseException = exc
            retried = is_resource_failure(failure)
    else:
        try:
            return compile_kernel_with_budget(kernel, budget, **overrides)
        except Exception as exc:
            failure = exc
        if is_resource_failure(failure):
            retried = True
            smaller = replace(
                budget,
                seconds=max(0.25, budget.seconds / 2),
                node_limit=max(1_000, budget.node_limit // 2),
            )
            try:
                return compile_kernel_with_budget(kernel, smaller, **overrides)
            except Exception as exc:
                failure = exc
    if errors is not None:
        errors.append(
            SweepError(
                kernel=kernel.name,
                stage=getattr(failure, "stage", "compile"),
                error=f"{type(failure).__name__}: {failure}",
                elapsed=time.perf_counter() - start,
                retried=retried,
            )
        )
    return None


def render_sweep_errors(errors: Sequence[SweepError]) -> str:
    """Plain-text error-row rendering appended to sweep reports."""
    if not errors:
        return ""
    lines = [f"Failed kernels ({len(errors)}):"]
    lines.extend(f"  {e}" for e in errors)
    return "\n".join(lines)


def measure(
    program,
    kernel: Kernel,
    seed: Optional[int] = None,
    machine: Optional[MachineConfig] = None,
    *,
    options: Optional[CompileOptions] = None,
) -> Tuple[float, bool]:
    """Simulate ``program`` on random inputs; return (cycles, correct).

    Correctness is checked against the kernel's trusted reference on
    the same inputs, so every benchmark run doubles as a differential
    test.  The input seed resolves, in order: an explicit ``seed``
    argument, the ``seed`` carried by ``options`` (so one
    ``CompileOptions.seed`` drives validation *and* the harness's
    differential probes), else the historical default 0.
    """
    if seed is None:
        seed = options.seed if options is not None else 0
    inputs = kernel.random_inputs(seed)
    result = simulate(program, inputs, machine or fusion_g3())
    reference = kernel.reference_outputs(inputs)
    produced = result.output("out")[: len(reference)]
    ok = all(
        abs(a - b) <= 1e-4 * max(1.0, abs(a)) for a, b in zip(reference, produced)
    )
    return result.cycles, ok


def check_correct(
    program,
    kernel: Kernel,
    seed: Optional[int] = None,
    *,
    options: Optional[CompileOptions] = None,
) -> bool:
    """Correctness only (used by tests).  Seed resolution follows
    :func:`measure`: explicit argument, then ``options.seed``, then 0
    -- reproducible by default, variable across service retries (which
    shift ``options.seed`` per attempt)."""
    _, ok = measure(program, kernel, seed, options=options)
    return ok


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for Figure 5)."""
    values = [v for v in values if v > 0]
    if not values:
        raise ValueError("geomean of no positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Plain-text table rendering for reports."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100:
            return f"{value:.0f}"
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)
