"""Associativity and commutativity rules (paper Section 3.3).

AC-matching is NP-complete and saturating with AC rules blows up the
e-graph (the paper reports exhausting a 512 GB host), so Diospyros
ships these rules *disabled by default* and regains the useful cases
via the custom searchers in :mod:`repro.rules.mac` and
:mod:`repro.rules.vector`.  They remain available for small kernels and
for the AC ablation benchmark.
"""

from __future__ import annotations

from typing import List

from ..egraph.rewrite import Rewrite, birewrite, rewrite

__all__ = ["ac_rules", "commutativity_rules", "associativity_rules"]


def commutativity_rules() -> List[Rewrite]:
    return [
        rewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)", tags=("ac",)),
        rewrite("comm-mul", "(* ?a ?b)", "(* ?b ?a)", tags=("ac",)),
    ]


def associativity_rules() -> List[Rewrite]:
    return [
        *birewrite(
            "assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))", tags=("ac",)
        ),
        *birewrite(
            "assoc-mul", "(* (* ?a ?b) ?c)", "(* ?a (* ?b ?c))", tags=("ac",)
        ),
    ]


def ac_rules() -> List[Rewrite]:
    """Full associativity + commutativity for ``+`` and ``*``."""
    return commutativity_rules() + associativity_rules()
