#!/usr/bin/env python3
"""Racing the compiler against a hand-tuned expert kernel
(paper Section 5.4).

The paper compares Diospyros's 2x3 * 3x3 matrix multiply against a
proprietary kernel hand-written by a DSP expert and finds the same
vector-operation mix (2 multiplies + 4 MACs) and performance within
8%.  This script reproduces that comparison against our re-created
expert kernel, then sweeps the other MatMul sizes to show how the
speedup over library code grows with size.

Run:  python examples/matmul_vs_expert.py
"""

from repro.baselines import baseline_program
from repro.compiler import CompileOptions, compile_spec
from repro.kernels import make_matmul
from repro.machine import simulate


def cycles_of(program, kernel):
    inputs = kernel.random_inputs(0)
    run = simulate(program, inputs)
    reference = kernel.reference_outputs(inputs)
    assert all(
        abs(a - b) < 1e-4 * max(1, abs(b))
        for a, b in zip(run.output("out")[: len(reference)], reference)
    )
    return run.cycles


def main() -> None:
    print("=== expert comparison: MatMul 2x3 * 3x3 ===")
    kernel = make_matmul(2, 3, 3)
    result = compile_spec(kernel.spec(), CompileOptions(time_limit=10.0))
    hist = result.program.opcode_histogram()
    print(f"diospyros op mix: {hist.get('vbin.*', 0)} VecMul, "
          f"{hist.get('vmac', 0)} VecMAC (paper expert: 2 + 4)")

    expert = baseline_program("expert", kernel)
    dio_cycles = cycles_of(result.program, kernel)
    expert_cycles = cycles_of(expert, kernel)
    gap = (dio_cycles - expert_cycles) / expert_cycles * 100
    print(f"diospyros {dio_cycles:.0f} vs expert {expert_cycles:.0f} cycles "
          f"({gap:+.0f}%; paper: 39 vs 36, +8%)")

    print("\n=== size sweep vs library baselines ===")
    print(f"{'size':<14}{'diospyros':>10}{'nature':>10}{'eigen':>10}"
          f"{'naive-fixed':>13}")
    for m, k, n in [(2, 2, 2), (3, 3, 3), (4, 4, 4), (8, 8, 8)]:
        kernel = make_matmul(m, k, n)
        result = compile_spec(
            kernel.spec(), CompileOptions(time_limit=8.0, validate=False)
        )
        row = [cycles_of(result.program, kernel)]
        for name in ("nature", "eigen", "naive-fixed"):
            row.append(cycles_of(baseline_program(name, kernel), kernel))
        print(f"{kernel.size_label:<14}"
              + "".join(f"{c:>10.0f}" for c in row[:3])
              + f"{row[3]:>13.0f}")


if __name__ == "__main__":
    main()
