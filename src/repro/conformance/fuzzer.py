"""Coverage-guided fuzzing campaigns over the compiler.

This upgrades the pure-random differential oracle
(:mod:`repro.validation.fuzz`) with a feedback loop:

1. compile a kernel under full observability and extract its behavior
   features (:func:`repro.conformance.coverage.result_features`);
2. a kernel that exhibited *any* new feature is kept as a seed in the
   corpus (:class:`repro.conformance.corpus.Corpus`);
3. most subsequent kernels are mutations of kept seeds (biased toward
   recent ones, which sit at the coverage frontier) rather than fresh
   random samples.

``mode="random"`` runs the identical loop with retention and mutation
disabled -- the ablation baseline the acceptance test compares against:
at the same seed and budget, guided mode must reach a strictly larger
coverage-map cardinality.

Every campaign is deterministic for a fixed ``(budget, seed, mode,
options)``: RNG streams are domain-separated via
:func:`repro.seeding.stable_rng`, compiles run with ``time_limit=None``
and fixed iteration/node limits, and coverage features exclude all
timing.  Compile *crashes* are coverage too (an ``error:`` feature) --
a kernel that breaks the compiler is the most interesting seed of all.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..compiler import CompileOptions, compile_spec
from ..frontend.lift import Spec
from ..observability import Observability
from ..seeding import stable_rng
from ..validation.fuzz import FuzzDivergence, check_result, random_spec
from .corpus import Corpus, spec_key, spec_to_json
from .coverage import CoverageMap, result_features
from .mutate import mutate

__all__ = [
    "CampaignReport",
    "conformance_options",
    "run_campaign",
    "render_campaign_report",
    "campaign_to_json",
]

#: Bandit parameters for the guided generator-vs-mutator choice.
#: Novelty per arm is tracked as an exponential moving average; the
#: arm with the higher recent payoff wins, with a small epsilon of
#: forced exploration so a temporarily-cold arm can recover.
BANDIT_ALPHA = 0.25
BANDIT_EPSILON = 0.1
#: Optimistic initial estimate -- both arms start "promising" so the
#: first few pulls measure rather than assume.
BANDIT_INIT = 8.0


def conformance_options(seed: int = 0) -> CompileOptions:
    """Deterministic per-kernel compile budgets for campaigns.

    ``time_limit=None`` is load-bearing: a wall-clock limit makes stop
    reasons (and therefore coverage features) machine-dependent, which
    would break replay and the CI coverage gate.  Budget is bounded by
    fixed iteration and node limits instead.  Metrics and the flight
    recorder are on (they feed two coverage planes); spans are off --
    timing is excluded from features anyway.
    """
    return CompileOptions(
        time_limit=None,
        iter_limit=8,
        node_limit=4_000,
        validate=False,
        track_memory=False,
        seed=seed,
        observability=Observability.on(trace=False),
    )


@dataclass
class CampaignReport:
    """Outcome of one coverage-guided (or ablation-random) campaign."""

    mode: str
    budget: int
    seed: int
    executed: int = 0
    compiled: int = 0
    degraded: int = 0
    checked_trials: int = 0
    #: (kernel name, error) for kernels whose compilation raised.
    compile_failures: List[Tuple[str, str]] = field(default_factory=list)
    #: (spec, divergences) for kernels the differential oracle flagged.
    divergent: List[Tuple[Spec, List[FuzzDivergence]]] = field(
        default_factory=list
    )
    coverage: CoverageMap = field(default_factory=CoverageMap)
    #: Coverage cardinality after each executed kernel -- the plot CI
    #: artifacts carry, and what the guided-vs-random test compares.
    coverage_curve: List[int] = field(default_factory=list)
    #: Kernels retained this run because they extended coverage.
    seeds_kept: int = 0
    #: Total corpus size after the run (includes pre-existing seeds).
    corpus_size: int = 0
    truncated: bool = False
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergent

    @property
    def divergences(self) -> List[FuzzDivergence]:
        return [d for _, divs in self.divergent for d in divs]


def run_campaign(
    budget: int,
    seed: int = 0,
    mode: str = "guided",
    options: Optional[CompileOptions] = None,
    corpus_dir: Optional[str] = None,
    service=None,
    trials: int = 3,
    tolerance: float = 1e-5,
    time_budget: Optional[float] = None,
    max_depth: int = 3,
) -> CampaignReport:
    """Run ``budget`` kernels through the compile + differential-check
    loop, guided by the coverage map (or blind, ``mode="random"``).

    ``corpus_dir`` persists kept seeds across runs (nightly CI resumes
    from the accumulated corpus); ``service`` routes compilations
    through the sandboxed :class:`repro.service.CompileService` so a
    crashing kernel is a data point, not a dead campaign.
    """
    if mode not in ("guided", "random"):
        raise ValueError(f"unknown campaign mode: {mode!r}")
    guided = mode == "guided"
    options = options or conformance_options(seed)
    gen_rng = stable_rng(seed, "conformance-gen")
    mut_rng = stable_rng(seed, "conformance-mut")
    corpus = Corpus(corpus_dir if guided else None)
    kept: List[Spec] = corpus.seeds()
    report = CampaignReport(mode=mode, budget=budget, seed=seed)
    started = time.perf_counter()
    # Guided mode arbitrates generator-vs-mutator with a two-armed
    # bandit over recent novelty.  Early on, fresh random kernels are
    # feature-dense and the bandit keeps sampling them (tracking the
    # ablation baseline); once the random envelope saturates and its
    # payoff decays toward zero, mutation -- which can leave that
    # envelope -- takes over.  A fixed mutation fraction gets this
    # wrong in both phases.
    payoff = {"random": BANDIT_INIT, "mutate": BANDIT_INIT}
    executed_keys: set = set()

    for index in range(budget):
        if time_budget is not None and time.perf_counter() - started > time_budget:
            report.truncated = True
            break
        # Re-executing a byte-identical kernel cannot add coverage, so
        # guided mode resamples instead of burning budget on it (the
        # blind baseline has no memory, by construction).
        spec = None
        arm = "random"
        for _ in range(4):
            arm = "random"
            if guided and kept:
                if mut_rng.random() < BANDIT_EPSILON:
                    arm = ("random", "mutate")[mut_rng.randrange(2)]
                elif payoff["mutate"] > payoff["random"]:
                    arm = "mutate"
            if arm == "mutate":
                # Quadratic bias toward recently-kept seeds: they sit
                # at the coverage frontier, so their neighborhoods are
                # the most likely to contain further novelty.
                pick = len(kept) - 1 - int(mut_rng.random() ** 2 * len(kept))
                spec = mutate(kept[pick], mut_rng, name=f"conf-{index}")
            else:
                spec = random_spec(gen_rng, index, max_depth=max_depth)
            if not guided or spec_key(spec) not in executed_keys:
                break
        if guided:
            executed_keys.add(spec_key(spec))
        report.executed += 1

        features = None
        result = None
        try:
            if service is not None:
                result = service.compile_spec(spec, options)
            else:
                result = compile_spec(spec, options)
        except Exception as exc:  # noqa: BLE001 - campaign must continue
            report.compile_failures.append(
                (spec.name, f"{type(exc).__name__}: {exc}")
            )
            # A compiler crash is a behavior class in its own right --
            # and the seed most worth mutating further.
            features = {f"error:{type(exc).__name__}"}

        if result is not None:
            report.compiled += 1
            if result.degraded:
                report.degraded += 1
            features = result_features(result)

        new = report.coverage.add_all(features or ())
        if guided:
            payoff[arm] = (1 - BANDIT_ALPHA) * payoff[arm] + BANDIT_ALPHA * new
        if guided and new > 0:
            _, was_new = corpus.add(spec)
            if was_new:
                kept.append(spec)
                report.seeds_kept += 1
        report.coverage_curve.append(report.coverage.cardinality)

        if result is not None:
            check_rng = stable_rng(seed, "conformance-check", index)
            divergences = check_result(spec, result, check_rng, trials, tolerance)
            report.checked_trials += trials
            if divergences:
                report.divergent.append((spec, divergences))

    report.corpus_size = len(corpus)
    report.elapsed = time.perf_counter() - started
    return report


def render_campaign_report(
    report: CampaignReport, verbose: bool = False
) -> str:
    lines = [
        f"conformance campaign ({report.mode}): seed {report.seed}, "
        f"{report.executed}/{report.budget} kernels"
        + (" (TRUNCATED by time budget)" if report.truncated else ""),
        f"  compiled: {report.compiled} ({report.degraded} degraded, "
        f"{len(report.compile_failures)} compile failures)",
        f"  coverage: {report.coverage.cardinality} features "
        f"across planes {report.coverage.by_plane()}",
        f"  corpus: {report.seeds_kept} seeds kept this run, "
        f"{report.corpus_size} total",
        f"  differential trials: {report.checked_trials} "
        f"({report.elapsed:.1f}s elapsed)",
        f"  divergent kernels: {len(report.divergent)}",
    ]
    for spec, divergences in report.divergent:
        lines.append(f"  {spec.name}:")
        lines.extend(f"    {d}" for d in divergences)
    if verbose and report.compile_failures:
        lines.append("compile failures:")
        lines.extend(f"  {n}: {e}" for n, e in report.compile_failures)
    lines.append(
        "VERDICT: " + ("OK" if report.ok else "DIVERGENCE DETECTED")
    )
    return "\n".join(lines)


def campaign_to_json(report: CampaignReport) -> Dict:
    """JSON export for CI artifacts (coverage gate + divergence triage)."""
    return {
        "schema": "conformance_campaign/v1",
        "mode": report.mode,
        "budget": report.budget,
        "seed": report.seed,
        "executed": report.executed,
        "compiled": report.compiled,
        "degraded": report.degraded,
        "compile_failures": [list(x) for x in report.compile_failures],
        "coverage": report.coverage.to_json(),
        "coverage_curve": report.coverage_curve,
        "seeds_kept": report.seeds_kept,
        "corpus_size": report.corpus_size,
        "truncated": report.truncated,
        "divergent": [
            {
                "spec": spec_to_json(spec),
                "divergences": [vars(d) for d in divergences],
            }
            for spec, divergences in report.divergent
        ],
        "ok": report.ok,
    }


def write_campaign_json(report: CampaignReport, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(campaign_to_json(report), handle, indent=2, sort_keys=True)
        handle.write("\n")
