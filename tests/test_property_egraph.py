"""Property-based tests of the e-graph invariants (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dsl.ast import Term, num, sym
from repro.egraph import EGraph, UnionFind


# -- term generator ---------------------------------------------------------

_leaves = st.one_of(
    st.integers(min_value=-3, max_value=3).map(num),
    st.sampled_from(["a", "b", "c"]).map(sym),
)


def _compound(children):
    binary = st.builds(lambda l, r: Term("+", (l, r)), children, children)
    binary_mul = st.builds(lambda l, r: Term("*", (l, r)), children, children)
    unary = st.builds(lambda x: Term("neg", (x,)), children)
    return st.one_of(binary, binary_mul, unary)


terms = st.recursive(_leaves, _compound, max_leaves=12)


class TestUnionFindProperties:
    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40))
    def test_union_is_equivalence_relation(self, pairs):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(20)]
        for a, b in pairs:
            uf.union(ids[a], ids[b])
        # Reflexive, symmetric (by construction), transitive via roots.
        for a, b in pairs:
            assert uf.in_same_set(ids[a], ids[b])
        roots = {uf.find(i) for i in ids}
        assert len(roots) == uf.num_sets()

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=20))
    def test_find_is_idempotent(self, pairs):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(10)]
        for a, b in pairs:
            uf.union(ids[a], ids[b])
        for i in ids:
            assert uf.find(uf.find(i)) == uf.find(i)


class TestEGraphProperties:
    @given(terms)
    @settings(max_examples=60)
    def test_add_term_is_idempotent(self, term):
        eg = EGraph()
        first = eg.add_term(term)
        nodes_before = eg.num_nodes
        second = eg.add_term(term)
        assert eg.find(first) == eg.find(second)
        assert eg.num_nodes == nodes_before

    @given(terms, terms)
    @settings(max_examples=60)
    def test_distinct_terms_equal_only_after_union(self, t1, t2):
        eg = EGraph()
        a = eg.add_term(t1)
        b = eg.add_term(t2)
        if t1 == t2:
            assert eg.find(a) == eg.find(b)
        else:
            eg.union(a, b)
            eg.rebuild()
            assert eg.find(a) == eg.find(b)

    @given(terms, terms)
    @settings(max_examples=60)
    def test_congruence_closure(self, t1, t2):
        """Unioning children makes identical parents congruent."""
        eg = EGraph()
        p1 = eg.add_term(Term("neg", (t1,)))
        p2 = eg.add_term(Term("neg", (t2,)))
        eg.union(eg.add_term(t1), eg.add_term(t2))
        eg.rebuild()
        assert eg.find(p1) == eg.find(p2)

    @given(st.lists(terms, min_size=2, max_size=6))
    @settings(max_examples=40)
    def test_hashcons_no_duplicate_canonical_nodes(self, ts):
        """After arbitrary unions and a rebuild, no class stores the
        same canonical node twice."""
        eg = EGraph()
        ids = [eg.add_term(t) for t in ts]
        for a, b in zip(ids, ids[1:]):
            eg.union(a, b)
        eg.rebuild()
        for eclass in eg.classes():
            canonical = [n.canonicalize(eg._uf) for n in eclass.nodes]
            assert len(canonical) == len(set(canonical))

    @given(st.lists(terms, min_size=1, max_size=5))
    @settings(max_examples=40)
    def test_num_nodes_counts_class_contents(self, ts):
        eg = EGraph()
        for t in ts:
            eg.add_term(t)
        assert eg.num_nodes == sum(len(c.nodes) for c in eg.classes())
        assert eg.num_classes == len(list(eg.classes()))

    @given(terms)
    @settings(max_examples=60)
    def test_lookup_term_finds_added(self, term):
        eg = EGraph()
        cid = eg.add_term(term)
        assert eg.lookup_term(term) == eg.find(cid)

    @given(st.lists(terms, min_size=2, max_size=5))
    @settings(max_examples=40)
    def test_op_index_complete_after_unions(self, ts):
        """classes_with_op never misses a class containing the op."""
        eg = EGraph()
        ids = [eg.add_term(t) for t in ts]
        for a, b in zip(ids, ids[1:]):
            eg.union(a, b)
        eg.rebuild()
        for op in ("+", "*", "neg", "Num", "Symbol"):
            indexed = set(eg.classes_with_op(op))
            actual = {
                eg.find(c.id)
                for c in eg.classes()
                if any(n.op == op for n in c.nodes)
            }
            assert indexed == actual
