"""Compilation service layer: process isolation, durable artifacts.

The paper's pipeline survives partial failure *inside* one compilation
(extraction works on partially saturated e-graphs, PR 1's degradation
ladder catches stage crashes).  This package extends that stance to the
process level, which is what a long-running evaluation sweep -- or a
compile server -- actually needs:

* :mod:`repro.service.cache` -- a crash-safe, content-keyed on-disk
  artifact cache: completed :class:`~repro.compiler.CompileResult`\\ s
  are persisted via temp-file + atomic rename with checksums, so a
  ``kill -9`` mid-write can never corrupt an entry and reruns are
  warm-start.
* :mod:`repro.service.worker` -- the sandboxed subprocess body: applies
  ``resource`` rlimits (address space, CPU) before compiling, so an
  OOM or a runaway e-graph in one kernel dies alone.
* :mod:`repro.service.supervisor` -- :class:`CompileService`: a
  supervisor + worker pool with hard kill-timeouts, jittered
  exponential-backoff retries at shrinking budgets (reusing the
  :func:`repro.errors.is_resource_failure` taxonomy), and a per-kernel
  circuit breaker.

* :mod:`repro.service.checkpoint` -- persistent saturation checkpoints:
  the runner's end-of-iteration snapshot serialized to a content-keyed
  scratch file, so a retry after a worker crash *resumes* saturation
  from the last completed iteration instead of starting over.

* :mod:`repro.service.gateway` -- the overload-resilient asyncio front
  end (DESIGN.md §12): per-tenant token buckets, a bounded priority
  queue, single-flight dedup on the artifact-cache content key,
  CoDel-style queue-delay shedding, a brownout ladder ending in
  cache-only mode, and end-to-end deadline propagation -- overload
  degrades into *typed* refusals, never unbounded buffering.
* :mod:`repro.service.soak` -- the open-loop soak harness behind
  ``python -m repro serve --bench``: phased load (unloaded ->
  sustained -> 4x burst -> recovery), dedup probes, chaos seams, and
  the gate table the serve-smoke CI job asserts on.

The evaluation sweeps (``python -m repro.evaluation ... --isolate
--cache-dir DIR``), the ``python -m repro serve`` CLI verb, the chaos
campaigns (``python -m repro chaos``), and the fuzzing oracle
(:mod:`repro.validation.fuzz`) all run on top of this layer.
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    FsckIssue,
    FsckReport,
    LRUStats,
    LRUTier,
    cache_key,
    code_fingerprint,
)
from .checkpoint import (
    CheckpointStore,
    FileCheckpointer,
    SaturationState,
    saturation_key,
)
from .gateway import (
    CompileGateway,
    GatewayConfig,
    GatewayStats,
    TenantPolicy,
)
from .soak import (
    SoakConfig,
    default_chaos_plan,
    render_soak_report,
    run_soak,
    run_soak_sync,
)
from .supervisor import (
    BatchItem,
    BoundedLog,
    CompileService,
    RetryPolicy,
    ServiceStats,
)
from .worker import FaultInjection, WorkerLimits

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "FsckIssue",
    "FsckReport",
    "LRUStats",
    "LRUTier",
    "cache_key",
    "code_fingerprint",
    "CheckpointStore",
    "FileCheckpointer",
    "SaturationState",
    "saturation_key",
    "CompileGateway",
    "GatewayConfig",
    "GatewayStats",
    "TenantPolicy",
    "SoakConfig",
    "default_chaos_plan",
    "render_soak_report",
    "run_soak",
    "run_soak_sync",
    "BatchItem",
    "BoundedLog",
    "CompileService",
    "RetryPolicy",
    "ServiceStats",
    "FaultInjection",
    "WorkerLimits",
]
