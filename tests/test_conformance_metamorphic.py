"""Metamorphic layer: semantics-preserving transforms stay green on
the sound compiler, verdicts are deterministic, and a rigged
semantics-*breaking* transform is flagged."""

import pytest

from repro.conformance.fuzzer import conformance_options
from repro.conformance.metamorphic import (
    Transform,
    check_spec,
    default_transforms,
    run_metamorphic,
)
from repro.conformance.mutate import rebuild_spec
from repro.dsl.ast import Term, get, num
from repro.frontend.lift import ArrayDecl
from repro.seeding import stable_rng
from repro.validation.fuzz import random_spec

pytestmark = pytest.mark.property


def _specs(count=2):
    rng = stable_rng(11, "metamorphic-test")
    return [random_spec(rng, i) for i in range(count)]


def _outcome_fields(outcome):
    return (
        outcome.kernel,
        outcome.transform,
        outcome.trials,
        tuple(outcome.mismatches),
        outcome.compile_error,
        outcome.cost_original,
        outcome.cost_transformed,
        outcome.cost_checked,
        outcome.cost_ok,
    )


def test_all_transforms_green_on_sound_compiler():
    outcomes = run_metamorphic(_specs(), conformance_options(seed=0), seed=0)
    assert outcomes, "no metamorphic checks ran"
    assert len(outcomes) == 2 * len(default_transforms())
    failed = [o for o in outcomes if not o.ok]
    assert not failed, [
        (o.kernel, o.transform, o.mismatches or o.compile_error)
        for o in failed
    ]
    # Every outcome actually exercised the oracle.
    assert all(o.trials > 0 for o in outcomes)


def test_metamorphic_verdicts_are_deterministic():
    options = conformance_options(seed=0)
    first = run_metamorphic(_specs(1), options, seed=0)
    second = run_metamorphic(_specs(1), options, seed=0)
    assert list(map(_outcome_fields, first)) == list(
        map(_outcome_fields, second)
    )


def test_semantics_breaking_transform_is_flagged():
    """A transform that reverses the output lanes but *claims* the
    identity lane map must produce mismatches -- proof the layer can
    detect a wrong transform (or a miscompiled variant)."""

    def reverse_but_lie(spec, seed):
        elements = list(spec.term.args)[::-1]
        lied = rebuild_spec(spec.name + "-rev", spec.inputs, elements)
        return lied, list(range(len(elements)))

    broken = Transform("broken-swap", "any", reverse_but_lie)
    spec = rebuild_spec(
        "meta-distinct-lanes",
        (ArrayDecl("a", 2),),
        [get("a", 0), Term("+", (get("a", 1), num(100.0)))],
    )
    outcome = check_spec(spec, broken, conformance_options(seed=0), seed=0)
    assert not outcome.ok
    assert outcome.mismatches
