"""A structured imperative input language.

The paper's frontend is an embedded Racket DSL with first-class
matrix/vector objects (Section 3.1)::

    (define (vector-add-spec A B n)
      (vec-decl 'A n 'input) ...
      (for ([i n]) (vector-set! C i (add (vector-ref A i) ...))))

This module is the Python analogue, for users who prefer a first-class
program object over a traced Python function: a tiny AST of loops,
conditionals, array reads/writes, and scalar arithmetic, where **index
expressions and conditions range over loop variables and compile-time
constants only** (data-independent control flow, the condition under
which symbolic evaluation is exact).  Programs evaluate either
symbolically -- producing the same :class:`~repro.frontend.lift.Spec`
as tracing -- or concretely, for testing.

Example::

    prog = Program(
        "vector-add",
        inputs=[("a", 4), ("b", 4)],
        outputs=[("c", 4)],
        body=[For("i", 4, [
            Store("c", Var("i"), Add(Load("a", Var("i")), Load("b", Var("i")))),
        ])],
    )
    spec = prog.lift()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .lift import ArrayDecl, Shape, Spec, lift
from .symbolic import Scalarish, sym_call, sym_sgn, sym_sqrt

__all__ = [
    "Program",
    "For",
    "If",
    "Store",
    "AddStore",
    "Load",
    "Const",
    "Var",
    "Add",
    "Sub",
    "Mul",
    "Div",
    "Neg",
    "Sqrt",
    "Sgn",
    "CallFn",
    "IdxAdd",
    "IdxSub",
    "IdxMul",
]

# ---------------------------------------------------------------------------
# Index expressions (evaluate to Python ints at lift time)
# ---------------------------------------------------------------------------


class IndexExpr:
    """Base class of compile-time index expressions."""

    def evaluate(self, env: Dict[str, int]) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class Var(IndexExpr):
    """A loop variable reference."""

    name: str

    def evaluate(self, env: Dict[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError as exc:
            raise NameError(f"unbound loop variable {self.name!r}") from exc


@dataclass(frozen=True)
class IdxConst(IndexExpr):
    value: int

    def evaluate(self, env: Dict[str, int]) -> int:
        return self.value


@dataclass(frozen=True)
class _IdxBin(IndexExpr):
    left: IndexExpr
    right: IndexExpr


class IdxAdd(_IdxBin):
    def evaluate(self, env: Dict[str, int]) -> int:
        return self.left.evaluate(env) + self.right.evaluate(env)


class IdxSub(_IdxBin):
    def evaluate(self, env: Dict[str, int]) -> int:
        return self.left.evaluate(env) - self.right.evaluate(env)


class IdxMul(_IdxBin):
    def evaluate(self, env: Dict[str, int]) -> int:
        return self.left.evaluate(env) * self.right.evaluate(env)


def _as_index(value: Union[IndexExpr, int]) -> IndexExpr:
    return IdxConst(value) if isinstance(value, int) else value


# ---------------------------------------------------------------------------
# Value expressions (evaluate to symbolic or concrete scalars)
# ---------------------------------------------------------------------------


class ValueExpr:
    """Base class of scalar value expressions."""

    def evaluate(self, arrays: Dict[str, object], env: Dict[str, int]) -> Scalarish:
        raise NotImplementedError


@dataclass(frozen=True)
class Const(ValueExpr):
    value: float

    def evaluate(self, arrays, env):
        return self.value


@dataclass(frozen=True)
class Load(ValueExpr):
    """Read ``array[index]`` (flat index)."""

    array: str
    index: IndexExpr

    def evaluate(self, arrays, env):
        target = arrays.get(self.array)
        if target is None:
            raise NameError(f"unknown array {self.array!r}")
        flat = self.index.evaluate(env)
        # Output arrays are readable too (accumulation patterns).
        if hasattr(target, "values"):
            return target.values[flat]
        return target.flat(flat)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class _Bin(ValueExpr):
    left: ValueExpr
    right: ValueExpr


class Add(_Bin):
    def evaluate(self, arrays, env):
        return self.left.evaluate(arrays, env) + self.right.evaluate(arrays, env)


class Sub(_Bin):
    def evaluate(self, arrays, env):
        return self.left.evaluate(arrays, env) - self.right.evaluate(arrays, env)


class Mul(_Bin):
    def evaluate(self, arrays, env):
        return self.left.evaluate(arrays, env) * self.right.evaluate(arrays, env)


class Div(_Bin):
    def evaluate(self, arrays, env):
        return self.left.evaluate(arrays, env) / self.right.evaluate(arrays, env)


@dataclass(frozen=True)
class Neg(ValueExpr):
    operand: ValueExpr

    def evaluate(self, arrays, env):
        return -self.operand.evaluate(arrays, env)


@dataclass(frozen=True)
class Sqrt(ValueExpr):
    operand: ValueExpr

    def evaluate(self, arrays, env):
        return sym_sqrt(self.operand.evaluate(arrays, env))


@dataclass(frozen=True)
class Sgn(ValueExpr):
    operand: ValueExpr

    def evaluate(self, arrays, env):
        return sym_sgn(self.operand.evaluate(arrays, env))


@dataclass(frozen=True)
class CallFn(ValueExpr):
    """Application of a user-defined (uninterpreted) function."""

    name: str
    args: Tuple[ValueExpr, ...]

    def evaluate(self, arrays, env):
        return sym_call(self.name, *(a.evaluate(arrays, env) for a in self.args))


# ---------------------------------------------------------------------------
# Conditions over index expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Cmp:
    """Comparison between index expressions: one of <, <=, ==, >=, >."""

    op: str
    left: IndexExpr
    right: IndexExpr

    _OPS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        "==": lambda a, b: a == b,
        ">=": lambda a, b: a >= b,
        ">": lambda a, b: a > b,
    }

    def evaluate(self, env: Dict[str, int]) -> bool:
        try:
            fn = self._OPS[self.op]
        except KeyError as exc:
            raise ValueError(f"unknown comparison {self.op!r}") from exc
        return fn(self.left.evaluate(env), self.right.evaluate(env))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    def run(self, arrays: Dict[str, object], env: Dict[str, int]) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class Store(Statement):
    """``array[index] = value`` (flat index into an output array)."""

    array: str
    index: IndexExpr
    value: ValueExpr

    def run(self, arrays, env):
        target = arrays[self.array]
        if not hasattr(target, "values"):
            raise TypeError(f"cannot store into input array {self.array!r}")
        target.values[self.index.evaluate(env)] = self.value.evaluate(arrays, env)


@dataclass(frozen=True)
class AddStore(Statement):
    """``array[index] += value`` -- the accumulation idiom of the
    paper's convolution example."""

    array: str
    index: IndexExpr
    value: ValueExpr

    def run(self, arrays, env):
        target = arrays[self.array]
        if not hasattr(target, "values"):
            raise TypeError(f"cannot store into input array {self.array!r}")
        flat = self.index.evaluate(env)
        target.values[flat] = target.values[flat] + self.value.evaluate(arrays, env)


@dataclass(frozen=True)
class For(Statement):
    """``for var in range(count): body`` with a compile-time count."""

    var: str
    count: int
    body: Tuple[Statement, ...]

    def __init__(self, var: str, count: int, body: Sequence[Statement]):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "count", count)
        object.__setattr__(self, "body", tuple(body))

    def run(self, arrays, env):
        if self.var in env:
            raise NameError(f"loop variable {self.var!r} shadows an outer loop")
        inner = dict(env)
        for i in range(self.count):
            inner[self.var] = i
            for stmt in self.body:
                stmt.run(arrays, inner)


@dataclass(frozen=True)
class If(Statement):
    """Conditional on index expressions only -- the boundary-condition
    ``if`` of the convolution example (always decidable at lift time)."""

    conditions: Tuple[Cmp, ...]
    body: Tuple[Statement, ...]

    def __init__(self, conditions: Sequence[Cmp], body: Sequence[Statement]):
        object.__setattr__(self, "conditions", tuple(conditions))
        object.__setattr__(self, "body", tuple(body))

    def run(self, arrays, env):
        if all(cond.evaluate(env) for cond in self.conditions):
            for stmt in self.body:
                stmt.run(arrays, env)


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass
class Program:
    """A complete imperative kernel in the structured language."""

    name: str
    inputs: List[Tuple[str, Shape]]
    outputs: List[Tuple[str, Shape]]
    body: List[Statement]

    def _run(self, *arrays: object) -> None:
        names = [n for n, _ in self.inputs] + [n for n, _ in self.outputs]
        table = dict(zip(names, arrays))
        for stmt in self.body:
            stmt.run(table, {})

    def lift(self) -> Spec:
        """Symbolically evaluate the program into a :class:`Spec`."""
        return lift(self.name, self._run, self.inputs, self.outputs)

    def reference(self):
        """The callable form, usable with
        :func:`repro.frontend.lift.run_reference`."""
        return self._run
