"""Equality saturation runner.

Drives the rewrite loop (paper Section 3.3): each iteration searches
every rule against the *frozen* e-graph, applies all resulting matches,
then rebuilds.  The loop stops when

* **saturated** -- no match changed the graph (every rewrite's RHS was
  already equivalent to its LHS), meaning the e-graph now represents
  all programs reachable by any ordering of the rules; or
* a **limit** was hit: iteration count, e-node count (the paper uses a
  10,000,000-node limit), wall-clock time (the paper uses 180 s), or an
  optional traced-memory budget; or
* a rule **crashed** (stop reason :data:`StopReason.ERROR`): the run
  records the failure and leaves the e-graph in its last consistent
  rebuilt state, so extraction still works.

A timed-out run is still useful: extraction operates on the partially
saturated graph (Section 5.5 studies exactly this trade-off; our
Figure 6 reproduction drives this module with varying budgets).  The
fault-tolerance layer (see ``repro/errors.py``) extends the same
stance to crashed runs.

Scheduling is delegated to an egg-style
:class:`repro.egraph.scheduler.BackoffScheduler`: explosive rules are
temporarily banned instead of head-truncated, and the wall-clock
deadline is threaded *into* each rule's search so a single explosive
rule cannot blow far past the budget.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..chaos.inject import chaos_flag, chaos_point
from ..observability import current_session, span
from .egraph import EGraph
from .rewrite import Match, Rewrite
from .scheduler import BackoffScheduler, Deadline, RewriteScheduler, RuleStats

__all__ = ["IterationReport", "RunReport", "Runner", "StopReason"]


class StopReason:
    """Why saturation stopped (plain strings for easy reporting)."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"
    MEMORY_LIMIT = "memory_limit"
    #: A rule's searcher or applier raised; the run stopped early with
    #: the e-graph restored to a consistent state.
    ERROR = "error"


@dataclass
class IterationReport:
    """Statistics for one saturation iteration."""

    index: int
    matches: int
    applied: int
    unions: int
    nodes: int
    classes: int
    elapsed: float
    #: Candidate classes the matchers examined this iteration.
    visited: int = 0
    #: Candidate classes the dirty-set filter pruned this iteration.
    skipped: int = 0
    #: Matches dropped because an identical one was already applied in
    #: an earlier iteration (no-op unions avoided).
    deduped: int = 0


@dataclass
class RunReport:
    """Summary of a saturation run, consumed by Table 1 / Figure 6."""

    stop_reason: str
    iterations: List[IterationReport] = field(default_factory=list)
    total_time: float = 0.0
    nodes: int = 0
    classes: int = 0
    #: Per-rule scheduling statistics (matches, applied, bans) from the
    #: backoff scheduler.
    rule_stats: Dict[str, RuleStats] = field(default_factory=dict)
    #: When ``stop_reason == StopReason.ERROR``: a description of the
    #: failure and the rule that caused it.
    error: Optional[str] = None
    failed_rule: Optional[str] = None
    #: Set when the run restored a persisted checkpoint: the iteration
    #: index it resumed at (completed iterations were skipped).
    resumed_from: Optional[int] = None
    #: Cumulative e-node counter (``EGraph.version``) when the run
    #: started / finished.  ``final_version`` is the figure the node
    #: watchdog compares against ``node_limit``, so phased-saturation
    #: reports use it as the per-phase "peak nodes" measure.
    seed_version: int = 0
    final_version: int = 0

    @property
    def saturated(self) -> bool:
        return self.stop_reason == StopReason.SATURATED

    @property
    def timed_out(self) -> bool:
        return self.stop_reason in (
            StopReason.TIME_LIMIT,
            StopReason.NODE_LIMIT,
            StopReason.MEMORY_LIMIT,
        )

    @property
    def errored(self) -> bool:
        return self.stop_reason == StopReason.ERROR

    def banned_rules(self) -> List[str]:
        """Rules the backoff scheduler banned at least once."""
        return sorted(
            name for name, s in self.rule_stats.items() if s.times_banned > 0
        )

    def summary(self) -> str:
        if not self.iterations:
            head = f"stopped before the first iteration ({self.stop_reason})"
        else:
            head = (
                f"{len(self.iterations)} iteration(s), "
                f"stopped: {self.stop_reason}"
            )
        text = (
            f"{head}, {self.nodes} nodes, {self.classes} classes, "
            f"{self.total_time:.2f}s"
        )
        if self.error:
            text += f" [error in {self.failed_rule or '?'}: {self.error}]"
        banned = self.banned_rules()
        if banned:
            text += f" [backoff banned: {', '.join(banned)}]"
        return text


class Runner:
    """Configurable saturation loop.

    Parameters mirror egg's ``Runner``: ``iter_limit`` bounds the number
    of iterations, ``node_limit`` bounds total e-nodes, ``time_limit``
    (seconds) bounds wall-clock time.  ``match_limit`` is the backoff
    scheduler's per-rule match budget: a rule exceeding it in one
    iteration is banned for exponentially growing stretches (egg's
    ``BackoffScheduler``); ``None`` disables banning.  An explicit
    ``scheduler`` instance overrides both (pass one to read its stats
    after the run, or to share ban state across runs).

    Fault tolerance: by default (``catch_errors=True``) an exception
    raised by a rule's searcher or applier stops the run with
    ``StopReason.ERROR`` instead of propagating; the e-graph is left in
    a consistent state -- rebuilt in place, or restored from the last
    end-of-iteration checkpoint when ``checkpoint=True``.  Extraction
    on the surviving graph is always sound.

    Watchdogs: the wall-clock deadline is checked between rules, *inside*
    rule search (cooperatively, via :class:`Deadline`), and inside the
    apply loop; the node budget is checked per applied match; the
    optional ``memory_limit_bytes`` is checked against ``tracemalloc``
    (when tracing is active) inside the apply loop.
    """

    #: How many applied matches between deadline/memory polls in the
    #: apply loop (a balance between overhead and responsiveness).
    _WATCHDOG_STRIDE = 64

    #: Cap on distinct e-class shape signatures recorded per run (the
    #: conformance coverage feed; see ``EGraph.shape_signatures``).
    _SHAPE_LIMIT = 512

    def __init__(
        self,
        rules: Sequence[Rewrite],
        iter_limit: int = 30,
        node_limit: int = 100_000,
        time_limit: Optional[float] = None,
        match_limit: Optional[int] = None,
        scheduler: Optional[RewriteScheduler] = None,
        memory_limit_bytes: Optional[int] = None,
        catch_errors: bool = True,
        checkpoint: bool = False,
        checkpoint_stride: int = 1,
        incremental: bool = True,
        rescan_stride: int = 16,
        dedup_matches: bool = True,
        persist=None,
    ) -> None:
        if not rules:
            raise ValueError("Runner needs at least one rewrite rule")
        if checkpoint_stride <= 0:
            raise ValueError("checkpoint_stride must be positive")
        self.rules = list(rules)
        self.iter_limit = iter_limit
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.match_limit = match_limit
        self.scheduler = scheduler
        self.memory_limit_bytes = memory_limit_bytes
        self.catch_errors = catch_errors
        self.checkpoint = checkpoint
        self.checkpoint_stride = checkpoint_stride
        self.incremental = incremental
        self.rescan_stride = rescan_stride
        self.dedup_matches = dedup_matches
        #: Optional persistent checkpointer (duck-typed ``load`` /
        #: ``save`` / ``delete``; see
        #: :class:`repro.service.checkpoint.FileCheckpointer`).  When
        #: set, the end-of-iteration state is serialized every
        #: ``checkpoint_stride`` iterations and a fresh run that finds a
        #: surviving file *resumes* from it -- the crash-recovery path
        #: of DESIGN.md §11.
        self.persist = persist

    def _make_scheduler(self) -> RewriteScheduler:
        if self.scheduler is not None:
            return self.scheduler
        return BackoffScheduler(
            match_limit=self.match_limit,
            incremental=self.incremental,
            rescan_stride=self.rescan_stride,
        )

    def run(self, egraph: EGraph) -> RunReport:
        """Saturate ``egraph`` in place and return a report.

        When an observability session is active (see
        :mod:`repro.observability`), the run streams per-iteration
        snapshots and watchdog/ban/error events into the saturation
        flight recorder, so *any* stop reason -- including a crash that
        propagates out of here -- leaves a post-mortem.
        """
        report = RunReport(stop_reason=StopReason.ITERATION_LIMIT)
        report.seed_version = egraph.version
        scheduler = self._make_scheduler()
        report.rule_stats = scheduler.stats
        session = current_session()
        if session is not None:
            # Scheduler ban decisions flow into the recorder/trace.
            scheduler.observer = session.record_event
        start = time.perf_counter()
        deadline = Deadline.after(self.time_limit)

        # Cross-iteration match-dedup memory; restored together with the
        # graph on resume so a continuation dedups exactly like the
        # uninterrupted run would have.
        applied_keys: set = set()
        start_iteration = 0
        if self.persist is not None:
            state = self.persist.load()
            if state is not None:
                egraph.restore_from(state.egraph)
                applied_keys = set(state.applied_keys)
                scheduler.rebind(egraph, dict(state.rule_stats))
                report.rule_stats = scheduler.stats
                report.iterations = list(state.iterations)
                report.resumed_from = start_iteration = state.next_iteration
                self._emit(
                    session,
                    "checkpoint_resume",
                    iteration=start_iteration,
                    nodes=egraph.num_nodes,
                )

        snapshot: Optional[EGraph] = egraph.copy() if self.checkpoint else None

        try:
            self._loop(
                egraph, report, scheduler, deadline, snapshot,
                applied_keys, start_iteration,
            )
        except Exception as exc:  # noqa: BLE001 - fault-tolerance boundary
            self._recover(egraph, report, snapshot, exc)
            if not self.catch_errors:
                self._finish(report, egraph, start, session)
                raise

        self._finish(report, egraph, start, session)
        if self.persist is not None:
            # The run delivered a result; the checkpoint is consumed.
            # (On a crash we never get here, which is the point.)
            self.persist.delete()
        return report

    # ------------------------------------------------------------------

    def _loop(
        self,
        egraph: EGraph,
        report: RunReport,
        scheduler: RewriteScheduler,
        deadline: Deadline,
        snapshot: Optional[EGraph],
        applied_keys: set,
        start_iteration: int = 0,
    ) -> None:
        session = current_session()
        if deadline.expired() and self.iter_limit == 0:
            # Zero-budget run: report the time limit, not an iteration
            # "limit" that was never exercised.
            report.stop_reason = StopReason.TIME_LIMIT
            return

        # ``applied_keys`` holds effects already applied in earlier
        # iterations, keyed by rule name + canonicalized dedup key.  A
        # saturated rule re-reports the same matches forever; skipping
        # them saves the (no-op) build+union cost every iteration.

        for index in range(start_iteration, self.iter_limit):
            iter_start = time.perf_counter()
            chaos_point("runner.iteration")
            visited_before, skipped_before = self._matcher_totals(scheduler)

            if deadline.expired():
                report.stop_reason = StopReason.TIME_LIMIT
                self._emit(session, "deadline_expired", where="iteration_start",
                           iteration=index)
                break
            if self._over_memory():
                # Also polled between iterations: the in-apply poll only
                # runs every _WATCHDOG_STRIDE applied matches, which a
                # small graph may never reach.
                report.stop_reason = StopReason.MEMORY_LIMIT
                self._emit(session, "watchdog_trip",
                           limit=StopReason.MEMORY_LIMIT, iteration=index,
                           nodes=egraph.num_nodes)
                break

            # Phase 1: search every rule against the frozen graph.  The
            # deadline is threaded into each search so e-matching can
            # yield mid-rule.
            all_matches: List[Match] = []
            current_rule: Optional[Rewrite] = None
            try:
                for rule in self.rules:
                    current_rule = rule
                    all_matches.extend(
                        scheduler.search_rewrite(index, egraph, rule, deadline)
                    )
                    if deadline.expired():
                        break
            except Exception as exc:
                # Search never mutates the graph, so it is still the
                # last consistent rebuilt state: record and stop.
                report.stop_reason = StopReason.ERROR
                report.error = f"{type(exc).__name__}: {exc}"
                report.failed_rule = current_rule.name if current_rule else None
                self._emit(session, "rule_crash", phase="search",
                           rule=report.failed_rule, error=report.error,
                           iteration=index)
                if not self.catch_errors:
                    raise
                break
            if deadline.expired():
                report.stop_reason = StopReason.TIME_LIMIT
                self._emit(session, "deadline_expired", where="mid_search",
                           iteration=index)
                # Apply nothing on a mid-search timeout: the graph stays
                # consistent and extraction proceeds on what we have.
                break

            # Phase 2: apply all matches, then rebuild once.  Node,
            # time, and memory watchdogs run inside the loop so one
            # iteration's apply phase cannot blow past the budgets.
            applied = 0
            unions = 0
            deduped = 0
            stop_mid_apply: Optional[str] = None
            failing_match: Optional[Match] = None
            try:
                for match in all_matches:
                    failing_match = match
                    if self.dedup_matches and match.dedup_key is not None:
                        key = (match.rule_name,) + _canonical_key(
                            egraph, match.dedup_key
                        )
                        if key in applied_keys:
                            deduped += 1
                            continue
                        applied_keys.add(key)
                    new_id = match.build(egraph)
                    applied += 1
                    if new_id is not None and egraph.union(match.eclass, new_id):
                        unions += 1
                    if egraph.version >= self.node_limit:
                        stop_mid_apply = StopReason.NODE_LIMIT
                        break
                    if applied % self._WATCHDOG_STRIDE == 0:
                        if deadline.expired():
                            stop_mid_apply = StopReason.TIME_LIMIT
                            break
                        if self._over_memory():
                            stop_mid_apply = StopReason.MEMORY_LIMIT
                            break
            except Exception as exc:
                # A crashing applier may leave partially built RHS
                # nodes and pending unions behind; a rebuild (or the
                # checkpoint) restores full consistency.
                report.stop_reason = StopReason.ERROR
                report.error = f"{type(exc).__name__}: {exc}"
                report.failed_rule = (
                    failing_match.rule_name if failing_match else None
                )
                self._emit(session, "rule_crash", phase="apply",
                           rule=report.failed_rule, error=report.error,
                           iteration=index,
                           recovery="checkpoint" if snapshot is not None
                           else "rebuild")
                if snapshot is not None:
                    egraph.restore_from(snapshot)
                else:
                    egraph.rebuild()
                if not self.catch_errors:
                    raise
                break
            egraph.rebuild()

            visited_after, skipped_after = self._matcher_totals(scheduler)
            report.iterations.append(
                IterationReport(
                    index=index,
                    matches=len(all_matches),
                    applied=applied,
                    unions=unions,
                    nodes=egraph.num_nodes,
                    classes=egraph.num_classes,
                    elapsed=time.perf_counter() - iter_start,
                    visited=visited_after - visited_before,
                    skipped=skipped_after - skipped_before,
                    deduped=deduped,
                )
            )
            self._observe_iteration(session, report.iterations[-1])
            if snapshot is not None and (index + 1) % self.checkpoint_stride == 0:
                # Checkpoint the consistent post-rebuild state; an
                # error in a later iteration rolls back to here.  With
                # a stride > 1 the copy is amortized over several
                # iterations -- rollback then loses at most
                # ``checkpoint_stride - 1`` iterations of work.
                snapshot = egraph.copy()
            if self.persist is not None and (index + 1) % self.checkpoint_stride == 0:
                self._persist_state(
                    egraph, report, scheduler, applied_keys, index + 1, session
                )

            if stop_mid_apply is not None:
                report.stop_reason = stop_mid_apply
                self._emit(session, "watchdog_trip", limit=stop_mid_apply,
                           iteration=index, nodes=egraph.num_nodes)
                break
            if unions == 0 and scheduler.can_stop(index):
                report.stop_reason = StopReason.SATURATED
                self._emit(session, "saturated", iteration=index,
                           nodes=egraph.num_nodes)
                break

    # ------------------------------------------------------------------

    def _persist_state(
        self,
        egraph: EGraph,
        report: RunReport,
        scheduler: RewriteScheduler,
        applied_keys: set,
        next_iteration: int,
        session,
    ) -> None:
        """Serialize the consistent end-of-iteration state through
        ``self.persist``.  A failed save is observable but never fatal:
        the run simply continues with one less recovery point."""
        # Lazy import: repro.service imports this module at load time.
        from ..service.checkpoint import SaturationState

        saved = self.persist.save(
            SaturationState(
                next_iteration=next_iteration,
                egraph=egraph,
                applied_keys=applied_keys,
                rule_stats=scheduler.stats,
                iterations=report.iterations,
            )
        )
        self._emit(
            session,
            "checkpoint_persisted" if saved else "checkpoint_persist_failed",
            iteration=next_iteration,
            nodes=egraph.num_nodes,
        )

    def _recover(
        self,
        egraph: EGraph,
        report: RunReport,
        snapshot: Optional[EGraph],
        exc: Exception,
    ) -> None:
        """Last-resort recovery for exceptions escaping the per-phase
        handlers (e.g. a crash inside ``rebuild`` itself)."""
        if report.stop_reason != StopReason.ERROR:
            report.stop_reason = StopReason.ERROR
            report.error = f"{type(exc).__name__}: {exc}"
        self._emit(current_session(), "runner_crash", error=report.error)
        if snapshot is not None:
            egraph.restore_from(snapshot)
        else:
            try:
                egraph.rebuild()
            except Exception:  # pragma: no cover - graph beyond repair
                pass

    def _finish(
        self,
        report: RunReport,
        egraph: EGraph,
        start: float,
        session=None,
    ) -> None:
        report.total_time = time.perf_counter() - start
        report.nodes = egraph.num_nodes
        report.classes = egraph.num_classes
        report.final_version = egraph.version
        if session is None:
            return
        if session.recorder is not None:
            session.recorder.record_rule_stats(report.rule_stats)
            session.recorder.record_stop(report.stop_reason)
            # Final-graph shape signatures feed the conformance coverage
            # map (see repro/conformance/coverage.py); capped so the
            # recorder dump stays bounded on explosive runs.
            session.recorder.record_event(
                "egraph_shapes",
                signatures=egraph.shape_signatures(limit=self._SHAPE_LIMIT),
            )
        if session.metrics is not None:
            m = session.metrics
            m.counter(
                "repro_saturation_iterations_total",
                "Saturation iterations executed",
            ).inc(len(report.iterations))
            m.counter(
                "repro_saturation_matches_total", "Rewrite matches found"
            ).inc(sum(it.matches for it in report.iterations))
            m.counter(
                "repro_saturation_unions_total", "E-class unions performed"
            ).inc(sum(it.unions for it in report.iterations))
            m.counter(
                "repro_saturation_stops_total",
                "Saturation runs, by stop reason",
                labels=("reason",),
            ).labels(reason=report.stop_reason).inc()

    @staticmethod
    def _emit(session, kind: str, **details) -> None:
        """Record a discrete saturation event (ban, watchdog, crash) on
        the ambient observability session, if any."""
        if session is not None:
            session.record_event(kind, **details)

    @staticmethod
    def _observe_iteration(session, it: IterationReport) -> None:
        if session is None:
            return
        if session.recorder is not None:
            session.recorder.record_iteration(
                it.index,
                nodes=it.nodes,
                classes=it.classes,
                matches=it.matches,
                applied=it.applied,
                unions=it.unions,
                elapsed=it.elapsed,
                visited=it.visited,
                skipped=it.skipped,
                deduped=it.deduped,
            )
        if session.tracer is not None:
            # An instant marker per iteration on the enclosing
            # saturation span (visible in chrome://tracing).
            session.tracer.event(
                "iteration",
                index=it.index,
                nodes=it.nodes,
                matches=it.matches,
                unions=it.unions,
            )

    def _over_memory(self) -> bool:
        if chaos_flag("runner.memory"):
            return True
        if self.memory_limit_bytes is None or not tracemalloc.is_tracing():
            return False
        current, _ = tracemalloc.get_traced_memory()
        return current >= self.memory_limit_bytes

    @staticmethod
    def _matcher_totals(scheduler: RewriteScheduler) -> "tuple[int, int]":
        visited = sum(s.classes_visited for s in scheduler.stats.values())
        skipped = sum(s.classes_skipped for s in scheduler.stats.values())
        return visited, skipped


def _canonical_key(egraph: EGraph, key: tuple) -> tuple:
    """Canonicalize a match dedup key: non-negative ints are e-class
    ids and collapse to their representative; nested tuples recurse;
    everything else (strings, negative sentinel ints) passes through.

    ``type(x) is int`` deliberately excludes ``bool`` (an ``int``
    subclass) so boolean flags in keys are never fed to ``find``.
    """
    out = []
    for x in key:
        if type(x) is tuple:
            out.append(_canonical_key(egraph, x))
        elif type(x) is int and x >= 0:
            out.append(egraph.find(x))
        else:
            out.append(x)
    return tuple(out)
