"""Crash-recoverable saturation checkpoints.

*Sketch-Guided Equality Saturation* (PAPERS.md) argues that monolithic
saturation runs are fragile and should be resumable; this module makes
our runner's end-of-iteration checkpoint **survive the process that
took it**.  The in-memory snapshot (``Runner.checkpoint``) protects
against a crashing *rule*; a :class:`FileCheckpointer` additionally
protects against a dying *worker*: the supervisor's retry after a
``WorkerCrashError`` / ``WorkerTimeoutError`` resumes saturation from
the last persisted iteration instead of iteration 0, and the resumed
run's extraction is byte-identical to an uninterrupted run (asserted
by ``tests/test_checkpoint_resume.py``).

Layout mirrors the artifact cache's durability contract: content-keyed
file names, atomic temp-file + ``os.replace`` publication, an embedded
SHA-256 checksum, and a read path where *every* failure mode degrades
to "no checkpoint" (counted), never a crash or a wrong resume.

The content key (:func:`saturation_key`) covers the spec, the code
version, and every option that changes what saturation *computes* --
but deliberately **excludes** the shrinking budgets (``node_limit``,
``time_limit``) and the differential ``seed``, because the supervisor's
retry policy shrinks exactly those: a retry at a smaller budget must
still find the checkpoint its bigger predecessor wrote.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..chaos.inject import chaos_point
from .cache import code_fingerprint, spec_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compiler import CompileOptions
    from ..egraph.egraph import EGraph
    from ..egraph.runner import IterationReport
    from ..egraph.scheduler import RuleStats
    from ..frontend.lift import Spec

__all__ = [
    "CHECKPOINT_SCHEMA",
    "SaturationState",
    "CheckpointStats",
    "FileCheckpointer",
    "CheckpointStore",
    "saturation_key",
    "phase_saturation_key",
]

CHECKPOINT_SCHEMA = "repro-satckpt-v1"
_MAGIC = b"RPROCKPT1\n"
_SUFFIX = ".satckpt"

#: ``CompileOptions`` fields excluded from the checkpoint key: the
#: retry policy shrinks the budgets and shifts the seed between
#: attempts, and the remainder configure observability / recovery
#: plumbing, not the saturation trajectory.
_KEY_EXCLUDED = (
    "node_limit",
    "time_limit",
    "seed",
    "observability",
    "checkpoint_dir",
    "deadline",
    "validate",
    "validation_retry_trials",
    "track_memory",
)


@dataclass
class SaturationState:
    """Everything a runner needs to continue a saturation run exactly
    where a dead predecessor left off.

    ``egraph`` is the consistent post-rebuild graph; ``applied_keys``
    the cross-iteration match-dedup set; ``rule_stats`` the scheduler's
    per-rule cursors and ban state.  All three are restored together:
    the continuation then searches, dedups, bans, and saturates exactly
    as the uninterrupted run would have (this is what makes the resumed
    extraction byte-identical)."""

    next_iteration: int
    egraph: "EGraph"
    applied_keys: set
    rule_stats: Dict[str, "RuleStats"]
    iterations: List["IterationReport"] = field(default_factory=list)
    schema: str = CHECKPOINT_SCHEMA


@dataclass
class CheckpointStats:
    """Counters for one checkpointer (surfaced in diagnostics/tests)."""

    saves: int = 0
    save_failures: int = 0
    loads: int = 0
    misses: int = 0
    corrupt: int = 0
    deletes: int = 0


class FileCheckpointer:
    """Atomic, checksummed persistence of one saturation run's state.

    The write path must never turn a healthy compile into a failure:
    any save error (disk full, unpicklable rule residue, a chaos-
    injected ``ENOSPC``) is swallowed into ``stats.save_failures`` and
    the run simply continues without that checkpoint.  The read path
    treats any integrity failure as "no checkpoint" and quarantines
    the corrupt file so it cannot mis-count again.
    """

    def __init__(self, path: str, key: str) -> None:
        self.path = path
        self.key = key
        self.stats = CheckpointStats()

    # ------------------------------------------------------------ write

    def save(self, state: SaturationState) -> bool:
        try:
            chaos_point("checkpoint.write")
            payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            header = json.dumps(
                {
                    "schema": CHECKPOINT_SCHEMA,
                    "key": self.key,
                    "next_iteration": state.next_iteration,
                    "sha256": hashlib.sha256(payload).hexdigest(),
                },
                sort_keys=True,
            ).encode()
            blob = _MAGIC + header + b"\n" + payload
            directory = os.path.dirname(self.path) or "."
            fd, tmp_path = tempfile.mkstemp(
                prefix=".tmp-" + os.path.basename(self.path), dir=directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except Exception:
            self.stats.save_failures += 1
            return False
        self.stats.saves += 1
        return True

    # ------------------------------------------------------------- read

    def load(self) -> Optional[SaturationState]:
        try:
            with open(self.path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            blob = chaos_point("checkpoint.read", blob)
            state = self._decode(blob)
        except Exception:
            self.stats.corrupt += 1
            self._quarantine()
            return None
        self.stats.loads += 1
        return state

    def _decode(self, blob: bytes) -> SaturationState:
        if not blob.startswith(_MAGIC):
            raise ValueError("bad magic")
        rest = blob[len(_MAGIC):]
        newline = rest.index(b"\n")
        header = json.loads(rest[:newline].decode())
        payload = rest[newline + 1:]
        if header.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError("schema mismatch")
        if header.get("key") != self.key:
            raise ValueError("key mismatch")
        if header.get("sha256") != hashlib.sha256(payload).hexdigest():
            raise ValueError("checksum mismatch")
        state = pickle.loads(payload)
        if not isinstance(state, SaturationState):
            raise ValueError("payload is not a SaturationState")
        return state

    def _quarantine(self) -> None:
        try:
            os.replace(self.path, self.path + ".corrupt")
        except OSError:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    # ------------------------------------------------------- management

    def delete(self) -> None:
        """Remove the checkpoint (a completed run consumed it)."""
        try:
            os.unlink(self.path)
            self.stats.deletes += 1
        except OSError:
            pass

    def exists(self) -> bool:
        return os.path.exists(self.path)


class CheckpointStore:
    """Directory of content-keyed saturation checkpoints."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def checkpointer_for(
        self, spec: "Spec", options: "CompileOptions"
    ) -> FileCheckpointer:
        key = saturation_key(spec, options)
        return FileCheckpointer(os.path.join(self.root, key + _SUFFIX), key)

    def checkpointer_for_phase(
        self,
        spec: "Spec",
        options: "CompileOptions",
        plan_fingerprint: str,
        phase_index: int,
        round_index: int,
    ) -> FileCheckpointer:
        key = phase_saturation_key(
            spec, options, plan_fingerprint, phase_index, round_index
        )
        return FileCheckpointer(os.path.join(self.root, key + _SUFFIX), key)

    def entries(self) -> List[str]:
        return sorted(
            name for name in os.listdir(self.root) if name.endswith(_SUFFIX)
        )

    def clear(self) -> int:
        removed = 0
        for name in os.listdir(self.root):
            if (
                name.endswith(_SUFFIX)
                or name.endswith(".corrupt")
                or name.startswith(".tmp-")
            ):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed


def saturation_key(spec: "Spec", options: "CompileOptions") -> str:
    """Content key of one saturation trajectory.

    Everything that changes which e-graph iteration N produces is in;
    the retry-shrunk budgets and post-saturation knobs are out (see the
    module docstring).  ``iter_limit`` is also excluded: a checkpoint
    taken at iteration K is a valid resume point for *any* iteration
    budget -- a shrunk retry with ``iter_limit < K`` simply extracts
    from the restored graph immediately.
    """
    payload: Dict[str, Any] = {}
    for key, value in sorted(vars(options).items()):
        if key in _KEY_EXCLUDED or key == "iter_limit":
            continue
        if key == "extra_rules":
            value = [getattr(r, "name", repr(r)) for r in value]
        elif key == "cost_config":
            value = repr(value)
        payload[key] = value
    text = json.dumps(payload, sort_keys=True, default=repr)
    joined = "|".join(
        (
            CHECKPOINT_SCHEMA,
            code_fingerprint(),
            spec_fingerprint(spec),
            hashlib.sha256(text.encode()).hexdigest(),
        )
    )
    return hashlib.sha256(joined.encode()).hexdigest()


def phase_saturation_key(
    spec: "Spec",
    options: "CompileOptions",
    plan_fingerprint: str,
    phase_index: int,
    round_index: int,
) -> str:
    """Content key for one *phase round* of a phased saturation run.

    Phased compilation runs several saturations per compile, each
    seeded from the previous phase's extracted term.  Every one needs
    its own checkpoint identity: a resume that replayed a phase-1
    checkpoint into a phase-2 graph would restore the wrong trajectory
    and silently diverge from the uninterrupted run.  The key therefore
    extends the base :func:`saturation_key` with

    * the **plan fingerprint** -- editing the plan (budgets, sketches,
      rule tags) invalidates every phase checkpoint at once;
    * the **phase index** -- a phase only ever resumes itself;
    * the **extend-round index** -- rounds within a phase re-seed fresh
      graphs, so a round-2 checkpoint is just as wrong for round 3 as a
      phase-1 checkpoint is for phase 2.

    Everything upstream of a crashed phase round is recomputed
    deterministically on resume (the executor re-runs completed phases
    from the original spec; each re-run saturates identically), so the
    interrupted round's checkpoint is the only state that must survive
    -- and this key guarantees it is found by exactly that round.
    """
    joined = "|".join(
        (
            saturation_key(spec, options),
            "phase",
            plan_fingerprint,
            str(phase_index),
            str(round_index),
        )
    )
    return hashlib.sha256(joined.encode()).hexdigest()
