"""VLIW list scheduling for straight-line kernels.

The real Fusion G3 is a VLIW machine and the vendor compiler bundles
independent operations into multi-issue instruction words -- one
reason hand-scheduled scalar code is sometimes surprisingly fast in
the paper's evaluation (Section 5.6 credits the vendor's "more heavily
optimized scalar code").  The sequential simulator in
:mod:`repro.machine.simulator` deliberately ignores this; this module
adds the missing piece as an *analysis*: a classic latency-aware list
scheduler that packs a straight-line IR kernel into issue bundles and
reports the resulting schedule length.

Model:

* each instruction belongs to a functional unit (``scalar``,
  ``vector``, ``memory``, ``move``);
* each cycle issues at most ``MachineConfig-issue`` slots per unit
  (defaults mirror a G3-like 3-way VLIW: one vector ALU, one
  load/store, one scalar ALU, with in-register moves sharing the
  vector unit);
* the cost-table value of an opcode is its *latency*: dependents may
  issue only after it completes, but the unit is pipelined (one issue
  per cycle per slot).

The scheduler never changes program semantics -- it only computes a
tighter cycle bound.  ``schedule(program)`` returns both the bundles
(for inspection/codegen) and the schedule length, and
:func:`scheduled_cycles` is the one-call summary used by the VLIW
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend import vir
from .config import MachineConfig, fusion_g3

__all__ = ["FunctionalUnit", "Schedule", "schedule", "scheduled_cycles", "unit_of"]


class FunctionalUnit:
    SCALAR = "scalar"
    VECTOR = "vector"
    MEMORY = "memory"
    MOVE = "move"


#: Default slots per unit per cycle (a 3-way VLIW word: one memory
#: access, one vector ALU op, one scalar ALU op; register moves and
#: shuffles share the vector unit's permute network).
DEFAULT_SLOTS: Dict[str, int] = {
    FunctionalUnit.SCALAR: 1,
    FunctionalUnit.VECTOR: 1,
    FunctionalUnit.MEMORY: 1,
    FunctionalUnit.MOVE: 1,
}


def unit_of(instr: vir.Instr) -> str:
    """Functional unit an instruction occupies."""
    opcode = instr.opcode
    if opcode.startswith(("sload", "sstore", "vload", "vstore")):
        return FunctionalUnit.MEMORY
    if opcode.startswith(("vbin", "vun", "vmac")):
        return FunctionalUnit.VECTOR
    if opcode.startswith(("vshuffle", "vselect", "vinsert", "vsplat", "vconst")):
        return FunctionalUnit.MOVE
    return FunctionalUnit.SCALAR


@dataclass
class Schedule:
    """The result of list scheduling one straight-line kernel."""

    #: bundle index -> instructions issued that cycle.
    bundles: List[List[vir.Instr]]
    #: Total cycles: last issue cycle + latency of the longest tail op.
    length: float
    #: Sequential cycles (sum of latencies), for comparison.
    sequential: float

    @property
    def ilp(self) -> float:
        """Achieved instruction-level parallelism (sequential /
        scheduled)."""
        return self.sequential / self.length if self.length else 1.0


def schedule(
    program: vir.Program,
    machine: Optional[MachineConfig] = None,
    slots: Optional[Dict[str, int]] = None,
) -> Schedule:
    """Greedy latency-weighted list scheduling.

    Raises ``ValueError`` on programs with control flow (schedule
    regions would need a CFG; Diospyros output is straight-line).
    """
    machine = machine or fusion_g3()
    slots = dict(slots or DEFAULT_SLOTS)
    if not program.is_straight_line():
        raise ValueError("list scheduling requires a straight-line program")

    instrs = list(program.instructions)
    n = len(instrs)
    if n == 0:
        return Schedule(bundles=[], length=0.0, sequential=0.0)

    # Dependence edges: true (def->use), output (def->def), and
    # anti/output dependences through memory (store->store, and the
    # conservative store<->load ordering per array).
    last_def: Dict[str, int] = {}
    last_store: Dict[str, int] = {}
    loads_since_store: Dict[str, List[int]] = {}
    preds: List[List[int]] = [[] for _ in range(n)]

    def _array_of(instr) -> Optional[str]:
        return getattr(instr, "array", None)

    for i, instr in enumerate(instrs):
        for reg in instr.uses():
            if reg in last_def:
                preds[i].append(last_def[reg])
        for reg in instr.defs():
            if reg in last_def:
                preds[i].append(last_def[reg])  # output dependence
            last_def[reg] = i
        array = _array_of(instr)
        if array is not None:
            is_store = instr.opcode.startswith(("sstore", "vstore"))
            if is_store:
                if array in last_store:
                    preds[i].append(last_store[array])
                for load in loads_since_store.get(array, ()):
                    preds[i].append(load)
                last_store[array] = i
                loads_since_store[array] = []
            else:
                if array in last_store:
                    preds[i].append(last_store[array])
                loads_since_store.setdefault(array, []).append(i)

    latency = [max(1.0, machine.cost(instr.opcode)) for instr in instrs]
    sequential = sum(machine.cost(instr.opcode) for instr in instrs)

    # Priority: critical-path height.
    succs: List[List[int]] = [[] for _ in range(n)]
    for i, ps in enumerate(preds):
        for p in ps:
            succs[p].append(i)
    height = [0.0] * n
    for i in range(n - 1, -1, -1):
        tail = max((height[s] for s in succs[i]), default=0.0)
        height[i] = latency[i] + tail

    indegree = [len(set(ps)) for ps in preds]
    preds_sets = [set(ps) for ps in preds]
    ready_time = [0.0] * n  # earliest cycle the instruction may issue
    finished = [0.0] * n
    remaining = set(range(n))
    issued_at: Dict[int, float] = {}
    bundles: Dict[int, List[vir.Instr]] = {}

    cycle = 0.0
    ready = [i for i in remaining if indegree[i] == 0]
    while remaining:
        # Instructions whose operands are available this cycle, by
        # priority (critical path first).
        available = sorted(
            (i for i in ready if ready_time[i] <= cycle),
            key=lambda i: -height[i],
        )
        used: Dict[str, int] = {}
        issued_this_cycle = []
        for i in available:
            unit = unit_of(instrs[i])
            if used.get(unit, 0) >= slots.get(unit, 1):
                continue
            used[unit] = used.get(unit, 0) + 1
            issued_this_cycle.append(i)
        if issued_this_cycle:
            bundles.setdefault(int(cycle), []).extend(
                instrs[i] for i in issued_this_cycle
            )
        for i in issued_this_cycle:
            issued_at[i] = cycle
            finished[i] = cycle + latency[i]
            remaining.discard(i)
            ready.remove(i)
            for s in succs[i]:
                preds_sets[s].discard(i)
                ready_time[s] = max(ready_time[s], finished[i])
                if not preds_sets[s] and s in remaining and s not in ready:
                    ready.append(s)
        if not issued_this_cycle:
            # Stall until the next operand becomes available.
            pending = [ready_time[i] for i in ready if ready_time[i] > cycle]
            cycle = min(pending) if pending else cycle + 1.0
        else:
            cycle += 1.0

    length = max(finished) if n else 0.0
    ordered = [bundles[k] for k in sorted(bundles)]
    return Schedule(bundles=ordered, length=length, sequential=sequential)


def scheduled_cycles(
    program: vir.Program, machine: Optional[MachineConfig] = None
) -> float:
    """Schedule length of a straight-line kernel under the default
    VLIW slot configuration."""
    return schedule(program, machine).length
