"""Chaos campaign and invariant-catalog tests.

The headline test runs the pinned-seed smoke campaign -- >= 6 distinct
fault actions crossed with the three built-in kernels -- and requires
zero invariant violations, exactly what the ``chaos-smoke`` CI job
gates on.  The rest unit-tests each invariant checker against both a
healthy and a violating input, so a red campaign can be trusted to
mean what it says.
"""

import json
from types import SimpleNamespace

import pytest

from repro.chaos import FaultPlan, FaultSpec, active_plan, clear_plan
from repro.chaos.campaign import (
    CampaignCell,
    default_kernels,
    default_matrix,
    run_campaign,
    smoke_matrix,
)
from repro.chaos.invariants import (
    INVARIANTS,
    check_breaker_log,
    check_cache_integrity,
    check_ladder,
    check_typed_error,
    check_wallclock,
)
from repro.errors import SaturationError
from repro.service import ArtifactCache


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    clear_plan()
    yield
    clear_plan()


# ------------------------------------------------------------ checkers


def test_typed_error_checker():
    assert check_typed_error("c", None) == []
    assert check_typed_error("c", SaturationError("boom")) == []
    bad = check_typed_error("c", ValueError("boom"))
    assert len(bad) == 1 and bad[0].invariant == "typed-errors"


def test_wallclock_checker():
    assert check_wallclock("c", 1.0, 60.0) == []
    bad = check_wallclock("c", 61.0, 60.0)
    assert len(bad) == 1 and bad[0].invariant == "bounded-wallclock"


def test_ladder_checker():
    ok = SimpleNamespace(
        program=[1], c_code="int x;", diagnostics=SimpleNamespace()
    )
    assert check_ladder("c", ok, None) == []
    # neither result nor error
    assert [v.invariant for v in check_ladder("c", None, None)] == [
        "ladder-terminates"
    ]
    # both at once
    assert check_ladder("c", ok, SaturationError("x"))
    # unusable "result"
    hollow = SimpleNamespace(program=[], c_code="", diagnostics=None)
    bad = check_ladder("c", hollow, None)
    assert len(bad) == 1 and "not usable" in bad[0].detail


def test_breaker_log_checker_accepts_legal_protocol():
    log = [
        {"kernel": "k", "event": "strike", "strikes": 1},
        {"kernel": "k", "event": "strike", "strikes": 2},
        {"kernel": "k", "event": "open", "strikes": 2},
        {"kernel": "k", "event": "reject", "strikes": 2},
        {"kernel": "k", "event": "reset", "strikes": 0},
        {"kernel": "k", "event": "strike", "strikes": 1},
        {"kernel": "k", "event": "close", "strikes": 0},
    ]
    assert check_breaker_log("c", log, threshold=2) == []


@pytest.mark.parametrize(
    "log, fragment",
    [
        ([{"kernel": "k", "event": "strike", "strikes": 2}], "jumped"),
        ([{"kernel": "k", "event": "open", "strikes": 1}], "below the threshold"),
        ([{"kernel": "k", "event": "reject", "strikes": 0}], "breaker closed"),
        ([{"kernel": "k", "event": "meltdown", "strikes": 0}], "unknown"),
        (
            [
                {"kernel": "k", "event": "strike", "strikes": 1},
                {"kernel": "k", "event": "strike", "strikes": 2},
                {"kernel": "k", "event": "open", "strikes": 2},
                {"kernel": "k", "event": "open", "strikes": 2},
            ],
            "twice",
        ),
    ],
)
def test_breaker_log_checker_flags_illegal_transitions(log, fragment):
    bad = check_breaker_log("c", log, threshold=2)
    assert bad and all(v.invariant == "breaker-legality" for v in bad)
    assert any(fragment in v.detail for v in bad)


def test_cache_integrity_checker(tmp_path):
    assert check_cache_integrity("c", None) == []
    cache = ArtifactCache(str(tmp_path))
    assert check_cache_integrity("c", cache) == []
    # Plant a well-named but garbage entry: fsck must flag it corrupt.
    bad = tmp_path / ("0" * 64 + ".rcache")
    bad.write_bytes(b"not a cache entry at all")
    violations = check_cache_integrity("c", cache)
    assert len(violations) == 1
    assert violations[0].invariant == "cache-integrity"


def test_invariant_catalog_is_complete():
    assert set(INVARIANTS) == {
        "typed-errors",
        "cache-integrity",
        "breaker-legality",
        "bounded-wallclock",
        "ladder-terminates",
        "bounded-queue",
        "no-starvation",
        "phase-resume-identical",
    }


# ------------------------------------------------------------ campaign


def test_smoke_campaign_pinned_seed_zero_violations():
    """The acceptance gate: >= 6 fault actions x >= 3 kernels under a
    pinned seed, every cell green, every scheduled fault observed."""
    report = run_campaign(seed=0, matrix=smoke_matrix())
    assert report.ok, "\n".join(str(v) for v in report.violations)
    assert len(report.fault_actions) >= 6
    assert len(report.kernels) >= 3
    assert all(cell.fired for cell in report.cells), (
        "every cell's fault must actually fire: "
        + ", ".join(c.cell for c in report.cells if not c.fired)
    )
    # The report round-trips through JSON (the CI artifact format).
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["ok"] is True
    assert len(payload["cells"]) == len(report.cells)


def test_campaign_is_deterministic_for_a_seed():
    cell = [
        CampaignCell(
            "cache.read",
            "corrupt",
            (FaultSpec("cache.read", "corrupt"),),
            prime_cache=True,
        )
    ]
    kernels = default_kernels()[:1]
    first = run_campaign(seed=9, kernels=kernels, matrix=cell)
    second = run_campaign(seed=9, kernels=kernels, matrix=cell)
    assert [c.fired for c in first.cells] == [c.fired for c in second.cells]
    assert first.ok and second.ok


def test_default_matrix_covers_every_seam_family():
    matrix = default_matrix()
    sites = {c.site for c in matrix}
    assert {
        "cache.read",
        "cache.write",
        "worker.spawn",
        "worker.result",
        "runner.iteration",
        "runner.memory",
        "checkpoint.write",
        "checkpoint.read",
        "extract.start",
        "lower.start",
        "validate.lane",
    } <= sites
    actions = {c.action for c in matrix}
    assert len(actions) >= 6
    # Process-killing faults may only be scheduled on isolated cells.
    for cell in matrix:
        if any(s.action == "sigkill" for s in cell.specs):
            assert cell.isolate, f"{cell.name} SIGKILLs without isolation"
