"""Naive baseline kernels (paper Figure 5's *Naive* and *Naive
(fixed size)* bars).

* :func:`naive_parametric` -- the loop nest as written, with runtime
  sizes: loop counters, bounds checks, and address arithmetic all paid
  at run time.  This models compiling the reference C with variable
  array dimensions.  Loop-invariant subexpressions are hoisted one
  level (row bases, transposed-filter bases), as ``-O3``'s LICM would.
* :func:`naive_fixed` -- the same source with sizes fixed at compile
  time (the paper's ``#define`` variant): loops unroll away entirely
  and source-level locals are register-allocated, but no algebraic CSE
  happens and input elements are re-loaded on each use (no alias
  information).  Implemented by register-tracing the reference kernel
  (:mod:`repro.baselines.trace`).

QProd has no loops, so its parametric and fixed variants coincide
except for load caching.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..backend import vir
from ..backend.vir import Program
from ..kernels.base import Kernel
from .loops import LoopEmitter
from .trace import trace_kernel

__all__ = ["naive_parametric", "naive_fixed"]


def naive_fixed(kernel: Kernel) -> Program:
    """Fixed-size naive compilation: fully unrolled scalar code."""
    return trace_kernel(kernel, "naive-fixed", cache_loads=False)


def naive_parametric(kernel: Kernel) -> Program:
    """Parametric-size naive compilation: genuine loops."""
    builders: Dict[str, Callable[[Kernel], Program]] = {
        "2DConv": _conv_loops,
        "MatMul": _matmul_loops,
        "QRDecomp": _qr_loops,
        "QProd": lambda k: trace_kernel(k, "naive", cache_loads=False),
    }
    try:
        builder = builders[kernel.category]
    except KeyError as exc:
        raise ValueError(f"no naive baseline for category {kernel.category!r}") from exc
    return builder(kernel)


def _program_for(kernel: Kernel, suffix: str) -> Program:
    spec = kernel.spec()
    return Program(
        name=f"{kernel.name}-{suffix}",
        inputs={d.name: d.length for d in spec.inputs},
        outputs={"out": spec.n_outputs},
        vector_width=4,
    )


def _conv_loops(kernel: Kernel) -> Program:
    """The Section 2 loop nest, parametric sizes."""
    p = kernel.params
    i_rows, i_cols = p["i_rows"], p["i_cols"]
    f_rows, f_cols = p["f_rows"], p["f_cols"]
    o_cols = i_cols + f_cols - 1
    o_rows = i_rows + f_rows - 1

    program = _program_for(kernel, "naive")
    em = LoopEmitter(program)
    zero = em.const(0)
    ir_reg = em.const(i_rows)
    ic_reg = em.const(i_cols)
    frm1 = em.const(f_rows - 1)
    fcm1 = em.const(f_cols - 1)
    oc_reg = em.const(o_cols)
    fc_reg = em.const(f_cols)

    def o_row_body(o_row: str) -> None:
        out_row_base = em.mul(o_row, oc_reg)

        def o_col_body(o_col: str) -> None:
            acc = em.const(0.0)

            def f_row_body(f_row: str) -> None:
                f_rt = em.binary("-", frm1, f_row)
                i_row = em.binary("-", o_row, f_rt)

                def row_ok() -> None:
                    i_row_base = em.mul(i_row, ic_reg)
                    f_rt_base = em.mul(f_rt, fc_reg)

                    def f_col_body(f_col: str) -> None:
                        f_ct = em.binary("-", fcm1, f_col)
                        i_col = em.binary("-", o_col, f_ct)

                        def col_ok() -> None:
                            in_val = em.load_idx(
                                "i", em.add(i_row_base, i_col)
                            )
                            f_val = em.load_idx("f", em.add(f_rt_base, f_ct))
                            prod = em.mul(in_val, f_val)
                            em.program.emit(vir.SBin("+", acc, acc, prod))

                        em.guard(
                            [("ge", i_col, zero), ("lt", i_col, ic_reg)], col_ok
                        )

                    em.loop(f_cols, f_col_body)

                em.guard([("ge", i_row, zero), ("lt", i_row, ir_reg)], row_ok)

            em.loop(f_rows, f_row_body)
            em.store_idx("out", em.add(out_row_base, o_col), acc)

        em.loop(o_cols, o_col_body)

    em.loop(o_rows, o_row_body)
    return program


def _matmul_loops(kernel: Kernel) -> Program:
    """The classic triple loop, parametric sizes, with the inner
    B-column walk strength-reduced (index += n per step)."""
    p = kernel.params
    m, k, n = p["m"], p["k"], p["n"]

    program = _program_for(kernel, "naive")
    em = LoopEmitter(program)
    k_reg = em.const(k)
    n_reg = em.const(n)

    def row_body(i: str) -> None:
        a_row_base = em.mul(i, k_reg)
        c_row_base = em.mul(i, n_reg)

        def col_body(j: str) -> None:
            acc = em.const(0.0)
            b_idx = em.binary("+", j, em.const(0))  # running B index

            def inner_body(kk: str) -> None:
                a_val = em.load_idx("a", em.add(a_row_base, kk))
                b_val = em.load_idx("b", b_idx)
                prod = em.mul(a_val, b_val)
                em.program.emit(vir.SBin("+", acc, acc, prod))
                em.program.emit(vir.SBin("+", b_idx, b_idx, n_reg))

            em.loop(k, inner_body)
            em.store_idx("out", em.add(c_row_base, j), acc)

        em.loop(n, col_body)

    em.loop(m, row_body)
    return program


def _qr_loops(kernel: Kernel) -> Program:
    """Householder QR with runtime loops (the generic-library shape).

    Works in place on the combined output buffer: ``out[0..n*n)`` is Q
    (initialized to the identity), ``out[n*n..2*n*n)`` is R
    (initialized to a copy of A); the Householder vector lives in a
    scratch buffer.
    """
    n = kernel.params["n"]
    program = _program_for(kernel, "naive")
    # Scratch space for the reflection vector (zeroed at startup).
    program.outputs["vwork"] = n
    em = LoopEmitter(program)

    n_reg = em.const(n)
    zero_f = em.const(0.0)
    one_f = em.const(1.0)
    two_f = em.const(2.0)
    r_base = n * n  # R's offset inside the combined buffer

    # Q = I; R = A.
    def init_row(i: str) -> None:
        row_base = em.mul(i, n_reg)

        def init_col(j: str) -> None:
            idx = em.add(row_base, j)
            a_val = em.load_idx("a", idx)
            em.store_idx("out", idx, a_val, offset=r_base)

        em.loop(n, init_col)
        diag = em.add(row_base, i)
        em.store_idx("out", diag, one_f)

    em.loop(n, init_row)

    def reflection(k: str) -> None:
        # norm_sq = sum_{i>=k} R[i][k]^2
        norm_sq = em.const(0.0)

        def norm_body(i: str) -> None:
            def in_range() -> None:
                val = em.load_idx("out", em.add(em.mul(i, n_reg), k), offset=r_base)
                sq = em.mul(val, val)
                em.program.emit(vir.SBin("+", norm_sq, norm_sq, sq))

            em.guard([("ge", i, k)], in_range)

        em.loop(n, norm_body)
        norm = em.unary("sqrt", norm_sq)
        rkk = em.load_idx("out", em.add(em.mul(k, n_reg), k), offset=r_base)
        alpha = em.unary("neg", em.mul(em.unary("sgn", rkk), norm))

        # v[k] = R[k][k] - alpha; v[i>k] = R[i][k]; vtv = sum v^2.
        vk = em.binary("-", rkk, alpha)
        em.store_idx("vwork", k, vk)

        def v_body(i: str) -> None:
            def strictly_below() -> None:
                val = em.load_idx("out", em.add(em.mul(i, n_reg), k), offset=r_base)
                em.store_idx("vwork", i, val)

            em.guard([("gt", i, k)], strictly_below)

        em.loop(n, v_body)
        vtv = em.const(0.0)

        def vtv_body(i: str) -> None:
            def in_range() -> None:
                v_val = em.load_idx("vwork", i)
                sq = em.mul(v_val, v_val)
                em.program.emit(vir.SBin("+", vtv, vtv, sq))

            em.guard([("ge", i, k)], in_range)

        em.loop(n, vtv_body)
        beta = em.binary("/", two_f, vtv)

        # R <- (I - beta v v^T) R
        def r_col(j: str) -> None:
            dot = em.const(0.0)

            def dot_body(i: str) -> None:
                def in_range() -> None:
                    v_val = em.load_idx("vwork", i)
                    r_val = em.load_idx(
                        "out", em.add(em.mul(i, n_reg), j), offset=r_base
                    )
                    em.program.emit(
                        vir.SBin("+", dot, dot, em.mul(v_val, r_val))
                    )

                em.guard([("ge", i, k)], in_range)

            em.loop(n, dot_body)
            scaled = em.mul(beta, dot)

            def upd_body(i: str) -> None:
                def in_range() -> None:
                    idx = em.add(em.mul(i, n_reg), j)
                    v_val = em.load_idx("vwork", i)
                    r_val = em.load_idx("out", idx, offset=r_base)
                    new = em.binary("-", r_val, em.mul(scaled, v_val))
                    em.store_idx("out", idx, new, offset=r_base)

                em.guard([("ge", i, k)], in_range)

            em.loop(n, upd_body)

        em.loop(n, r_col)

        # Q <- Q (I - beta v v^T)
        def q_row(i: str) -> None:
            row_base = em.mul(i, n_reg)
            dot = em.const(0.0)

            def dot_body(j: str) -> None:
                def in_range() -> None:
                    q_val = em.load_idx("out", em.add(row_base, j))
                    v_val = em.load_idx("vwork", j)
                    em.program.emit(
                        vir.SBin("+", dot, dot, em.mul(q_val, v_val))
                    )

                em.guard([("ge", j, k)], in_range)

            em.loop(n, dot_body)
            scaled = em.mul(beta, dot)

            def upd_body(j: str) -> None:
                def in_range() -> None:
                    idx = em.add(row_base, j)
                    q_val = em.load_idx("out", idx)
                    v_val = em.load_idx("vwork", j)
                    new = em.binary("-", q_val, em.mul(scaled, v_val))
                    em.store_idx("out", idx, new)

                em.guard([("ge", j, k)], in_range)

            em.loop(n, upd_body)

        em.loop(n, q_row)

        # Reset the scratch vector for the next reflection.
        def clear_body(i: str) -> None:
            em.store_idx("vwork", i, zero_f)

        em.loop(n, clear_body)

    em.loop(n - 1, reflection)
    return program
