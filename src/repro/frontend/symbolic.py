"""Symbolic values for lifting imperative reference kernels.

Diospyros lifts an imperative scalar program into the vector DSL by
*symbolically evaluating* it (paper Section 3.1, using Rosette).  For
the kernels the paper targets, all control flow is independent of the
input data, so symbolic evaluation reduces to *tracing*: run the
reference program on :class:`Sym` values whose arithmetic builds DSL
terms instead of computing numbers, and read the resulting expressions
out of the output matrix.

A reference kernel is therefore just a Python function::

    def vector_add(a, b, out):
        for i in range(len(out)):
            out[i] = a[i] + b[i]

which runs unchanged on concrete numpy arrays *and* on symbolic arrays
-- the property the paper exploits to execute references "for use in
validation or testing" (Section 3.1).

The module performs light *peephole* simplification while tracing
(``x + 0 -> x``, ``x * 1 -> x``, ``x * 0 -> 0``, constant folding).
This mirrors how Rosette's evaluator never materializes the trivial
parts of an accumulation like ``out[i] += ...`` starting from zero, and
keeps lifted specs free of noise the rewriter would otherwise have to
clean up.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..dsl import ast
from ..dsl.ast import Term
from ..dsl.ops import scalar_eval

__all__ = [
    "Sym",
    "SymbolicArray",
    "OutputArray",
    "wrap",
    "sym_sqrt",
    "sym_sgn",
    "sym_call",
]

Scalarish = Union["Sym", int, float]


def wrap(value: Scalarish) -> "Sym":
    """Coerce a Python number (or pass through a :class:`Sym`)."""
    if isinstance(value, Sym):
        return value
    if isinstance(value, (int, float)):
        return Sym(ast.num(value))
    raise TypeError(f"cannot use {type(value).__name__} as a symbolic scalar")


def _binary(op: str, left: Scalarish, right: Scalarish) -> "Sym":
    a, b = wrap(left).term, wrap(right).term
    # Constant folding.
    if a.is_num and b.is_num and op != "/":
        return Sym(ast.num(scalar_eval(op, float(a.value), float(b.value))))
    if a.is_num and b.is_num and op == "/" and b.value != 0:
        return Sym(ast.num(float(a.value) / float(b.value)))
    # Peephole identities (sound over the reals, like the rewrite rules).
    if op == "+":
        if a.is_zero():
            return Sym(b)
        if b.is_zero():
            return Sym(a)
    elif op == "-":
        if b.is_zero():
            return Sym(a)
    elif op == "*":
        if a.is_zero() or b.is_zero():
            return Sym(ast.num(0))
        if a.is_one():
            return Sym(b)
        if b.is_one():
            return Sym(a)
    elif op == "/":
        if b.is_one():
            return Sym(a)
    return Sym(Term(op, (a, b)))


class Sym:
    """A symbolic scalar: a thin arithmetic wrapper around a DSL term."""

    __slots__ = ("term",)

    def __init__(self, term: Term) -> None:
        self.term = term

    def __repr__(self) -> str:
        return f"Sym({self.term.to_sexpr()})"

    # Arithmetic -- each operation builds a term.
    def __add__(self, other: Scalarish) -> "Sym":
        return _binary("+", self, other)

    def __radd__(self, other: Scalarish) -> "Sym":
        return _binary("+", other, self)

    def __sub__(self, other: Scalarish) -> "Sym":
        return _binary("-", self, other)

    def __rsub__(self, other: Scalarish) -> "Sym":
        return _binary("-", other, self)

    def __mul__(self, other: Scalarish) -> "Sym":
        return _binary("*", self, other)

    def __rmul__(self, other: Scalarish) -> "Sym":
        return _binary("*", other, self)

    def __truediv__(self, other: Scalarish) -> "Sym":
        return _binary("/", self, other)

    def __rtruediv__(self, other: Scalarish) -> "Sym":
        return _binary("/", other, self)

    def __neg__(self) -> "Sym":
        if self.term.is_num:
            return Sym(ast.num(-float(self.term.value)))
        return Sym(ast.neg(self.term))

    def __pos__(self) -> "Sym":
        return self

    # Comparisons on symbolic values would make control flow
    # data-dependent, which tracing cannot lift; fail loudly.
    def _no_compare(self, other: object) -> bool:
        raise TypeError(
            "data-dependent control flow cannot be lifted symbolically; "
            "restructure the kernel so branches depend only on loop "
            "indices and compile-time sizes (paper Section 3.1)"
        )

    __lt__ = __le__ = __gt__ = __ge__ = _no_compare

    def __bool__(self) -> bool:
        self._no_compare(None)
        return False  # pragma: no cover


def sym_sqrt(value):
    """Square root usable on symbolic, concrete, and traced values.

    Dispatches on the value's kind so that the *same* reference kernel
    source runs under lifting (:class:`Sym`), concrete testing
    (floats), and the baselines' register tracing (any object exposing
    ``__repro_sqrt__``).
    """
    if isinstance(value, (int, float)):
        return math.sqrt(value)
    hook = getattr(value, "__repro_sqrt__", None)
    if hook is not None:
        return hook()
    t = wrap(value).term
    if t.is_num:
        return Sym(ast.num(math.sqrt(float(t.value))))
    return Sym(ast.sqrt(t))


def sym_sgn(value):
    """Sign function usable on symbolic, concrete, and traced values
    (see :func:`sym_sqrt` for the dispatch contract)."""
    if isinstance(value, (int, float)):
        return scalar_eval("sgn", float(value))
    hook = getattr(value, "__repro_sgn__", None)
    if hook is not None:
        return hook()
    t = wrap(value).term
    if t.is_num:
        return Sym(ast.num(scalar_eval("sgn", float(t.value))))
    return Sym(ast.sgn(t))


def sym_call(name: str, *args: Scalarish) -> Sym:
    """Apply a user-defined (uninterpreted) function symbolically."""
    return Sym(ast.call(name, *(wrap(a).term for a in args)))


class SymbolicArray:
    """A read-only symbolic input array.

    Supports flat indexing ``a[i]`` and, when a 2-D ``shape`` is given,
    row-major pair indexing ``a[r, c]`` / ``a[r][c]`` (returning a
    symbolic row view).  Every read produces a ``(Get name index)``
    term -- the DSL's memory-access primitive.
    """

    def __init__(self, name: str, length: int, shape: Optional[Tuple[int, ...]] = None):
        if length <= 0:
            raise ValueError(f"array {name!r} must have positive length")
        if shape is not None:
            expected = 1
            for dim in shape:
                expected *= dim
            if expected != length:
                raise ValueError(
                    f"shape {shape} has {expected} elements, length is {length}"
                )
        self.name = name
        self.length = length
        self.shape = shape

    def __len__(self) -> int:
        if self.shape is not None:
            return self.shape[0]
        return self.length

    def _flat(self, index: int) -> Sym:
        if not 0 <= index < self.length:
            raise IndexError(f"{self.name}[{index}] out of range 0..{self.length - 1}")
        return Sym(ast.get(self.name, index))

    def flat(self, index: int) -> Sym:
        """Read by flat (row-major) index regardless of declared shape."""
        return self._flat(index)

    def __getitem__(self, index: Union[int, Tuple[int, int]]) -> Union[Sym, "_RowView"]:
        if isinstance(index, tuple):
            row, col = index
            return self._pair(row, col)
        if self.shape is not None and len(self.shape) == 2:
            return _RowView(self, index)
        return self._flat(index)

    def _pair(self, row: int, col: int) -> Sym:
        if self.shape is None or len(self.shape) != 2:
            raise TypeError(f"array {self.name!r} has no 2-D shape")
        rows, cols = self.shape
        if not (0 <= row < rows and 0 <= col < cols):
            raise IndexError(f"{self.name}[{row}][{col}] out of range {self.shape}")
        return self._flat(row * cols + col)

    def __iter__(self) -> Iterator[Union[Sym, "_RowView"]]:
        return (self[i] for i in range(len(self)))


class _RowView:
    """One row of a 2-D :class:`SymbolicArray` (read-only)."""

    def __init__(self, array: SymbolicArray, row: int) -> None:
        rows = array.shape[0]  # type: ignore[index]
        if not 0 <= row < rows:
            raise IndexError(f"{array.name}[{row}] out of range")
        self.array = array
        self.row = row

    def __len__(self) -> int:
        return self.array.shape[1]  # type: ignore[index]

    def __getitem__(self, col: int) -> Sym:
        return self.array._pair(self.row, col)

    def __iter__(self) -> Iterator[Sym]:
        return (self[c] for c in range(len(self)))


class OutputArray:
    """A mutable output matrix accumulating symbolic (or concrete)
    values, initialized to zero like a C output buffer.

    Supports the same flat / pair indexing as :class:`SymbolicArray`,
    plus item assignment, so reference kernels can use the natural
    ``out[r][c] += ...`` style.
    """

    def __init__(self, length: int, shape: Optional[Tuple[int, ...]] = None):
        if length <= 0:
            raise ValueError("output array must have positive length")
        self.length = length
        self.shape = shape
        self.values: List[Scalarish] = [0.0] * length

    def __len__(self) -> int:
        if self.shape is not None:
            return self.shape[0]
        return self.length

    def _flat_index(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"output[{index}] out of range 0..{self.length - 1}")
        return index

    def __getitem__(self, index: Union[int, Tuple[int, int]]):
        if isinstance(index, tuple):
            row, col = index
            return self.values[self._pair_index(row, col)]
        if self.shape is not None and len(self.shape) == 2:
            return _OutRowView(self, index)
        return self.values[self._flat_index(index)]

    def __setitem__(self, index: Union[int, Tuple[int, int]], value: Scalarish):
        if isinstance(index, tuple):
            row, col = index
            self.values[self._pair_index(row, col)] = value
        else:
            self.values[self._flat_index(index)] = value

    def _pair_index(self, row: int, col: int) -> int:
        if self.shape is None or len(self.shape) != 2:
            raise TypeError("output array has no 2-D shape")
        rows, cols = self.shape
        if not (0 <= row < rows and 0 <= col < cols):
            raise IndexError(f"output[{row}][{col}] out of range {self.shape}")
        return row * cols + col

    def terms(self) -> List[Term]:
        """The symbolic expression of every output element (constants
        for elements never written)."""
        return [wrap(v).term for v in self.values]


class _OutRowView:
    """One row of a 2-D :class:`OutputArray` (read-write)."""

    def __init__(self, array: OutputArray, row: int) -> None:
        rows = array.shape[0]  # type: ignore[index]
        if not 0 <= row < rows:
            raise IndexError(f"output[{row}] out of range")
        self.array = array
        self.row = row

    def __len__(self) -> int:
        return self.array.shape[1]  # type: ignore[index]

    def __getitem__(self, col: int) -> Scalarish:
        return self.array.values[self.array._pair_index(self.row, col)]

    def __setitem__(self, col: int, value: Scalarish) -> None:
        self.array.values[self.array._pair_index(self.row, col)] = value
