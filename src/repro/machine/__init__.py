"""Simulated DSP target: machine configuration and cycle-level
simulator (our substitute for the licensed ``xt-run``; see DESIGN.md
substitution table)."""

from .config import MachineConfig, fusion_g3, no_shuffle_machine, static_cycles
from .scheduler import Schedule, schedule, scheduled_cycles
from .simulator import SimulationResult, Simulator, simulate

__all__ = [
    "MachineConfig",
    "static_cycles",
    "Schedule",
    "schedule",
    "scheduled_cycles",
    "fusion_g3",
    "no_shuffle_machine",
    "SimulationResult",
    "Simulator",
    "simulate",
]
