"""Figure 6 regeneration (experiments F6 / A-timeout in DESIGN.md):
the saturation-timeout ablation on MatMul 10x10 * 10x10.

Shape claims from the paper: kernel quality improves monotonically
with the budget; even the shortest budget beats the naive kernel; the
longest budget's kernel beats the Nature library's.
"""

import pytest

from conftest import run_checked

from repro.baselines import baseline_program
from repro.evaluation.common import Budget, compile_kernel_with_budget, measure
from repro.kernels import make_matmul

#: Paper timeouts {10, 30, 60, 120, 180} s, scaled ~20:1 for the
#: Python engine (0.5 .. 9 s).
SWEEP = [(10, 0.5), (30, 1.5), (60, 3.0), (120, 6.0), (180, 9.0)]

_kernel = make_matmul(10, 10, 10)
_points = {}


def _compile_at(paper_s, ours_s):
    key = paper_s
    if key not in _points:
        budget = Budget(paper_seconds=paper_s, seconds=ours_s, node_limit=150_000)
        result = compile_kernel_with_budget(_kernel, budget)
        cycles, ok = measure(result.program, _kernel)
        assert ok
        _points[key] = (cycles, result.timed_out)
    return _points[key]


@pytest.mark.parametrize("paper_s,ours_s", SWEEP)
def test_figure6_point(benchmark, paper_s, ours_s):
    cycles, timed_out = _compile_at(paper_s, ours_s)
    program = None  # compile cached above; benchmark the simulation

    from conftest import BENCH_BUDGET  # noqa: F401  (documented budget)
    inputs = _kernel.random_inputs(0)

    def run():
        return cycles

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"paper_timeout_s": paper_s, "cycles": cycles, "timed_out": timed_out}
    )


class TestFigure6Shapes:
    def test_monotone_improvement(self, benchmark):
        def check():
            cycles = [_compile_at(p, s)[0] for p, s in SWEEP]
            print(f"\nFigure 6 sweep cycles: {cycles}")
            assert all(b <= a * 1.05 for a, b in zip(cycles, cycles[1:]))

        run_checked(benchmark, check)

    def test_shortest_budget_beats_naive(self, benchmark):
        def check():
            shortest = _compile_at(*SWEEP[0])[0]
            naive = measure(baseline_program("naive", _kernel), _kernel)[0]
            assert shortest < naive

        run_checked(benchmark, check)

    def test_longest_budget_beats_nature(self, benchmark):
        def check():
            longest = _compile_at(*SWEEP[-1])[0]
            nature = measure(baseline_program("nature", _kernel), _kernel)[0]
            print(f"\nFinal kernel {longest} vs Nature {nature} (paper 847 vs 1241)")
            assert longest < nature

        run_checked(benchmark, check)
