"""Goal sketches: shape predicates over DSL terms.

*Sketch-Guided Equality Saturation* (PAPERS.md) steers each phase of a
phased saturation run toward a *sketch* -- a partial description of
what the program should look like after the phase ("contains a
``VecMAC``", "no scalar ``*`` under a ``Concat``").  This module is
the sketch language: small, picklable combinator objects with

* :meth:`Sketch.satisfied` -- does an extracted term meet the goal?
* :meth:`Sketch.score`     -- how close is it, in ``[0, 1]``?  The
  executor records the score per phase and uses it to decide whether
  an ``extend`` on-miss policy made progress.
* :meth:`Sketch.required_ops` / :meth:`Sketch.forbidden_ops` -- the
  operator hints the phase executor turns into an extraction bias
  (reward the ops the sketch wants present, penalize the ops it wants
  gone), so the *extractor* pulls the e-graph toward the sketch even
  when the cost model alone would prefer a pre-phase shape.

Sketches are deliberately plain classes (no lambdas, no closures):
they ride inside ``PhasePlan`` through pickle across the worker
boundary and into checkpoint keys, so they need structural ``repr``/
equality and nothing process-local.

Everything is also JSON round-trippable (:func:`sketch_from_json` /
:meth:`Sketch.to_json`) for the ``--phase-plan`` CLI knob.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, Tuple

from ..dsl.ast import Term

__all__ = [
    "Sketch",
    "Contains",
    "CountAtLeast",
    "NoneOf",
    "NoneUnder",
    "Not",
    "All",
    "AnyOf",
    "op_counts",
    "sketch_from_json",
]


def _unique_nodes(term: Term) -> Iterator[Term]:
    """Every unique subterm (DAG nodes, not tree occurrences)."""
    seen = set()
    stack = [term]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        yield current
        stack.extend(current.args)


def op_counts(term: Term) -> Dict[str, int]:
    """Operator histogram over the term's unique subterms."""
    counts: Dict[str, int] = {}
    for node in _unique_nodes(term):
        counts[node.op] = counts.get(node.op, 0) + 1
    return counts


class Sketch:
    """Base sketch.  Subclasses are immutable and compare by repr."""

    def satisfied(self, term: Term) -> bool:
        return self.score(term) >= 1.0

    def score(self, term: Term) -> float:
        raise NotImplementedError

    def required_ops(self) -> FrozenSet[str]:
        """Ops whose *presence* this sketch asks for (bias: reward)."""
        return frozenset()

    def forbidden_ops(self) -> FrozenSet[str]:
        """Ops whose *absence* this sketch asks for (bias: penalize)."""
        return frozenset()

    def to_json(self) -> Dict[str, Any]:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash(repr(self))


class Contains(Sketch):
    """The term contains at least one node with operator ``op``."""

    def __init__(self, op: str) -> None:
        self.op = op

    def score(self, term: Term) -> float:
        return 1.0 if op_counts(term).get(self.op, 0) > 0 else 0.0

    def required_ops(self) -> FrozenSet[str]:
        return frozenset((self.op,))

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "contains", "op": self.op}

    def __repr__(self) -> str:
        return f"Contains({self.op!r})"


class CountAtLeast(Sketch):
    """At least ``count`` unique nodes with operator ``op``.

    The score is the fraction attained, which gives the extend policy a
    progress signal long before the goal is met.
    """

    def __init__(self, op: str, count: int) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.op = op
        self.count = count

    def score(self, term: Term) -> float:
        return min(1.0, op_counts(term).get(self.op, 0) / self.count)

    def required_ops(self) -> FrozenSet[str]:
        return frozenset((self.op,))

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "count", "op": self.op, "count": self.count}

    def __repr__(self) -> str:
        return f"CountAtLeast({self.op!r}, {self.count})"


class NoneOf(Sketch):
    """No node anywhere in the term uses any of ``ops``.

    This is the workhorse goal of cleanup-style phases ("no scalar
    arithmetic left").  The score decays with the number of offending
    nodes so shrinking the violation set counts as progress.
    """

    def __init__(self, ops: Iterable[str]) -> None:
        self.ops: Tuple[str, ...] = tuple(sorted(set(ops)))
        if not self.ops:
            raise ValueError("NoneOf needs at least one operator")

    def _violations(self, term: Term) -> int:
        counts = op_counts(term)
        return sum(counts.get(op, 0) for op in self.ops)

    def score(self, term: Term) -> float:
        bad = self._violations(term)
        return 1.0 if bad == 0 else 1.0 / (1.0 + bad)

    def forbidden_ops(self) -> FrozenSet[str]:
        return frozenset(self.ops)

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "none", "ops": list(self.ops)}

    def __repr__(self) -> str:
        return f"NoneOf({list(self.ops)!r})"


class NoneUnder(Sketch):
    """No node with an op in ``ops`` in any subtree rooted at ``under``.

    The scoped variant of :class:`NoneOf` -- e.g. "no scalar ``*``
    under a ``Concat``" tolerates scalar multiplies in a pre-amble but
    not inside the vectorized region.
    """

    def __init__(self, under: str, ops: Iterable[str]) -> None:
        self.under = under
        self.ops: Tuple[str, ...] = tuple(sorted(set(ops)))
        if not self.ops:
            raise ValueError("NoneUnder needs at least one operator")

    def _violations(self, term: Term) -> int:
        banned = set(self.ops)
        bad = set()
        for node in _unique_nodes(term):
            if node.op != self.under:
                continue
            for sub in _unique_nodes(node):
                if sub.op in banned:
                    bad.add(sub)
        return len(bad)

    def score(self, term: Term) -> float:
        bad = self._violations(term)
        return 1.0 if bad == 0 else 1.0 / (1.0 + bad)

    def forbidden_ops(self) -> FrozenSet[str]:
        return frozenset(self.ops)

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "none-under", "under": self.under, "ops": list(self.ops)}

    def __repr__(self) -> str:
        return f"NoneUnder({self.under!r}, {list(self.ops)!r})"


class Not(Sketch):
    """Negation.  Required/forbidden hints swap sides."""

    def __init__(self, inner: Sketch) -> None:
        self.inner = inner

    def score(self, term: Term) -> float:
        return 1.0 - self.inner.score(term)

    def required_ops(self) -> FrozenSet[str]:
        return self.inner.forbidden_ops()

    def forbidden_ops(self) -> FrozenSet[str]:
        return self.inner.required_ops()

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "not", "of": self.inner.to_json()}

    def __repr__(self) -> str:
        return f"Not({self.inner!r})"


class _Junction(Sketch):
    def __init__(self, *parts: Sketch) -> None:
        if not parts:
            raise ValueError(f"{type(self).__name__} needs at least one part")
        self.parts: Tuple[Sketch, ...] = tuple(parts)

    def required_ops(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for part in self.parts:
            out = out | part.required_ops()
        return out

    def forbidden_ops(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for part in self.parts:
            out = out | part.forbidden_ops()
        return out

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self.parts)
        return f"{type(self).__name__}({inner})"


class All(_Junction):
    """Conjunction: satisfied when every part is; score is the mean."""

    def satisfied(self, term: Term) -> bool:
        return all(part.satisfied(term) for part in self.parts)

    def score(self, term: Term) -> float:
        return sum(part.score(term) for part in self.parts) / len(self.parts)

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "all", "parts": [p.to_json() for p in self.parts]}


class AnyOf(_Junction):
    """Disjunction: satisfied when any part is; score is the max."""

    def satisfied(self, term: Term) -> bool:
        return any(part.satisfied(term) for part in self.parts)

    def score(self, term: Term) -> float:
        return max(part.score(term) for part in self.parts)

    def to_json(self) -> Dict[str, Any]:
        return {"kind": "any", "parts": [p.to_json() for p in self.parts]}


def sketch_from_json(obj: Dict[str, Any]) -> Sketch:
    """Inverse of :meth:`Sketch.to_json` (the ``--phase-plan`` format)."""
    kind = obj.get("kind")
    if kind == "contains":
        return Contains(obj["op"])
    if kind == "count":
        return CountAtLeast(obj["op"], int(obj["count"]))
    if kind == "none":
        return NoneOf(obj["ops"])
    if kind == "none-under":
        return NoneUnder(obj["under"], obj["ops"])
    if kind == "not":
        return Not(sketch_from_json(obj["of"]))
    if kind == "all":
        return All(*(sketch_from_json(p) for p in obj["parts"]))
    if kind == "any":
        return AnyOf(*(sketch_from_json(p) for p in obj["parts"]))
    raise ValueError(f"unknown sketch kind: {kind!r}")
