"""Frontend: scalar reference kernels and symbolic lifting
(paper Section 3.1).

* :mod:`repro.frontend.symbolic` -- symbolic scalars and arrays for
  tracing-based symbolic evaluation.
* :mod:`repro.frontend.lift`     -- :func:`lift` reference kernels into
  vector-DSL specs; concrete execution for testing.
* :mod:`repro.frontend.lang`     -- a structured imperative input
  language (the Racket-DSL analogue).
"""

from .lift import ArrayDecl, Spec, lift, random_inputs, run_reference
from .symbolic import (
    OutputArray,
    Sym,
    SymbolicArray,
    sym_call,
    sym_sgn,
    sym_sqrt,
    wrap,
)

__all__ = [
    "ArrayDecl",
    "Spec",
    "lift",
    "random_inputs",
    "run_reference",
    "OutputArray",
    "Sym",
    "SymbolicArray",
    "sym_call",
    "sym_sgn",
    "sym_sqrt",
    "wrap",
]
