"""Mutation engine: validity envelope and determinism."""

from repro.conformance.corpus import spec_key
from repro.conformance.mutate import (
    MAX_INPUTS,
    MAX_INPUT_LEN,
    MAX_OUTPUTS,
    mutate,
)
from repro.dsl.interp import evaluate_output
from repro.frontend.lift import random_inputs
from repro.seeding import stable_rng
from repro.validation.fuzz import random_spec


def test_mutants_stay_inside_safe_envelope():
    """Every mutant must evaluate without errors (no out-of-range Gets,
    no divide-by-zero) and respect the envelope caps."""
    gen = stable_rng(1, "mutate-test-gen")
    mut = stable_rng(1, "mutate-test-mut")
    check = stable_rng(1, "mutate-test-check")
    spec = random_spec(gen, 0)
    for step in range(120):
        spec = mutate(spec, mut, name=f"m{step}")
        assert 1 <= spec.n_outputs <= MAX_OUTPUTS
        assert len(spec.inputs) <= MAX_INPUTS
        assert all(d.length <= MAX_INPUT_LEN for d in spec.inputs)
        env = random_inputs(spec, check)
        values = evaluate_output(spec.term, env)
        assert len(values) == spec.n_outputs
        assert all(v == v for v in values), "NaN from a mutant"


def test_mutation_is_deterministic():
    spec = random_spec(stable_rng(2, "mutate-test-gen"), 0)
    a = mutate(spec, stable_rng(2, "mutate-det"))
    b = mutate(spec, stable_rng(2, "mutate-det"))
    assert spec_key(a) == spec_key(b)
    assert a.term.to_sexpr() == b.term.to_sexpr()


def test_mutation_changes_the_kernel():
    """Across a run of mutants, most must differ from the parent
    (inapplicable-move fallbacks are allowed, dominance is not)."""
    spec = random_spec(stable_rng(3, "mutate-test-gen"), 0)
    rng = stable_rng(3, "mutate-test-mut")
    changed = sum(
        1 for _ in range(30) if spec_key(mutate(spec, rng)) != spec_key(spec)
    )
    assert changed >= 25
