"""Overload-resilient compile gateway (DESIGN.md §12).

:class:`CompileGateway` is the asyncio front end of the service stack:
clients submit :class:`~repro.frontend.lift.Spec` compiles and the
gateway decides -- *before* a worker process is forked -- whether the
request is admitted, coalesced, degraded, or shed.  A saturated
backend must degrade by refusing work with typed errors, never by
growing an unbounded queue or timing out silently.  Four layers, in
admission order:

1. **Admission control** -- a per-tenant token bucket
   (:class:`TenantPolicy`) refuses floods with
   :class:`~repro.errors.RateLimitError`; a bounded priority queue
   refuses depth overruns with :class:`~repro.errors.OverloadError`
   (``reason="queue-full"``).  Priorities order the queue strictly
   (0 = most urgent), with a monotonic sequence number as tiebreak so
   equal-priority work stays FIFO and the chaos ``no-starvation``
   invariant is checkable.

2. **Single-flight dedup** -- concurrent requests with the same
   artifact-cache content key collapse onto one in-flight compile:
   the first becomes the *leader*, later ones await the leader's
   future.  The cache key deliberately excludes the deadline
   (:func:`repro.service.cache.options_fingerprint`), so two clients
   asking for the same kernel with different deadlines still coalesce;
   each waiter enforces its *own* residual deadline on the shared
   future.

3. **CoDel load-shedding** -- queue *delay* (not depth) is the
   overload signal, per Controlled Delay queue management: once the
   delay stays above ``codel_target`` for a full ``codel_interval``,
   the dispatcher enters a dropping state and sheds every dequeued
   request that already waited past target (``reason="queue-delay"``)
   until the delay recovers.  This is the head-drop variant: with no
   congestion-controlled sender to pace, flushing the stale backlog
   is what keeps admitted-request latency inside the SLO.

4. **Brownout ladder** -- an EWMA of queue delay drives a stepwise
   degradation: levels 1 and 2 shrink every admitted compile's node
   and time budgets (0.5x / 0.25x), level 3 stops compiling entirely
   and serves from the artifact cache only, shedding misses with
   ``reason="cache-only"``.  Levels step down with 2x hysteresis so
   the ladder does not flap.

Deadlines ride :attr:`repro.compiler.CompileOptions.deadline`
(absolute ``time.time()`` scale, fork-safe) end to end: the gateway
refuses to dispatch an expired request, the supervisor sheds pre-fork
when the residual budget is below its floor, the worker's cooperative
``time_limit`` and hard kill-timeout are clamped to the residual --
so a blown deadline surfaces as a typed
:class:`~repro.errors.DeadlineExceededError` within seconds of the
deadline, never minutes later.

Concurrency model: every gateway structure is touched only from the
event-loop thread (``submit`` and the dispatcher tasks); the blocking
``CompileService.compile_spec`` runs on a private thread pool via
``run_in_executor``.  No locks needed.
"""

from __future__ import annotations

import asyncio
import dataclasses
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..chaos.inject import chaos_point
from ..compiler import CompileOptions, CompileResult
from ..errors import (
    DeadlineExceededError,
    OverloadError,
    RateLimitError,
    ShutdownError,
)
from ..frontend.lift import Spec
from ..observability import activate, current_session, event as _obs_event
from .cache import options_fingerprint, spec_fingerprint
from .supervisor import CompileService

__all__ = [
    "TenantPolicy",
    "GatewayConfig",
    "GatewayStats",
    "CompileGateway",
    "BROWNOUT_SCALES",
]

#: Per-compile budget multiplier at each brownout level.  Level 3 does
#: not scale budgets -- it stops compiling (cache-only mode).
BROWNOUT_SCALES = (1.0, 0.5, 0.25)

#: Node-limit floor under brownout shrinking (mirrors RetryPolicy).
_MIN_BROWNOUT_NODES = 1_000


def _count(name: str, help_text: str, **labels: str) -> None:
    """Bump a gateway counter on the ambient metrics registry, if any."""
    session = current_session()
    if session is None or session.metrics is None:
        return
    counter = session.metrics.counter(
        name, help_text, labels=tuple(sorted(labels)) if labels else ()
    )
    (counter.labels(**labels) if labels else counter).inc()


def _gauge(name: str, help_text: str, value: float) -> None:
    session = current_session()
    if session is None or session.metrics is None:
        return
    session.metrics.gauge(name, help_text).set(value)


@dataclass(frozen=True)
class TenantPolicy:
    """Admission policy for one tenant.

    ``priority`` orders the queue (0 = most urgent).  ``rate`` /
    ``burst`` parameterize a token bucket in requests per second;
    ``rate=None`` means unlimited.
    """

    name: str
    priority: int = 1
    rate: Optional[float] = None
    burst: int = 10


class _TokenBucket:
    """Classic token bucket; refill is computed lazily on each probe."""

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        self.tokens = float(self.burst)
        self._stamp = time.monotonic()

    def acquire(self) -> Tuple[bool, float]:
        """Take one token; returns ``(admitted, retry_after_seconds)``."""
        now = time.monotonic()
        self.tokens = min(
            float(self.burst), self.tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs of the admission / shedding / brownout machinery."""

    #: Hard bound on queued (admitted, not yet dispatched) requests.
    max_queue_depth: int = 64
    #: Concurrent compiles (executor threads running the supervisor).
    concurrency: int = 1
    #: CoDel: acceptable standing queue delay, seconds.
    codel_target: float = 0.05
    #: CoDel: how long the delay must stay above target before the
    #: gateway starts shedding, and the base spacing of sheds.
    codel_interval: float = 0.5
    #: Hard queue-delay ceiling, as a multiple of ``codel_target``: a
    #: dequeued request that waited past ``target * hard_factor`` is
    #: shed regardless of CoDel state.  The interval grace tolerates
    #: *bursts*; it must not tolerate individual requests so stale that
    #: compiling them blows the admitted-latency SLO during the window
    #: where the dropping state is re-arming.
    codel_hard_factor: float = 2.5
    #: Deadline (seconds from submission) stamped on requests that do
    #: not carry one.  ``None`` = no default deadline.
    default_deadline: Optional[float] = None
    #: EWMA smoothing for the brownout delay signal.
    ewma_alpha: float = 0.2
    #: Brownout level i engages when the delay EWMA exceeds
    #: ``codel_target * brownout_factors[i-1]`` and releases below half
    #: that (hysteresis).
    brownout_factors: Tuple[float, float, float] = (2.0, 4.0, 8.0)

    def brownout_level(self, ewma: float, current: int) -> int:
        level = 0
        for index, factor in enumerate(self.brownout_factors, start=1):
            threshold = self.codel_target * factor
            # Hysteresis: keep an engaged level until the signal falls
            # below half its engage threshold.
            if ewma >= threshold or (current >= index and ewma >= threshold / 2.0):
                level = index
        return level


@dataclass
class _TenantStats:
    priority: int = 1
    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    rate_limited: int = 0
    coalesced: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class GatewayStats:
    """Aggregate counters across one :class:`CompileGateway`."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Waiters collapsed onto an in-flight leader (single-flight).
    dedup_coalesced: int = 0
    #: Requests that became single-flight leaders and were dispatched.
    dedup_leaders: int = 0
    #: Requests served straight from the artifact cache in cache-only
    #: brownout mode (no queueing, no worker).
    cache_only_hits: int = 0
    #: Sheds by reason: queue-full / queue-delay / rate-limit /
    #: cache-only / deadline.
    sheds: Dict[str, int] = field(default_factory=dict)
    brownout_transitions: int = 0
    brownout_level: int = 0
    queue_delay_ewma: float = 0.0
    queue_depth_max: int = 0
    tenants: Dict[str, _TenantStats] = field(default_factory=dict)

    def shed(self, reason: str) -> None:
        self.sheds[reason] = self.sheds.get(reason, 0) + 1

    @property
    def shed_total(self) -> int:
        return sum(self.sheds.values())

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view; feeds the bench report and the chaos
        ``bounded-queue`` / ``no-starvation`` invariant checkers."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "dedup_coalesced": self.dedup_coalesced,
            "dedup_leaders": self.dedup_leaders,
            "cache_only_hits": self.cache_only_hits,
            "sheds": dict(self.sheds),
            "shed_total": self.shed_total,
            "brownout_transitions": self.brownout_transitions,
            "brownout_level": self.brownout_level,
            "queue_delay_ewma": self.queue_delay_ewma,
            "queue_depth_max": self.queue_depth_max,
            "tenants": {
                name: stats.to_dict() for name, stats in self.tenants.items()
            },
        }

    def summary(self) -> str:
        return (
            f"gateway: {self.submitted} submitted, {self.admitted} admitted, "
            f"{self.completed} completed, {self.shed_total} shed "
            f"({', '.join(f'{k}={v}' for k, v in sorted(self.sheds.items())) or 'none'}), "
            f"{self.dedup_coalesced} coalesced onto {self.dedup_leaders} "
            f"leaders, brownout level {self.brownout_level} "
            f"({self.brownout_transitions} transitions), "
            f"queue depth max {self.queue_depth_max}"
        )


@dataclass
class _Request:
    """One admitted single-flight leader waiting in the queue."""

    spec: Spec
    options: CompileOptions
    tenant: str
    key: str
    enqueued: float  # monotonic
    future: "asyncio.Future[CompileResult]"

    #: PriorityQueue entries must be orderable; (priority, seq) decides
    #: before comparison ever reaches the request itself.
    def __lt__(self, other: "_Request") -> bool:  # pragma: no cover
        return self.enqueued < other.enqueued


class CompileGateway:
    """Admission-controlled, deduplicating asyncio front end over a
    :class:`~repro.service.supervisor.CompileService`.

    Use as an async context manager (or call :meth:`start` /
    :meth:`aclose`); :meth:`submit` is the single entry point.
    """

    def __init__(
        self,
        service: CompileService,
        config: Optional[GatewayConfig] = None,
        tenants: Optional[Dict[str, TenantPolicy]] = None,
    ) -> None:
        self.service = service
        self.config = config or GatewayConfig()
        self.tenants: Dict[str, TenantPolicy] = dict(tenants or {})
        self.stats = GatewayStats()
        self._buckets: Dict[str, _TokenBucket] = {}
        self._inflight: Dict[str, _Request] = {}
        self._queue: Optional["asyncio.PriorityQueue"] = None
        self._dispatchers: List["asyncio.Task"] = []
        self._executor = None
        self._seq = 0
        self._closed = False
        self._obs_session = None
        # CoDel state (sole writer: dispatcher callbacks on the loop).
        self._first_above = 0.0
        self._dropping = False
        self._drop_count = 0
        self._drop_next = 0.0

    # ------------------------------------------------------- lifecycle

    async def start(self) -> "CompileGateway":
        from concurrent.futures import ThreadPoolExecutor

        if self._queue is not None:
            return self
        # Captured so executor threads see the ambient observability
        # session (contextvars do not cross run_in_executor).
        self._obs_session = current_session()
        self._queue = asyncio.PriorityQueue()
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.concurrency),
            thread_name_prefix="repro-gateway",
        )
        loop = asyncio.get_running_loop()
        for index in range(max(1, self.config.concurrency)):
            self._dispatchers.append(
                loop.create_task(self._dispatch_loop(), name=f"gw-dispatch-{index}")
            )
        return self

    async def aclose(self) -> None:
        """Stop dispatching, fail queued leaders with ShutdownError,
        wait for in-flight compiles to finish."""
        if self._closed:
            return
        self._closed = True
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._dispatchers = []
        if self._queue is not None:
            while not self._queue.empty():
                _, _, request = self._queue.get_nowait()
                self._finish_error(
                    request,
                    ShutdownError(
                        "gateway closed before dispatch",
                        kernel=request.spec.name,
                    ),
                )
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "CompileGateway":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.aclose()
        return False

    # ------------------------------------------------------ public API

    async def submit(
        self,
        spec: Spec,
        options: Optional[CompileOptions] = None,
        tenant: str = "default",
    ) -> CompileResult:
        """Compile ``spec`` through admission control.

        Raises :class:`RateLimitError` / :class:`OverloadError` on
        refusal, :class:`DeadlineExceededError` when the (default or
        client) deadline expires first, and otherwise whatever typed
        error the compile itself produced.
        """
        if self._queue is None or self._closed:
            raise ShutdownError("gateway is not running", kernel=spec.name)
        policy = self._policy(tenant)
        tstats = self._tenant_stats(policy)
        self.stats.submitted += 1
        tstats.submitted += 1

        # 1. Token-bucket rate limit, before any other work.
        admitted, retry_after = self._bucket_probe(policy)
        if not admitted:
            self.stats.shed("rate-limit")
            tstats.shed += 1
            tstats.rate_limited += 1
            _count(
                "repro_gateway_sheds_total",
                "Requests refused by the gateway",
                reason="rate-limit",
            )
            raise RateLimitError(
                f"tenant {tenant!r} exceeded "
                f"{policy.rate:.1f} req/s (retry in {retry_after:.2f}s)",
                kernel=spec.name,
                tenant=tenant,
                retry_after=retry_after,
            )

        options = options or CompileOptions()
        if options.deadline is None and self.config.default_deadline is not None:
            options = dataclasses.replace(
                options, deadline=time.time() + self.config.default_deadline
            )

        # Brownout recovery: an empty queue means the standing delay is
        # zero *now*.  Feed that to the EWMA here, because in cache-only
        # mode nothing is dispatched and no other delay samples arrive
        # -- without this the ladder could latch at level 3 forever.
        if self._queue.empty() and not self._inflight:
            self._note_delay(0.0)

        # 2. Cache-only brownout: level 3 serves hits and sheds misses
        #    without ever touching the queue.
        if self.stats.brownout_level >= 3:
            hit = self._cache_probe(spec, options)
            if hit is not None:
                self.stats.completed += 1
                self.stats.cache_only_hits += 1
                tstats.admitted += 1
                tstats.completed += 1
                return hit
            self.stats.shed("cache-only")
            tstats.shed += 1
            _count(
                "repro_gateway_sheds_total",
                "Requests refused by the gateway",
                reason="cache-only",
            )
            raise OverloadError(
                "gateway is in cache-only brownout and the artifact "
                "cache has no entry for this request",
                kernel=spec.name,
                reason="cache-only",
                queue_delay=self.stats.queue_delay_ewma,
            )

        # 3. Single-flight: coalesce onto an in-flight identical compile.
        key = self._content_key(spec, options)
        leader = self._inflight.get(key)
        if leader is not None:
            self.stats.dedup_coalesced += 1
            self.stats.admitted += 1
            tstats.admitted += 1
            tstats.coalesced += 1
            _count(
                "repro_gateway_dedup_coalesced_total",
                "Requests collapsed onto an in-flight identical compile",
            )
            return await self._await_result(leader.future, spec, options, tstats)

        # 4. Bounded queue depth.
        depth = self._queue.qsize()
        if depth >= self.config.max_queue_depth:
            self.stats.shed("queue-full")
            tstats.shed += 1
            _count(
                "repro_gateway_sheds_total",
                "Requests refused by the gateway",
                reason="queue-full",
            )
            raise OverloadError(
                f"admission queue is full ({depth} >= "
                f"{self.config.max_queue_depth})",
                kernel=spec.name,
                reason="queue-full",
                queue_depth=depth,
            )

        # Admitted: become the single-flight leader and enqueue.
        chaos_point("gateway.enqueue")
        loop = asyncio.get_running_loop()
        request = _Request(
            spec=spec,
            options=options,
            tenant=tenant,
            key=key,
            enqueued=time.monotonic(),
            future=loop.create_future(),
        )
        self._inflight[key] = request
        self._seq += 1
        self._queue.put_nowait((policy.priority, self._seq, request))
        self.stats.admitted += 1
        self.stats.queue_depth_max = max(
            self.stats.queue_depth_max, self._queue.qsize()
        )
        tstats.admitted += 1
        _count(
            "repro_gateway_admitted_total",
            "Requests admitted into the gateway queue",
        )
        return await self._await_result(request.future, spec, options, tstats)

    # ----------------------------------------------------- admission

    def _policy(self, tenant: str) -> TenantPolicy:
        policy = self.tenants.get(tenant)
        if policy is None:
            policy = TenantPolicy(name=tenant)
            self.tenants[tenant] = policy
        return policy

    def _tenant_stats(self, policy: TenantPolicy) -> _TenantStats:
        stats = self.stats.tenants.get(policy.name)
        if stats is None:
            stats = _TenantStats(priority=policy.priority)
            self.stats.tenants[policy.name] = stats
        return stats

    def _bucket_probe(self, policy: TenantPolicy) -> Tuple[bool, float]:
        if policy.rate is None:
            return True, 0.0
        bucket = self._buckets.get(policy.name)
        if bucket is None:
            bucket = _TokenBucket(policy.rate, policy.burst)
            self._buckets[policy.name] = bucket
        return bucket.acquire()

    def _cache_probe(self, spec: Spec, options: CompileOptions):
        cache = self.service.cache
        if cache is None:
            return None
        hit = cache.get(cache.key_for(spec, options))
        if hit is not None:
            hit.diagnostics.cache_hit = True
        return hit

    def _content_key(self, spec: Spec, options: CompileOptions) -> str:
        if self.service.cache is not None:
            return self.service.cache.key_for(spec, options)
        # No artifact cache: single-flight still works off the same
        # content identity (deadline excluded by options_fingerprint).
        return spec_fingerprint(spec) + "|" + options_fingerprint(options)

    async def _await_result(
        self,
        future: "asyncio.Future[CompileResult]",
        spec: Spec,
        options: CompileOptions,
        tstats: _TenantStats,
    ) -> CompileResult:
        # shield(): a coalesced waiter abandoning (slow-loris client,
        # its own deadline) must not cancel the shared leader compile.
        try:
            if options.deadline is not None:
                residual = options.deadline - time.time()
                result = await asyncio.wait_for(
                    asyncio.shield(future), timeout=max(0.0, residual)
                )
            else:
                result = await asyncio.shield(future)
        except asyncio.TimeoutError:
            self.stats.failed += 1
            self.stats.shed("deadline")
            tstats.failed += 1
            _count(
                "repro_gateway_deadline_waits_total",
                "Waiters whose deadline expired before the shared result",
            )
            raise DeadlineExceededError(
                "deadline expired while awaiting the compile result",
                kernel=spec.name,
                deadline=options.deadline,
                residual=options.deadline - time.time(),
            ) from None
        except Exception:
            self.stats.failed += 1
            tstats.failed += 1
            raise
        self.stats.completed += 1
        tstats.completed += 1
        return result

    # ---------------------------------------------------- dispatching

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            _, _, request = await self._queue.get()
            try:
                self._dispatch_prepare(request)
            except Exception as exc:  # noqa: BLE001 - typed by construction
                self._finish_error(request, exc)
                continue
            options = self._apply_brownout(request.options)
            self.stats.dedup_leaders += 1
            exec_future = loop.run_in_executor(
                self._executor,
                self._compile_blocking,
                request.spec,
                options,
            )
            try:
                result = await asyncio.shield(exec_future)
            except asyncio.CancelledError:
                # Graceful drain: aclose() cancelled this dispatcher but
                # the compile keeps running on its executor thread.
                # Hand its eventual outcome to the waiters -- a leader
                # future left pending forever would hang every client
                # coalesced onto it.
                exec_future.add_done_callback(
                    lambda f: (
                        self._finish_error(request, f.exception())
                        if f.exception() is not None
                        else self._finish_ok(request, f.result())
                    )
                )
                raise
            except Exception as exc:  # noqa: BLE001 - service errors are typed
                self._finish_error(request, exc)
            else:
                self._finish_ok(request, result)

    def _compile_blocking(self, spec: Spec, options: CompileOptions):
        with activate(getattr(self, "_obs_session", None)):
            return self.service.compile_spec(spec, options)

    def _dispatch_prepare(self, request: _Request) -> None:
        """Delay accounting + CoDel + deadline check for one dequeued
        request; raises the typed shed error when it must not run."""
        now = time.monotonic()
        delay = now - request.enqueued
        self._note_delay(delay)
        chaos_point("gateway.dispatch")
        if self._codel_drop(delay, now):
            self.stats.shed("queue-delay")
            tstats = self.stats.tenants.get(request.tenant)
            if tstats is not None:
                tstats.shed += 1
            _count(
                "repro_gateway_sheds_total",
                "Requests refused by the gateway",
                reason="queue-delay",
            )
            _obs_event(
                "gateway_codel_shed",
                kernel=request.spec.name,
                queue_delay=delay,
                drop_count=self._drop_count,
            )
            raise OverloadError(
                f"shed by CoDel: queue delay {delay * 1e3:.0f}ms has been "
                f"above the {self.config.codel_target * 1e3:.0f}ms target "
                f"for a full interval",
                kernel=request.spec.name,
                reason="queue-delay",
                queue_delay=delay,
            )
        deadline = request.options.deadline
        if deadline is not None and deadline - time.time() <= 0:
            self.stats.shed("deadline")
            raise DeadlineExceededError(
                f"deadline expired after {delay:.3f}s in the gateway queue",
                kernel=request.spec.name,
                deadline=deadline,
                residual=deadline - time.time(),
            )

    def _finish_ok(self, request: _Request, result: CompileResult) -> None:
        self._inflight.pop(request.key, None)
        if not request.future.done():
            request.future.set_result(result)

    def _finish_error(self, request: _Request, error: BaseException) -> None:
        self._inflight.pop(request.key, None)
        if not request.future.done():
            request.future.set_exception(error)
        else:  # pragma: no cover - every waiter already gone
            pass

    # --------------------------------------------- CoDel and brownout

    def _codel_drop(self, delay: float, now: float) -> bool:
        """One step of the (simplified) CoDel control law; True = shed
        this request."""
        target = self.config.codel_target
        interval = self.config.codel_interval
        if delay >= target * self.config.codel_hard_factor:
            # Past the hard ceiling: stale beyond salvage, shed no
            # matter which state the control law is in.
            self._drop_count += 1
            return True
        if delay < target:
            self._first_above = 0.0
            self._dropping = False
            self._drop_count = 0
            return False
        if self._first_above == 0.0:
            # Delay just rose above target: give it one interval to be
            # a transient burst before shedding anything.
            self._first_above = now + interval
            return False
        if not self._dropping:
            if now >= self._first_above:
                self._dropping = True
                self._drop_count = 1
                return True
            return False
        # Head-drop variant: while in the dropping state every dequeued
        # request that already waited past target is shed.  Vanilla
        # CoDel spaces drops at interval/sqrt(n) to nudge TCP flows;
        # a compile queue has no congestion-controlled sender to signal,
        # and admitting stale work would blow the latency SLO the
        # admitted-p99 gate enforces -- so the backlog is flushed
        # instead, and fresh arrivals (delay < target) exit the state.
        self._drop_count += 1
        return True

    def _note_delay(self, delay: float) -> None:
        alpha = self.config.ewma_alpha
        self.stats.queue_delay_ewma = (
            alpha * delay + (1.0 - alpha) * self.stats.queue_delay_ewma
        )
        level = self.config.brownout_level(
            self.stats.queue_delay_ewma, self.stats.brownout_level
        )
        if level != self.stats.brownout_level:
            self.stats.brownout_transitions += 1
            _count(
                "repro_gateway_brownout_transitions_total",
                "Brownout ladder level changes",
            )
            _gauge(
                "repro_gateway_brownout_level",
                "Current brownout ladder level (0 = healthy)",
                float(level),
            )
            _obs_event(
                "gateway_brownout",
                level=level,
                previous=self.stats.brownout_level,
                queue_delay_ewma=self.stats.queue_delay_ewma,
            )
            self.stats.brownout_level = level

    def _apply_brownout(self, options: CompileOptions) -> CompileOptions:
        level = min(self.stats.brownout_level, len(BROWNOUT_SCALES) - 1)
        scale = BROWNOUT_SCALES[level]
        if scale >= 1.0:
            return options
        changes: Dict[str, Any] = {
            "node_limit": max(_MIN_BROWNOUT_NODES, int(options.node_limit * scale))
        }
        if options.time_limit is not None:
            changes["time_limit"] = options.time_limit * scale
        return dataclasses.replace(options, **changes)
