"""Tests of the Theia case study (repro.apps.theia)."""

import numpy as np
import pytest

from repro.apps.theia import (
    DEFAULT_PROJECTION_MATRIX,
    decompose_projection_matrix,
    eigen_qr_program,
)


@pytest.fixture(scope="module")
def baseline():
    return decompose_projection_matrix()


class TestMath:
    def test_rq_decomposition_reconstructs_m(self, baseline):
        P = np.array(DEFAULT_PROJECTION_MATRIX).reshape(3, 4)
        K = np.array(baseline.calibration).reshape(3, 3)
        R = np.array(baseline.rotation_rq).reshape(3, 3)
        np.testing.assert_allclose(K @ R, P[:, :3], rtol=1e-4)

    def test_calibration_upper_triangular_positive_diagonal(self, baseline):
        K = np.array(baseline.calibration).reshape(3, 3)
        np.testing.assert_allclose(np.tril(K, -1), 0, atol=1e-3)
        assert (np.diag(K) > 0).all()

    def test_rotation_orthonormal(self, baseline):
        R = np.array(baseline.rotation_rq).reshape(3, 3)
        np.testing.assert_allclose(R @ R.T, np.eye(3), atol=1e-4)

    def test_svd_projection_is_rotation(self, baseline):
        Rs = np.array(baseline.rotation_svd).reshape(3, 3)
        np.testing.assert_allclose(Rs @ Rs.T, np.eye(3), atol=1e-3)

    def test_camera_position_solves_system(self, baseline):
        P = np.array(DEFAULT_PROJECTION_MATRIX).reshape(3, 4)
        c = np.array(baseline.position)
        np.testing.assert_allclose(P[:, :3] @ c, -P[:, 3], rtol=1e-4)

    def test_other_projection_matrix(self):
        P = [
            500.0, 10.0, 320.0, 100.0,
            -5.0, 510.0, 240.0, -50.0,
            0.01, 0.02, 1.0, 1.0,
        ]
        result = decompose_projection_matrix(P)
        K = np.array(result.calibration).reshape(3, 3)
        R = np.array(result.rotation_rq).reshape(3, 3)
        M = np.array(P).reshape(3, 4)[:, :3]
        np.testing.assert_allclose(K @ R, M, rtol=1e-3)

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            decompose_projection_matrix([1.0] * 9)


class TestProfile:
    def test_stage_cycles_sum_to_total(self, baseline):
        assert sum(baseline.stage_cycles.values()) == baseline.total_cycles

    def test_qr_dominates_baseline(self, baseline):
        """The paper's profiling claim: the QR kernel is the hot spot
        of the Eigen-based decomposition (61% on their hardware)."""
        assert baseline.qr_share > 0.4
        assert baseline.stage_cycles["qr3"] == max(baseline.stage_cycles.values())

    def test_deterministic(self):
        a = decompose_projection_matrix()
        b = decompose_projection_matrix()
        assert a.total_cycles == b.total_cycles
        assert a.position == b.position

    def test_explicit_qr_program_matches_default(self, baseline):
        explicit = decompose_projection_matrix(qr_program=eigen_qr_program())
        assert explicit.total_cycles == baseline.total_cycles
