"""Section 5.7 case-study regeneration (experiment CS in DESIGN.md):
Theia's DecomposeProjectionMatrix with an Eigen QR vs a
Diospyros-compiled QR.

Shape claims: the QR kernel dominates the baseline profile (paper:
61%), swapping it yields a substantial end-to-end speedup (paper:
2.1x), and both configurations agree numerically.
"""

import pytest

from conftest import BENCH_BUDGET, run_checked
from repro.apps.theia import (
    decompose_projection_matrix,
    diospyros_qr_program,
    eigen_qr_program,
)

_cache = {}


def _results():
    if not _cache:
        _cache["baseline"] = decompose_projection_matrix(
            qr_program=eigen_qr_program()
        )
        qr = diospyros_qr_program(
            BENCH_BUDGET.options(select_best_candidate=True)
        )
        _cache["optimized"] = decompose_projection_matrix(qr_program=qr)
    return _cache["baseline"], _cache["optimized"]


def test_casestudy_baseline(benchmark):
    baseline, _ = _results()
    benchmark.pedantic(
        decompose_projection_matrix,
        kwargs={"qr_program": eigen_qr_program()},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "total_cycles": baseline.total_cycles,
            "qr_share": round(baseline.qr_share, 3),
            "stages": {k: v for k, v in baseline.stage_cycles.items()},
        }
    )


def test_casestudy_optimized(benchmark):
    baseline, optimized = _results()
    benchmark.pedantic(lambda: optimized.total_cycles, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "total_cycles": optimized.total_cycles,
            "speedup": round(baseline.total_cycles / optimized.total_cycles, 3),
        }
    )


class TestCaseStudyShapes:
    def test_qr_dominates_baseline_profile(self, benchmark):
        def check():
            baseline, _ = _results()
            print(f"\nQR share of baseline: {baseline.qr_share:.0%} (paper 61%)")
            assert baseline.qr_share > 0.4

        run_checked(benchmark, check)

    def test_end_to_end_speedup(self, benchmark):
        def check():
            baseline, optimized = _results()
            speedup = baseline.total_cycles / optimized.total_cycles
            print(f"\nCase study speedup: {speedup:.2f}x (paper 2.1x)")
            assert speedup > 1.3

        run_checked(benchmark, check)

    def test_outputs_agree(self, benchmark):
        def check():
            baseline, optimized = _results()
            for expected, actual in (
                (baseline.calibration, optimized.calibration),
                (baseline.rotation_rq, optimized.rotation_rq),
                (baseline.position, optimized.position),
            ):
                for a, b in zip(expected, actual):
                    assert abs(a - b) <= 1e-3 * max(1.0, abs(a))

        run_checked(benchmark, check)

    def test_non_qr_stages_identical(self, benchmark):
        def check():
            baseline, optimized = _results()
            for stage in baseline.stage_cycles:
                if stage != "qr3":
                    assert (
                        baseline.stage_cycles[stage]
                        == optimized.stage_cycles[stage]
                    )

        run_checked(benchmark, check)
