#!/usr/bin/env python3
"""Quickstart: compile your first kernel with the Diospyros pipeline.

A reference kernel is a plain Python function over arrays.  The
compiler symbolically evaluates it, searches for a vectorization with
equality saturation, validates the result, and emits both executable
vector IR (for the cycle simulator) and Tensilica-style C intrinsics.

Run:  python examples/quickstart.py
"""

from repro import CompileOptions, compile_kernel, simulate
from repro.baselines import naive_fixed
from repro.kernels.base import Kernel


def saxpy(alpha, x, y, out):
    """out = alpha[0] * x + y  (a fixed-size SAXPY, n = 8)."""
    for i in range(8):
        out[i] = alpha[0] * x[i] + y[i]


def main() -> None:
    print("=== compiling saxpy (n = 8, vector width 4) ===")
    result = compile_kernel(
        "saxpy",
        saxpy,
        inputs=[("alpha", 1), ("x", 8), ("y", 8)],
        outputs=[("out8", 8)],
        options=CompileOptions(time_limit=10.0),
    )

    print(f"\ncompile: {result.summary()}")
    print(f"translation validated: {result.validated}")
    print(f"\noptimized vector DSL:\n  {result.optimized.to_sexpr()}")
    print(f"\ngenerated C intrinsics:\n{result.c_code}")

    inputs = {"alpha": [2.0], "x": [1, 2, 3, 4, 5, 6, 7, 8], "y": [10] * 8}
    run = simulate(result.program, inputs)
    print(f"simulated output: {run.output('out')}")
    print(f"cycles: {run.cycles:.0f}  ({run.instructions} instructions)")

    # Compare with what a fixed-size scalar compilation costs.
    kernel = Kernel(
        name="saxpy",
        category="Example",
        size_label="8",
        reference=saxpy,
        inputs=(("alpha", 1), ("x", 8), ("y", 8)),
        outputs=(("out8", 8),),
    )
    scalar = simulate(naive_fixed(kernel), inputs)
    assert scalar.output("out") == run.output("out")
    print(
        f"\nfixed-size scalar baseline: {scalar.cycles:.0f} cycles "
        f"-> speedup {scalar.cycles / run.cycles:.2f}x"
    )


if __name__ == "__main__":
    main()
