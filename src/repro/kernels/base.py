"""Kernel definitions shared by the evaluation harness.

A :class:`Kernel` bundles a reference implementation (one Python
function that runs both symbolically and concretely), its array
declarations, and bookkeeping for the evaluation tables (category and
the paper's size label).  The registry of the paper's 21 Table-1
kernels lives in :mod:`repro.kernels` (``TABLE1_KERNELS``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..frontend.lift import Shape, Spec, lift, random_inputs, run_reference

__all__ = ["Kernel"]


@dataclass
class Kernel:
    """One benchmark kernel instance (a function at a fixed size)."""

    name: str
    category: str  # "2DConv" | "MatMul" | "QProd" | "QRDecomp"
    size_label: str  # e.g. "3x3, 2x2" -- matches Table 1's Size column
    reference: Callable[..., None]
    inputs: Tuple[Tuple[str, Shape], ...]
    outputs: Tuple[Tuple[str, Shape], ...]
    #: Rough work metric used to order kernels in reports.
    params: Dict[str, int] = field(default_factory=dict)
    _spec: Optional[Spec] = field(default=None, repr=False)

    def spec(self) -> Spec:
        """Lift (once) and return the kernel's specification."""
        if self._spec is None:
            self._spec = lift(self.name, self.reference, self.inputs, self.outputs)
        return self._spec

    @property
    def n_outputs(self) -> int:
        return self.spec().n_outputs

    def random_inputs(self, seed: int = 0) -> Dict[str, List[float]]:
        import random as _random

        return random_inputs(self.spec(), _random.Random(seed))

    def reference_outputs(self, inputs) -> List[float]:
        """Run the trusted reference on concrete inputs; flat outputs."""
        return run_reference(self.reference, self.spec(), inputs)
