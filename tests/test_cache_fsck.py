"""Artifact-cache fsck: corruption taxonomy, repair, and metrics.

PR 6 satellite: ``repro cache fsck`` must detect checksum mismatches,
truncated entries, filename/key disagreement, stale code versions,
orphaned temp files, and quarantine debris; ``--repair`` deletes the
flagged files; counts flow through the PR 4 metrics registry.
"""

import hashlib
import json
import os

import pytest

from repro.__main__ import main as cli_main
from repro.chaos import FaultPlan, FaultSpec, active_plan, clear_plan
from repro.compiler import CompileOptions, compile_spec
from repro.frontend.lift import lift
from repro.observability.config import ObservabilitySession, activate
from repro.service import ArtifactCache

FAST = CompileOptions(
    time_limit=5.0, node_limit=20_000, iter_limit=8, validate=False
)


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    clear_plan()
    yield
    clear_plan()


def _spec(name="fsck-k"):
    def body(a, b, out):
        out[0] = a[0] * b[0] + a[1] * b[1]

    return lift(name, body, [("a", 2), ("b", 2)], [("out", 1)])


@pytest.fixture()
def populated(tmp_path):
    """A cache holding one real entry; returns (cache, entry path)."""
    cache = ArtifactCache(str(tmp_path))
    spec = _spec()
    cache.put(cache.key_for(spec, FAST), compile_spec(spec, FAST))
    (entry,) = [n for n in os.listdir(cache.root) if n.endswith(".rcache")]
    return cache, os.path.join(cache.root, entry)


def test_fsck_clean_cache(populated):
    cache, _ = populated
    report = cache.fsck()
    assert report.scanned == 1 and report.ok == 1
    assert report.clean
    assert "1 ok" in report.summary()


def test_fsck_detects_checksum_mismatch(populated):
    cache, path = populated
    blob = bytearray(open(path, "rb").read())
    blob[-10] ^= 0xFF  # flip a payload byte; header stays parseable
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    report = cache.fsck()
    assert report.corrupt == 1 and not report.clean
    assert "checksum mismatch" in report.issues[0].detail


def test_fsck_detects_truncation(populated):
    cache, path = populated
    blob = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(blob[: len(blob) // 2])
    report = cache.fsck()
    assert report.corrupt == 1


def test_fsck_detects_bad_magic_and_key_mismatch(populated):
    cache, path = populated
    os.rename(path, os.path.join(cache.root, "f" * 64 + ".rcache"))
    report = cache.fsck()
    assert report.corrupt == 1
    assert "does not match filename" in report.issues[0].detail

    with open(os.path.join(cache.root, "e" * 64 + ".rcache"), "wb") as handle:
        handle.write(b"garbage, no magic")
    report = cache.fsck()
    assert report.corrupt == 2
    assert any("bad magic" in issue.detail for issue in report.issues)


def test_fsck_detects_stale_code_version(populated):
    cache, _ = populated
    stale_view = ArtifactCache(cache.root)
    stale_view.code_version = "0123456789abcdef"
    report = stale_view.fsck()
    assert report.stale == 1 and report.corrupt == 0


def test_fsck_inventories_crash_debris(populated):
    cache, _ = populated
    open(os.path.join(cache.root, ".tmp-halfwrite"), "wb").close()
    open(os.path.join(cache.root, "old.rcache.corrupt"), "wb").close()
    report = cache.fsck()
    assert report.tmp_litter == 1 and report.quarantine_debris == 1
    assert report.ok == 1, "debris must not impugn healthy entries"
    assert not report.clean


def test_fsck_repair_removes_flagged_files_only(populated):
    cache, path = populated
    blob = bytearray(open(path, "rb").read())
    blob[-10] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    open(os.path.join(cache.root, ".tmp-halfwrite"), "wb").close()
    # a second, healthy entry must survive repair
    spec = _spec("fsck-keep")
    cache.put(cache.key_for(spec, FAST), compile_spec(spec, FAST))

    report = cache.fsck(repair=True)
    assert report.repaired == 2
    assert all(issue.repaired for issue in report.issues)
    after = cache.fsck()
    assert after.clean and after.scanned == 1 and after.ok == 1


def test_chaos_corruption_is_quarantined_then_fscked(populated):
    """End to end: a chaos-corrupted read quarantines the entry; fsck
    sees the quarantine debris; repair clears it."""
    cache, path = populated
    key = os.path.basename(path)[: -len(".rcache")]
    plan = FaultPlan([FaultSpec("cache.read", "corrupt")])
    with active_plan(plan):
        assert cache.get(key) is None
    assert cache.stats.corrupt == 1
    report = cache.fsck()
    assert report.quarantine_debris == 1 and report.corrupt == 0
    cache.fsck(repair=True)
    assert cache.fsck().clean


def test_fsck_counts_flow_into_metrics(populated):
    cache, path = populated
    blob = bytearray(open(path, "rb").read())
    blob[-10] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    open(os.path.join(cache.root, ".tmp-halfwrite"), "wb").close()

    session = ObservabilitySession()
    with activate(session):
        cache.fsck()
    metrics = session.export().metrics
    text = json.dumps(metrics)
    assert "repro_cache_fsck_issues_total" in text
    assert "repro_cache_fsck_entries" in text


def test_quarantine_counter_reaches_metrics(populated):
    cache, path = populated
    key = os.path.basename(path)[: -len(".rcache")]
    blob = bytearray(open(path, "rb").read())
    blob[len(blob) // 2] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    session = ObservabilitySession()
    with activate(session):
        assert cache.get(key) is None
    assert "repro_cache_quarantines_total" in json.dumps(
        session.export().metrics
    )


# ----------------------------------------------------------------- CLI


def test_cli_cache_fsck(populated, capsys):
    cache, path = populated
    open(os.path.join(cache.root, ".tmp-halfwrite"), "wb").close()

    assert cli_main(["cache", "fsck", "--dir", cache.root]) == 1
    out = capsys.readouterr().out
    assert "1 temp litter" in out

    assert cli_main(["cache", "fsck", "--dir", cache.root, "--repair"]) == 0
    assert cli_main(["cache", "fsck", "--dir", cache.root]) == 0
    out = capsys.readouterr().out
    assert "0 temp litter" in out.splitlines()[-1]
