"""Nature-like vendor DSP library baselines.

The paper compares against the Nature DSP library shipped with the
Tensilica SDK: kernels that are *hand-vectorized with intrinsics* but
**generic over matrix sizes** (Section 5.2).  That genericity is the
story of Figure 5: Nature beats naive code soundly at larger sizes but
"can perform poorly on small kernels, such as the 2x2 square matrix
product, due to the control overhead of the parametrized unrolling".

We implement that design honestly in the IR:

* a fixed argument-validation prologue (the library's size/alignment
  checks);
* runtime loops over width-4 column chunks using splat + vector-load +
  MAC, with scalar fallback paths for chunks the vector path cannot
  serve (tails, and convolution chunks whose taps would read out of
  bounds);
* no fixed-size specialization anywhere -- every bound lives in a
  register.

Matching the paper ("the library often restricts dimensions to
multiples of 4" and offers no QProd/QRDecomp entry points), the
library provides MatMul and 2DConv only; :func:`nature_kernel` returns
``None`` for the rest, and the evaluation reports no Nature bar there.
"""

from __future__ import annotations

from typing import Optional

from ..backend import vir
from ..backend.vir import Program
from ..kernels.base import Kernel
from .loops import LoopEmitter

__all__ = ["nature_kernel", "nature_matmul", "nature_conv2d"]


def nature_kernel(kernel: Kernel) -> Optional[Program]:
    """The Nature library implementation for this kernel, if the
    library provides one."""
    if kernel.category == "MatMul":
        return nature_matmul(kernel)
    if kernel.category == "2DConv":
        return nature_conv2d(kernel)
    return None


def _program_for(kernel: Kernel, suffix: str) -> Program:
    spec = kernel.spec()
    return Program(
        name=f"{kernel.name}-{suffix}",
        inputs={d.name: d.length for d in spec.inputs},
        outputs={"out": spec.n_outputs},
        vector_width=4,
    )


def _prologue(em: LoopEmitter, dims) -> None:
    """Library entry checks: validate each dimension is positive and
    report the (never-taken) error branches.  This is the fixed
    overhead that swamps tiny kernels."""
    err = em.fresh_label("argerr")
    zero = em.const(0)
    for dim in dims:
        reg = em.const(dim)
        em.program.emit(vir.Branch("le", reg, zero, err))
    done = em.fresh_label("argok")
    em.program.emit(vir.Jump(done))
    em.program.emit(vir.Label(err))
    # Error path: store a sentinel and fall through (never executed in
    # benchmarks; present so the control graph is realistic).
    sentinel = em.const(-1.0)
    em.program.emit(vir.SStore("out", 0, sentinel))
    em.program.emit(vir.Label(done))


def nature_matmul(kernel: Kernel) -> Program:
    """Generic-size vectorized matrix multiply.

    Vector path: for each output row, process output columns in chunks
    of 4 with ``splat(A[i,k]) * vload(B[k, j..j+4])`` MACs.  Columns
    beyond the last full chunk fall back to a scalar loop -- sizes that
    are multiples of the vector width get the pure-vector fast path,
    the library's documented sweet spot.
    """
    p = kernel.params
    m, k, n = p["m"], p["k"], p["n"]
    program = _program_for(kernel, "nature")
    em = LoopEmitter(program)
    _prologue(em, (m, k, n))

    k_reg = em.const(k)
    n_reg = em.const(n)
    width = program.vector_width
    last_chunk_start = em.const(n - width + 1)  # j < this => full chunk

    def row_body(i: str) -> None:
        a_row = em.mul(i, k_reg)
        c_row = em.mul(i, n_reg)

        def chunk_body(j: str) -> None:
            acc = em.vzero()
            b_idx = em.binary("+", j, em.const(0))

            def inner(kk: str) -> None:
                a_s = em.load_idx("a", em.add(a_row, kk))
                a_v = em.vsplat(a_s)
                b_v = em.vload_idx("b", b_idx)
                em.vmac_into(acc, a_v, b_v)
                em.program.emit(vir.SBin("+", b_idx, b_idx, n_reg))

            em.loop(k, inner)
            em.vstore_idx("out", em.add(c_row, j), acc, width)

        em.loop_step(0, last_chunk_start, width, chunk_body)

        # Scalar tail for the remaining n % 4 columns.
        tail_start = (n // width) * width

        def tail_body(j: str) -> None:
            acc = em.const(0.0)
            b_idx = em.binary("+", j, em.const(0))

            def inner(kk: str) -> None:
                a_s = em.load_idx("a", em.add(a_row, kk))
                b_s = em.load_idx("b", b_idx)
                em.program.emit(vir.SBin("+", acc, acc, em.mul(a_s, b_s)))
                em.program.emit(vir.SBin("+", b_idx, b_idx, n_reg))

            em.loop(k, inner)
            em.store_idx("out", em.add(c_row, j), acc)

        em.loop_range(tail_start, n_reg, tail_body)

    em.loop(m, row_body)
    return program


def nature_conv2d(kernel: Kernel) -> Program:
    """Generic-size vectorized 2-D convolution, vendor style.

    Stage 1 copies the input into a zero-padded work buffer (the
    standard library technique for full convolutions: pad by
    ``filter-1`` on every side, plus vector-width slack on the right so
    every chunk load is in bounds).  Stage 2 then runs a uniform
    vector loop -- no boundary branches at all: for every output row
    and every width-4 output-column chunk, accumulate
    ``filter_rows x filter_cols`` splat-MAC taps and store (partial
    store for the tail chunk).

    The padding pass is pure overhead proportional to the padded image
    size, which is exactly why the library amortizes well on large
    inputs and drowns on tiny ones.
    """
    p = kernel.params
    i_rows, i_cols = p["i_rows"], p["i_cols"]
    f_rows, f_cols = p["f_rows"], p["f_cols"]
    o_rows, o_cols = i_rows + f_rows - 1, i_cols + f_cols - 1
    width = 4

    # Padded geometry: P[r][c] = in[r - (fR-1)][c - (fC-1)].
    pad_r, pad_c = f_rows - 1, f_cols - 1
    p_rows = i_rows + 2 * pad_r
    p_cols = i_cols + 2 * pad_c + width  # right slack for chunk loads

    program = _program_for(kernel, "nature")
    program.outputs["pwork"] = p_rows * p_cols  # zeroed scratch buffer
    em = LoopEmitter(program)
    _prologue(em, (i_rows, i_cols, f_rows, f_cols))

    ic_reg = em.const(i_cols)
    oc_reg = em.const(o_cols)
    fc_reg = em.const(f_cols)
    pc_reg = em.const(p_cols)

    # ---- stage 0: memset the pad buffer (the simulator zeroes output
    # buffers, but the library must still pay for its own memset) ----
    zero_vec = em.vzero()
    memset_stop = (p_rows * p_cols // width) * width

    def zero_chunk(idx: str) -> None:
        em.vstore_idx("pwork", idx, zero_vec, width)

    em.loop_step(0, memset_stop - width + 1, width, zero_chunk)

    # ---- stage 1: copy input into the padded buffer ------------------
    def copy_row(r: str) -> None:
        src_base = em.mul(r, ic_reg)
        dst_base = em.add(
            em.mul(em.add(r, em.const(pad_r)), pc_reg), em.const(pad_c)
        )
        full = (i_cols // width) * width

        def copy_chunk(c: str) -> None:
            v = em.vload_idx("i", em.add(src_base, c))
            em.vstore_idx("pwork", em.add(dst_base, c), v, width)

        # Whole-register copies need iC >= width; tiny images copy
        # scalar (the library's small-size slow path).
        if i_cols >= width:
            em.loop_step(0, full - width + 1 if full >= width else 0, width, copy_chunk)

        def copy_tail(c: str) -> None:
            s = em.load_idx("i", em.add(src_base, c))
            em.store_idx("pwork", em.add(dst_base, c), s)

        em.loop_range(full if i_cols >= width else 0, ic_reg, copy_tail)

    em.loop(i_rows, copy_row)

    # ---- stage 2: vector taps over the padded buffer -----------------
    # Vendor DSP libraries ship per-filter-size entry points (conv2x2,
    # conv3x3, ...), generic only over the *image* size; the filter tap
    # loops are therefore unrolled here and the filter splats hoisted
    # out of the image loops, while row/chunk loops stay runtime loops.
    # out[r][j + t] = sum_{p,q} P[r + (fR-1) - p][j + t + (fC-1) - q]
    #                * f[p][q]
    splats = {}
    for p_idx in range(f_rows):
        for q_idx in range(f_cols):
            f_s = em.load_idx("f", em.const(p_idx * f_cols + q_idx))
            splats[(p_idx, q_idx)] = em.vsplat(f_s)

    def o_row_body(o_row: str) -> None:
        out_row_base = em.mul(o_row, oc_reg)
        # Per-tap-row padded row bases, hoisted out of the chunk loop.
        row_bases = []
        for p_idx in range(f_rows):
            p_row = em.binary(
                "-", em.add(o_row, em.const(pad_r)), em.const(p_idx)
            )
            row_bases.append(em.mul(p_row, pc_reg))

        def taps_into(acc: str, j: str) -> None:
            base_col = em.add(j, em.const(pad_c))
            for p_idx in range(f_rows):
                row_col = em.add(row_bases[p_idx], base_col)
                for q_idx in range(f_cols):
                    in_v = em.vload_idx("pwork", row_col, offset=-q_idx)
                    em.vmac_into(acc, in_v, splats[(p_idx, q_idx)])

        def chunk_body(j: str) -> None:
            acc = em.vzero()
            taps_into(acc, j)
            em.vstore_idx("out", em.add(out_row_base, j), acc, width)

        em.loop_step(0, o_cols - width + 1, width, chunk_body)

        # Tail chunk: same taps, partial store (padding keeps the
        # loads in bounds).
        tail = o_cols % width
        if tail:
            tail_start = em.const((o_cols // width) * width)
            acc = em.vzero()
            taps_into(acc, tail_start)
            em.vstore_idx("out", em.add(out_row_base, tail_start), acc, tail)

    em.loop(o_rows, o_row_body)
    return program
