"""Unit tests for the fault-injection layer (repro/chaos/inject.py).

Covers plan validation, firing policies (first-hit, Nth-hit,
probability, attempt scoping, max_fires), payload transforms, the
typed-error actions, plan pickling, and the ambient install/clear
protocol -- the substrate everything in the chaos campaign relies on.
"""

import errno
import pickle

import pytest

from repro.chaos import (
    ALL_ACTIONS,
    SITES,
    FaultPlan,
    FaultSpec,
    active_plan,
    chaos_flag,
    chaos_point,
    clear_plan,
    current_plan,
    install_plan,
    set_attempt,
)
from repro.errors import CompileError, InjectedFaultError


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    """Every test starts and ends with no plan installed."""
    clear_plan()
    yield
    clear_plan()


# ----------------------------------------------------------------- specs


def test_unknown_action_rejected():
    with pytest.raises(ValueError, match="unknown fault action"):
        FaultSpec("cache.read", "explode")


def test_unknown_site_rejected_at_plan_construction():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultPlan([FaultSpec("cache.reed", "raise")])


def test_site_glob_must_match_something():
    plan = FaultPlan([FaultSpec("cache.*", "raise")])
    assert plan.specs[0].matches_site("cache.read")
    assert plan.specs[0].matches_site("cache.write")
    assert not plan.specs[0].matches_site("worker.spawn")
    with pytest.raises(ValueError, match="matches no registered"):
        FaultPlan([FaultSpec("nosuch.*", "raise")])


def test_nth_and_probability_are_exclusive():
    with pytest.raises(ValueError, match="not both"):
        FaultSpec("cache.read", "corrupt", nth=2, probability=0.5)
    with pytest.raises(ValueError, match="1-based"):
        FaultSpec("cache.read", "corrupt", nth=0)
    with pytest.raises(ValueError, match="probability"):
        FaultSpec("cache.read", "corrupt", probability=1.5)


def test_every_registered_site_has_a_kind_and_scope():
    for info in SITES.values():
        assert info.kind in ("point", "payload", "flag")
        assert info.where in ("parent", "worker")
    assert len(ALL_ACTIONS) == len(set(ALL_ACTIONS))


# ----------------------------------------------------------- firing rules


def test_default_fires_on_first_hit_only_once():
    plan = FaultPlan([FaultSpec("runner.memory", "memtrip")])
    with active_plan(plan):
        assert chaos_flag("runner.memory") is True
        # max_fires=1 by default: the second hit is a no-op.
        assert chaos_flag("runner.memory") is False
    assert [f["hit"] for f in plan.fired] == [1]


def test_nth_hit_firing():
    plan = FaultPlan([FaultSpec("runner.memory", "memtrip", nth=3)])
    with active_plan(plan):
        fired = [chaos_flag("runner.memory") for _ in range(5)]
    assert fired == [False, False, True, False, False]
    assert plan.hits("runner.memory") == 5


def test_max_fires_unbounded():
    plan = FaultPlan(
        [FaultSpec("runner.memory", "memtrip", probability=1.0, max_fires=None)]
    )
    with active_plan(plan):
        assert all(chaos_flag("runner.memory") for _ in range(4))
    assert len(plan.fired) == 4


def test_attempt_scoping():
    # probability=1.0 fires on every hit of the allowed attempts (the
    # default policy only considers the very first hit of the seam).
    plan = FaultPlan(
        [
            FaultSpec(
                "runner.memory",
                "memtrip",
                probability=1.0,
                attempts=(1,),
                max_fires=None,
            )
        ]
    )
    with active_plan(plan):
        assert chaos_flag("runner.memory") is False  # attempt 0
        set_attempt(1)
        assert chaos_flag("runner.memory") is True
        set_attempt(2)
        assert chaos_flag("runner.memory") is False
    assert [f["attempt"] for f in plan.fired] == [1]


def test_probability_draws_are_deterministic_per_seed():
    def firing_pattern(seed):
        plan = FaultPlan(
            [
                FaultSpec(
                    "runner.memory", "memtrip", probability=0.5, max_fires=None
                )
            ],
            seed=seed,
        )
        with active_plan(plan):
            return [chaos_flag("runner.memory") for _ in range(64)]

    a, b = firing_pattern(11), firing_pattern(11)
    assert a == b, "same seed must reproduce the same firing sequence"
    assert any(a) and not all(a), "p=0.5 over 64 hits should be mixed"
    assert firing_pattern(12) != a, "different seeds should diverge"


# ------------------------------------------------------------- actions


def test_payload_corrupt_and_truncate():
    payload = bytes(range(32))
    plan = FaultPlan([FaultSpec("cache.read", "corrupt")])
    with active_plan(plan):
        mutated = chaos_point("cache.read", payload)
    assert mutated != payload and len(mutated) == len(payload)
    # exactly one byte flipped
    assert sum(a != b for a, b in zip(mutated, payload)) == 1

    plan = FaultPlan([FaultSpec("cache.read", "truncate")])
    with active_plan(plan):
        mutated = chaos_point("cache.read", payload)
    assert mutated == payload[: len(payload) // 2]


def test_raise_actions_are_typed_taxonomy_errors():
    plan = FaultPlan([FaultSpec("extract.start", "raise")])
    with active_plan(plan):
        with pytest.raises(InjectedFaultError) as info:
            chaos_point("extract.start")
    assert isinstance(info.value, CompileError)
    assert info.value.site == "extract.start"

    plan = FaultPlan([FaultSpec("cache.write", "enospc")])
    with active_plan(plan):
        with pytest.raises(OSError) as info:
            chaos_point("cache.write")
    assert info.value.errno == errno.ENOSPC

    plan = FaultPlan([FaultSpec("cache.write", "oserror")])
    with active_plan(plan):
        with pytest.raises(OSError) as info:
            chaos_point("cache.write")
    assert info.value.errno == errno.EIO


def test_flag_action_at_generic_seam_is_loud():
    # A mis-targeted plan (flag action at a point seam) must raise, not
    # silently do nothing.
    plan = FaultPlan([FaultSpec("extract.start", "drop")])
    with active_plan(plan):
        with pytest.raises(InjectedFaultError, match="flag action"):
            chaos_point("extract.start")


# ----------------------------------------------------- ambient protocol


def test_seams_are_noop_without_a_plan():
    payload = b"data"
    assert chaos_point("cache.read", payload) is payload
    assert chaos_flag("runner.memory") is False
    assert current_plan() is None


def test_active_plan_restores_previous():
    outer = FaultPlan([FaultSpec("runner.memory", "memtrip")])
    inner = FaultPlan([FaultSpec("runner.memory", "memtrip")])
    install_plan(outer)
    with active_plan(inner):
        assert current_plan() is inner
    assert current_plan() is outer
    clear_plan()
    assert current_plan() is None


def test_plan_pickles_with_counters():
    plan = FaultPlan([FaultSpec("runner.memory", "memtrip", nth=2)], seed=5)
    with active_plan(plan):
        chaos_flag("runner.memory")  # hit 1: no fire
    clone = pickle.loads(pickle.dumps(plan))
    assert clone.seed == 5
    assert clone.hits("runner.memory") == 1
    # The clone continues the schedule: its next hit is the firing one.
    with active_plan(clone):
        assert chaos_flag("runner.memory") is True
    # ...without mutating the original.
    assert plan.fired == []
