"""E-graph: the core data structure for equality saturation.

An e-graph compactly represents a large set of terms together with a
congruence relation over them (paper Section 3.3, following egg
[Willsey et al. 2021]).  The three invariants:

* **Hashcons** -- every canonical e-node maps to exactly one e-class
  (``memo``), so structurally identical terms are stored once.
* **Congruence** -- if two e-nodes have the same operator and pairwise
  equivalent children, their classes are merged.
* **Deferred rebuilding** -- ``union`` merely records the merge;
  :meth:`EGraph.rebuild` restores the invariants in a batch, which is
  the key efficiency idea Diospyros inherits from egg.

E-nodes store canonical child ids.  The rewrite machinery
(:mod:`repro.egraph.rewrite`) never touches these internals: it only
uses :meth:`add_term`, :meth:`union`, :meth:`classes`, and
:meth:`nodes_of`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..dsl.ast import Term
from .unionfind import UnionFind

__all__ = ["ENode", "EClass", "EGraph"]


def _is_representable(value: float) -> bool:
    """Folded constants must be finite (no inf/nan literals)."""
    return value == value and abs(value) != float("inf")

Payload = Union[int, float, str, None]


@dataclass(frozen=True)
class ENode:
    """One operator application with e-class children.

    ``value`` carries the payload of leaf operators (``Num``,
    ``Symbol``) and the function name of ``Call`` nodes; it is ``None``
    for everything else.
    """

    op: str
    children: Tuple[int, ...] = ()
    value: Payload = None

    def canonicalize(self, uf: UnionFind) -> "ENode":
        """Rewrite child ids to their canonical representatives."""
        new_children = tuple(uf.find(c) for c in self.children)
        if new_children == self.children:
            return self
        return ENode(self.op, new_children, self.value)


@dataclass
class EClass:
    """An equivalence class of e-nodes.

    ``parents`` records which e-nodes refer to this class, so that a
    merge can repair exactly the hashcons entries it invalidates.

    ``modified_at`` is the e-graph tick at which this class -- or any
    class in its subtree -- last changed; incremental e-matching skips
    classes whose stamp is at or below a rule's high-water mark.
    """

    id: int
    nodes: List[ENode] = field(default_factory=list)
    parents: List[Tuple[ENode, int]] = field(default_factory=list)
    modified_at: int = 0


class EGraph:
    """A mutable e-graph with explicit rebuilding.

    Typical usage::

        eg = EGraph()
        root = eg.add_term(parse("(+ (Get a 0) 0)"))
        other = eg.add_term(parse("(Get a 0)"))
        eg.union(root, other)
        eg.rebuild()
        assert eg.find(root) == eg.find(other)
    """

    def __init__(self, constant_folding: bool = False) -> None:
        self._uf = UnionFind()
        self._memo: Dict[ENode, int] = {}
        self._classes: Dict[int, EClass] = {}
        self._pending: List[int] = []
        #: Optional e-class analysis (egg's "analyses"): every class
        #: may carry a known constant value; folding materializes the
        #: corresponding ``Num`` node into the class so zero-aware
        #: rules and the cost model see it.  Opt-in: the evaluation
        #: runs match the paper's configuration without it.
        self.constant_folding = constant_folding
        self._const: Dict[int, float] = {}
        #: op name -> ids of classes that (at some point) contained a
        #: node with that op.  May contain stale ids after unions;
        #: consumers canonicalize and re-check, so staleness only costs
        #: a wasted lookup, never a missed match.
        self._op_index: Dict[str, Set[int]] = {}
        #: Total number of e-nodes ever added; the saturation runner's
        #: node limit checks this, mirroring egg's ``node_limit``.
        self.version = 0
        #: Monotone modification clock: bumped on every ``add`` that
        #: creates a class, every ``union``, and every ``_repair``.
        #: E-classes are stamped with the tick at which their subtree
        #: last changed, which is what dirty-set e-matching filters on.
        self.tick = 0
        #: Live e-node count (nodes currently stored across classes);
        #: maintained incrementally so ``num_nodes`` is O(1) instead of
        #: summing every class.
        self._n_nodes = 0
        #: Canonical class ids whose stamp still has to be propagated
        #: to their ancestors (done lazily, amortized over unions).
        self._dirty_pending: Set[int] = set()

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def find(self, eclass_id: int) -> int:
        """Canonical id of the class containing ``eclass_id``."""
        return self._uf.find(eclass_id)

    @property
    def num_classes(self) -> int:
        return len(self._classes)

    @property
    def num_nodes(self) -> int:
        """Live e-node count, maintained incrementally (the runner
        reads this twice per iteration; summing every class made it
        O(classes))."""
        return self._n_nodes

    def recount_nodes(self) -> int:
        """O(classes) recount of stored e-nodes, for invariant checks
        against the live ``num_nodes`` counter."""
        return sum(len(c.nodes) for c in self._classes.values())

    def classes(self) -> Iterator[EClass]:
        """Iterate over canonical e-classes.

        The snapshot is taken eagerly so callers may add nodes while
        iterating (rewrite application does); freshly created classes
        simply do not appear until the next pass, exactly as in egg.
        """
        return iter(list(self._classes.values()))

    def class_ids(self) -> List[int]:
        return list(self._classes.keys())

    def shape_signatures(self, limit: Optional[int] = None) -> List[str]:
        """Compact *shape signatures* of the current e-classes.

        Each e-class is summarized as the sorted, deduplicated set of
        its nodes' ``op/arity`` forms joined with ``|`` (e.g.
        ``"*/2|Get/2|VecMAC/3"``) -- a structural abstraction of which
        operator mixes coexist in one equivalence class.  The sorted,
        deduplicated list over all classes is a cheap, deterministic
        signal of how much structural variety saturation produced; the
        conformance subsystem's coverage map consumes it through the
        flight recorder (see :mod:`repro.conformance.coverage`).

        ``limit`` caps the number of distinct signatures collected
        (coverage wants a bounded feature universe, not a dump of a
        400k-node graph).
        """
        signatures: set = set()
        for eclass in self._classes.values():
            shape = "|".join(
                sorted({f"{n.op}/{len(n.children)}" for n in eclass.nodes})
            )
            signatures.add(shape)
            if limit is not None and len(signatures) >= limit:
                break
        return sorted(signatures)

    def nodes_of(self, eclass_id: int) -> List[ENode]:
        """The e-nodes currently stored in the class of ``eclass_id``."""
        return list(self._classes[self.find(eclass_id)].nodes)

    def classes_with_op(self, op: str, since=None, counters=None) -> List[int]:
        """Canonical ids of classes containing at least one node with
        the given operator.  Backed by a lazily-cleaned index so that
        e-matching can skip irrelevant classes (the dominant cost on
        large kernels).

        ``since`` (an e-graph tick, see :attr:`tick`) additionally
        filters to classes whose subtree changed after that tick --
        the dirty-set pruning incremental e-matching relies on.
        ``counters`` (any object with ``visited``/``skipped`` ints,
        e.g. :class:`repro.egraph.pattern.MatchCounters`) is credited
        with how many candidate classes were kept vs pruned.
        """
        stale = self._op_index.get(op)
        if not stale:
            return []
        fresh: Set[int] = set()
        for cid in stale:
            root = self._uf.find(cid)
            eclass = self._classes.get(root)
            if eclass is not None and any(n.op == op for n in eclass.nodes):
                fresh.add(root)
        self._op_index[op] = fresh
        if since is None:
            if counters is not None:
                counters.visited += len(fresh)
            return list(fresh)
        self._propagate_dirty()
        dirty = [
            cid for cid in fresh if self._classes[cid].modified_at > since
        ]
        if counters is not None:
            counters.visited += len(dirty)
            counters.skipped += len(fresh) - len(dirty)
        return dirty

    def dirty_class_ids(self, since=None, counters=None) -> List[int]:
        """Canonical class ids whose subtree changed after tick
        ``since`` (all classes when ``since`` is ``None``)."""
        if since is None:
            ids = list(self._classes.keys())
            if counters is not None:
                counters.visited += len(ids)
            return ids
        self._propagate_dirty()
        dirty = [
            cid
            for cid, eclass in self._classes.items()
            if eclass.modified_at > since
        ]
        if counters is not None:
            counters.visited += len(dirty)
            counters.skipped += len(self._classes) - len(dirty)
        return dirty

    def __contains__(self, term: Term) -> bool:
        return self.lookup_term(term) is not None

    # ------------------------------------------------------------------
    # Dirty tracking (incremental e-matching)
    # ------------------------------------------------------------------

    def _stamp(self, eclass: EClass) -> None:
        """Mark a class as modified at the current tick and schedule
        upward propagation of the stamp to its ancestors."""
        self.tick += 1
        eclass.modified_at = self.tick
        self._dirty_pending.add(eclass.id)

    def _propagate_dirty(self) -> None:
        """Push modification stamps up the ``parents`` links.

        A pattern match rooted at class ``C`` only inspects classes in
        ``C``'s subtree, so a change anywhere below ``C`` must dirty
        ``C`` itself for dirty-set matching to be exact.  Propagation
        is deferred to the first ``since``-filtered query after a batch
        of mutations (searches never interleave with mutation in the
        saturation loop), which amortizes rebuild-storm unions.
        """
        pending = self._dirty_pending
        if not pending:
            return
        find = self._uf.find
        classes = self._classes
        stack = list(pending)
        pending.clear()
        while stack:
            cid = find(stack.pop())
            eclass = classes.get(cid)
            if eclass is None:
                continue
            stamp = eclass.modified_at
            for _node, parent in eclass.parents:
                pid = find(parent)
                pclass = classes.get(pid)
                if pclass is not None and pclass.modified_at < stamp:
                    pclass.modified_at = stamp
                    stack.append(pid)

    # ------------------------------------------------------------------
    # Checkpointing (fault tolerance)
    # ------------------------------------------------------------------

    def copy(self) -> "EGraph":
        """An independent snapshot of the whole e-graph.

        E-nodes are immutable, so only the containers are copied; class
        ids are preserved, which is what lets the saturation runner
        restore a checkpoint without invalidating ids held by callers
        (e.g. the compiler's root id).
        """
        new = EGraph(constant_folding=self.constant_folding)
        new._uf = self._uf.copy()
        new._memo = dict(self._memo)
        new._classes = {
            cid: EClass(c.id, list(c.nodes), list(c.parents), c.modified_at)
            for cid, c in self._classes.items()
        }
        new._pending = list(self._pending)
        new._const = dict(self._const)
        new._op_index = {op: set(ids) for op, ids in self._op_index.items()}
        new.version = self.version
        new.tick = self.tick
        new._n_nodes = self._n_nodes
        new._dirty_pending = set(self._dirty_pending)
        return new

    def restore_from(self, snapshot: "EGraph") -> None:
        """Overwrite this graph's state with ``snapshot``'s (taken via
        :meth:`copy`).  In-place so existing references -- and the class
        ids they hold -- stay valid."""
        other = snapshot.copy()
        self._uf = other._uf
        self._memo = other._memo
        self._classes = other._classes
        self._pending = other._pending
        self._const = other._const
        self._op_index = other._op_index
        self.constant_folding = other.constant_folding
        self.version = other.version
        self.tick = other.tick
        self._n_nodes = other._n_nodes
        self._dirty_pending = other._dirty_pending

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def add(self, node: ENode) -> int:
        """Insert an e-node (children must be existing class ids);
        return the id of its class, reusing an existing class when the
        canonical node is already present."""
        node = node.canonicalize(self._uf)
        existing = self._memo.get(node)
        if existing is not None:
            return self._uf.find(existing)
        new_id = self._uf.make_set()
        eclass = EClass(new_id, [node])
        self._classes[new_id] = eclass
        self._memo[node] = new_id
        self._op_index.setdefault(node.op, set()).add(new_id)
        for child in set(node.children):
            self._classes[child].parents.append((node, new_id))
        self.version += 1
        self._n_nodes += 1
        # A fresh class has no parents yet, so its stamp needs no
        # propagation: any node referencing it later is newer still.
        self.tick += 1
        eclass.modified_at = self.tick
        if self.constant_folding:
            self._fold(new_id, node)
        return new_id

    # ------------------------------------------------------------------
    # Constant-folding analysis (egg-style e-class analysis)
    # ------------------------------------------------------------------

    def constant_of(self, eclass_id: int) -> Optional[float]:
        """The known constant value of the class, if the analysis has
        derived one."""
        return self._const.get(self._uf.find(eclass_id))

    _FOLDABLE = {"+", "-", "*", "/", "neg", "sqrt", "sgn"}

    def _fold(self, eclass_id: int, node: ENode) -> None:
        """Try to derive a constant for a freshly added node; on
        success, record it and materialize the literal in the class
        (egg's ``modify`` hook)."""
        value: Optional[float] = None
        if node.op == "Num":
            value = float(node.value)  # type: ignore[arg-type]
        elif node.op in self._FOLDABLE:
            children = [self._const.get(self._uf.find(c)) for c in node.children]
            if all(v is not None for v in children):
                from ..dsl.ops import scalar_eval

                try:
                    value = float(scalar_eval(node.op, *children))  # type: ignore[arg-type]
                except (ValueError, ZeroDivisionError, OverflowError):
                    value = None
        if value is None or not _is_representable(value):
            return
        root = self._uf.find(eclass_id)
        self._const[root] = value
        if node.op != "Num":
            literal = self.add(ENode("Num", (), value))
            if self.union(root, literal):
                self.rebuild()

    def _merge_constants(self, kept: int, dropped: int) -> None:
        a = self._const.pop(dropped, None)
        b = self._const.get(kept)
        if a is None:
            return
        if b is None:
            self._const[kept] = a
        elif abs(a - b) > 1e-9 * max(1.0, abs(a)):
            raise RuntimeError(
                f"constant-analysis conflict: class holds both {a} and {b} "
                "(an unsound rewrite united unequal constants)"
            )

    def add_term(self, term: Term) -> int:
        """Insert a whole term bottom-up; returns the root's class id."""
        cache: Dict[Term, int] = {}

        def go(t: Term) -> int:
            hit = cache.get(t)
            if hit is not None:
                return hit
            children = tuple(go(a) for a in t.args)
            cid = self.add(ENode(t.op, children, t.value))
            cache[t] = cid
            return cid

        return go(term)

    def lookup(self, node: ENode) -> Optional[int]:
        """Class id of a canonical e-node, or ``None`` if absent.

        Unlike :meth:`add`, this never modifies the graph.
        """
        node = node.canonicalize(self._uf)
        found = self._memo.get(node)
        return None if found is None else self._uf.find(found)

    def lookup_term(self, term: Term) -> Optional[int]:
        """Class id representing ``term``, or ``None`` if the graph
        does not (yet) contain it."""
        children: List[int] = []
        for arg in term.args:
            child = self.lookup_term(arg)
            if child is None:
                return None
            children.append(child)
        return self.lookup(ENode(term.op, tuple(children), term.value))

    # ------------------------------------------------------------------
    # Union and rebuilding
    # ------------------------------------------------------------------

    def union(self, a: int, b: int) -> bool:
        """Assert that classes ``a`` and ``b`` are equal.

        Returns ``True`` when the graph changed.  Invariants are
        restored lazily by :meth:`rebuild`.
        """
        ra, rb = self._uf.find(a), self._uf.find(b)
        if ra == rb:
            return False
        root = self._uf.union(ra, rb)
        other = rb if root == ra else ra
        winner = self._classes[root]
        loser = self._classes.pop(other)
        winner.nodes.extend(loser.nodes)
        winner.parents.extend(loser.parents)
        if self.constant_folding:
            self._merge_constants(root, other)
        self._pending.append(root)
        self._stamp(winner)
        return True

    def rebuild(self) -> int:
        """Restore hashcons and congruence invariants after unions.

        Processes the worklist of dirty classes, re-canonicalizing
        parent e-nodes and merging classes that have become congruent,
        until a fixpoint.  Returns the number of classes repaired.
        """
        repaired = 0
        while self._pending:
            todo = {self._uf.find(cid) for cid in self._pending}
            self._pending.clear()
            for cid in todo:
                self._repair(cid)
                repaired += 1
        return repaired

    def _repair(self, eclass_id: int) -> None:
        eclass = self._classes.get(self._uf.find(eclass_id))
        if eclass is None:
            return

        # Re-canonicalize the hashcons entries of every parent node.
        new_parents: Dict[ENode, int] = {}
        for parent_node, parent_class in eclass.parents:
            self._memo.pop(parent_node, None)
            canonical = parent_node.canonicalize(self._uf)
            parent_class = self._uf.find(parent_class)
            previous = new_parents.get(canonical)
            if previous is not None:
                # Two parents became congruent: merge their classes.
                if self.union(previous, parent_class):
                    parent_class = self._uf.find(parent_class)
            new_parents[canonical] = self._uf.find(parent_class)
        for canonical, parent_class in new_parents.items():
            existing = self._memo.get(canonical)
            if existing is not None and self._uf.find(existing) != parent_class:
                self.union(existing, parent_class)
            self._memo[canonical] = self._uf.find(parent_class)
        eclass.parents = [(n, self._uf.find(c)) for n, c in new_parents.items()]

        # Deduplicate the class's own nodes under the new congruence.
        seen: Set[ENode] = set()
        unique_nodes: List[ENode] = []
        for node in eclass.nodes:
            canonical = node.canonicalize(self._uf)
            if canonical not in seen:
                seen.add(canonical)
                unique_nodes.append(canonical)
        self._n_nodes -= len(eclass.nodes) - len(unique_nodes)
        eclass.nodes = unique_nodes
        # Repair re-canonicalizes this class's representation; stamp it
        # (cheap safety -- the unions that triggered the repair already
        # dirtied the semantic changes).
        self._stamp(eclass)

    # ------------------------------------------------------------------
    # Equivalence and term extraction helpers
    # ------------------------------------------------------------------

    def equiv(self, t1: Term, t2: Term) -> bool:
        """True when both terms are present and in the same class."""
        a = self.lookup_term(t1)
        b = self.lookup_term(t2)
        return a is not None and b is not None and a == b

    def dump(self) -> str:
        """Human-readable snapshot, for debugging tests."""
        lines = []
        for cid in sorted(self._classes):
            eclass = self._classes[cid]
            rendered = ", ".join(
                f"{n.op}{n.value if n.value is not None else ''}{list(n.children)}"
                for n in eclass.nodes
            )
            lines.append(f"e{cid}: {rendered}")
        return "\n".join(lines)
