"""Structural unit tests for the vector IR (repro.backend.vir)."""

import pytest

from repro.backend import vir
from repro.backend.vir import Program, RegAllocator


class TestInstructionMetadata:
    def test_defs_and_uses(self):
        cases = [
            (vir.SConst("s0", 1.0), ("s0",), ()),
            (vir.SMove("s1", "s0"), ("s1",), ("s0",)),
            (vir.SBin("+", "s2", "s0", "s1"), ("s2",), ("s0", "s1")),
            (vir.SUn("neg", "s3", "s0"), ("s3",), ("s0",)),
            (vir.SLoad("s4", "a", 0), ("s4",), ()),
            (vir.SLoadIdx("s5", "a", "s0"), ("s5",), ("s0",)),
            (vir.SStore("out", 0, "s0"), (), ("s0",)),
            (vir.SStoreIdx("out", "s0", "s1"), (), ("s0", "s1")),
            (vir.VConst("v0", (0.0,) * 4), ("v0",), ()),
            (vir.VLoad("v1", "a", 0), ("v1",), ()),
            (vir.VStore("out", 0, "v0", 4), (), ("v0",)),
            (vir.VShuffle("v2", "v0", (0, 1, 2, 3)), ("v2",), ("v0",)),
            (vir.VSelect("v3", "v0", "v1", (0,) * 4), ("v3",), ("v0", "v1")),
            (vir.VBin("*", "v4", "v0", "v1"), ("v4",), ("v0", "v1")),
            (vir.VMac("v5", "v0", "v1", "v2"), ("v5",), ("v0", "v1", "v2")),
            (vir.VInsert("v6", "v0", 0, "s0"), ("v6",), ("v0", "s0")),
            (vir.VSplat("v7", "s0"), ("v7",), ("s0",)),
            (vir.Branch("lt", "s0", "s1", "L"), (), ("s0", "s1")),
        ]
        for instr, defs, uses in cases:
            assert instr.defs() == defs, instr
            assert instr.uses() == uses, instr

    def test_purity(self):
        assert vir.SLoad("s0", "a", 0).is_pure()
        assert vir.VMac("v0", "v1", "v2", "v3").is_pure()
        assert not vir.SStore("out", 0, "s0").is_pure()
        assert not vir.VStore("out", 0, "v0", 4).is_pure()
        assert not vir.Jump("L").is_pure()
        assert not vir.Label("L").is_pure()

    def test_opcode_strings(self):
        assert vir.SBin("+", "s0", "a", "b").opcode == "sbin.+"
        assert vir.VBin("/", "v0", "a", "b").opcode == "vbin./"
        assert vir.VUn("sqrt", "v0", "a").opcode == "vun.sqrt"

    def test_invalid_ops_rejected(self):
        with pytest.raises(ValueError):
            vir.SBin("%", "s0", "a", "b")
        with pytest.raises(ValueError):
            vir.VBin("min", "v0", "a", "b")  # vector min not in the IR
        with pytest.raises(ValueError):
            vir.SUn("abs", "s0", "a")
        with pytest.raises(ValueError):
            vir.Branch("!=", "a", "b", "L")


class TestProgram:
    def test_emit_and_len(self):
        p = Program("t", {"a": 4}, {"out": 4})
        p.emit(vir.SConst("s0", 1.0))
        p.extend([vir.SStore("out", 0, "s0")])
        assert len(p) == 2

    def test_straight_line_detection(self):
        p = Program("t", {}, {"out": 1})
        p.emit(vir.SConst("s0", 1.0))
        assert p.is_straight_line()
        p.emit(vir.Label("x"))
        assert not p.is_straight_line()

    def test_validate_labels_ok(self):
        p = Program("t", {}, {"out": 1})
        p.emit(vir.Label("x"))
        p.emit(vir.Jump("x"))
        p.validate_labels()

    def test_validate_labels_missing(self):
        p = Program("t", {}, {"out": 1})
        p.emit(vir.Jump("nowhere"))
        with pytest.raises(ValueError, match="undefined label"):
            p.validate_labels()

    def test_validate_labels_duplicate(self):
        p = Program("t", {}, {"out": 1})
        p.emit(vir.Label("x"))
        p.emit(vir.Label("x"))
        with pytest.raises(ValueError, match="duplicate"):
            p.validate_labels()


class TestRegAllocator:
    def test_fresh_names(self):
        regs = RegAllocator()
        assert regs.scalar() == "s0"
        assert regs.scalar() == "s1"
        assert regs.vector() == "v0"
        assert regs.vector() == "v1"

    def test_scalar_vector_namespaces_disjoint(self):
        regs = RegAllocator()
        names = {regs.scalar() for _ in range(5)} | {
            regs.vector() for _ in range(5)
        }
        assert len(names) == 10
