"""BoundedLog ring buffer and truncation-tolerant breaker replay.

Satellite of the gateway PR: ``CompileService.breaker_log`` used to be
a bare list -- unbounded memory on exactly the long-lived deployment
the gateway targets.  The ring keeps the tail, counts drops, and the
chaos ``breaker-legality`` checker must replay a truncated log without
manufacturing false violations.
"""

from repro.chaos.invariants import check_breaker_log
from repro.service import BoundedLog, CompileService


def test_ring_keeps_tail_and_counts_drops():
    log = BoundedLog(maxlen=3)
    for i in range(5):
        log.append({"n": i})
    assert [e["n"] for e in log] == [2, 3, 4]
    assert len(log) == 3
    assert log.dropped == 2
    assert log.total == 5
    assert log[0] == {"n": 2}


def test_clear_resets_accounting():
    log = BoundedLog(maxlen=2)
    for i in range(4):
        log.append({"n": i})
    log.clear()
    assert len(log) == 0 and log.dropped == 0 and log.total == 0


def test_service_breaker_log_is_bounded():
    service = CompileService(cache=None, isolate=False)
    assert isinstance(service.breaker_log, BoundedLog)


def _strike_history(kernel, upto, threshold):
    entries = [
        {"kernel": kernel, "event": "strike", "strikes": n}
        for n in range(1, upto + 1)
    ]
    entries.append({"kernel": kernel, "event": "open", "strikes": threshold})
    return entries


def test_truncated_log_replays_leniently():
    """A legal history whose prefix fell off the ring must not read as
    a protocol violation: the first surviving entry seeds the state."""
    log = BoundedLog(maxlen=3)
    for entry in _strike_history("k", upto=5, threshold=5):
        log.append(entry)
    assert log.dropped == 3  # kept: strike 4, strike 5, open
    assert check_breaker_log("cell", log, threshold=5) == []


def test_untruncated_suffix_still_flags_violations():
    """The same suffix in a plain list (no drop accounting) IS illegal:
    leniency applies only when the ring actually dropped entries."""
    suffix = _strike_history("k", upto=5, threshold=5)[-3:]
    violations = check_breaker_log("cell", suffix, threshold=5)
    assert violations  # strike jumped 0 -> 4
    assert violations[0].invariant == "breaker-legality"


def test_truncated_replay_still_catches_real_violations():
    """Leniency seeds per-kernel state from the first sighting; later
    entries are judged normally."""
    log = BoundedLog(maxlen=2)
    log.append({"kernel": "k", "event": "strike", "strikes": 3})
    log.append({"kernel": "k", "event": "strike", "strikes": 7})  # jump!
    log.dropped = 1  # simulate a truncated prefix
    violations = check_breaker_log("cell", log, threshold=5)
    assert len(violations) == 1
    assert "jumped" in violations[0].detail
