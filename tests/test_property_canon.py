"""Property-based tests of the real-arithmetic canonicalizer: its
verdicts must agree with concrete evaluation on random inputs."""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.dsl import evaluate
from repro.dsl.ast import Term, get, num
from repro.validation import CanonOverflow, equivalent

_leaves = st.one_of(
    st.integers(min_value=-2, max_value=2).map(num),
    st.tuples(st.sampled_from(["x", "y"]), st.integers(0, 3)).map(
        lambda p: get(*p)
    ),
)


def _compound(children):
    return st.builds(
        lambda op, l, r: Term(op, (l, r)),
        st.sampled_from(["+", "-", "*"]),
        children,
        children,
    )


_exprs = st.recursive(_leaves, _compound, max_leaves=8)

_ENVS = [
    {"x": [1.0, -2.0, 0.5, 3.0], "y": [2.0, 0.25, -1.0, 1.5]},
    {"x": [0.0, 1.0, 2.0, 3.0], "y": [-1.0, -2.0, -3.0, -4.0]},
    {"x": [7.0, 11.0, 13.0, 17.0], "y": [19.0, 23.0, 29.0, 31.0]},
]


class TestCanonAgreesWithEvaluation:
    @given(_exprs, _exprs)
    @settings(max_examples=80, deadline=None)
    def test_equivalent_implies_equal_values(self, e1, e2):
        try:
            verdict = equivalent(e1, e2)
        except CanonOverflow:
            assume(False)
        for env in _ENVS:
            v1 = evaluate(e1, env)
            v2 = evaluate(e2, env)
            if verdict:
                assert abs(v1 - v2) < 1e-6 * max(1.0, abs(v1)), (
                    f"canon says equal, values differ: {e1} vs {e2}"
                )

    @given(_exprs)
    @settings(max_examples=60, deadline=None)
    def test_reflexive(self, e):
        try:
            assert equivalent(e, e)
        except CanonOverflow:
            assume(False)

    @given(_exprs, _exprs)
    @settings(max_examples=60, deadline=None)
    def test_symmetric(self, e1, e2):
        try:
            assert equivalent(e1, e2) == equivalent(e2, e1)
        except CanonOverflow:
            assume(False)

    @given(_exprs, _exprs)
    @settings(max_examples=60, deadline=None)
    def test_commuted_sum_always_equivalent(self, e1, e2):
        try:
            assert equivalent(Term("+", (e1, e2)), Term("+", (e2, e1)))
        except CanonOverflow:
            assume(False)

    @given(_exprs, _exprs, _exprs)
    @settings(max_examples=40, deadline=None)
    def test_distributivity_recognized(self, a, b, c):
        lhs = Term("*", (a, Term("+", (b, c))))
        rhs = Term("+", (Term("*", (a, b)), Term("*", (a, c))))
        try:
            assert equivalent(lhs, rhs)
        except CanonOverflow:
            assume(False)

    @given(_exprs)
    @settings(max_examples=40, deadline=None)
    def test_value_separation(self, e):
        """An expression is never canonically equal to itself plus 1."""
        bumped = Term("+", (e, num(1)))
        try:
            assert not equivalent(e, bumped)
        except CanonOverflow:
            assume(False)
