"""S-expression parser and printer for the vector DSL.

The paper presents programs in s-expression syntax, e.g.::

    (List (+ (Get a 0) (Get b 0))
          (+ (Get a 1) (Get b 1)))

This module round-trips that syntax with :class:`repro.dsl.ast.Term`:
``parse(term.to_sexpr()) == term`` for every well-formed term.  The
parser is also what the test suite and the examples use to write specs
compactly.

Heads that are not known operators parse as user-defined function
applications (``Call`` terms), mirroring the paper's uninterpreted
functions.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple, Union

from .ast import Term, num, sym
from .ops import OPS

__all__ = ["parse", "parse_many", "to_sexpr", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed s-expression input."""


_Sexpr = Union[str, List["_Sexpr"]]


def _tokenize(text: str) -> Iterator[str]:
    token = []
    for ch in text:
        if ch in "()":
            if token:
                yield "".join(token)
                token.clear()
            yield ch
        elif ch.isspace():
            if token:
                yield "".join(token)
                token.clear()
        else:
            token.append(ch)
    if token:
        yield "".join(token)


def _read(tokens: List[str], pos: int) -> Tuple[_Sexpr, int]:
    if pos >= len(tokens):
        raise ParseError("unexpected end of input")
    tok = tokens[pos]
    if tok == "(":
        items: List[_Sexpr] = []
        pos += 1
        while True:
            if pos >= len(tokens):
                raise ParseError("unbalanced '('")
            if tokens[pos] == ")":
                return items, pos + 1
            item, pos = _read(tokens, pos)
            items.append(item)
    if tok == ")":
        raise ParseError("unexpected ')'")
    return tok, pos + 1


def _atom_to_term(token: str) -> Term:
    try:
        return num(int(token))
    except ValueError:
        pass
    try:
        return num(float(token))
    except ValueError:
        pass
    return sym(token)


def _to_term(sexpr: _Sexpr) -> Term:
    if isinstance(sexpr, str):
        return _atom_to_term(sexpr)
    if not sexpr:
        raise ParseError("empty application '()'")
    head = sexpr[0]
    if not isinstance(head, str):
        raise ParseError(f"operator position must be a symbol, got {head!r}")
    args = tuple(_to_term(item) for item in sexpr[1:])
    info = OPS.get(head)
    if info is None or head in ("Num", "Symbol"):
        # Unknown head: a user-defined (uninterpreted) function call.
        return Term("Call", args, head)
    if info.arity is not None and len(args) != info.arity:
        raise ParseError(
            f"operator {head!r} expects {info.arity} argument(s), got {len(args)}"
        )
    return Term(head, args)


def parse(text: str) -> Term:
    """Parse a single s-expression into a :class:`Term`."""
    tokens = list(_tokenize(text))
    if not tokens:
        raise ParseError("empty input")
    sexpr, end = _read(tokens, 0)
    if end != len(tokens):
        raise ParseError(f"trailing input after expression: {tokens[end:]}")
    return _to_term(sexpr)


def parse_many(text: str) -> List[Term]:
    """Parse a whitespace-separated sequence of s-expressions."""
    tokens = list(_tokenize(text))
    terms: List[Term] = []
    pos = 0
    while pos < len(tokens):
        sexpr, pos = _read(tokens, pos)
        terms.append(_to_term(sexpr))
    return terms


def to_sexpr(term: Term) -> str:
    """Render a term back to s-expression text (same as
    ``term.to_sexpr()``; provided for symmetry with :func:`parse`)."""
    return term.to_sexpr()
