"""Coverage map, feature extraction, and seed corpus."""

import json
import os

import pytest

from repro.compiler import compile_spec
from repro.conformance.corpus import Corpus, spec_from_json, spec_key, spec_to_json
from repro.conformance.coverage import (
    COVERAGE_SCHEMA,
    CoverageMap,
    bucket,
    result_features,
)
from repro.conformance.fuzzer import conformance_options
from repro.seeding import stable_rng
from repro.validation.fuzz import random_spec


def test_bucket_log2_classes():
    assert bucket(0) == 0
    assert bucket(1) == 1
    assert bucket(2) == 2
    assert bucket(3) == 2
    assert bucket(4) == 3
    assert bucket(1023) == 10
    # Saturation cap bounds the feature universe.
    assert bucket(10**9) == 12
    assert bucket(100, cap=4) == 4


def test_coverage_map_growth_and_novelty():
    cm = CoverageMap()
    assert cm.add("a:1")
    assert not cm.add("a:1")
    assert cm.add_all(["a:1", "b:2", "b:3"]) == 2
    assert cm.cardinality == 3
    assert "b:2" in cm
    assert cm.novel(["a:1", "c:9"]) == ["c:9"]
    assert cm.by_plane() == {"a": 1, "b": 2}


def test_coverage_map_json_roundtrip(tmp_path):
    cm = CoverageMap(["rule:x", "opcode:vmac", "shape:a/2"])
    payload = cm.to_json()
    assert payload["schema"] == COVERAGE_SCHEMA
    assert CoverageMap.from_json(payload).features() == cm.features()
    path = os.path.join(tmp_path, "cov.json")
    cm.dump_to(path)
    assert CoverageMap.load_from(path).features() == cm.features()
    with pytest.raises(ValueError):
        CoverageMap.from_json({"schema": "bogus"})


def test_result_features_deterministic_and_planed():
    spec = random_spec(stable_rng(3, "cov-test"), 0)
    options = conformance_options(seed=3)
    first = result_features(compile_spec(spec, options))
    second = result_features(compile_spec(spec, options))
    assert first == second
    planes = {f.split(":", 1)[0] for f in first}
    # The three observation planes of the tentpole: rule firings,
    # e-class shapes (via the flight recorder), and the VIR opcode mix.
    assert "rule" in planes
    assert "shape" in planes
    assert "opcode" in planes
    assert "stop" in planes
    # Timing must never leak into features (replay determinism).
    assert not any("time" in f or "seconds" in f for f in first)


def test_spec_json_roundtrip_and_key():
    spec = random_spec(stable_rng(4, "corpus-test"), 1)
    payload = spec_to_json(spec)
    clone = spec_from_json(payload)
    assert spec_key(clone) == spec_key(spec)
    assert clone.term.to_sexpr() == spec.term.to_sexpr()
    assert [d.name for d in clone.inputs] == [d.name for d in spec.inputs]
    with pytest.raises(ValueError):
        spec_from_json({"schema": "bogus"})


def test_corpus_persistence_and_corrupt_seed(tmp_path):
    root = str(tmp_path / "corpus")
    corpus = Corpus(root)
    spec = random_spec(stable_rng(5, "corpus-test"), 0)
    key, was_new = corpus.add(spec)
    assert was_new
    assert corpus.add(spec) == (key, False)
    # A corrupt file must be skipped, not fatal.
    with open(os.path.join(root, "zz-corrupt.json"), "w") as handle:
        handle.write("{not json")
    reloaded = Corpus(root)
    assert reloaded.keys() == [key]
    assert spec_key(reloaded.seeds()[0]) == key


def test_memory_only_corpus():
    corpus = Corpus()
    spec = random_spec(stable_rng(6, "corpus-test"), 0)
    _, was_new = corpus.add(spec)
    assert was_new and len(corpus) == 1 and spec in corpus
