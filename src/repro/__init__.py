"""Diospyros reproduction: vectorization for digital signal processors
via equality saturation (VanHattum et al., ASPLOS 2021).

The package is organized along the paper's pipeline (Figure 1):

* :mod:`repro.frontend`   -- scalar reference kernels + symbolic lifting.
* :mod:`repro.dsl`        -- the abstract vector DSL (Figure 3).
* :mod:`repro.egraph`     -- e-graphs and equality saturation (egg-style).
* :mod:`repro.rules`      -- the vectorization rewrite system.
* :mod:`repro.costs`      -- extraction cost models.
* :mod:`repro.validation` -- translation validation.
* :mod:`repro.backend`    -- vector IR, lowering, LVN, C codegen.
* :mod:`repro.machine`    -- the simulated Fusion-G3-like DSP target.
* :mod:`repro.compiler`   -- the end-to-end driver.
* :mod:`repro.kernels`    -- the 21 evaluation kernels (Table 1).
* :mod:`repro.baselines`  -- Naive / Nature-like / Eigen-like / expert.
* :mod:`repro.apps`       -- the Theia case study (Section 5.7).
* :mod:`repro.evaluation` -- Table 1 / Figure 5 / Figure 6 / ablations.

Quickstart::

    from repro import compile_kernel, CompileOptions, simulate

    def vector_add(a, b, out):
        for i in range(len(out)):
            out[i] = a[i] + b[i]

    result = compile_kernel(
        "vadd", vector_add, [("a", 8), ("b", 8)], [("o", 8)]
    )
    print(result.c_code)
    sim = simulate(result.program, {"a": range(8), "b": range(8)})
    print(sim.output("out"), sim.cycles)
"""

from .compiler import CompileOptions, CompileResult, compile_kernel, compile_spec
from .costs import CostConfig, DiospyrosCostModel
from .frontend import Spec, lift
from .machine import MachineConfig, fusion_g3, simulate

__version__ = "1.0.0"

__all__ = [
    "CompileOptions",
    "CompileResult",
    "compile_kernel",
    "compile_spec",
    "CostConfig",
    "DiospyrosCostModel",
    "Spec",
    "lift",
    "MachineConfig",
    "fusion_g3",
    "simulate",
    "__version__",
]
