"""Tests of the baseline implementations (repro.baselines): every
baseline must compute exactly what the reference computes, and the
structural claims (loops vs straight-line, availability) must hold."""

import pytest

from tests.conftest import run_and_compare

from repro.baselines import (
    BASELINES,
    baseline_program,
    eigen_kernel,
    expert_kernel,
    naive_fixed,
    naive_parametric,
    nature_kernel,
    trace_kernel,
)
from repro.kernels import make_conv2d, make_matmul, make_qprod, make_qr

MATMULS = [(2, 2, 2), (2, 3, 3), (3, 3, 3), (4, 4, 4), (5, 2, 7)]
CONVS = [(3, 3, 2, 2), (3, 5, 3, 3), (4, 4, 3, 3), (6, 6, 4, 4)]


class TestNaiveParametric:
    @pytest.mark.parametrize("m,k,n", MATMULS)
    def test_matmul_correct(self, m, k, n):
        kernel = make_matmul(m, k, n)
        run_and_compare(kernel, naive_parametric(kernel), seed=m + n)

    @pytest.mark.parametrize("ir,ic,fr,fc", CONVS)
    def test_conv_correct(self, ir, ic, fr, fc):
        kernel = make_conv2d(ir, ic, fr, fc)
        run_and_compare(kernel, naive_parametric(kernel), seed=ir)

    @pytest.mark.parametrize("n", [3, 4])
    def test_qr_correct(self, n):
        kernel = make_qr(n)
        run_and_compare(kernel, naive_parametric(kernel), seed=n)

    def test_qprod_correct(self):
        kernel = make_qprod()
        run_and_compare(kernel, naive_parametric(kernel))

    def test_has_real_loops(self):
        program = naive_parametric(make_matmul(3, 3, 3))
        assert not program.is_straight_line()

    def test_unknown_category_rejected(self):
        kernel = make_matmul(2, 2, 2)
        kernel.category = "Mystery"
        with pytest.raises(ValueError):
            naive_parametric(kernel)


class TestNaiveFixed:
    @pytest.mark.parametrize("m,k,n", MATMULS)
    def test_matmul_correct(self, m, k, n):
        kernel = make_matmul(m, k, n)
        run_and_compare(kernel, naive_fixed(kernel), seed=m * n)

    @pytest.mark.parametrize("ir,ic,fr,fc", CONVS[:2])
    def test_conv_correct(self, ir, ic, fr, fc):
        kernel = make_conv2d(ir, ic, fr, fc)
        run_and_compare(kernel, naive_fixed(kernel))

    def test_qr_correct(self):
        kernel = make_qr(3)
        run_and_compare(kernel, naive_fixed(kernel))

    def test_straight_line(self):
        assert naive_fixed(make_matmul(2, 2, 2)).is_straight_line()

    def test_fixed_faster_than_parametric(self):
        """The paper's 1.6x observation, qualitatively: removing loop
        and index overhead must speed up a small matmul."""
        kernel = make_matmul(3, 3, 3)
        fixed = run_and_compare(kernel, naive_fixed(kernel))
        loops = run_and_compare(kernel, naive_parametric(kernel))
        assert fixed.cycles < loops.cycles

    def test_no_load_caching(self):
        """Without alias info, each read of a[0][0] is a separate load
        when it feeds different outputs."""
        kernel = make_matmul(2, 2, 2)
        program = naive_fixed(kernel)
        # a00 feeds c00 and c01: two loads of a[0].
        loads = [
            i for i in program.instructions
            if i.opcode == "sload" and i.array == "a" and i.offset == 0
        ]
        assert len(loads) == 2


class TestNature:
    @pytest.mark.parametrize("m,k,n", MATMULS)
    def test_matmul_correct(self, m, k, n):
        kernel = make_matmul(m, k, n)
        run_and_compare(kernel, nature_kernel(kernel), seed=7)

    @pytest.mark.parametrize("ir,ic,fr,fc", CONVS)
    def test_conv_correct(self, ir, ic, fr, fc):
        kernel = make_conv2d(ir, ic, fr, fc)
        run_and_compare(kernel, nature_kernel(kernel), seed=5)

    def test_not_available_for_qprod_qr(self):
        assert nature_kernel(make_qprod()) is None
        assert nature_kernel(make_qr(3)) is None

    def test_uses_vector_unit_on_wide_matmul(self):
        program = nature_kernel(make_matmul(4, 4, 4))
        hist = program.opcode_histogram()
        assert hist.get("vmac", 0) >= 1

    def test_width_multiple_gets_pure_vector_fast_path(self):
        """n % 4 == 0: every output element comes from the vector
        path -- exactly m * (n/4) * k MACs execute and no scalar
        loads of the B matrix happen (the tail loop never runs)."""
        kernel = make_matmul(4, 4, 8)
        result = run_and_compare(kernel, nature_kernel(kernel))
        assert result.cycle_breakdown.get("vmac", 0) == 4 * (8 // 4) * 4
        # Scalar B loads only happen in the tail path.
        assert result.cycle_breakdown.get("sload.idx", 0) == (
            4 * (8 // 4) * 4  # one scalar A load per MAC (then splat)
        )

    def test_generic_overhead_hurts_tiny_sizes(self):
        """The paper's 2x2 observation: Nature loses to fixed-size
        naive code on tiny kernels."""
        kernel = make_matmul(2, 2, 2)
        nature = run_and_compare(kernel, nature_kernel(kernel))
        fixed = run_and_compare(kernel, naive_fixed(kernel))
        assert nature.cycles > fixed.cycles


class TestEigen:
    @pytest.mark.parametrize("m,k,n", MATMULS)
    def test_matmul_correct(self, m, k, n):
        kernel = make_matmul(m, k, n)
        run_and_compare(kernel, eigen_kernel(kernel), seed=2)

    def test_qprod_correct(self):
        kernel = make_qprod()
        run_and_compare(kernel, eigen_kernel(kernel))

    @pytest.mark.parametrize("n", [3, 4])
    def test_qr_correct(self, n):
        kernel = make_qr(n)
        run_and_compare(kernel, eigen_kernel(kernel), seed=n + 1)

    def test_no_conv(self):
        assert eigen_kernel(make_conv2d(3, 3, 2, 2)) is None

    def test_caches_loads(self):
        """Expression-template style: each input element loaded once."""
        program = eigen_kernel(make_matmul(2, 2, 2))
        loads = [
            (i.array, i.offset)
            for i in program.instructions
            if i.opcode == "sload"
        ]
        assert len(loads) == len(set(loads))

    def test_eigen_qr_is_loop_based(self):
        assert not eigen_kernel(make_qr(3)).is_straight_line()


class TestExpert:
    def test_only_for_2x3_3x3(self):
        assert expert_kernel(make_matmul(2, 3, 3)) is not None
        assert expert_kernel(make_matmul(3, 3, 3)) is None
        assert expert_kernel(make_conv2d(3, 3, 2, 2)) is None

    def test_correct(self):
        kernel = make_matmul(2, 3, 3)
        for seed in range(5):
            run_and_compare(kernel, expert_kernel(kernel), seed=seed)

    def test_paper_op_mix(self):
        """Two vector multiplies and four multiply-accumulates
        (Section 5.4)."""
        hist = expert_kernel(make_matmul(2, 3, 3)).opcode_histogram()
        assert hist["vbin.*"] == 2
        assert hist["vmac"] == 4


class TestRegistry:
    def test_baseline_names(self):
        assert set(BASELINES) == {"naive", "naive-fixed", "nature", "eigen", "expert"}

    def test_baseline_program_dispatch(self):
        kernel = make_matmul(2, 2, 2)
        assert baseline_program("naive", kernel) is not None
        assert baseline_program("expert", kernel) is None

    def test_unknown_baseline(self):
        with pytest.raises(KeyError):
            baseline_program("gcc", make_matmul(2, 2, 2))

    def test_trace_kernel_output_layout(self):
        """Traced kernels share the combined-out ABI."""
        kernel = make_qr(3)
        program = trace_kernel(kernel, "test")
        assert program.outputs == {"out": 18}
