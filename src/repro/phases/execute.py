"""The phase executor: run a :class:`~.plan.PhasePlan` to completion.

Each phase seeds a **fresh** e-graph with the previous phase's
extracted term, saturates it through the existing
:class:`~repro.egraph.runner.Runner` with the phase's rule subset and
budgets, extracts with a sketch-biased cost model, and checks the
result against the phase sketch.  The re-seed is the whole trick: the
runner's node watchdog compares the *cumulative* e-node counter
(``EGraph.version``) against the budget, and extraction throws away
every e-class that did not make it into the chosen term -- so a phase
boundary simultaneously resets the counter and shrinks the live graph.
A kernel whose monolithic saturation needs N nodes to reach the
vectorized form can pass through the same rewrites in phases whose
individual peaks stay well under N (measured in EXPERIMENTS.md).

Crash recovery: every phase *round* persists through the same
``service/checkpoint.py`` machinery as a monolithic run, under a key
that includes the plan fingerprint, the phase index, and the
extend-round index (:func:`repro.service.checkpoint.phase_saturation_key`).
On resume after a SIGKILL, completed phases re-run deterministically
from the spec (their checkpoints were consumed on completion), and the
interrupted round finds exactly its own checkpoint -- never a stale one
from a different phase, round, or plan -- restoring the uninterrupted
trajectory byte-identically (asserted by ``tests/test_phase_resume.py``
and the ``phase.saturate:sigkill`` chaos cell).

Observability: each phase runs under a ``phase`` span, emits
``phase_start`` / ``phase_round`` / ``phase_done`` flight-recorder
events, and samples ``repro_phase_seconds`` / ``repro_phase_rounds_total``
metrics, so a phased compile's trace shows exactly where the time and
the node budget went.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..chaos.inject import chaos_point
from ..dsl.ast import Term
from ..egraph.egraph import EGraph, ENode
from ..egraph.extract import CostFunction, Extractor
from ..egraph.runner import Runner, RunReport, StopReason
from ..egraph.scheduler import BackoffScheduler, RuleStats
from ..observability import current_session, span
from ..rules import build_ruleset
from .plan import Phase, PhasePlan
from .sketch import Sketch

__all__ = [
    "SketchBiasedCost",
    "PhaseRoundReport",
    "PhaseReport",
    "PlanReport",
    "PhaseExecution",
    "execute_plan",
]


class SketchBiasedCost(CostFunction):
    """Wrap a cost model with a sketch-derived extraction bias.

    * Ops the sketch **requires** cost a flat ``sum(children) + eps``:
      the structural overlay the sketch asks for (``Concat``/``Vec``
      spines) becomes nearly free, so the extractor prefers it over a
      flat scalar form even when the base model would not.  The 2DConv
      layout phase needs this: its 121-element output splits into
      vectors only by padding three zero lanes, and under the plain
      Diospyros model those pad zeros cost more than the ``List`` spine
      they replace.
    * Ops the sketch **forbids** pay a constant penalty on top of the
      base marginal, steering extraction away from pre-phase shapes
      whenever any alternative exists.

    Both adjustments keep the marginal strictly positive, preserving
    the extractor's monotonicity requirement.
    """

    REWARD_MARGINAL = 1e-6
    PENALTY = 10.0

    def __init__(
        self,
        base: CostFunction,
        reward: Tuple[str, ...] = (),
        penalty: Tuple[str, ...] = (),
    ) -> None:
        self.base = base
        self.reward = frozenset(reward)
        self.penalty = frozenset(penalty)

    def node_cost(
        self, extractor: Extractor, node: ENode, child_costs: List[float]
    ) -> float:
        if node.op in self.reward:
            return sum(child_costs) + self.REWARD_MARGINAL
        cost = self.base.node_cost(extractor, node, child_costs)
        if node.op in self.penalty:
            cost += self.PENALTY
        return cost


def biased_cost(base: CostFunction, sketch: Optional[Sketch]) -> CostFunction:
    """The extraction cost model for one phase: the base model, biased
    by the phase sketch's required/forbidden operator hints."""
    if sketch is None:
        return base
    reward = tuple(sorted(sketch.required_ops()))
    penalty = tuple(sorted(sketch.forbidden_ops()))
    if not reward and not penalty:
        return base
    return SketchBiasedCost(base, reward=reward, penalty=penalty)


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class PhaseRoundReport:
    """One extract-and-re-seed round within a phase."""

    round: int
    stop_reason: str
    iterations: int
    seed_version: int
    final_version: int
    node_limit: int
    sketch_score: float
    elapsed: float
    resumed_from: Optional[int] = None


@dataclass
class PhaseReport:
    """Outcome of one phase (all its rounds)."""

    name: str
    index: int
    rounds: List[PhaseRoundReport] = field(default_factory=list)
    sketch_score: float = 1.0
    sketch_satisfied: bool = True
    #: What the on-miss policy did: "" (hit), "extended" (hit after
    #: extra rounds), "accepted-miss" (skip / extend exhausted),
    #: "failed" (fail policy or a crashed round).
    outcome: str = ""
    extracted_cost: float = 0.0
    total_time: float = 0.0

    @property
    def peak_version(self) -> int:
        """Largest cumulative node count any round reached -- the
        phased analogue of a monolithic run's final ``EGraph.version``."""
        return max((r.final_version for r in self.rounds), default=0)

    @property
    def iterations(self) -> int:
        return sum(r.iterations for r in self.rounds)


@dataclass
class PlanReport:
    """Outcome of a whole plan execution (rides on ``CompileResult``)."""

    plan_name: str
    fingerprint: str
    phases: List[PhaseReport] = field(default_factory=list)
    total_time: float = 0.0
    completed: bool = False
    failed_phase: Optional[str] = None

    @property
    def peak_version(self) -> int:
        return max((p.peak_version for p in self.phases), default=0)

    def summary(self) -> str:
        parts = []
        for phase in self.phases:
            mark = "✓" if phase.sketch_satisfied else "✗"
            parts.append(
                f"{phase.name}[{len(phase.rounds)}r {phase.peak_version}n {mark}]"
            )
        status = "ok" if self.completed else f"failed@{self.failed_phase}"
        return f"{self.plan_name}: {' -> '.join(parts)} ({status})"


@dataclass
class PhaseExecution:
    """Everything the compiler needs back from a plan execution."""

    #: Final phase's e-graph and root (candidate selection and the
    #: lowering fallbacks extract from it, exactly as they would from a
    #: monolithic run's graph).
    egraph: EGraph
    root: int
    term: Term
    #: Merged runner report across every round of every phase.
    report: RunReport
    plan_report: PlanReport
    #: On failure: the last successful phase boundary's term -- the
    #: degradation ladder's new rung falls back to it instead of
    #: dropping all the way to scalar lowering.
    fallback_term: Optional[Term] = None
    failed: bool = False
    failure: str = ""


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _phase_rules(options, phase: Phase):
    """The phase's rule subset, drawn from the full registry with the
    compile's own family switches still honoured."""
    return build_ruleset(
        width=options.vector_width,
        enable_scalar=options.enable_scalar_rules,
        enable_vector=options.enable_vector_rules,
        enable_ac=options.enable_ac_rules,
        extra_rules=list(options.extra_rules),
        only_tags=phase.rule_tags if phase.rule_tags else None,
    )


def _copy_stats(stats: Dict[str, RuleStats]) -> Dict[str, RuleStats]:
    """Deep-ish copy so the next round's scheduler cannot mutate the
    RuleStats objects already recorded in a finished round's report."""
    return {name: dataclasses.replace(s) for name, s in stats.items()}


def _merge_rule_stats(
    into: Dict[str, RuleStats], source: Dict[str, RuleStats]
) -> None:
    for name, s in source.items():
        acc = into.get(name)
        if acc is None:
            into[name] = dataclasses.replace(s)
            continue
        acc.matches += s.matches
        acc.applied += s.applied
        acc.skipped += s.skipped
        acc.times_banned += s.times_banned
        acc.search_time += s.search_time
        acc.classes_visited += s.classes_visited
        acc.classes_skipped += s.classes_skipped
        acc.full_rescans += s.full_rescans


def execute_plan(
    spec, options, plan: PhasePlan
) -> PhaseExecution:
    """Run ``plan`` over ``spec`` and return the combined outcome.

    Never raises for phase-level failures (a crashed rule, a ``fail``
    on-miss policy): those come back with ``failed=True`` plus the last
    successful boundary term, and the compiler decides whether to
    degrade or raise based on ``options.fault_tolerance``.
    """
    base_cost = options.cost_model()
    fingerprint = plan.fingerprint()
    store = None
    if options.checkpoint_dir:
        # Lazy import: repro.service imports the compiler at load time.
        from ..service.checkpoint import CheckpointStore

        store = CheckpointStore(options.checkpoint_dir)

    plan_report = PlanReport(plan_name=plan.name, fingerprint=fingerprint)
    merged = RunReport(stop_reason=StopReason.ITERATION_LIMIT)
    merged.rule_stats = {}
    session = current_session()
    start = time.perf_counter()

    term = spec.term
    last_good: Optional[Term] = None
    egraph = EGraph(constant_folding=options.enable_constant_folding)
    root = egraph.add_term(spec.term)
    merged.seed_version = egraph.version
    failed = False
    failure = ""

    for index, phase in enumerate(plan.phases):
        with span(
            "phase", kernel=spec.name, phase=phase.name, index=index
        ) as phase_span:
            chaos_point("phase.start")
            if session is not None:
                session.record_event(
                    "phase_start",
                    phase=phase.name,
                    index=index,
                    plan=plan.name,
                    seed_size=len(term.args) if term.args else 1,
                )
            phase_report, term, egraph, root, crash = _run_phase(
                spec, options, fingerprint, index, phase, term, base_cost,
                store, merged, session,
            )
            plan_report.phases.append(phase_report)
            if phase_span is not None:
                phase_span.set(
                    rounds=len(phase_report.rounds),
                    peak_version=phase_report.peak_version,
                    sketch_score=round(phase_report.sketch_score, 4),
                    outcome=phase_report.outcome or "hit",
                )
            if session is not None:
                session.record_event(
                    "phase_done",
                    phase=phase.name,
                    index=index,
                    rounds=len(phase_report.rounds),
                    peak_version=phase_report.peak_version,
                    sketch_score=round(phase_report.sketch_score, 4),
                    satisfied=phase_report.sketch_satisfied,
                    outcome=phase_report.outcome or "hit",
                )
            if session is not None and session.metrics is not None:
                session.metrics.histogram(
                    "repro_phase_seconds",
                    "Per-phase saturation wall-clock seconds",
                    labels=("phase",),
                ).labels(phase=phase.name).observe(phase_report.total_time)
                session.metrics.counter(
                    "repro_phase_rounds_total",
                    "Extend rounds executed, by phase",
                    labels=("phase",),
                ).labels(phase=phase.name).inc(len(phase_report.rounds))

            if crash is not None:
                failed = True
                failure = (
                    f"phase {phase.name!r} crashed: {crash}"
                )
                plan_report.failed_phase = phase.name
                phase_report.outcome = "failed"
                if phase_span is not None:
                    phase_span.ok = False
                break
            if phase_report.outcome == "failed":
                failed = True
                failure = (
                    f"phase {phase.name!r} missed its sketch "
                    f"(score {phase_report.sketch_score:.3f}) with "
                    f"on_miss='fail'"
                )
                plan_report.failed_phase = phase.name
                if phase_span is not None:
                    phase_span.ok = False
                break
            last_good = term

    plan_report.total_time = time.perf_counter() - start
    plan_report.completed = not failed
    merged.total_time = plan_report.total_time
    merged.nodes = egraph.num_nodes
    merged.classes = egraph.num_classes
    merged.final_version = egraph.version
    if session is not None:
        session.record_event(
            "plan_done",
            plan=plan.name,
            completed=plan_report.completed,
            peak_version=plan_report.peak_version,
            total_time=round(plan_report.total_time, 4),
        )

    return PhaseExecution(
        egraph=egraph,
        root=root,
        term=term,
        report=merged,
        plan_report=plan_report,
        fallback_term=last_good if failed else None,
        failed=failed,
        failure=failure,
    )


def _run_phase(
    spec,
    options,
    fingerprint: str,
    index: int,
    phase: Phase,
    term: Term,
    base_cost: CostFunction,
    store,
    merged: RunReport,
    session,
) -> Tuple[PhaseReport, Term, EGraph, int, Optional[str]]:
    """Run one phase (all its extend rounds).  Returns the phase
    report, the boundary term, the final round's graph and root, and a
    crash description (``None`` on success)."""
    rules = _phase_rules(options, phase)
    cost = biased_cost(base_cost, phase.sketch)
    report = PhaseReport(name=phase.name, index=index)
    start = time.perf_counter()

    max_rounds = phase.extend_limit if phase.on_miss == "extend" else 1
    carried: Optional[Dict[str, RuleStats]] = None
    prev_iterations = 0
    egraph = EGraph(constant_folding=options.enable_constant_folding)
    root = egraph.add_term(term)
    crash: Optional[str] = None
    extraction = None
    score = 1.0

    node_limit = phase.resolve_node_limit(egraph.version)
    for round_index in range(max_rounds):
        if round_index > 0:
            egraph = EGraph(constant_folding=options.enable_constant_folding)
            root = egraph.add_term(term)
        seed_version = egraph.version
        # The budget is resolved once, from the phase's *first* seed,
        # and stays flat across extend rounds: vectorization compacts
        # the term (a scalar dot chain collapses ~2.5x into a VecMAC
        # chain), so a flat budget hands each re-seeded round growing
        # relative headroom -- that monotonically increasing slack is
        # what makes the extend loop converge.
        scheduler = BackoffScheduler(
            match_limit=options.match_limit,
            incremental=options.incremental_matching,
            rescan_stride=options.rescan_stride,
        )
        if carried is not None:
            # Continue the backoff history across the re-seed: match
            # counters and ban counts persist so explosive rules stay
            # throttled, and bans are rebased to the new runner's
            # iteration numbering.  Deliberately *not* ``rebind``: that
            # would also keep the incremental-search cursors, whose
            # tick high-water marks from the previous graph would make
            # every rule skip the entire fresh graph as "already
            # searched".  The scheduler resets the cursors itself the
            # first time it sees the new graph.
            scheduler.stats = carried
            scheduler.rebase(prev_iterations)
        persist = None
        if store is not None:
            persist = store.checkpointer_for_phase(
                spec, options, fingerprint, index, round_index
            )
        runner = Runner(
            rules,
            iter_limit=phase.iter_limit,
            node_limit=node_limit,
            time_limit=(
                phase.time_limit
                if phase.time_limit is not None
                else options.time_limit
            ),
            match_limit=options.match_limit,
            scheduler=scheduler,
            checkpoint=options.checkpoint_egraph,
            checkpoint_stride=options.checkpoint_stride,
            incremental=options.incremental_matching,
            rescan_stride=options.rescan_stride,
            catch_errors=True,
            persist=persist,
        )
        run = runner.run(egraph)
        _merge_rule_stats(merged.rule_stats, run.rule_stats)
        merged.iterations.extend(run.iterations)
        merged.stop_reason = run.stop_reason
        if run.resumed_from is not None and merged.resumed_from is None:
            merged.resumed_from = run.resumed_from

        extraction = Extractor(egraph, cost).extract(root)
        new_term = extraction.term
        score = phase.sketch.score(new_term) if phase.sketch else 1.0
        report.rounds.append(
            PhaseRoundReport(
                round=round_index,
                stop_reason=run.stop_reason,
                iterations=len(run.iterations),
                seed_version=seed_version,
                final_version=run.final_version or egraph.version,
                node_limit=node_limit,
                sketch_score=score,
                elapsed=run.total_time,
                resumed_from=run.resumed_from,
            )
        )
        if session is not None:
            session.record_event(
                "phase_round",
                phase=phase.name,
                round=round_index,
                stop=run.stop_reason,
                seed_version=seed_version,
                final_version=run.final_version,
                node_limit=node_limit,
                sketch_score=round(score, 4),
            )

        if run.errored:
            crash = f"rule {run.failed_rule or '?'}: {run.error}"
            merged.error = run.error
            merged.failed_rule = run.failed_rule
            term = new_term
            break
        progressed = new_term != term
        term = new_term
        if phase.sketch is None or phase.sketch.satisfied(term):
            report.outcome = "extended" if round_index > 0 else ""
            break
        if run.saturated:
            # The round reached a fixpoint within budget: re-seeding
            # the extracted term would saturate to the same place, so
            # further rounds cannot close the sketch gap.
            break
        if not progressed:
            break
        carried = _copy_stats(run.rule_stats)
        prev_iterations = len(run.iterations)

    report.total_time = time.perf_counter() - start
    report.sketch_score = score
    report.sketch_satisfied = (
        phase.sketch is None or phase.sketch.satisfied(term)
    )
    report.extracted_cost = extraction.cost if extraction is not None else 0.0
    if crash is None and not report.sketch_satisfied:
        report.outcome = (
            "failed" if phase.on_miss == "fail" else "accepted-miss"
        )
    return report, term, egraph, root, crash
