"""Unit tests for the operator catalogue (repro.dsl.ops)."""

import math

import pytest

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dsl import parse
from repro.dsl.ops import (
    OPS,
    OpInfo,
    OpKind,
    SCALAR_BINOPS,
    SCALAR_OF_VECTOR,
    SCALAR_UNOPS,
    VECTOR_OF_SCALAR,
    identity_element,
    is_scalar_op,
    is_vector_op,
    register_op,
    scalar_eval,
)


class TestCatalogue:
    def test_figure3_operators_present(self):
        """Every operator of the paper's Figure 3 grammar exists."""
        for op in [
            "+", "-", "*", "/", "sgn", "sqrt", "neg", "Get",
            "Vec", "Concat", "VecAdd", "VecMinus", "VecMul", "VecDiv",
            "VecMAC", "VecSgn", "VecSqrt", "VecNeg", "List",
        ]:
            assert op in OPS, op

    def test_kinds(self):
        assert OPS["+"].kind == OpKind.SCALAR
        assert OPS["VecMAC"].kind == OpKind.VECTOR
        assert OPS["Vec"].kind == OpKind.MOVEMENT
        assert OPS["List"].kind == OpKind.TOP
        assert OPS["Num"].kind == OpKind.LEAF

    def test_arities(self):
        assert OPS["VecMAC"].arity == 3
        assert OPS["Concat"].arity == 2
        assert OPS["neg"].arity == 1
        assert OPS["Vec"].arity is None  # variadic

    def test_commutativity_flags(self):
        assert OPS["+"].commutative and OPS["*"].commutative
        assert not OPS["-"].commutative and not OPS["/"].commutative

    def test_scalar_vector_maps_are_inverse(self):
        assert SCALAR_OF_VECTOR == {v: k for k, v in VECTOR_OF_SCALAR.items()}
        assert set(VECTOR_OF_SCALAR) == set(SCALAR_BINOPS) | set(SCALAR_UNOPS)

    def test_predicates(self):
        assert is_scalar_op("+") and not is_scalar_op("VecAdd")
        assert is_vector_op("VecAdd") and not is_vector_op("+")
        assert not is_scalar_op("no-such-op")

    def test_register_op_extension(self):
        info = register_op(OpInfo("recip_test", OpKind.SCALAR, 1, lambda x: 1 / x))
        try:
            assert scalar_eval("recip_test", 4.0) == 0.25
        finally:
            del OPS["recip_test"]


class TestScalarEval:
    def test_arithmetic(self):
        assert scalar_eval("+", 2, 3) == 5
        assert scalar_eval("-", 2, 3) == -1
        assert scalar_eval("*", 2, 3) == 6
        assert scalar_eval("/", 3, 2) == 1.5
        assert scalar_eval("neg", 4) == -4
        assert scalar_eval("sqrt", 9) == 3
        assert scalar_eval("sgn", -2) == -1
        assert scalar_eval("sgn", 0) == 0
        assert scalar_eval("sgn", 0.1) == 1

    def test_negative_sqrt_raises(self):
        with pytest.raises(ValueError):
            scalar_eval("sqrt", -1)

    def test_unknown_operator(self):
        with pytest.raises(KeyError):
            scalar_eval("hypot", 3, 4)

    def test_no_semantics_raises(self):
        with pytest.raises(TypeError):
            scalar_eval("Call", 1.0)

    def test_identity_elements(self):
        assert identity_element("+") == 0.0
        assert identity_element("-") == 0.0
        assert identity_element("*") == 1.0
        assert identity_element("/") == 1.0
        assert identity_element("sqrt") is None

    @given(
        st.sampled_from(["+", "*"]),
        st.floats(-100, 100, allow_nan=False),
        st.floats(-100, 100, allow_nan=False),
    )
    @settings(max_examples=50)
    def test_commutative_ops_commute(self, op, a, b):
        assert scalar_eval(op, a, b) == scalar_eval(op, b, a)


class TestParserRoundTripFuzz:
    """Property: printing then re-parsing any term is the identity."""

    _leaves = st.one_of(
        st.integers(-99, 99).map(lambda v: parse(str(v))),
        st.sampled_from(["alpha", "b2", "zz"]).map(parse),
    )

    @staticmethod
    def _compound(children):
        from repro.dsl.ast import Term

        binop = st.builds(
            lambda op, l, r: Term(op, (l, r)),
            st.sampled_from(["+", "-", "*", "/"]),
            children,
            children,
        )
        unop = st.builds(
            lambda op, x: Term(op, (x,)),
            st.sampled_from(["neg", "sqrt", "sgn"]),
            children,
        )
        vec = st.lists(children, min_size=1, max_size=4).map(
            lambda l: Term("Vec", tuple(l))
        )
        return st.one_of(binop, unop, vec)

    _terms = st.recursive(_leaves, _compound.__func__, max_leaves=10)

    @given(_terms)
    @settings(max_examples=80)
    def test_roundtrip(self, term):
        assert parse(term.to_sexpr()) == term
