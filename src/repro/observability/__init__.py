"""Observability subsystem: tracing, metrics, flight recording, reports.

The pipeline's diagnostic layer (DESIGN.md §9):

* :mod:`~repro.observability.trace` -- nested span tracer with JSON
  and Chrome trace-event exporters; fork-safe (worker spans re-parent
  into the supervisor's trace);
* :mod:`~repro.observability.metrics` -- counters / gauges /
  fixed-bucket histograms with Prometheus text exposition;
* :mod:`~repro.observability.recorder` -- ring-buffered saturation
  flight recorder dumped on success *and* failure;
* :mod:`~repro.observability.report` -- terminal/HTML rendering
  (``repro trace <kernel>``);
* :mod:`~repro.observability.config` -- the :class:`Observability`
  switchboard threaded through ``CompileOptions`` (default: off, zero
  construction), the live :class:`ObservabilitySession`, and the
  ambient-session helpers instrumentation sites use.
"""

from .config import (
    OBS_SCHEMA,
    Observability,
    ObservabilityData,
    ObservabilitySession,
    activate,
    current_session,
    event,
    span,
    write_compile_artifacts,
)
from .metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)
from .recorder import RECORDER_SCHEMA, FlightRecorder
from .report import render_html, render_text
from .trace import (
    TRACE_SCHEMA,
    Span,
    Tracer,
    parse_json,
    to_chrome,
    to_json,
    validate_chrome_trace,
    validate_chrome_trace_file,
    validate_spans,
)

__all__ = [
    "OBS_SCHEMA",
    "TRACE_SCHEMA",
    "METRICS_SCHEMA",
    "RECORDER_SCHEMA",
    "Observability",
    "ObservabilityData",
    "ObservabilitySession",
    "MetricsRegistry",
    "FlightRecorder",
    "Tracer",
    "Span",
    "activate",
    "current_session",
    "span",
    "event",
    "write_compile_artifacts",
    "render_text",
    "render_html",
    "to_json",
    "to_chrome",
    "parse_json",
    "parse_prometheus",
    "render_prometheus",
    "validate_spans",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
]
