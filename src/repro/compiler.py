"""The end-to-end Diospyros compiler pipeline (paper Figure 1).

``scalar program -> [symbolic evaluation] -> spec -> [equality
saturation] -> optimized DSL -> [lowering + LVN] -> vector IR +
C intrinsics -> [translation validation]``.

:func:`compile_spec` runs everything after lifting; :func:`compile_kernel`
starts from a Python reference function.  The result bundles every
artifact the evaluation needs: the optimized term, the saturation
report (Table 1's time/size/timeout columns), the IR kernel for the
cycle simulator (Figure 5/6), the generated C (LVN ablation), peak
memory, and the validation verdict.

**Failure semantics.**  The paper's robustness stance -- a timed-out
saturation still yields code, because "extraction operates on the
partially saturated graph" (Section 5.5) -- is generalized here into a
*degradation ladder* (see DESIGN.md):

1. saturation crash -> extract from the last consistent rebuilt
   e-graph (the runner recovers it in place, or rolls back to an
   end-of-iteration checkpoint);
2. vector-cost extraction or its lowering fails -> fall back to a
   :class:`~repro.costs.ScalarOnlyCostModel` extraction;
3. the scalar fallback also fails -> lower the unrewritten spec term
   directly, so every kernel always yields runnable IR;
4. validation *crashes* -> retry once with an escalated random-testing
   budget, then mark the result degraded-unvalidated instead of
   raising.

Every rung is recorded in :class:`repro.errors.CompileDiagnostics`;
downstream consumers must check ``CompileResult.degraded`` before
trusting a result.  Set ``CompileOptions.fault_tolerance=False`` to get
the staged exceptions (:class:`repro.errors.CompileError` subclasses)
instead of degradation.
"""

from __future__ import annotations

import dataclasses
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .backend.codegen import emit_c
from .backend.lower import lower_spec_program
from .chaos.inject import chaos_point
from .backend.lvn import optimize as lvn_optimize
from .backend.vir import Program
from .costs import CostConfig, DiospyrosCostModel, ScalarOnlyCostModel
from .dsl.ast import Term, unique_size
from .egraph.egraph import EGraph
from .egraph.extract import CostFunction, ExtractionResult, Extractor
from .egraph.rewrite import Rewrite
from .egraph.runner import Runner, RunReport, StopReason
from .errors import (
    CompileDiagnostics,
    CompileError,
    DeadlineExceededError,
    ExtractionError,
    LiftError,
    LoweringError,
    SaturationError,
    ValidationError,
)
from .frontend.lift import Shape, Spec, lift
from .phases import PhasePlan, PlanReport, default_plan, execute_plan
from .observability import (
    Observability,
    ObservabilityData,
    ObservabilitySession,
    activate,
    current_session,
    span,
    write_compile_artifacts,
)
from .rules import build_ruleset
from .validation.validate import ValidationResult, validate

__all__ = ["CompileOptions", "CompileResult", "compile_spec", "compile_kernel"]


@dataclass(frozen=True)
class CompileOptions:
    """Configuration of one compilation (paper Section 5.2 defaults:
    width 4, AC off, 3-minute saturation timeout, node limit)."""

    vector_width: int = 4
    #: Saturation budget.  The paper uses 180 s / 10M nodes; our
    #: defaults are scaled to a pure-Python engine (see EXPERIMENTS.md
    #: for the budget mapping used in each experiment).
    iter_limit: int = 40
    node_limit: int = 400_000
    time_limit: Optional[float] = 60.0
    #: Backoff-scheduler per-rule match budget (egg's
    #: ``BackoffScheduler``): a rule producing more matches than this
    #: in one iteration is banned for exponentially growing stretches.
    #: ``None`` keeps banning off (stats are still collected).
    match_limit: Optional[int] = None
    #: Rule-family switches (Section 5.6 ablation turns vector off).
    enable_scalar_rules: bool = True
    enable_vector_rules: bool = True
    enable_ac_rules: bool = False
    extra_rules: Tuple[Rewrite, ...] = ()
    #: Extraction cost model configuration.
    cost_config: Optional[CostConfig] = None
    #: Run translation validation on the extracted program.
    validate: bool = True
    #: Run local value numbering / DCE on the lowered kernel.
    run_lvn: bool = True
    #: Record peak memory with tracemalloc (small overhead; Table 1
    #: wants it, unit tests may turn it off).
    track_memory: bool = False
    #: Enable the e-graph's constant-folding analysis (an egg-style
    #: e-class analysis; an extension beyond the paper's configuration,
    #: off by default so evaluation runs match the paper).
    enable_constant_folding: bool = False
    #: Candidate selection: additionally extract with the scalar
    #: (term-size) cost model and keep whichever lowered kernel has the
    #: lower static cycle count.  This implements the improvement the
    #: paper itself proposes for the 4/21 kernels where "the
    #: non-vectorized code is actually faster ... Diospyros could
    #: improve on these cases with a better cost model that reflects
    #: the overheads of vector packing" (Section 5.6).  Off by default
    #: so the main evaluation matches the paper's compiler.
    select_best_candidate: bool = False
    #: Degrade gracefully on stage failures (the degradation ladder in
    #: the module docstring) instead of raising staged exceptions.
    fault_tolerance: bool = True
    #: Keep an end-of-iteration e-graph checkpoint during saturation so
    #: a mid-apply crash rolls back cleanly (costs one graph copy every
    #: ``checkpoint_stride`` iterations; off by default, the in-place
    #: rebuild recovery is usually sufficient).
    checkpoint_egraph: bool = False
    #: Iterations between checkpoints when ``checkpoint_egraph`` is on.
    #: A stride > 1 amortizes the copy; rollback then loses at most
    #: ``checkpoint_stride - 1`` iterations of rewriting.
    checkpoint_stride: int = 4
    #: Dirty-set incremental e-matching: each rule re-searches only the
    #: classes whose subtree changed since its last search (with a
    #: periodic full rescan every ``rescan_stride`` searches as a
    #: safeguard).  Exact -- the extracted programs are identical to a
    #: full rescan -- so it is on by default.
    incremental_matching: bool = True
    rescan_stride: int = 16
    #: Random-testing budget used when a crashed validation is retried.
    validation_retry_trials: int = 32
    #: Seed for every randomized differential check downstream of this
    #: compilation (validation's random-testing lanes, the evaluation
    #: harness's correctness probes, the fuzz oracle).  The default
    #: matches the seed validator's historical ``random.Random(1234)``;
    #: retries derive ``seed + retry_index`` so repeated runs are
    #: reproducible but not identical.
    seed: int = 1234
    #: Directory for persistent saturation checkpoints (DESIGN.md §11).
    #: When set, the runner serializes its end-of-iteration state to a
    #: content-keyed file under this directory every
    #: ``checkpoint_stride`` iterations, and a compile that finds a
    #: surviving checkpoint (a previous worker died mid-saturation)
    #: resumes from it instead of iteration 0.  The file is consumed
    #: (deleted) when saturation completes.  ``None`` keeps the feature
    #: off.  Excluded from cache/checkpoint fingerprints: it names
    #: *where* recovery state lives, not *what* is being compiled.
    checkpoint_dir: Optional[str] = None
    #: Absolute end-to-end deadline on the ``time.time()`` scale (the
    #: one clock a forked worker shares with its supervisor).  When
    #: set, ``compile_spec`` clamps the saturation ``time_limit`` to
    #: the residual budget at entry and raises a typed
    #: :class:`repro.errors.DeadlineExceededError` when the budget is
    #: already gone; the supervisor additionally sheds the request
    #: *before* forking a worker and clamps retry backoff sleeps so a
    #: retry can never sleep past the deadline.  Excluded from cache
    #: and checkpoint fingerprints: it says when the client stops
    #: caring, not what is being compiled.
    deadline: Optional[float] = None
    #: Observability switchboard (span tracing, metrics, saturation
    #: flight recorder -- see ``repro/observability/`` and DESIGN.md
    #: §9).  ``None`` or ``Observability(enabled=False)`` keeps the
    #: subsystem fully inert: no tracer, registry, or recorder is ever
    #: constructed and instrumentation sites cost one context-variable
    #: read.  The config is picklable and crosses the sandbox-worker
    #: boundary; the captured data rides back on
    #: ``CompileResult.observability``.
    observability: Optional[Observability] = None
    #: Sketch-guided phased saturation (DESIGN.md §13).  ``"auto"``
    #: switches to the phased path when the spec's unique-term size
    #: reaches ``phase_threshold`` (large kernels whose monolithic run
    #: would blow the node budget); ``"on"`` forces it; ``"off"``
    #: always saturates monolithically.  Kernels below the threshold
    #: are untouched by ``"auto"`` -- their extraction stays
    #: byte-identical to ``"off"``.
    phases: str = "auto"
    #: The plan the phased path runs; ``None`` means the shipped
    #: three-phase :func:`repro.phases.default_plan` for this width.
    phase_plan: Optional["PhasePlan"] = None
    #: ``"auto"`` engagement threshold on ``unique_size(spec.term)``.
    #: 2000 sits above every paper-table kernel (max 1868) and below
    #: the first kernels the monolithic path cannot finish (2DConv
    #: 8x8/4x4 seeds 2074 e-nodes, MatMul 16x16 seeds 8707).
    phase_threshold: int = 2_000

    def cost_model(self) -> CostFunction:
        config = self.cost_config or CostConfig(vector_width=self.vector_width)
        return DiospyrosCostModel(config)


@dataclass
class CompileResult:
    """Everything one compilation produced."""

    spec: Spec
    options: CompileOptions
    optimized: Term
    cost: float
    report: RunReport
    program: Program
    program_unoptimized: Program
    c_code: str
    compile_time: float
    egraph_nodes: int
    egraph_classes: int
    peak_memory_bytes: Optional[int] = None
    validation: Optional[ValidationResult] = None
    #: Per-stage timings, retries, and the degradation ladder steps
    #: taken (see repro/errors.py).  Always populated.
    diagnostics: CompileDiagnostics = field(default_factory=CompileDiagnostics)
    #: Captured spans / metrics / flight-recorder dump when
    #: ``options.observability`` was enabled (picklable, so it survives
    #: the sandbox-worker pipe; the supervisor re-parents the spans
    #: into its own trace).  ``None`` when observability was off.
    observability: Optional[ObservabilityData] = None
    #: Per-phase execution report when the compile ran the phased
    #: saturation path (``None`` for monolithic compiles).
    phases: Optional[PlanReport] = None

    @property
    def timed_out(self) -> bool:
        return self.report.timed_out

    @property
    def degraded(self) -> bool:
        """True when any stage failed and a fallback was used.  A
        degraded result is runnable but may be unvectorized,
        unvalidated, or extracted from a partially rewritten e-graph --
        downstream consumers must check this flag."""
        return self.diagnostics.degraded

    @property
    def validated(self) -> bool:
        return self.validation is not None and self.validation.ok

    def summary(self) -> str:
        mem = (
            f", peak {self.peak_memory_bytes / 1e6:.0f} MB"
            if self.peak_memory_bytes is not None
            else ""
        )
        flag = " (timeout)" if self.timed_out else ""
        if self.degraded:
            flag += " (degraded)"
        if self.phases is not None:
            flag += f" (phased: {self.phases.plan_name})"
        return (
            f"{self.spec.name}: {self.compile_time:.2f}s{flag}, "
            f"{self.egraph_nodes} nodes, cost {self.cost:.1f}, "
            f"{len(self.program)} IR instrs{mem}"
        )


class _StageClock:
    """Times each pipeline stage into the diagnostics record, and --
    when observability is active -- mirrors each stage as a span plus a
    ``repro_stage_seconds`` histogram sample."""

    def __init__(self, diag: CompileDiagnostics) -> None:
        self.diag = diag
        self.stage = ""
        self._start = 0.0
        self._handle = None
        self._span = None

    def begin(self, stage: str) -> None:
        self.stage = stage
        self._start = time.perf_counter()
        self._handle = span(stage, kernel=self.diag.kernel)
        self._span = self._handle.__enter__()

    def end(self, ok: bool = True, error: str = "") -> None:
        elapsed = time.perf_counter() - self._start
        self.diag.record_stage(self.stage, elapsed, ok, error)
        if self._span is not None:
            self._span.ok = ok
            if error:
                self._span.set(error=error)
        if self._handle is not None:
            self._handle.__exit__(None, None, None)
            self._handle = None
            self._span = None
        session = current_session()
        if session is not None and session.metrics is not None:
            session.metrics.histogram(
                "repro_stage_seconds",
                "Pipeline stage wall-clock seconds",
                labels=("stage",),
            ).labels(stage=self.stage).observe(elapsed)

    def abort(self, exc: BaseException) -> None:
        """Close an open stage span when its stage raised (the staged
        exception path never reaches :meth:`end`)."""
        if self._handle is not None:
            self.diag.record_stage(
                self.stage, time.perf_counter() - self._start, ok=False,
                error=f"{type(exc).__name__}: {exc}",
            )
            self._handle.__exit__(type(exc), exc, exc.__traceback__)
            self._handle = None
            self._span = None


def compile_spec(spec: Spec, options: Optional[CompileOptions] = None) -> CompileResult:
    """Compile a lifted spec through saturation, extraction, lowering,
    and validation, degrading gracefully on stage failures (see the
    module docstring for the ladder).

    When ``options.observability`` is enabled the whole pipeline runs
    under a root ``compile`` span, the flight recorder captures the
    saturation loop, and the collected data is attached to
    ``CompileResult.observability`` (or, when the compile raises with
    fault tolerance off, to ``CompileError.partial['observability']``
    and the configured post-mortem directory) -- a failed compile still
    leaves a black box to read.
    """
    options = options or CompileOptions()
    options = _clamp_to_deadline(spec, options)
    obs = options.observability
    if obs is None or not obs.enabled:
        return _compile_pipeline(spec, options)

    session = ObservabilitySession(obs)
    with activate(session):
        try:
            with span("compile", kernel=spec.name):
                result = _compile_pipeline(spec, options)
        except BaseException as exc:
            _export_failure(session, obs, spec, exc)
            raise
    data = session.export()
    result.observability = data
    failed = result.degraded or result.timed_out or result.report.errored
    write_compile_artifacts(data, obs, spec.name, failed=failed)
    return result


def _clamp_to_deadline(spec: Spec, options: CompileOptions) -> CompileOptions:
    """Deadline propagation, compiler side: fold the residual budget of
    ``options.deadline`` into the cooperative saturation ``time_limit``
    (which the runner's :class:`~repro.egraph.scheduler.Deadline`
    already polls between and inside rule searches).  A deadline that
    has already passed raises the typed error instead of starting work
    that cannot finish -- the same contract the supervisor enforces
    before forking a worker."""
    if options.deadline is None:
        return options
    residual = options.deadline - time.time()
    if residual <= 0:
        raise DeadlineExceededError(
            f"deadline expired {-residual:.3f}s before compilation started",
            kernel=spec.name,
            deadline=options.deadline,
            residual=residual,
        )
    if options.time_limit is None or options.time_limit > residual:
        options = dataclasses.replace(options, time_limit=residual)
    return options


def _export_failure(
    session: ObservabilitySession,
    obs: Observability,
    spec: Spec,
    exc: BaseException,
) -> None:
    """Dump the flight recorder / trace for a compile that *raised*
    (fault tolerance off, or an unloweable spec): the post-mortem must
    survive the exception."""
    session.record_event(
        "compile_crashed", error=f"{type(exc).__name__}: {exc}"
    )
    if session.metrics is not None:
        _compiles_total(session).labels(status="error").inc()
    data = session.export()
    write_compile_artifacts(data, obs, spec.name, failed=True)
    if isinstance(exc, CompileError):
        exc.partial.setdefault("observability", data)


def _compiles_total(session: ObservabilitySession):
    return session.metrics.counter(
        "repro_compiles_total",
        "Compilations finished, by outcome",
        labels=("status",),
    )


def _compile_pipeline(
    spec: Spec, options: CompileOptions
) -> CompileResult:
    diag = CompileDiagnostics(kernel=spec.name)
    clock = _StageClock(diag)
    if options.track_memory:
        tracemalloc.start()
    start = time.perf_counter()
    try:
        # ------------------------------------------------------ saturation
        clock.begin("saturation")
        egraph, root, report, plan_report = _saturate(spec, options, diag)
        clock.end(ok=not report.errored, error=report.error or "")

        # ------------------------------------------------------ extraction
        clock.begin("extraction")
        extraction = _extract(egraph, root, spec, options, diag)
        clock.end()

        # ------------------------------------------------------- lowering
        clock.begin("lowering")
        extraction, unoptimized, program = _lower(
            egraph, root, spec, options, diag, extraction
        )
        c_code = emit_c(program)
        clock.end()

        # ------------------------------------------------------ validation
        validation = None
        if options.validate:
            clock.begin("validation")
            validation = _validate(spec, extraction.term, options, diag)
            clock.end(ok=validation is not None)

        compile_time = time.perf_counter() - start
        peak = None
        if options.track_memory:
            _, peak = tracemalloc.get_traced_memory()

        result = CompileResult(
            spec=spec,
            options=options,
            optimized=extraction.term,
            cost=extraction.cost,
            report=report,
            program=program,
            program_unoptimized=unoptimized,
            c_code=c_code,
            compile_time=compile_time,
            egraph_nodes=egraph.num_nodes,
            egraph_classes=egraph.num_classes,
            peak_memory_bytes=peak,
            validation=validation,
            diagnostics=diag,
            phases=plan_report,
        )
        _record_compile_metrics(result)
        return result
    except BaseException as exc:
        # Close a stage span left open by a staged exception so the
        # trace of a failed compile still exports completely.
        clock.abort(exc)
        raise
    finally:
        # The seed version leaked the tracemalloc trace when any stage
        # raised; stop unconditionally (a no-op when not tracing).
        if options.track_memory:
            tracemalloc.stop()


def _record_compile_metrics(result: CompileResult) -> None:
    session = current_session()
    if session is None:
        return
    if session.metrics is not None:
        status = (
            "degraded"
            if result.degraded
            else ("timeout" if result.timed_out else "ok")
        )
        _compiles_total(session).labels(status=status).inc()
        session.metrics.histogram(
            "repro_egraph_nodes",
            "Final e-graph size per compile",
            buckets=(100, 1_000, 10_000, 100_000, 1_000_000),
        ).observe(result.egraph_nodes)
        session.metrics.histogram(
            "repro_compile_seconds",
            "End-to-end compile wall-clock seconds",
        ).observe(result.compile_time)
    if session.recorder is not None:
        session.recorder.record_stop(result.report.stop_reason)


# ----------------------------------------------------------------------
# Pipeline stages
# ----------------------------------------------------------------------


def _selected_plan(spec: Spec, options: CompileOptions) -> Optional[PhasePlan]:
    """Decide whether this compile saturates in phases, and under
    which plan.  ``"auto"`` engages only at ``phase_threshold`` so
    every paper-sized kernel keeps the monolithic trajectory (and its
    byte-identical extractions); vector rules off implies monolithic
    (the default plan's phases are vectorization stages)."""
    mode = options.phases
    if mode not in ("auto", "on", "off"):
        raise SaturationError(
            f"options.phases must be 'auto', 'on', or 'off', got {mode!r}",
            kernel=spec.name,
        )
    if mode == "off" or not options.enable_vector_rules:
        return None
    if mode == "auto" and unique_size(spec.term) < options.phase_threshold:
        return None
    return options.phase_plan or default_plan(options.vector_width)


def _saturate(
    spec: Spec, options: CompileOptions, diag: CompileDiagnostics
) -> Tuple[EGraph, int, RunReport, Optional[PlanReport]]:
    """Build the e-graph and run equality saturation.  A crashed run
    leaves the graph in its last consistent rebuilt state; rung 1 of
    the ladder records the degradation and extraction proceeds.

    Large kernels route through the phased executor (see
    :func:`_selected_plan`); its failure handling adds a ladder rung of
    its own: a failed phase falls back to the *last successful phase's*
    extracted term -- still partially vectorized -- before the generic
    scalar/spec-term rungs further down the pipeline."""
    plan = _selected_plan(spec, options)
    if plan is not None:
        return _saturate_phased(spec, options, diag, plan)
    try:
        rules = build_ruleset(
            width=options.vector_width,
            enable_scalar=options.enable_scalar_rules,
            enable_vector=options.enable_vector_rules,
            enable_ac=options.enable_ac_rules,
            extra_rules=list(options.extra_rules),
        )
        egraph = EGraph(constant_folding=options.enable_constant_folding)
        root = egraph.add_term(spec.term)
    except Exception as exc:
        raise SaturationError(
            f"ruleset/e-graph construction failed: {exc}", kernel=spec.name
        ) from exc

    persist = None
    if options.checkpoint_dir:
        # Lazy import: repro.service imports this module at load time.
        from .service.checkpoint import CheckpointStore

        persist = CheckpointStore(options.checkpoint_dir).checkpointer_for(
            spec, options
        )

    runner = Runner(
        rules,
        iter_limit=options.iter_limit,
        node_limit=options.node_limit,
        time_limit=options.time_limit,
        match_limit=options.match_limit,
        checkpoint=options.checkpoint_egraph,
        checkpoint_stride=options.checkpoint_stride,
        incremental=options.incremental_matching,
        rescan_stride=options.rescan_stride,
        catch_errors=True,
        persist=persist,
    )
    report = runner.run(egraph)
    if report.errored:
        if not options.fault_tolerance:
            raise SaturationError(
                report.error or "saturation crashed",
                kernel=spec.name,
                partial={"report": report, "egraph": egraph, "root": root},
            )
        diag.degrade(
            "saturation",
            f"rule {report.failed_rule or '?'} crashed: {report.error}",
            "extracting from the last consistent e-graph",
        )
    return egraph, root, report, None


def _saturate_phased(
    spec: Spec,
    options: CompileOptions,
    diag: CompileDiagnostics,
    plan: PhasePlan,
) -> Tuple[EGraph, int, RunReport, Optional[PlanReport]]:
    """Saturation via the phase executor (DESIGN.md §13).

    A failed phase (crashed rule, or a sketch miss under the ``fail``
    policy) degrades to the **last successful phase's extracted term**:
    the compile keeps every rewrite the completed phases earned instead
    of dropping straight to the scalar/spec-term rungs.  The fallback
    term is re-seeded into a fresh graph so the downstream extraction
    rungs operate exactly as they would on a monolithic result.
    """
    try:
        execution = execute_plan(spec, options, plan)
    except Exception as exc:
        raise SaturationError(
            f"phase execution failed: {exc}",
            kernel=spec.name,
            partial={"plan": repr(plan)},
        ) from exc
    if not execution.failed:
        return (
            execution.egraph,
            execution.root,
            execution.report,
            execution.plan_report,
        )
    if not options.fault_tolerance:
        raise SaturationError(
            execution.failure,
            kernel=spec.name,
            partial={"plan_report": execution.plan_report},
        )
    if execution.fallback_term is not None:
        diag.degrade(
            "saturation",
            execution.failure,
            "falling back to the last successful phase's extracted term",
        )
        egraph = EGraph(constant_folding=options.enable_constant_folding)
        root = egraph.add_term(execution.fallback_term)
        execution.report.nodes = egraph.num_nodes
        execution.report.classes = egraph.num_classes
        return egraph, root, execution.report, execution.plan_report
    # The very first phase failed: there is no boundary term to fall
    # back to, so extraction proceeds from the failed phase's graph
    # (rungs 2/3 downstream still apply).
    diag.degrade(
        "saturation",
        execution.failure,
        "extracting from the failed phase's e-graph",
    )
    return execution.egraph, execution.root, execution.report, execution.plan_report


def _extract(
    egraph: EGraph,
    root: int,
    spec: Spec,
    options: CompileOptions,
    diag: CompileDiagnostics,
) -> ExtractionResult:
    """Extraction with the vector cost model, degrading to the scalar
    model (rung 2) and finally the unrewritten spec term (rung 3)."""
    try:
        chaos_point("extract.start")
        extraction = Extractor(egraph, options.cost_model()).extract(root)
    except Exception as exc:
        if not options.fault_tolerance:
            raise ExtractionError(
                f"vector-cost extraction failed: {exc}", kernel=spec.name
            ) from exc
        diag.degrade(
            "extraction",
            f"vector-cost extraction failed: {exc}",
            "falling back to scalar-only extraction",
        )
        try:
            extraction = Extractor(egraph, ScalarOnlyCostModel()).extract(root)
        except Exception as exc2:
            diag.degrade(
                "extraction",
                f"scalar-only extraction failed: {exc2}",
                "using the unrewritten spec term",
            )
            extraction = ExtractionResult(term=spec.term, cost=float("inf"))
        return extraction

    if options.select_best_candidate:
        try:
            extraction = _pick_candidate(egraph, root, extraction, spec, options, diag)
        except Exception as exc:
            if not options.fault_tolerance:
                raise ExtractionError(
                    f"candidate selection failed: {exc}", kernel=spec.name
                ) from exc
            diag.degrade(
                "extraction",
                f"candidate selection failed: {exc}",
                "keeping the vector-cost extraction",
            )
    return extraction


def _lower(
    egraph: EGraph,
    root: int,
    spec: Spec,
    options: CompileOptions,
    diag: CompileDiagnostics,
    extraction: ExtractionResult,
) -> Tuple[ExtractionResult, Program, Program]:
    """Lower the extracted term, falling back to a scalar extraction
    (rung 2) and then the raw spec term (rung 3) so every compilation
    yields runnable IR."""

    def attempt(term: Term) -> Tuple[Program, Program]:
        unoptimized = lower_spec_program(spec, term, options.vector_width)
        program = lvn_optimize(unoptimized) if options.run_lvn else unoptimized
        return unoptimized, program

    try:
        chaos_point("lower.start")
        unoptimized, program = attempt(extraction.term)
        return extraction, unoptimized, program
    except Exception as exc:
        if not options.fault_tolerance:
            raise LoweringError(
                f"lowering the extracted term failed: {exc}",
                kernel=spec.name,
                partial={"term": extraction.term},
            ) from exc
        diag.degrade(
            "lowering",
            f"lowering the vector-cost extraction failed: {exc}",
            "falling back to scalar-only extraction",
        )

    # Rung 2: the best purely scalar term still reflects the scalar
    # simplification rules that fired during saturation.
    try:
        scalar = Extractor(egraph, ScalarOnlyCostModel()).extract(root)
        if scalar.term != extraction.term:
            unoptimized, program = attempt(scalar.term)
            return scalar, unoptimized, program
    except Exception as exc:
        diag.swallow(f"scalar fallback lowering failed: {exc}")

    # Rung 3: the unrewritten spec term always lowers -- it is exactly
    # what the frontend lifted.  If even this raises, the spec itself
    # is unloweable and there is nothing to degrade to.
    diag.degrade(
        "lowering",
        "scalar fallback also failed to lower",
        "lowering the unrewritten spec term directly",
    )
    try:
        fallback = ExtractionResult(term=spec.term, cost=float("inf"))
        unoptimized, program = attempt(spec.term)
        return fallback, unoptimized, program
    except Exception as exc:
        raise LoweringError(
            f"even the unrewritten spec term failed to lower: {exc}",
            kernel=spec.name,
            partial={"term": spec.term},
        ) from exc


def _validate(
    spec: Spec,
    term: Term,
    options: CompileOptions,
    diag: CompileDiagnostics,
) -> Optional[ValidationResult]:
    """Validation with one escalated retry; a persistent crash marks
    the result degraded-unvalidated (rung 4) instead of raising.  A
    *negative verdict* is not a crash -- it is returned as-is."""
    try:
        return validate(spec, term, seed=options.seed)
    except Exception as exc:
        first_error = exc
    diag.retry("validation")
    try:
        # Escalated budget: more random trials can dodge e.g. a lane
        # whose canonical form crashed, at differential-testing cost.
        # The retry draws from a shifted seed so it explores different
        # samples instead of replaying the crashing ones.
        return validate(
            spec,
            term,
            random_trials=options.validation_retry_trials,
            seed=options.seed + 1,
        )
    except Exception as exc:
        if not options.fault_tolerance:
            raise ValidationError(
                f"validation crashed twice: {first_error}; retry: {exc}",
                kernel=spec.name,
            ) from exc
        diag.unvalidated = True
        diag.degrade(
            "validation",
            f"validation crashed twice ({first_error}; retry: {exc})",
            "marking result degraded-unvalidated",
        )
        return None


def _pick_candidate(
    egraph: EGraph,
    root: int,
    vector_extraction: ExtractionResult,
    spec: Spec,
    options: CompileOptions,
    diag: Optional[CompileDiagnostics] = None,
) -> ExtractionResult:
    """Compare the vector-cost extraction against the best purely
    scalar extraction by static machine cycles; keep the cheaper
    kernel.  A candidate that fails to *lower* forfeits (recorded in
    the diagnostics); any other failure propagates to the caller."""
    from .machine.config import static_cycles

    alternative = Extractor(egraph, ScalarOnlyCostModel()).extract(root)
    if alternative.term == vector_extraction.term:
        return vector_extraction

    def cycles_of(term: Term) -> float:
        try:
            program = lvn_optimize(
                lower_spec_program(spec, term, options.vector_width)
            )
        except Exception as exc:
            raise LoweringError(
                f"candidate failed to lower: {exc}", kernel=spec.name
            ) from exc
        return static_cycles(program)

    try:
        if cycles_of(alternative.term) < cycles_of(vector_extraction.term):
            return alternative
    except LoweringError as exc:
        # Only lowering-stage failures are swallowed (the candidate
        # simply forfeits); the seed's bare ``except Exception`` also
        # hid cost-model and extraction bugs here.
        if diag is not None:
            diag.swallow(f"candidate selection: {exc}")
        return vector_extraction
    return vector_extraction


def compile_kernel(
    name: str,
    fn: Callable[..., None],
    inputs: Sequence[Tuple[str, Shape]],
    outputs: Sequence[Tuple[str, Shape]],
    options: Optional[CompileOptions] = None,
) -> CompileResult:
    """Lift a Python reference kernel and compile it.

    Lifting has nothing to degrade to (no spec exists yet), so a
    failure there always raises :class:`repro.errors.LiftError`.
    """
    try:
        spec = lift(name, fn, inputs, outputs)
    except CompileError:
        raise
    except Exception as exc:
        raise LiftError(
            f"symbolic evaluation of the reference kernel failed: {exc}",
            kernel=name,
        ) from exc
    return compile_spec(spec, options)
