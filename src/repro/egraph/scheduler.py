"""Rule scheduling and cooperative deadlines for the saturation loop.

egg ships a ``BackoffScheduler`` that protects saturation from
match-explosive rules: each rule gets a per-iteration match budget, and
a rule that overflows it is *banned* for a number of iterations, with
both the budget and the ban length growing exponentially on every
overflow (the mechanism Sketch-Guided Equality Saturation identifies
as essential for taming search blow-up).  This module reproduces that
scheduler for our runner, replacing the earlier naive head-truncation
``match_limit``.

Two pieces live here:

* :class:`Deadline` -- a cooperative wall-clock budget the runner
  threads through ``Rewrite.search`` so that long-running e-matching
  yields *mid-rule* instead of only between rules.
* :class:`RewriteScheduler` / :class:`BackoffScheduler` -- egg's
  scheduler protocol: the runner asks the scheduler to search each
  rule, and asks ``can_stop`` before declaring saturation (a run with
  banned rules has not truly saturated; egg fast-forwards the bans and
  keeps going, and so do we).

Per-rule statistics (:class:`RuleStats`) are surfaced in
:class:`repro.egraph.runner.RunReport` so Table 1 style sweeps can see
which rules were throttled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .egraph import EGraph
    from .rewrite import Match, Rewrite

__all__ = ["Deadline", "RuleStats", "RewriteScheduler", "BackoffScheduler"]


class Deadline:
    """A cooperative wall-clock deadline.

    Searchers receive one and are expected to poll :meth:`expired`
    periodically, returning whatever partial results they have when it
    fires.  ``Deadline(None)`` never expires, so call sites need no
    conditionals.
    """

    __slots__ = ("at",)

    def __init__(self, at: Optional[float] = None) -> None:
        self.at = at

    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        """A deadline ``seconds`` from now (never, when ``None``)."""
        if seconds is None:
            return cls(None)
        return cls(time.perf_counter() + seconds)

    def expired(self) -> bool:
        return self.at is not None and time.perf_counter() >= self.at

    def remaining(self) -> float:
        if self.at is None:
            return float("inf")
        return self.at - time.perf_counter()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.at is None:
            return "Deadline(never)"
        return f"Deadline(in {self.remaining():.3f}s)"


@dataclass
class RuleStats:
    """Per-rule scheduling statistics (egg's ``RuleStats``)."""

    #: Total matches the rule's searcher returned across the run.
    matches: int = 0
    #: Matches the scheduler let through to the apply phase.
    applied: int = 0
    #: Searches skipped because the rule was banned.
    skipped: int = 0
    #: How many times the rule has been banned (drives the exponential
    #: growth of both threshold and ban length).
    times_banned: int = 0
    #: First iteration index at which the rule may fire again.
    banned_until: int = 0
    #: Wall-clock seconds spent inside the rule's searcher.
    search_time: float = 0.0
    #: Candidate classes actually examined by the rule's searcher.
    classes_visited: int = 0
    #: Candidate classes pruned by the dirty-set filter.
    classes_skipped: int = 0
    #: E-graph tick high-water mark: the rule has seen every change up
    #: to (and including) this tick.  0 means "never searched".
    last_search_tick: int = 0
    #: Full rescans performed (first search + periodic safeguard).
    full_rescans: int = 0
    #: Incremental searches since the last full rescan.
    searches_since_full: int = 0

    def banned_at(self, iteration: int) -> bool:
        return iteration < self.banned_until


class RewriteScheduler:
    """Base scheduler: apply everything (egg's ``SimpleScheduler``),
    while still tracking per-rule statistics.

    When ``incremental`` is set, each rule keeps a *search cursor*
    (``RuleStats.last_search_tick``): the e-graph tick up to which it
    has already seen every change.  Subsequent searches pass the cursor
    as ``since`` so the matcher only examines classes dirtied after it.
    Every ``rescan_stride`` searches the cursor is ignored once and the
    rule re-scans the whole graph -- a safety net that bounds the cost
    of any bookkeeping bug to a constant factor.  The cursor only
    advances when the search ran to completion (a deadline-truncated
    search must not skip the candidates it never reached) and when the
    matches were actually delivered to the apply phase.
    """

    def __init__(
        self, incremental: bool = False, rescan_stride: int = 16
    ) -> None:
        if rescan_stride <= 0:
            raise ValueError("rescan_stride must be positive")
        self.stats: Dict[str, RuleStats] = {}
        self.incremental = incremental
        self.rescan_stride = rescan_stride
        #: Optional observability hook ``(kind, **details)``; the
        #: runner points this at the active session's ``record_event``
        #: so scheduling decisions (bans) land in the flight recorder.
        self.observer = None
        #: Identity of the e-graph the cursors refer to.  Cursors are
        #: meaningless across graphs (or after a rollback rewinds the
        #: tick), so we reset them whenever either changes.
        self._graph_id: Optional[int] = None
        self._last_tick: int = 0

    def rule_stats(self, rule_name: str) -> RuleStats:
        entry = self.stats.get(rule_name)
        if entry is None:
            entry = self.stats[rule_name] = RuleStats()
        return entry

    def rebind(
        self, egraph: "EGraph", stats: Optional[Dict[str, RuleStats]] = None
    ) -> None:
        """Adopt ``egraph`` (and optionally restored ``stats``) as the
        scheduler's current state *without* resetting search cursors.

        ``_check_graph`` deliberately wipes cursors when it sees an
        unfamiliar graph object, because cursors are meaningless across
        graphs.  Checkpoint/resume is the one case where they are
        meaningful: the restored graph's tick history *is* the history
        the restored cursors refer to.  Calling ``rebind`` after
        ``EGraph.restore_from`` tells the scheduler so, which keeps a
        resumed run's search order identical to an uninterrupted one.
        """
        if stats is not None:
            self.stats = stats
        self._graph_id = id(egraph)
        self._last_tick = getattr(egraph, "tick", 0)

    def rebase(self, iterations: int) -> None:
        """Shift ban expiries down by ``iterations`` consumed elsewhere.

        ``banned_until`` is an *absolute* iteration index within one
        runner's numbering.  The phase executor carries rule stats
        across extract-and-re-seed rounds, where each round's runner
        restarts its iteration counter at 0: without rebasing, a ban
        issued late in round N would silently pin the rule for most of
        round N+1.  Ban *history* (``times_banned``, match counters)
        is intentionally preserved -- an explosive rule stays on the
        steep backoff curve across rounds."""
        if iterations <= 0:
            return
        for s in self.stats.values():
            s.banned_until = max(0, s.banned_until - iterations)

    # ------------------------------------------------------------------

    def _check_graph(self, egraph: "EGraph") -> None:
        tick = getattr(egraph, "tick", 0)
        if self._graph_id != id(egraph) or tick < self._last_tick:
            # New graph, or the old one was rolled back to a snapshot:
            # every cursor may now point past real, unseen changes.
            for s in self.stats.values():
                s.last_search_tick = 0
                s.searches_since_full = 0
            self._graph_id = id(egraph)
        self._last_tick = tick

    def _search_cutoff(self, egraph: "EGraph", stats: RuleStats):
        """The ``since`` cutoff for this search (None => full rescan)
        and the tick the cursor would advance to on success."""
        tick_before = getattr(egraph, "tick", 0)
        if not self.incremental:
            return None, tick_before
        if (
            stats.last_search_tick == 0
            or stats.searches_since_full + 1 >= self.rescan_stride
        ):
            return None, tick_before
        return stats.last_search_tick, tick_before

    def _commit_cursor(
        self, stats: RuleStats, cutoff: Optional[int], tick_before: int,
        completed: bool,
    ) -> None:
        if not completed:
            return
        if cutoff is None:
            stats.full_rescans += 1
            stats.searches_since_full = 0
        else:
            stats.searches_since_full += 1
        stats.last_search_tick = tick_before

    def search_rewrite(
        self,
        iteration: int,
        egraph: "EGraph",
        rule: "Rewrite",
        deadline: Optional[Deadline] = None,
    ) -> List["Match"]:
        """Search one rule, applying the scheduling policy."""
        from .pattern import MatchCounters

        self._check_graph(egraph)
        stats = self.rule_stats(rule.name)
        cutoff, tick_before = self._search_cutoff(egraph, stats)
        counters = MatchCounters()
        start = time.perf_counter()
        matches = rule.search(
            egraph, deadline=deadline, since=cutoff, counters=counters
        )
        stats.search_time += time.perf_counter() - start
        stats.matches += len(matches)
        stats.classes_visited += counters.visited
        stats.classes_skipped += counters.skipped
        self._commit_cursor(stats, cutoff, tick_before, counters.completed)
        stats.applied += len(matches)
        return matches

    def can_stop(self, iteration: int) -> bool:
        """May the runner declare saturation at this iteration?"""
        return True


class BackoffScheduler(RewriteScheduler):
    """egg's exponential-backoff rule scheduler.

    A rule whose search yields more than ``match_limit << times_banned``
    matches in one iteration contributes nothing that iteration and is
    banned for ``ban_length << times_banned`` iterations.  Explosive
    rules (full associativity/commutativity are the canonical case,
    paper Section 3.3) therefore get geometrically rarer instead of
    drowning every iteration, while well-behaved rules run untouched.

    ``match_limit=None`` disables banning entirely -- the scheduler then
    only records statistics, which keeps the default compiler pipeline
    byte-for-byte compatible with the unscheduled behaviour.
    """

    def __init__(
        self,
        match_limit: Optional[int] = 1000,
        ban_length: int = 5,
        incremental: bool = False,
        rescan_stride: int = 16,
    ) -> None:
        super().__init__(incremental=incremental, rescan_stride=rescan_stride)
        if match_limit is not None and match_limit <= 0:
            raise ValueError("match_limit must be positive (or None)")
        if ban_length <= 0:
            raise ValueError("ban_length must be positive")
        self.match_limit = match_limit
        self.ban_length = ban_length

    # ------------------------------------------------------------------

    def search_rewrite(
        self,
        iteration: int,
        egraph: "EGraph",
        rule: "Rewrite",
        deadline: Optional[Deadline] = None,
    ) -> List["Match"]:
        from .pattern import MatchCounters

        self._check_graph(egraph)
        stats = self.rule_stats(rule.name)
        if stats.banned_at(iteration):
            stats.skipped += 1
            return []

        cutoff, tick_before = self._search_cutoff(egraph, stats)
        counters = MatchCounters()
        start = time.perf_counter()
        matches = rule.search(
            egraph, deadline=deadline, since=cutoff, counters=counters
        )
        stats.search_time += time.perf_counter() - start
        stats.matches += len(matches)
        stats.classes_visited += counters.visited
        stats.classes_skipped += counters.skipped

        if self.match_limit is not None:
            threshold = self.match_limit << stats.times_banned
            if len(matches) > threshold:
                ban = self.ban_length << stats.times_banned
                stats.times_banned += 1
                stats.banned_until = iteration + 1 + ban
                if self.observer is not None:
                    self.observer(
                        "scheduler_ban",
                        rule=rule.name,
                        iteration=iteration,
                        matches=len(matches),
                        threshold=threshold,
                        banned_until=stats.banned_until,
                        times_banned=stats.times_banned,
                    )
                # The matches are being thrown away: the cursor must
                # not advance past them or they would never be found
                # again once the ban lifts.
                return []
        self._commit_cursor(stats, cutoff, tick_before, counters.completed)
        stats.applied += len(matches)
        return matches

    def can_stop(self, iteration: int) -> bool:
        """No unions this iteration only means saturation if no rule is
        banned.  Mirroring egg, fast-forward outstanding bans by the
        minimum remaining ban so the next iteration re-runs the least
        recently banned rule immediately."""
        banned = [s for s in self.stats.values() if s.banned_at(iteration + 1)]
        if not banned:
            return True
        delta = min(s.banned_until for s in banned) - (iteration + 1)
        if delta > 0:
            for s in banned:
                s.banned_until -= delta
        return False
