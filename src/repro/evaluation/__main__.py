"""Command-line entry point for the evaluation harness.

Examples::

    python -m repro.evaluation table1 --scale 0.05
    python -m repro.evaluation figure5 --kernels matmul
    python -m repro.evaluation figure6
    python -m repro.evaluation ablation
    python -m repro.evaluation casestudy
    python -m repro.evaluation all --scale 0.02
    python -m repro.evaluation table1 --quick   # CI smoke run

``--scale`` maps the paper's 180-second saturation timeout onto this
machine (0.1 = 18 s per kernel).  ``--kernels`` filters by substring.
``--quick`` restricts the run to the smallest kernels under a
seconds-scale budget -- the CI smoke configuration that catches sweep
regressions without paying for a full evaluation.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..kernels import table1_kernels
from .ablation import (
    render_vector_ablation,
    run_ac_ablation,
    run_cost_ablation,
    run_lvn_ablation,
    run_vector_ablation,
)
from .casestudy import render_casestudy, run_casestudy
from .common import Budget
from .figure5 import render_figure5, run_figure5
from .figure6 import render_figure6, run_figure6
from .table1 import render_table1, run_table1

#: The ``--quick`` smoke subset: the smallest kernel of each category.
QUICK_KERNELS = ("matmul-2x2-2x2", "2dconv-3x3-2x2", "qprod-4-3-4-3")
QUICK_BUDGET = Budget(paper_seconds=180, seconds=2.0, node_limit=20_000,
                      iter_limit=15)


def _selected_kernels(pattern: str, quick: bool = False):
    kernels = table1_kernels()
    if quick:
        kernels = [k for k in kernels if k.name in QUICK_KERNELS]
    if pattern:
        kernels = [k for k in kernels if pattern in k.name]
        if not kernels:
            raise SystemExit(f"no kernels match {pattern!r}")
    return kernels


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.evaluation")
    parser.add_argument(
        "experiment",
        choices=["table1", "figure5", "figure6", "ablation", "casestudy", "all"],
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="fraction of the paper's 180s saturation budget (default 0.1)",
    )
    parser.add_argument(
        "--kernels", default="", help="substring filter on kernel names"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: smallest kernels, tiny saturation budget",
    )
    parser.add_argument(
        "--isolate",
        action="store_true",
        help="run each compilation in a sandboxed subprocess (rlimits, "
        "kill-timeout, backoff retries; see repro.service)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="crash-safe artifact cache directory: completed results "
        "are persisted and reruns warm-start",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker-pool size for --isolate batches (default: cpu-bound)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="differential-testing seed threaded through validation and "
        "correctness probes (default: compiler default)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="compile with the observability subsystem on: every kernel "
        "writes a Chrome trace and failed compiles dump flight-recorder "
        "post-mortems (see repro.observability)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help="directory for per-kernel trace/post-mortem files "
        "(default: eval-traces; implies --trace)",
    )
    args = parser.parse_args(argv)

    budget = QUICK_BUDGET if args.quick else Budget.from_paper(180.0, args.scale)
    kernels = _selected_kernels(args.kernels, quick=args.quick)
    started = time.perf_counter()

    service = None
    if args.isolate or args.cache_dir:
        from ..service import ArtifactCache, CompileService

        service = CompileService(
            cache=ArtifactCache(args.cache_dir) if args.cache_dir else None,
            isolate=args.isolate,
            max_workers=args.jobs,
        )
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.trace or args.trace_out:
        from ..observability import Observability

        trace_dir = args.trace_out or "eval-traces"
        overrides["observability"] = Observability.on(
            trace_dir=trace_dir,
            postmortem_dir=trace_dir,
        )
        print(f"[observability on: traces in {trace_dir}/]", file=sys.stderr)

    if args.experiment in ("table1", "all"):
        errors = []
        rows = run_table1(
            budget, kernels, errors=errors, service=service, **overrides
        )
        print(render_table1(rows, budget, errors=errors))
        print()
    if args.experiment in ("figure5", "all"):
        result = run_figure5(budget, kernels, service=service, **overrides)
        print(render_figure5(result, budget))
        print()
    if args.experiment in ("figure6", "all"):
        print(render_figure6(run_figure6(scale=args.scale, service=service)))
        print()
    if args.experiment in ("ablation", "all"):
        print(render_vector_ablation(run_vector_ablation(budget, kernels)))
        print()
        lvn = run_lvn_ablation(budget)
        print(
            f"LVN ablation ({lvn.kernel}): {lvn.lines_without_lvn} C lines "
            f"tree-expanded -> {lvn.lines_with_lvn} with DAG lowering + LVN "
            f"({lvn.reduction_factor:.0f}x smaller; paper: >100k -> <500)"
        )
        cost = run_cost_ablation(budget)
        print(
            f"Cost-model ablation ({cost.kernel}): {cost.fusion_cycles:.0f} "
            f"cycles on fusion-g3 vs {cost.no_shuffle_cycles:.0f} on the "
            f"no-shuffle machine ({cost.slowdown:.2f}x slower)"
        )
        ac = run_ac_ablation()
        print(
            f"AC ablation ({ac.kernel}): {ac.nodes_without_ac} e-nodes "
            f"without AC rules vs {ac.nodes_with_ac} with "
            f"({ac.growth_factor:.1f}x growth)"
        )
        print()
    if args.experiment in ("casestudy", "all"):
        print(render_casestudy(run_casestudy(budget)))
        print()

    if service is not None:
        print(f"[{service.stats.summary()}]", file=sys.stderr)
        if service.cache is not None:
            print(f"[{service.cache.stats.summary()}]", file=sys.stderr)
    print(f"[done in {time.perf_counter() - started:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
