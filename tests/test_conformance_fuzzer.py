"""Guided-campaign acceptance: coverage superiority over the blind
random baseline at a fixed seed and budget, plus campaign determinism.

The campaigns are fully deterministic (stable RNG streams, no timing
features), so the pinned seed/budget below either always passes or
always fails -- there is no flake margin to tune.
"""

import pytest

from repro.conformance.fuzzer import conformance_options, run_campaign

BUDGET = 80
SEED = 1


@pytest.fixture(scope="module")
def campaigns(tmp_path_factory):
    corpus = tmp_path_factory.mktemp("corpus")
    guided = run_campaign(
        BUDGET, seed=SEED, mode="guided", corpus_dir=str(corpus)
    )
    blind = run_campaign(BUDGET, seed=SEED, mode="random")
    return guided, blind


@pytest.mark.fuzz
@pytest.mark.slow
def test_guided_beats_random_at_same_budget(campaigns):
    """The tentpole acceptance criterion: at the same seed and budget,
    coverage guidance must reach strictly more behavior classes than
    blind random generation."""
    guided, blind = campaigns
    assert guided.executed == blind.executed == BUDGET
    assert guided.coverage.cardinality > blind.coverage.cardinality, (
        f"guided {guided.coverage.cardinality} <= "
        f"random {blind.coverage.cardinality}"
    )


@pytest.mark.fuzz
@pytest.mark.slow
def test_sound_compiler_has_no_divergences(campaigns):
    guided, blind = campaigns
    assert guided.ok, [d for _, d in guided.divergent]
    assert blind.ok, [d for _, d in blind.divergent]
    assert guided.compiled == blind.compiled == BUDGET


@pytest.mark.fuzz
@pytest.mark.slow
def test_guided_keeps_coverage_extending_seeds(campaigns):
    """Only the guided mode maintains a corpus; kept seeds are exactly
    the kernels that extended the coverage map."""
    guided, blind = campaigns
    assert guided.seeds_kept > 0
    assert guided.corpus_size >= guided.seeds_kept
    assert blind.seeds_kept == 0
    # The coverage curve is monotone and ends at the final cardinality.
    curve = guided.coverage_curve
    assert all(b >= a for a, b in zip(curve, curve[1:]))
    assert curve[-1] == guided.coverage.cardinality


@pytest.mark.fuzz
def test_campaign_is_deterministic():
    """Identical (seed, budget, mode) must reproduce the coverage map
    and its growth curve feature-for-feature -- the property the
    nightly deterministic-replay gate enforces across processes."""
    a = run_campaign(15, seed=4, mode="guided")
    b = run_campaign(15, seed=4, mode="guided")
    assert a.coverage.features() == b.coverage.features()
    assert a.coverage_curve == b.coverage_curve
    assert a.seeds_kept == b.seeds_kept


def test_conformance_options_are_replay_safe():
    """Campaign compiles must not depend on wall-clock deadlines."""
    options = conformance_options(seed=0)
    assert options.time_limit is None
    assert options.track_memory is False
    assert options.observability is not None
