"""Golden regression corpus for the paper kernels.

Saturation-based compilers fail *quietly*: a rules tweak that costs
2DConv its shuffle trick doesn't break any test -- the output is still
correct, just slower.  The golden corpus pins, for a fixed set of
Table-1 kernels under fixed deterministic options, the exact VIR the
pipeline emits: a content fingerprint (sha256 of the canonical program
text), the extracted cost, and the opcode histogram.  CI then fails
loudly on any drift, and an intentional change is recorded by
re-blessing (``repro conformance bless``), which shows up in review as
a diff of this JSON file.

Entries are keyed by kernel name.  The check distinguishes three kinds
of drift -- fingerprint-only (instruction reordering / renaming), cost
(optimization quality), and opcode mix (vectorization shape) -- so a
reviewer can tell a cosmetic change from a regression at a glance.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..compiler import CompileOptions, CompileResult, compile_spec
from ..kernels import get_kernel, table1_kernels

__all__ = [
    "GOLDEN_SCHEMA",
    "GOLDEN_KERNELS",
    "default_corpus_path",
    "golden_options",
    "compute_entries",
    "bless",
    "check",
    "DriftReport",
]

GOLDEN_SCHEMA = "conformance_golden/v1"

#: Kernels small enough to compile deterministically in seconds yet
#: covering all four paper benchmark families.  The last two are the
#: phased-saturation showcases (DESIGN.md §13): large enough that the
#: default plan engages, so the corpus also pins the phased pipeline's
#: output and the nightly conformance campaign mutates it.
GOLDEN_KERNELS = (
    "2dconv-3x3-2x2",
    "matmul-2x2-2x2",
    "matmul-2x3-3x3",
    "qprod-4-3-4-3",
    "qrdecomp-3x3",
    "2dconv-8x8-4x4",
    "matmul-16x16-16x16",
)


def default_corpus_path() -> str:
    return os.path.join("tests", "golden", "corpus.json")


def golden_options(seed: int = 1234) -> CompileOptions:
    """Fixed deterministic compile configuration for golden entries.

    ``time_limit=None`` is required: the corpus must fingerprint
    identically on a laptop and a loaded CI runner.  Budgets are sized
    so every golden kernel reaches its fixpoint or a deterministic
    iteration stop.  Validation is off -- the corpus pins *what* is
    emitted; correctness is the differential oracle's job.
    """
    return CompileOptions(
        time_limit=None,
        iter_limit=25,
        node_limit=30_000,
        validate=False,
        track_memory=False,
        seed=seed,
    )


def _kernel_specs(names: Sequence[str]):
    by_name = {k.name: k for k in table1_kernels()}
    pairs = []
    missing = []
    for name in names:
        kernel = by_name.get(name)
        if kernel is None:
            # Off-table sizes (the phased-saturation corpus entries)
            # resolve through the parametric naming scheme.
            try:
                kernel = get_kernel(name)
            except KeyError:
                missing.append(name)
                continue
        pairs.append((name, kernel.spec()))
    if missing:
        raise KeyError(f"unknown golden kernels: {missing}")
    return pairs


def _entry(result: CompileResult) -> Dict:
    return {
        "fingerprint": result.program.fingerprint(),
        "cost": round(result.cost, 6),
        "instructions": len(result.program.instructions),
        "opcodes": dict(sorted(result.program.opcode_histogram().items())),
        "stop_reason": result.report.stop_reason,
    }


def compute_entries(
    names: Sequence[str] = GOLDEN_KERNELS,
    options: Optional[CompileOptions] = None,
    service=None,
) -> Dict[str, Dict]:
    """Compile each golden kernel and fingerprint the result.

    ``service`` routes compiles through the parallel
    :class:`repro.service.CompileService` (same options; results are
    deterministic either way, the service is just faster and sandboxed).
    """
    options = options or golden_options()
    pairs = _kernel_specs(names)
    entries: Dict[str, Dict] = {}
    if service is not None:
        items = service.compile_many([spec for _, spec in pairs], options)
        for (name, _), item in zip(pairs, items):
            if item.error is not None:
                raise RuntimeError(
                    f"golden kernel {name} failed to compile: {item.error}"
                )
            entries[name] = _entry(item.result)
    else:
        for name, spec in pairs:
            entries[name] = _entry(compile_spec(spec, options))
    return entries


def bless(
    path: Optional[str] = None,
    names: Sequence[str] = GOLDEN_KERNELS,
    options: Optional[CompileOptions] = None,
    service=None,
) -> str:
    """Recompute the corpus and write it to ``path``; returns the path."""
    path = path or default_corpus_path()
    payload = {
        "schema": GOLDEN_SCHEMA,
        "options_seed": (options or golden_options()).seed,
        "entries": compute_entries(names, options, service),
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


@dataclass
class DriftReport:
    """Blessed-vs-current comparison."""

    checked: int = 0
    missing: List[str] = field(default_factory=list)  # blessed, not computed
    unblessed: List[str] = field(default_factory=list)  # computed, not blessed
    #: kernel -> list of human-readable field diffs.
    drifted: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.missing and not self.unblessed and not self.drifted

    def render(self) -> str:
        lines = [
            f"golden corpus: {self.checked} kernels checked, "
            f"{len(self.drifted)} drifted"
        ]
        for name in self.missing:
            lines.append(f"  MISSING {name} (blessed but not recomputed)")
        for name in self.unblessed:
            lines.append(f"  UNBLESSED {name} (no golden entry; re-bless)")
        for name, diffs in sorted(self.drifted.items()):
            lines.append(f"  DRIFT {name}:")
            lines.extend(f"    {d}" for d in diffs)
        lines.append("VERDICT: " + ("OK" if self.ok else "DRIFT DETECTED"))
        return "\n".join(lines)


def _diff_entry(blessed: Dict, current: Dict) -> List[str]:
    diffs: List[str] = []
    if blessed.get("fingerprint") != current.get("fingerprint"):
        diffs.append(
            f"fingerprint {blessed.get('fingerprint')} -> "
            f"{current.get('fingerprint')}"
        )
    if blessed.get("cost") != current.get("cost"):
        diffs.append(f"cost {blessed.get('cost')} -> {current.get('cost')}")
    if blessed.get("instructions") != current.get("instructions"):
        diffs.append(
            f"instructions {blessed.get('instructions')} -> "
            f"{current.get('instructions')}"
        )
    if blessed.get("opcodes") != current.get("opcodes"):
        old = blessed.get("opcodes") or {}
        new = current.get("opcodes") or {}
        for op in sorted(set(old) | set(new)):
            if old.get(op, 0) != new.get(op, 0):
                diffs.append(f"opcode {op}: {old.get(op, 0)} -> {new.get(op, 0)}")
    if blessed.get("stop_reason") != current.get("stop_reason"):
        diffs.append(
            f"stop_reason {blessed.get('stop_reason')} -> "
            f"{current.get('stop_reason')}"
        )
    return diffs


def check(
    path: Optional[str] = None,
    names: Optional[Sequence[str]] = None,
    options: Optional[CompileOptions] = None,
    service=None,
) -> DriftReport:
    """Recompute and diff against the blessed corpus at ``path``."""
    path = path or default_corpus_path()
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != GOLDEN_SCHEMA:
        raise ValueError(
            f"golden schema mismatch: {payload.get('schema')!r} != "
            f"{GOLDEN_SCHEMA!r}"
        )
    blessed: Dict[str, Dict] = payload.get("entries", {})
    names = list(names) if names is not None else sorted(blessed)
    current = compute_entries(names, options, service)
    report = DriftReport(checked=len(names))
    for name in names:
        if name not in blessed:
            report.unblessed.append(name)
            continue
        diffs = _diff_entry(blessed[name], current[name])
        if diffs:
            report.drifted[name] = diffs
    for name in blessed:
        if name not in names:
            report.missing.append(name)
    return report
