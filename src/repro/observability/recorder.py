"""Saturation flight recorder: ring-buffered post-mortem state.

Equality saturation fails in ways a stack trace cannot explain -- the
e-graph grows past the node budget, the backoff scheduler bans the one
rule that mattered, the deadline fires mid-apply.  The flight recorder
keeps a bounded ring buffer of **per-iteration snapshots** (e-graph
growth, match/apply/union counts, dirty-set matcher work, dedup hits)
plus a bounded log of **discrete events** (scheduler bans, watchdog
trips, deadline expiry, degradations, crashes), so that *any* outcome
-- success, timeout, or a hard error propagated through
``repro/errors.py`` -- leaves a dumpable record of the final
iterations before the end.

The buffer is a ``collections.deque(maxlen=capacity)``: recording is
O(1), memory is bounded regardless of run length, and the dump holds
the *last* ``capacity`` iterations -- the ones that explain the
failure.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["RECORDER_SCHEMA", "FlightRecorder"]

RECORDER_SCHEMA = "flight_recorder/v1"


class FlightRecorder:
    """Bounded recorder for one (or more) saturation runs."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._snapshots: deque = deque(maxlen=capacity)
        self._events: deque = deque(maxlen=4 * capacity)
        self._rule_stats: Dict[str, Dict[str, Any]] = {}
        self._started = time.time()
        #: Total iterations offered (>= len(snapshots) once the ring
        #: wraps -- the dump reports how much history was dropped).
        self.iterations_seen = 0
        self.stop_reason: Optional[str] = None

    # -- recording -----------------------------------------------------

    def record_iteration(
        self,
        index: int,
        *,
        nodes: int,
        classes: int,
        matches: int,
        applied: int,
        unions: int,
        elapsed: float,
        visited: int = 0,
        skipped: int = 0,
        deduped: int = 0,
    ) -> None:
        self.iterations_seen += 1
        self._snapshots.append(
            {
                "index": index,
                "nodes": nodes,
                "classes": classes,
                "matches": matches,
                "applied": applied,
                "unions": unions,
                "elapsed": round(elapsed, 6),
                "visited": visited,
                "skipped": skipped,
                "deduped": deduped,
            }
        )

    def record_event(self, kind: str, **details: Any) -> None:
        """A discrete occurrence: ban, watchdog trip, crash, rung."""
        self._events.append(
            {"ts": time.time(), "kind": kind, "details": details}
        )

    def record_rule_stats(self, stats: Dict[str, Any]) -> None:
        """Final per-rule statistics (``RuleStats`` objects or dicts);
        called at end of run -- last write wins."""
        rendered: Dict[str, Dict[str, Any]] = {}
        for name, s in stats.items():
            if hasattr(s, "__dict__"):
                s = dict(vars(s))
            rendered[name] = {
                k: (round(v, 6) if isinstance(v, float) else v)
                for k, v in s.items()
            }
        self._rule_stats = rendered

    def record_stop(self, reason: str) -> None:
        self.stop_reason = reason

    # -- dumping -------------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """JSON-ready post-mortem snapshot of everything retained."""
        return {
            "schema": RECORDER_SCHEMA,
            "started": self._started,
            "capacity": self.capacity,
            "iterations_seen": self.iterations_seen,
            "iterations_dropped": max(
                0, self.iterations_seen - len(self._snapshots)
            ),
            "stop_reason": self.stop_reason,
            "snapshots": list(self._snapshots),
            "events": list(self._events),
            "rule_stats": self._rule_stats,
        }

    def dump_to(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.dump(), handle, indent=2)
            handle.write("\n")

    # -- queries (used by the report renderer and tests) ---------------

    def growth_curve(self) -> List[int]:
        return [s["nodes"] for s in self._snapshots]

    def events_of(self, kind: str) -> List[Dict[str, Any]]:
        return [e for e in self._events if e["kind"] == kind]

    def __len__(self) -> int:
        return len(self._snapshots)
