"""Admission control, single-flight dedup, CoDel shedding, and the
brownout ladder of the compile gateway (DESIGN.md §12).

The tentpole contract under test: a saturated gateway refuses work
with *typed* errors (RateLimitError, OverloadError with a reason,
DeadlineExceededError) instead of buffering unboundedly, and
concurrent identical requests collapse onto one compile.
"""

import asyncio
import threading
import time

import pytest

from repro.compiler import CompileOptions
from repro.errors import (
    DeadlineExceededError,
    OverloadError,
    RateLimitError,
    ShutdownError,
)
from repro.frontend.lift import lift
from repro.service import (
    CompileGateway,
    CompileService,
    GatewayConfig,
    RetryPolicy,
    TenantPolicy,
)
from repro.service.gateway import BROWNOUT_SCALES, _TokenBucket

FAST = CompileOptions(
    time_limit=5.0, node_limit=20_000, iter_limit=8, validate=False
)
QUICK = RetryPolicy(max_attempts=2, backoff_base=0.01, backoff_jitter=0.0)


def _spec(name="gw-k", scale=1):
    def body(a, b, out):
        for i in range(2):
            out[i] = a[i] * b[i] + a[i] * scale

    return lift(name, body, [("a", 2), ("b", 2)], [("out", 2)])


def _service():
    return CompileService(cache=None, isolate=False, policy=QUICK)


def _run(coro):
    return asyncio.run(coro)


class _SlowService:
    """Stands in for CompileService: counts compiles, sleeps on demand.

    The gateway only touches ``.cache`` and ``.compile_spec``."""

    cache = None

    def __init__(self, delay=0.0):
        self.delay = delay
        self.calls = 0
        self._lock = threading.Lock()
        self._real = _service()

    def compile_spec(self, spec, options):
        with self._lock:
            self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        return self._real.compile_spec(spec, FAST)


# ---------------------------------------------------------------- admission


def test_rate_limit_is_typed_and_carries_retry_after():
    async def go():
        gw = CompileGateway(
            _service(),
            tenants={"t": TenantPolicy("t", rate=0.001, burst=1)},
        )
        async with gw:
            await gw.submit(_spec(), FAST, tenant="t")
            with pytest.raises(RateLimitError) as info:
                await gw.submit(_spec(), FAST, tenant="t")
        err = info.value
        assert isinstance(err, OverloadError)  # taxonomy: a shed, typed
        assert err.reason == "rate-limit"
        assert err.tenant == "t"
        assert err.retry_after and err.retry_after > 0
        assert gw.stats.sheds == {"rate-limit": 1}
        assert gw.stats.tenants["t"].rate_limited == 1

    _run(go())


def test_queue_full_sheds_with_typed_overload_error():
    async def go():
        service = _SlowService(delay=0.3)
        gw = CompileGateway(
            service,
            # Huge codel_target: this test wants the *depth* bound to
            # fire, not the delay-based shedder.
            GatewayConfig(max_queue_depth=1, concurrency=1, codel_target=10.0),
        )
        async with gw:
            # Distinct specs so nothing coalesces: one dispatching, one
            # queued (fills the depth-1 queue), the third must shed.
            first = asyncio.ensure_future(gw.submit(_spec("gw-a"), FAST))
            await asyncio.sleep(0.1)  # dispatcher picks up the leader
            second = asyncio.ensure_future(gw.submit(_spec("gw-b"), FAST))
            await asyncio.sleep(0)  # let `second` enqueue
            with pytest.raises(OverloadError) as info:
                await gw.submit(_spec("gw-c"), FAST)
            assert info.value.reason == "queue-full"
            assert info.value.queue_depth == 1
            await asyncio.gather(first, second)
        assert gw.stats.sheds.get("queue-full") == 1
        assert gw.stats.completed == 2

    _run(go())


def test_unknown_tenant_gets_default_policy():
    async def go():
        gw = CompileGateway(_service())
        async with gw:
            result = await gw.submit(_spec(), FAST, tenant="walk-in")
        assert result.program
        assert gw.stats.tenants["walk-in"].completed == 1

    _run(go())


def test_submit_after_close_raises_shutdown_error():
    async def go():
        gw = CompileGateway(_service())
        async with gw:
            pass
        with pytest.raises(ShutdownError):
            await gw.submit(_spec(), FAST)

    _run(go())


def test_close_fails_queued_requests_with_shutdown_error():
    async def go():
        service = _SlowService(delay=0.3)
        gw = CompileGateway(
            service, GatewayConfig(max_queue_depth=8, concurrency=1)
        )
        await gw.start()
        leader = asyncio.ensure_future(gw.submit(_spec("gw-a"), FAST))
        await asyncio.sleep(0.1)  # leader is in the executor now
        queued = asyncio.ensure_future(gw.submit(_spec("gw-b"), FAST))
        await asyncio.sleep(0)
        await gw.aclose()
        assert (await leader).program  # in-flight compile finished
        with pytest.raises(ShutdownError):
            await queued

    _run(go())


# ------------------------------------------------------------ single-flight


def test_single_flight_collapses_identical_requests():
    async def go():
        service = _SlowService(delay=0.1)
        gw = CompileGateway(service)
        async with gw:
            results = await asyncio.gather(
                *(gw.submit(_spec(), FAST) for _ in range(8))
            )
        assert service.calls == 1
        assert all(r is results[0] for r in results)
        assert gw.stats.dedup_leaders == 1
        assert gw.stats.dedup_coalesced == 7
        assert gw.stats.completed == 8

    _run(go())


def test_deadlines_do_not_break_single_flight():
    """The content key excludes the deadline: two clients wanting the
    same kernel with different patience still share one compile."""

    async def go():
        service = _SlowService(delay=0.1)
        gw = CompileGateway(service)
        opts_a = CompileOptions(
            time_limit=5.0, validate=False, deadline=time.time() + 30
        )
        opts_b = CompileOptions(
            time_limit=5.0, validate=False, deadline=time.time() + 60
        )
        async with gw:
            await asyncio.gather(
                gw.submit(_spec(), opts_a), gw.submit(_spec(), opts_b)
            )
        assert service.calls == 1
        assert gw.stats.dedup_coalesced == 1

    _run(go())


def test_waiter_deadline_expires_without_cancelling_leader():
    async def go():
        service = _SlowService(delay=0.4)
        gw = CompileGateway(service)
        import dataclasses

        tight = dataclasses.replace(FAST, deadline=time.time() + 0.1)
        async with gw:
            leader = asyncio.ensure_future(gw.submit(_spec(), FAST))
            await asyncio.sleep(0.05)
            with pytest.raises(DeadlineExceededError):
                await gw.submit(_spec(), tight)
            # The shared compile survives the impatient waiter.
            assert (await leader).program
        assert gw.stats.sheds.get("deadline") == 1
        assert service.calls == 1

    _run(go())


def test_default_deadline_is_stamped_and_enforced():
    async def go():
        service = _SlowService(delay=0.5)
        gw = CompileGateway(service, GatewayConfig(default_deadline=0.15))
        async with gw:
            with pytest.raises(DeadlineExceededError):
                await gw.submit(_spec(), FAST)
        assert gw.stats.sheds.get("deadline") == 1

    _run(go())


# ------------------------------------------------------------------- CoDel


def test_codel_control_law():
    gw = CompileGateway(
        _service(),
        GatewayConfig(codel_target=0.1, codel_interval=1.0, codel_hard_factor=3.0),
    )
    now = 100.0
    # Below target: never drops, state stays reset.
    assert not gw._codel_drop(0.05, now)
    # First excursion above target starts the interval grace.
    assert not gw._codel_drop(0.15, now)
    assert not gw._codel_drop(0.15, now + 0.5)
    # Still above target after a full interval: dropping starts.
    assert gw._codel_drop(0.15, now + 1.1)
    # Head-drop: every stale dequeue sheds while dropping.
    assert gw._codel_drop(0.12, now + 1.2)
    # A fresh request (delay back under target) exits the state.
    assert not gw._codel_drop(0.05, now + 1.3)
    assert not gw._codel_drop(0.15, now + 1.4)  # grace re-arms


def test_codel_hard_ceiling_ignores_state():
    gw = CompileGateway(
        _service(),
        GatewayConfig(codel_target=0.1, codel_interval=10.0, codel_hard_factor=2.0),
    )
    # No grace interval has elapsed, but 0.25s >= 0.1 * 2.0: shed anyway.
    assert gw._codel_drop(0.25, 0.0)


# ---------------------------------------------------------------- brownout


def test_brownout_ladder_engages_and_releases_with_hysteresis():
    config = GatewayConfig(codel_target=0.1, brownout_factors=(2.0, 4.0, 8.0))
    assert config.brownout_level(0.0, current=0) == 0
    assert config.brownout_level(0.25, current=0) == 1
    assert config.brownout_level(0.45, current=1) == 2
    assert config.brownout_level(0.9, current=2) == 3
    # Hysteresis: above half the engage threshold, the level holds ...
    assert config.brownout_level(0.5, current=3) == 3
    # ... and releases only below half.
    assert config.brownout_level(0.3, current=3) == 2
    assert config.brownout_level(0.05, current=2) == 0


def test_brownout_shrinks_budgets_with_floor():
    gw = CompileGateway(_service())
    options = CompileOptions(time_limit=4.0, node_limit=10_000, validate=False)
    gw.stats.brownout_level = 2
    shrunk = gw._apply_brownout(options)
    assert shrunk.time_limit == pytest.approx(4.0 * BROWNOUT_SCALES[2])
    assert shrunk.node_limit == max(1_000, int(10_000 * BROWNOUT_SCALES[2]))
    gw.stats.brownout_level = 0
    assert gw._apply_brownout(options) is options


def test_cache_only_brownout_serves_hits_and_sheds_misses(tmp_path):
    from repro.service import ArtifactCache

    async def go():
        cache = ArtifactCache(str(tmp_path), lru_capacity=8)
        service = CompileService(cache=cache, isolate=False, policy=QUICK)
        gw = CompileGateway(service)
        async with gw:
            warm = await gw.submit(_spec("gw-hot"), FAST)  # primes the cache
            assert warm.program
            # Pin the ladder at level 3 with an EWMA high enough that
            # the empty-queue recovery sample cannot release it.
            gw.stats.brownout_level = 3
            gw.stats.queue_delay_ewma = gw.config.codel_target * 100
            hit = await gw.submit(_spec("gw-hot"), FAST)
            assert hit.diagnostics.cache_hit
            with pytest.raises(OverloadError) as info:
                await gw.submit(_spec("gw-cold"), FAST)
        assert info.value.reason == "cache-only"
        assert gw.stats.cache_only_hits == 1
        assert gw.stats.sheds.get("cache-only") == 1

    _run(go())


def test_cache_only_mode_recovers_when_queue_drains():
    """An empty queue feeds zero-delay samples to the EWMA on submit, so
    level 3 cannot latch forever once the overload has passed."""

    async def go():
        gw = CompileGateway(_service())
        async with gw:
            gw.stats.brownout_level = 3
            # Just above the release threshold: a couple of decayed
            # samples bring it under half the engage threshold.
            gw.stats.queue_delay_ewma = gw.config.codel_target * 8.5
            for _ in range(12):
                try:
                    await gw.submit(_spec("gw-rec"), FAST)
                except OverloadError:
                    await asyncio.sleep(0)
            assert gw.stats.brownout_level < 3
            assert (await gw.submit(_spec("gw-rec"), FAST)).program

    _run(go())


# ------------------------------------------------------------ token bucket


def test_token_bucket_burst_then_refill():
    bucket = _TokenBucket(rate=100.0, burst=2)
    assert bucket.acquire() == (True, 0.0)
    assert bucket.acquire() == (True, 0.0)
    admitted, retry_after = bucket.acquire()
    if not admitted:
        assert 0 < retry_after <= 1.0 / 100.0 + 1e-6
    time.sleep(0.03)  # 100/s refills a token in 10ms
    assert bucket.acquire()[0]


def test_stats_snapshot_feeds_invariant_checkers():
    async def go():
        gw = CompileGateway(_service())
        async with gw:
            await gw.submit(_spec(), FAST, tenant="interactive")
        snap = gw.stats.snapshot()
        assert snap["queue_depth_max"] >= 0
        tenant = snap["tenants"]["interactive"]
        assert tenant["admitted"] == 1 and tenant["completed"] == 1
        assert "sheds" in snap and "brownout_level" in snap
        assert "gateway" in gw.stats.summary()

    _run(go())
