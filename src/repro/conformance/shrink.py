"""Delta-debugging shrinker: divergent kernel -> minimal repro.

A fuzz divergence usually arrives on an ugly kernel -- eight outputs,
grafted subtrees, three input arrays -- of which one two-node
expression actually triggers the bug.  The shrinker reduces the kernel
while a caller-supplied *predicate* ("still divergent?") keeps
holding, in the classic ddmin style: coarse structural deletions
first, then local simplifications, iterated to a fixpoint.

Reduction passes, in order:

1. **output removal** -- ddmin over the output list (halves, then
   single elements);
2. **subterm hoisting** -- replace an operator node by one of its
   children (the smallest semantic change that deletes structure);
3. **leaf collapsing** -- replace a subterm by ``0`` or ``1``;
4. **input pruning** -- drop arrays no Get references, then shrink
   each array to its highest referenced index + 1.

Everything is deterministic: passes enumerate candidates in a fixed
order and take the first reduction that keeps the predicate true, so
the same divergence shrinks to the same minimal repro on any machine.
The result is packaged as a JSON payload plus a generated pytest file
(see :mod:`repro.conformance.replay`) under ``tests/repros/``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..compiler import CompileOptions, compile_spec
from ..dsl.ast import Term, num
from ..frontend.lift import ArrayDecl, Spec
from ..seeding import stable_rng
from ..validation.fuzz import check_result
from .corpus import spec_key, spec_to_json
from .mutate import rebuild_spec
from .replay import REPRO_SCHEMA, options_to_json

__all__ = [
    "ShrinkReport",
    "divergence_predicate",
    "shrink",
    "spec_size",
    "repro_payload",
    "write_repro",
]

Predicate = Callable[[Spec], bool]


def spec_size(spec: Spec) -> int:
    """Reduction metric: total term nodes plus total input length."""

    def nodes(term: Term) -> int:
        return 1 + sum(nodes(a) for a in term.args)

    return nodes(spec.term) + sum(d.length for d in spec.inputs)


@dataclass
class ShrinkReport:
    """Outcome of one shrink run."""

    original: Spec
    minimized: Spec
    original_size: int
    minimized_size: int
    rounds: int
    #: Predicate evaluations spent (the shrinker's cost unit).
    attempts: int
    #: Human-readable log of accepted reductions, in order.
    steps: List[str] = field(default_factory=list)

    @property
    def reduced(self) -> bool:
        return self.minimized_size < self.original_size


def divergence_predicate(
    options: CompileOptions,
    seed: int = 0,
    trials: int = 3,
    tolerance: float = 1e-5,
) -> Predicate:
    """The canonical "still divergent?" predicate.

    Compiles the candidate under ``options`` and re-runs the
    differential oracle.  The check RNG derives from the candidate's
    *content*, so the same candidate always sees the same inputs --
    without that, shrinking chases a moving target and the "minimal"
    result depends on evaluation order.  A candidate whose compilation
    *raises* is rejected (that is a different bug class; shrinking must
    preserve the divergence, not trade it for a crash).
    """

    def predicate(candidate: Spec) -> bool:
        try:
            result = compile_spec(candidate, options)
        except Exception:  # noqa: BLE001 - crash != divergence
            return False
        rng = stable_rng(seed, "shrink-check", spec_key(candidate))
        return bool(check_result(candidate, result, rng, trials, tolerance))

    return predicate


# ----------------------------------------------------------------------
# Reduction passes.  Each yields candidate (spec, description) pairs in
# deterministic order; ``shrink`` accepts the first that satisfies the
# predicate and is strictly smaller.
# ----------------------------------------------------------------------


def _ddmin_chunks(n: int) -> List[Tuple[int, int]]:
    """(start, stop) removal windows: halves first, then singletons."""
    windows: List[Tuple[int, int]] = []
    size = n // 2
    while size >= 1:
        for start in range(0, n, size):
            windows.append((start, min(start + size, n)))
        if size == 1:
            break
        size //= 2
    # Dedup while preserving order (halving can repeat singletons).
    seen = set()
    out = []
    for w in windows:
        if w not in seen:
            seen.add(w)
            out.append(w)
    return out


def _drop_outputs(spec: Spec):
    elements = list(spec.term.args)
    if len(elements) <= 1:
        return
    for start, stop in _ddmin_chunks(len(elements)):
        if stop - start >= len(elements):
            continue
        remaining = elements[:start] + elements[stop:]
        yield (
            rebuild_spec(spec.name, spec.inputs, remaining),
            f"drop outputs [{start}:{stop}]",
        )


def _subterm_paths(term: Term) -> List[Tuple[Tuple[int, ...], Term]]:
    out: List[Tuple[Tuple[int, ...], Term]] = []
    stack: List[Tuple[Tuple[int, ...], Term]] = [((), term)]
    while stack:
        path, node = stack.pop()
        out.append((path, node))
        if node.op == "Get":
            continue
        for i in range(len(node.args) - 1, -1, -1):
            stack.append((path + (i,), node.args[i]))
    return out


def _replace_path(term: Term, path: Tuple[int, ...], new: Term) -> Term:
    if not path:
        return new
    args = list(term.args)
    args[path[0]] = _replace_path(args[path[0]], path[1:], new)
    return Term(term.op, tuple(args), term.value)


def _hoist_children(spec: Spec):
    elements = list(spec.term.args)
    for i, element in enumerate(elements):
        for path, node in _subterm_paths(element):
            if node.op == "Get" or not node.args:
                continue
            for k, child in enumerate(node.args):
                reduced = list(elements)
                reduced[i] = _replace_path(element, path, child)
                yield (
                    rebuild_spec(spec.name, spec.inputs, reduced),
                    f"hoist child {k} of {node.op} in output {i}",
                )


def _collapse_leaves(spec: Spec):
    elements = list(spec.term.args)
    for i, element in enumerate(elements):
        for path, node in _subterm_paths(element):
            if node.op == "Num":
                continue
            for value in (0.0, 1.0):
                reduced = list(elements)
                reduced[i] = _replace_path(element, path, num(value))
                yield (
                    rebuild_spec(spec.name, spec.inputs, reduced),
                    f"collapse {node.op} in output {i} to {value}",
                )


def _prune_inputs(spec: Spec):
    used: Dict[str, int] = {}
    for _, node in _subterm_paths(spec.term):
        if node.op == "Get" and node.args[0].op == "Symbol":
            name = str(node.args[0].value)
            index = int(node.args[1].value)
            used[name] = max(used.get(name, -1), index)
    pruned = tuple(
        ArrayDecl(d.name, used[d.name] + 1)
        for d in spec.inputs
        if d.name in used
    ) or spec.inputs[:1]  # keep one array: zero-input specs are invalid
    if [(d.name, d.length) for d in pruned] != [
        (d.name, d.length) for d in spec.inputs
    ]:
        yield (
            rebuild_spec(spec.name, pruned, list(spec.term.args)),
            "prune/trim input arrays",
        )


_PASSES = (_drop_outputs, _hoist_children, _collapse_leaves, _prune_inputs)


def shrink(
    spec: Spec,
    predicate: Predicate,
    max_attempts: int = 2000,
) -> ShrinkReport:
    """Reduce ``spec`` while ``predicate`` holds; fixpoint ddmin.

    ``predicate(spec)`` must already be true (the caller observed the
    divergence); a ``ValueError`` is raised otherwise, since shrinking
    an unreproducible report would silently return garbage.
    """
    attempts = 1
    if not predicate(spec):
        raise ValueError(
            f"divergence does not reproduce on {spec.name!r}; refusing to "
            "shrink a non-failing kernel"
        )
    current = spec
    current_size = spec_size(spec)
    steps: List[str] = []
    rounds = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        rounds += 1
        for reduction_pass in _PASSES:
            for candidate, description in reduction_pass(current):
                if attempts >= max_attempts:
                    break
                size = spec_size(candidate)
                if size >= current_size:
                    continue
                attempts += 1
                if predicate(candidate):
                    current, current_size = candidate, size
                    steps.append(f"{description} (size {size})")
                    progress = True
                    break  # restart pass on the smaller kernel
            if progress:
                break
    minimized = rebuild_spec(
        f"{spec.name}-min", current.inputs, list(current.term.args)
    )
    return ShrinkReport(
        original=spec,
        minimized=minimized,
        original_size=spec_size(spec),
        minimized_size=spec_size(minimized),
        rounds=rounds,
        attempts=attempts,
        steps=steps,
    )


# ----------------------------------------------------------------------
# Repro packaging
# ----------------------------------------------------------------------


def repro_payload(
    spec: Spec,
    options: CompileOptions,
    seed: int = 0,
    trials: int = 3,
    tolerance: float = 1e-5,
    note: str = "",
) -> Dict:
    """Self-contained JSON payload replayable by
    :func:`repro.conformance.replay.replay_repro`."""
    return {
        "schema": REPRO_SCHEMA,
        "key": spec_key(spec),
        "spec": spec_to_json(spec),
        "options": options_to_json(options),
        "seed": seed,
        "trials": trials,
        "tolerance": tolerance,
        "note": note,
    }


_TEST_TEMPLATE = '''"""Auto-generated minimal repro for a fuzz divergence.

Generated by ``repro conformance shrink``; do not edit by hand.  The
test replays the embedded kernel through the full pipeline and fails
while the divergence is still present -- once the underlying bug is
fixed it goes green and stays as a regression guard.

{note}"""

import json

from repro.conformance.replay import replay_repro

PAYLOAD = json.loads(r\'\'\'
{payload}
\'\'\')


def test_repro_{slug}():
    report = replay_repro(PAYLOAD)
    assert report.ok, "divergence reproduced:\\n" + report.render()
'''


def write_repro(
    payload: Dict,
    directory: str = os.path.join("tests", "repros"),
) -> Tuple[str, str]:
    """Write ``<key>.json`` plus a replayable ``test_repro_<key>.py``
    into ``directory``; returns (json_path, test_path)."""
    os.makedirs(directory, exist_ok=True)
    key = payload["key"]
    json_path = os.path.join(directory, f"{key}.json")
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    test_path = os.path.join(directory, f"test_repro_{key}.py")
    note = payload.get("note", "")
    body = _TEST_TEMPLATE.format(
        note=note + "\n" if note else "",
        payload=json.dumps(payload, indent=2, sort_keys=True),
        slug=key,
    )
    with open(test_path, "w") as handle:
        handle.write(body)
    return json_path, test_path
