"""Tests for the process-isolated compilation service.

Covers the supervisor's contract end to end: isolated workers return
the same artifacts as in-process compilation, SIGKILLed / OOMing /
hanging workers are contained and retried with shrinking budgets, the
circuit breaker fails fast on repeat offenders, batches report per-item
errors, and a table1 sweep survives injected worker deaths with the
cache left uncorrupted.
"""

import dataclasses
import time

import pytest

from tests.conftest import run_and_compare
from repro.compiler import CompileOptions, compile_spec
from repro.errors import (
    CircuitOpenError,
    CompileError,
    WorkerCrashError,
    WorkerTimeoutError,
    is_resource_failure,
)
from repro.evaluation.common import Budget, SweepError
from repro.evaluation.table1 import run_table1
from repro.kernels import make_matmul, table1_kernels
from repro.service import (
    ArtifactCache,
    CompileService,
    FaultInjection,
    RetryPolicy,
    WorkerLimits,
)

FAST = CompileOptions(time_limit=5.0, node_limit=30_000, iter_limit=25, validate=False)
#: Near-zero backoff keeps retry tests fast without changing the logic.
QUICK_RETRY = RetryPolicy(backoff_base=0.01, backoff_jitter=0.0)
TINY_BUDGET = Budget(paper_seconds=180, seconds=2.0, node_limit=20_000, iter_limit=15)


@pytest.fixture(scope="module")
def kernel():
    return make_matmul(2, 2, 2)


def _service(**kwargs):
    kwargs.setdefault("policy", QUICK_RETRY)
    return CompileService(**kwargs)


# ----------------------------------------------------------------------
# Isolation basics
# ----------------------------------------------------------------------


class TestIsolatedCompile:
    def test_isolated_result_matches_in_process(self, kernel):
        reference = compile_spec(kernel.spec(), FAST)
        result = _service(isolate=True).compile_spec(kernel.spec(), FAST)
        assert result.cost == reference.cost
        assert len(result.program) == len(reference.program)
        assert result.diagnostics.attempts == 1
        assert not result.diagnostics.cache_hit
        run_and_compare(kernel, result.program)

    def test_in_process_mode_also_works(self, kernel):
        result = _service(isolate=False).compile_spec(kernel.spec(), FAST)
        assert result.diagnostics.attempts == 1
        run_and_compare(kernel, result.program)

    def test_worker_error_is_reconstructed_with_stage(self, kernel):
        """A worker-side logic error comes back as a staged CompileError
        carrying the original type name, and is not retried."""
        service = _service(
            isolate=True,
            inject_for={kernel.name: FaultInjection("raise", attempts=(0, 1, 2))},
        )
        with pytest.raises(CompileError) as exc_info:
            service.compile_spec(kernel.spec(), FAST)
        assert "RuntimeError" in str(exc_info.value)
        assert not is_resource_failure(exc_info.value)
        assert service.stats.compiles == 1  # fail fast, no retry
        assert service.stats.retries == 0


# ----------------------------------------------------------------------
# Fault containment + retries
# ----------------------------------------------------------------------


class TestFaultContainment:
    def test_sigkill_is_retried_and_recovers(self, kernel):
        service = _service(
            isolate=True,
            inject_for={kernel.name: FaultInjection("sigkill", attempts=(0,))},
        )
        result = service.compile_spec(kernel.spec(), FAST)
        assert result.diagnostics.attempts == 2
        assert service.stats.worker_crashes == 1
        assert service.stats.retries == 1
        run_and_compare(kernel, result.program)

    def test_hang_is_killed_at_the_deadline(self, kernel):
        service = _service(
            isolate=True,
            limits=WorkerLimits(kill_timeout=1.0),
            policy=dataclasses.replace(QUICK_RETRY, max_attempts=1),
            inject_for={kernel.name: FaultInjection("hang", attempts=(0,))},
        )
        start = time.perf_counter()
        with pytest.raises(WorkerTimeoutError) as exc_info:
            service.compile_spec(kernel.spec(), FAST)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0  # killed, not waited out
        assert exc_info.value.signal == 9
        assert is_resource_failure(exc_info.value)
        assert service.stats.worker_timeouts == 1

    def test_oom_is_contained_by_rlimit_and_classified(self, kernel):
        """An allocation bomb hits RLIMIT_AS inside the worker, comes
        back as a memory-staged failure, and counts as a resource
        failure (so the service retried it at shrunk budgets)."""
        service = _service(
            isolate=True,
            limits=WorkerLimits(
                address_space_bytes=512 * 1024 * 1024, kill_timeout=30.0
            ),
            policy=dataclasses.replace(QUICK_RETRY, max_attempts=2),
            inject_for={kernel.name: FaultInjection("oom", attempts=(0, 1))},
        )
        with pytest.raises(Exception) as exc_info:
            service.compile_spec(kernel.spec(), FAST)
        assert is_resource_failure(exc_info.value)
        assert service.stats.compiles == 2  # retried once
        assert service.stats.failures == 1

    def test_retry_budgets_shrink_and_seed_shifts(self):
        options = CompileOptions(time_limit=8.0, node_limit=40_000, seed=10)
        shrunk = QUICK_RETRY.shrunk_options(options, attempt=2)
        assert shrunk.node_limit == 10_000
        assert shrunk.time_limit == 2.0
        assert shrunk.seed == 12
        assert QUICK_RETRY.shrunk_options(options, attempt=0) is options

    def test_shrink_respects_floors(self):
        options = CompileOptions(time_limit=0.4, node_limit=1_500)
        shrunk = QUICK_RETRY.shrunk_options(options, attempt=3)
        assert shrunk.node_limit == QUICK_RETRY.min_node_limit
        assert shrunk.time_limit == QUICK_RETRY.min_time_limit

    def test_backoff_is_jittered_exponential(self):
        import random

        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_jitter=0.5)
        rng = random.Random(0)
        d1 = [policy.backoff_delay(1, rng) for _ in range(50)]
        d2 = [policy.backoff_delay(2, rng) for _ in range(50)]
        assert all(0.05 <= d <= 0.15 for d in d1)
        assert all(0.10 <= d <= 0.30 for d in d2)
        assert len(set(d1)) > 1  # actually jittered


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def _failing_service(self, kernel, threshold=2):
        return _service(
            isolate=False,  # simulated worker crashes: fast
            policy=dataclasses.replace(
                QUICK_RETRY, max_attempts=2, strike_threshold=threshold
            ),
            inject_for={
                kernel.name: FaultInjection("sigkill", attempts=tuple(range(8)))
            },
        )

    def test_breaker_opens_after_strikes(self, kernel):
        service = self._failing_service(kernel)
        with pytest.raises(WorkerCrashError):
            service.compile_spec(kernel.spec(), FAST)  # 2 strikes
        assert service.strikes(kernel.name) == 2
        with pytest.raises(CircuitOpenError) as exc_info:
            service.compile_spec(kernel.spec(), FAST)
        assert exc_info.value.kernel == kernel.name
        assert service.stats.breaker_trips == 1
        # The open breaker spawned no further attempts.
        assert service.stats.compiles == 2

    def test_reset_breaker_allows_new_attempts(self, kernel):
        service = self._failing_service(kernel)
        with pytest.raises(WorkerCrashError):
            service.compile_spec(kernel.spec(), FAST)
        service.reset_breaker(kernel.name)
        assert service.strikes(kernel.name) == 0
        with pytest.raises(WorkerCrashError):  # not CircuitOpenError
            service.compile_spec(kernel.spec(), FAST)

    def test_success_resets_strikes(self, kernel):
        service = _service(
            isolate=False,
            policy=dataclasses.replace(QUICK_RETRY, strike_threshold=5),
            inject_for={kernel.name: FaultInjection("sigkill", attempts=(0,))},
        )
        result = service.compile_spec(kernel.spec(), FAST)
        assert result is not None
        assert service.strikes(kernel.name) == 0


# ----------------------------------------------------------------------
# Cache integration
# ----------------------------------------------------------------------


class TestCacheIntegration:
    def test_second_compile_is_a_cache_hit(self, kernel, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        service = _service(cache=cache, isolate=False)
        first = service.compile_spec(kernel.spec(), FAST)
        assert not first.diagnostics.cache_hit
        second = service.compile_spec(kernel.spec(), FAST)
        assert second.diagnostics.cache_hit
        assert second.cost == first.cost
        assert service.stats.compiles == 1
        assert service.stats.cache_hits == 1

    def test_cache_survives_service_restart(self, kernel, tmp_path):
        cache_dir = str(tmp_path / "cache")
        _service(cache=ArtifactCache(cache_dir), isolate=False).compile_spec(
            kernel.spec(), FAST
        )
        fresh = _service(cache=ArtifactCache(cache_dir), isolate=False)
        result = fresh.compile_spec(kernel.spec(), FAST)
        assert result.diagnostics.cache_hit
        assert fresh.stats.compiles == 0
        run_and_compare(kernel, result.program)

    def test_different_options_do_not_hit(self, kernel, tmp_path):
        cache = ArtifactCache(str(tmp_path / "cache"))
        service = _service(cache=cache, isolate=False)
        service.compile_spec(kernel.spec(), FAST)
        other = dataclasses.replace(FAST, node_limit=25_000)
        result = service.compile_spec(kernel.spec(), other)
        assert not result.diagnostics.cache_hit
        assert service.stats.compiles == 2


# ----------------------------------------------------------------------
# Batch + sweep integration (the acceptance scenario)
# ----------------------------------------------------------------------


def _quick_kernels():
    names = ("matmul-2x2-2x2", "2dconv-3x3-2x2", "qprod-4-3-4-3")
    return [k for k in table1_kernels() if k.name in names]


class TestBatch:
    def test_compile_many_preserves_order_and_isolates_errors(self):
        kernels = _quick_kernels()
        bad = kernels[1].name
        service = _service(
            isolate=False,
            policy=dataclasses.replace(QUICK_RETRY, max_attempts=1),
            inject_for={bad: FaultInjection("raise", attempts=(0,))},
        )
        items = service.compile_many(
            [k.spec() for k in kernels], TINY_BUDGET.options()
        )
        assert [i.name for i in items] == [k.name for k in kernels]
        assert items[0].ok and items[2].ok
        assert not items[1].ok
        assert items[1].error is not None


class TestSweepWithWorkerDeaths:
    def test_table1_survives_sigkill_and_oom_with_cache_intact(self, tmp_path):
        """The acceptance scenario: one kernel's worker is SIGKILLed on
        its first attempt (recovers on retry), another is an allocation
        bomb under a tight rlimit (fails every attempt).  The sweep must
        complete, record exactly the OOM kernel as a SweepError with its
        retries acknowledged, and leave every cache entry readable."""
        kernels = _quick_kernels()
        sigkilled, oomed = kernels[0].name, kernels[1].name
        cache = ArtifactCache(str(tmp_path / "cache"))
        service = _service(
            cache=cache,
            isolate=True,
            limits=WorkerLimits(
                address_space_bytes=512 * 1024 * 1024, kill_timeout=60.0
            ),
            policy=dataclasses.replace(QUICK_RETRY, max_attempts=2),
            inject_for={
                sigkilled: FaultInjection("sigkill", attempts=(0,)),
                oomed: FaultInjection("oom", attempts=(0, 1)),
            },
        )
        errors = []
        rows = run_table1(
            TINY_BUDGET, kernels, track_memory=False,
            errors=errors, service=service,
        )

        # Sweep completed: survivors have rows, the OOM kernel a SweepError.
        assert [r.kernel for r in rows] == [k.name for k in kernels if k.name != oomed]
        assert len(errors) == 1
        assert isinstance(errors[0], SweepError)
        assert errors[0].kernel == oomed
        assert errors[0].retried  # resource failure, went through retries
        assert service.stats.worker_crashes >= 1  # the SIGKILL
        assert service.stats.retries >= 1

        # Cache uncorrupted: only successes stored, all entries readable.
        assert cache.stats.corrupt == 0
        entries = cache.entries()
        assert sorted(e.kernel for e in entries) == sorted(
            k.name for k in kernels if k.name != oomed
        )
        for entry in entries:
            assert cache.get(entry.key) is not None

    def test_warm_cache_rerun_does_zero_recompiles(self, tmp_path):
        """Second run of the quick table1 sweep against a warm cache
        must not compile anything."""
        kernels = _quick_kernels()
        cache_dir = str(tmp_path / "cache")
        cold = _service(cache=ArtifactCache(cache_dir), isolate=False)
        rows = run_table1(
            TINY_BUDGET, kernels, track_memory=False, service=cold
        )
        assert len(rows) == len(kernels)
        assert cold.stats.compiles == len(kernels)

        warm = _service(cache=ArtifactCache(cache_dir), isolate=False)
        rows = run_table1(
            TINY_BUDGET, kernels, track_memory=False, service=warm
        )
        assert len(rows) == len(kernels)
        assert warm.stats.compiles == 0
        assert warm.stats.cache_hits == len(kernels)
        assert warm.cache.stats.hits == len(kernels)


# ----------------------------------------------------------------------
# Seed threading (satellite)
# ----------------------------------------------------------------------


class TestSeedThreading:
    def test_budget_options_accept_seed_override(self):
        assert TINY_BUDGET.options(seed=7).seed == 7

    def test_compile_with_custom_seed_validates(self, kernel):
        options = dataclasses.replace(FAST, validate=True, seed=99)
        result = compile_spec(kernel.spec(), options)
        assert result.validated

    def test_validate_seed_is_deterministic(self, kernel):
        from repro.validation.validate import validate

        spec = kernel.spec()
        a = validate(spec, spec.term, seed=5)
        b = validate(spec, spec.term, seed=5)
        assert a.ok and b.ok
        assert a.methods_used == b.methods_used

    def test_measure_resolves_seed_from_options(self, kernel):
        from repro.evaluation.common import measure

        program = compile_spec(kernel.spec(), FAST).program
        explicit = measure(program, kernel, seed=3)
        via_options = measure(
            program, kernel, options=dataclasses.replace(FAST, seed=3)
        )
        assert explicit == via_options
