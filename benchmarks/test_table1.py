"""Table 1 regeneration (experiment T1 in DESIGN.md).

Benchmarks the *compilation* of every Table 1 kernel -- symbolic
evaluation, equality saturation under the budget, extraction, and code
generation -- and records the statistics the paper's Table 1 reports
(time, e-graph size, timeout flag) in ``extra_info``.
"""

import pytest

from conftest import BENCH_BUDGET, compile_cached, run_checked
from repro.evaluation.table1 import PAPER_TABLE1
from repro.evaluation.common import compile_kernel_with_budget
from repro.kernels import table1_kernels

KERNELS = table1_kernels()


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
def test_table1_compile(benchmark, kernel):
    result = benchmark.pedantic(
        compile_kernel_with_budget,
        args=(kernel, BENCH_BUDGET),
        rounds=1,
        iterations=1,
    )
    paper = PAPER_TABLE1.get(kernel.name)
    benchmark.extra_info.update(
        {
            "size": kernel.size_label,
            "compile_time_s": round(result.compile_time, 3),
            "egraph_nodes": result.egraph_nodes,
            "egraph_classes": result.egraph_classes,
            "timed_out": result.timed_out,
            "paper_time_s": paper[0] if paper else None,
            "paper_timed_out": paper[2] if paper else None,
        }
    )
    # The compiler must always produce a lowered kernel, timeout or not
    # (the paper extracts from partially saturated e-graphs).
    assert len(result.program) > 0


def test_table1_timeout_shape(benchmark):
    """The paper's large kernels time out; ours should too under the
    scaled budget -- at minimum the biggest conv and matmul."""
    from repro.kernels import get_kernel

    def check():
        big_conv = compile_cached(get_kernel("2dconv-16x16-4x4"))
        big_mm = compile_cached(get_kernel("matmul-16x16-16x16"))
        small = compile_cached(get_kernel("matmul-2x2-2x2"))
        assert big_conv.timed_out or big_mm.timed_out
        assert not small.timed_out

    run_checked(benchmark, check)
