"""Tests of the constant-folding e-class analysis (an egg-style
analysis; an opt-in extension beyond the paper's configuration)."""

import pytest

from repro.compiler import CompileOptions, compile_kernel
from repro.dsl import parse
from repro.egraph import EGraph, Runner
from repro.machine import simulate
from repro.rules import build_ruleset, scalar_rules


class TestFolding:
    def test_constants_fold_on_add(self):
        eg = EGraph(constant_folding=True)
        eg.add_term(parse("(* 2 3)"))
        assert eg.equiv(parse("(* 2 3)"), parse("6"))

    def test_nested_folding(self):
        eg = EGraph(constant_folding=True)
        eg.add_term(parse("(+ (neg (* 2 2)) (sqrt 16))"))
        assert eg.equiv(parse("(+ (neg (* 2 2)) (sqrt 16))"), parse("0"))

    def test_constant_of(self):
        eg = EGraph(constant_folding=True)
        cid = eg.add_term(parse("(- 10 4)"))
        assert eg.constant_of(cid) == 6.0
        other = eg.add_term(parse("(Get a 0)"))
        assert eg.constant_of(other) is None

    def test_division_by_zero_not_folded(self):
        eg = EGraph(constant_folding=True)
        cid = eg.add_term(parse("(/ 1 0)"))
        assert eg.constant_of(cid) is None

    def test_negative_sqrt_not_folded(self):
        eg = EGraph(constant_folding=True)
        cid = eg.add_term(parse("(sqrt -4)"))
        assert eg.constant_of(cid) is None

    def test_disabled_by_default(self):
        eg = EGraph()
        eg.add_term(parse("(* 2 3)"))
        assert not eg.equiv(parse("(* 2 3)"), parse("6"))

    def test_folding_propagates_through_rewrites(self):
        """A rewrite that creates a constant subterm gets it folded,
        and zero-aware rules can then fire on the result."""
        eg = EGraph(constant_folding=True)
        root = eg.add_term(parse("(+ (Get a 0) (* 0 (Get a 1)))"))
        Runner(scalar_rules()).run(eg)
        assert eg.equiv(
            parse("(+ (Get a 0) (* 0 (Get a 1)))"), parse("(Get a 0)")
        )

    def test_union_merges_constants(self):
        eg = EGraph(constant_folding=True)
        a = eg.add_term(parse("(Get a 0)"))
        six = eg.add_term(parse("6"))
        eg.union(a, six)
        eg.rebuild()
        assert eg.constant_of(a) == 6.0

    def test_conflicting_constants_detected(self):
        """Uniting two different constants (an unsound rewrite) raises
        instead of silently corrupting the graph."""
        eg = EGraph(constant_folding=True)
        one = eg.add_term(parse("1"))
        two = eg.add_term(parse("2"))
        with pytest.raises(RuntimeError, match="conflict"):
            eg.union(one, two)
            eg.rebuild()


class TestEndToEnd:
    def test_compile_with_folding(self):
        """A kernel with a constant subcomputation compiles correctly
        with folding enabled, and the constant is precomputed."""

        def kernel(a, o):
            scale = 0.5 * 4.0  # folds to 2.0 at compile time
            for i in range(4):
                o[i] = a[i] * scale

        options = CompileOptions(
            time_limit=5.0,
            validate=True,
            enable_constant_folding=True,
        )
        result = compile_kernel("scaled", kernel, [("a", 4)], [("o", 4)], options)
        assert result.validated
        sim = simulate(result.program, {"a": [1, 2, 3, 4]})
        assert sim.output("out") == [2.0, 4.0, 6.0, 8.0]

    def test_saturation_with_folding_and_vector_rules(self):
        eg = EGraph(constant_folding=True)
        root = eg.add_term(
            parse(
                "(List (+ (Get a 0) (- 2 2)) (+ (Get a 1) 0)"
                " (+ (Get a 2) 0) (+ (Get a 3) 0))"
            )
        )
        Runner(build_ruleset(4), iter_limit=15, node_limit=10_000).run(eg)
        assert eg.equiv(parse("(- 2 2)"), parse("0"))
        # Folding turned every element into a bare load; the e-graph
        # knows the whole List equals the contiguous copy.
        assert eg.equiv(
            root_term := parse(
                "(List (+ (Get a 0) (- 2 2)) (+ (Get a 1) 0)"
                " (+ (Get a 2) 0) (+ (Get a 3) 0))"
            ),
            parse("(Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3))"),
        )
        from repro.costs import DiospyrosCostModel
        from repro.egraph import Extractor

        term = Extractor(eg, DiospyrosCostModel()).extract(root).term
        # Either surface form is acceptable; all the noise must be gone.
        assert "(+ " not in term.to_sexpr() and "(- " not in term.to_sexpr()
