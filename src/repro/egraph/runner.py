"""Equality saturation runner.

Drives the rewrite loop (paper Section 3.3): each iteration searches
every rule against the *frozen* e-graph, applies all resulting matches,
then rebuilds.  The loop stops when

* **saturated** -- no match changed the graph (every rewrite's RHS was
  already equivalent to its LHS), meaning the e-graph now represents
  all programs reachable by any ordering of the rules; or
* a **limit** was hit: iteration count, e-node count (the paper uses a
  10,000,000-node limit), or wall-clock time (the paper uses 180 s).

A timed-out run is still useful: extraction operates on the partially
saturated graph (Section 5.5 studies exactly this trade-off; our
Figure 6 reproduction drives this module with varying budgets).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .egraph import EGraph
from .rewrite import Match, Rewrite

__all__ = ["IterationReport", "RunReport", "Runner", "StopReason"]


class StopReason:
    """Why saturation stopped (plain strings for easy reporting)."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"


@dataclass
class IterationReport:
    """Statistics for one saturation iteration."""

    index: int
    matches: int
    applied: int
    unions: int
    nodes: int
    classes: int
    elapsed: float


@dataclass
class RunReport:
    """Summary of a saturation run, consumed by Table 1 / Figure 6."""

    stop_reason: str
    iterations: List[IterationReport] = field(default_factory=list)
    total_time: float = 0.0
    nodes: int = 0
    classes: int = 0

    @property
    def saturated(self) -> bool:
        return self.stop_reason == StopReason.SATURATED

    @property
    def timed_out(self) -> bool:
        return self.stop_reason in (StopReason.TIME_LIMIT, StopReason.NODE_LIMIT)

    def summary(self) -> str:
        return (
            f"{len(self.iterations)} iteration(s), {self.nodes} nodes, "
            f"{self.classes} classes, {self.total_time:.2f}s, "
            f"stopped: {self.stop_reason}"
        )


class Runner:
    """Configurable saturation loop.

    Parameters mirror egg's ``Runner``: ``iter_limit`` bounds the number
    of iterations, ``node_limit`` bounds total e-nodes, ``time_limit``
    (seconds) bounds wall-clock time, and ``match_limit`` caps how many
    matches a single rule may contribute per iteration (a backstop
    against explosive rules; ``None`` means unlimited).
    """

    def __init__(
        self,
        rules: Sequence[Rewrite],
        iter_limit: int = 30,
        node_limit: int = 100_000,
        time_limit: Optional[float] = None,
        match_limit: Optional[int] = None,
    ) -> None:
        if not rules:
            raise ValueError("Runner needs at least one rewrite rule")
        self.rules = list(rules)
        self.iter_limit = iter_limit
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.match_limit = match_limit

    def run(self, egraph: EGraph) -> RunReport:
        """Saturate ``egraph`` in place and return a report."""
        report = RunReport(stop_reason=StopReason.ITERATION_LIMIT)
        start = time.perf_counter()

        for index in range(self.iter_limit):
            iter_start = time.perf_counter()

            if self._out_of_time(start):
                report.stop_reason = StopReason.TIME_LIMIT
                break

            # Phase 1: search every rule against the frozen graph.
            all_matches: List[Match] = []
            for rule in self.rules:
                found = rule.search(egraph)
                if self.match_limit is not None and len(found) > self.match_limit:
                    found = found[: self.match_limit]
                all_matches.extend(found)
                if self._out_of_time(start):
                    break
            if self._out_of_time(start):
                report.stop_reason = StopReason.TIME_LIMIT
                # Apply nothing on a mid-search timeout: the graph stays
                # consistent and extraction proceeds on what we have.
                break

            # Phase 2: apply all matches, then rebuild once.
            applied = 0
            unions = 0
            hit_node_limit = False
            for match in all_matches:
                new_id = match.build(egraph)
                applied += 1
                if new_id is not None and egraph.union(match.eclass, new_id):
                    unions += 1
                if egraph.version >= self.node_limit:
                    hit_node_limit = True
                    break
            egraph.rebuild()

            report.iterations.append(
                IterationReport(
                    index=index,
                    matches=len(all_matches),
                    applied=applied,
                    unions=unions,
                    nodes=egraph.num_nodes,
                    classes=egraph.num_classes,
                    elapsed=time.perf_counter() - iter_start,
                )
            )

            if hit_node_limit:
                report.stop_reason = StopReason.NODE_LIMIT
                break
            if unions == 0:
                report.stop_reason = StopReason.SATURATED
                break

        report.total_time = time.perf_counter() - start
        report.nodes = egraph.num_nodes
        report.classes = egraph.num_classes
        return report

    def _out_of_time(self, start: float) -> bool:
        return (
            self.time_limit is not None
            and time.perf_counter() - start >= self.time_limit
        )
