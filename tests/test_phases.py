"""Phased saturation: the sketch DSL, phase plans, rule tagging, and
phase-boundary determinism (DESIGN.md §13).

The determinism contract under test: a phase boundary is a pure
function of its input term -- extracting after phase N and re-seeding
yields the same final program as a fresh run of phases N+1.. from that
term, and none of it depends on PYTHONHASHSEED.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.compiler import CompileOptions, _selected_plan, compile_spec
from repro.dsl.ast import Term
from repro.kernels import get_kernel
from repro.phases import (
    All,
    AnyOf,
    Contains,
    CountAtLeast,
    NoneOf,
    NoneUnder,
    Not,
    Phase,
    PhasePlan,
    default_plan,
    execute_plan,
    plan_from_json,
    sketch_from_json,
)
from repro.rules import build_ruleset

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _num(v):
    return Term("Num", value=v)


def _sym(s):
    return Term("Symbol", value=s)


#: Concat(Vec(1, 2), Vec(a, 4)) -- a vectorized shape.
VEC_TERM = Term(
    "Concat",
    (
        Term("Vec", (_num(1), _num(2))),
        Term("Vec", (_sym("a"), _num(4))),
    ),
)
#: List(a + b * 2) -- a scalar shape with one + and one *.
SCALAR_TERM = Term(
    "List", (Term("+", (_sym("a"), Term("*", (_sym("b"), _num(2))))),)
)


# ------------------------------------------------------------- sketches


def test_contains_and_count():
    assert Contains("Vec").satisfied(VEC_TERM)
    assert not Contains("Vec").satisfied(SCALAR_TERM)
    assert Contains("Vec").score(SCALAR_TERM) == 0.0
    assert CountAtLeast("Vec", 2).satisfied(VEC_TERM)
    assert CountAtLeast("Vec", 4).score(VEC_TERM) == 0.5
    with pytest.raises(ValueError):
        CountAtLeast("Vec", 0)


def test_none_of_scores_decay_with_violations():
    sketch = NoneOf(("*", "+"))
    assert sketch.satisfied(VEC_TERM)
    # SCALAR_TERM has one + and one * -> 2 violations.
    assert sketch.score(SCALAR_TERM) == pytest.approx(1.0 / 3.0)
    assert not sketch.satisfied(SCALAR_TERM)


def test_none_under_is_scoped():
    sketch = NoneUnder("Concat", ("*",))
    assert sketch.satisfied(SCALAR_TERM), "scalar * outside Concat is fine"
    bad = Term("Concat", (Term("Vec", (Term("*", (_sym("a"), _num(2))),)),))
    assert not sketch.satisfied(bad)


def test_not_and_junctions():
    assert Not(Contains("List")).satisfied(VEC_TERM)
    assert not Not(Contains("List")).satisfied(SCALAR_TERM)
    both = All(Contains("Concat"), Contains("Vec"))
    assert both.satisfied(VEC_TERM)
    assert both.score(SCALAR_TERM) == 0.0
    either = AnyOf(Contains("List"), Contains("Vec"))
    assert either.satisfied(VEC_TERM) and either.satisfied(SCALAR_TERM)


def test_bias_hints_required_and_forbidden():
    layout_goal = All(
        Contains("Concat"), Contains("Vec"), Not(Contains("List"))
    )
    assert layout_goal.required_ops() == frozenset({"Concat", "Vec"})
    # Not() swaps sides: the inner Contains' requirement becomes a
    # forbidden op, which the executor turns into an extraction penalty.
    assert layout_goal.forbidden_ops() == frozenset({"List"})
    assert NoneOf(("*",)).forbidden_ops() == frozenset({"*"})


def test_sketch_json_round_trip():
    sketches = [
        Contains("VecMAC"),
        CountAtLeast("Vec", 3),
        NoneOf(("*", "+", "-")),
        NoneUnder("Concat", ("*",)),
        Not(Contains("List")),
        All(Contains("Vec"), NoneOf(("+",))),
        AnyOf(Contains("VecMAC"), Contains("VecMul")),
    ]
    for sketch in sketches:
        clone = sketch_from_json(json.loads(json.dumps(sketch.to_json())))
        assert clone == sketch, sketch


# ---------------------------------------------------------------- plans


def test_plan_fingerprint_is_stable_and_content_bearing():
    assert default_plan(4).fingerprint() == default_plan(4).fingerprint()
    assert default_plan(4).fingerprint() != default_plan(8).fingerprint()
    plan = default_plan(4)
    edited = PhasePlan(
        plan.name,
        (plan.phases[0],) + tuple(
            Phase(
                name=p.name,
                rule_tags=p.rule_tags,
                iter_limit=p.iter_limit + 1,
                sketch=p.sketch,
                on_miss=p.on_miss,
                extend_limit=p.extend_limit,
            )
            for p in plan.phases[1:]
        ),
    )
    assert edited.fingerprint() != plan.fingerprint()
    # JSON round-trip preserves content, hence the fingerprint: a plan
    # loaded from --phase-plan can resume the checkpoint it wrote.
    assert plan_from_json(plan.to_json()).fingerprint() == plan.fingerprint()


def test_plan_validation():
    with pytest.raises(ValueError):
        Phase(name="x", on_miss="explode")
    with pytest.raises(ValueError):
        Phase(name="x", extend_limit=0)
    with pytest.raises(ValueError):
        PhasePlan("empty", ())
    # Tag order is canonicalized so it cannot move the fingerprint.
    assert Phase(name="x", rule_tags=("b", "a")) == Phase(
        name="x", rule_tags=("a", "b")
    )


def test_rule_tag_filtering():
    everything = {r.name for r in build_ruleset()}
    split_only = {r.name for r in build_ruleset(only_tags=("split",))}
    mac_only = {r.name for r in build_ruleset(only_tags=("mac",))}
    assert split_only and split_only < everything
    assert any(name.startswith("list-split") for name in split_only)
    assert any(name.startswith("vec-mac") for name in mac_only)
    assert not any(name.startswith("vec-mac") for name in split_only)
    # Untagged rules survive every filter by design (a project-local
    # extra rule should not silently vanish from phased compiles)...
    from repro.egraph.rewrite import rewrite

    extra = rewrite("extra-untagged", "(+ ?a 0)", "?a")
    assert not extra.tags
    filtered = {
        r.name
        for r in build_ruleset(only_tags=("mac",), extra_rules=[extra])
    }
    assert "extra-untagged" in filtered
    # ...and a filter matching nothing is a loud error, not a silent
    # empty saturation.
    with pytest.raises(ValueError):
        build_ruleset(only_tags=("no-such-tag",))


# ------------------------------------------------------- auto selection


def test_auto_selection_thresholds():
    small = get_kernel("matmul-2x2-2x2").spec()
    large = get_kernel("2dconv-8x8-4x4").spec()
    assert _selected_plan(small, CompileOptions(phases="auto")) is None
    assert _selected_plan(large, CompileOptions(phases="auto")) is not None
    assert _selected_plan(small, CompileOptions(phases="on")) is not None
    assert _selected_plan(large, CompileOptions(phases="off")) is None
    custom = default_plan(8)
    picked = _selected_plan(
        small, CompileOptions(phases="on", phase_plan=custom)
    )
    assert picked is custom

    from repro.errors import SaturationError

    with pytest.raises(SaturationError):
        _selected_plan(small, CompileOptions(phases="maybe"))


def test_auto_is_byte_identical_to_off_below_threshold():
    """Existing quick kernels must be untouched by the phasing knob:
    auto stays monolithic below the threshold."""
    spec = get_kernel("2dconv-3x3-2x2").spec()
    options = CompileOptions(time_limit=None, validate=False, seed=0)
    auto = compile_spec(spec, options)
    off = compile_spec(
        spec, CompileOptions(time_limit=None, validate=False, seed=0,
                             phases="off")
    )
    assert auto.phases is None and off.phases is None
    assert auto.program.fingerprint() == off.program.fingerprint()
    assert auto.c_code == off.c_code
    assert auto.cost == off.cost


# ------------------------------------------- phase-boundary determinism


class _BoundarySpec:
    """Spec stand-in seeding a plan run from a phase-boundary term."""

    def __init__(self, name, term):
        self.name = name
        self.term = term


def test_phase_boundary_is_a_pure_function_of_its_term():
    """Extract after phase N + re-seed == fresh run of phases N+1..
    from that term."""
    spec = get_kernel("2dconv-3x3-2x2").spec()
    options = CompileOptions(time_limit=None, validate=False, phases="on",
                             seed=0)
    plan = default_plan(options.vector_width)

    full = execute_plan(spec, options, plan)
    assert full.plan_report.completed

    prefix = PhasePlan("prefix", plan.phases[:1])
    suffix = PhasePlan("suffix", plan.phases[1:])
    boundary = execute_plan(spec, options, prefix)
    assert not boundary.failed
    resumed = execute_plan(
        _BoundarySpec(spec.name, boundary.term), options, suffix
    )
    assert not resumed.failed
    assert resumed.term == full.term


_HASHSEED_SCRIPT = """
import json
from repro.compiler import CompileOptions, compile_spec
from repro.kernels import get_kernel

kernel = get_kernel("matmul-2x2-2x2")
options = CompileOptions(time_limit=None, validate=False, phases="on", seed=0)
result = compile_spec(kernel.spec(), options)
print(json.dumps({
    "fingerprint": result.program.fingerprint(),
    "cost": result.cost,
    "plan": result.phases.summary(),
    "rounds": [len(p.rounds) for p in result.phases.phases],
}, sort_keys=True))
"""


def _run_hashseed(hashseed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [sys.executable, "-c", _HASHSEED_SCRIPT],
        capture_output=True,
        env=env,
        cwd=REPO,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def test_phased_compile_is_hashseed_independent():
    assert _run_hashseed("1") == _run_hashseed("2"), (
        "phased compilation output depends on PYTHONHASHSEED; phase "
        "checkpoints would not resume across machines"
    )
