"""Generality tests: the compiler handles extension workloads beyond
the four Table 1 kernel families (repro.kernels.extra)."""

import numpy as np
import pytest

from repro.compiler import CompileOptions, compile_spec
from repro.kernels import extra_kernels
from repro.kernels.extra import (
    make_batch_dot,
    make_correlate_valid,
    make_inverse2x2,
    make_matvec,
    make_normalize,
    make_quat_to_rot,
)
from repro.machine import simulate

OPTIONS = CompileOptions(time_limit=6.0, node_limit=60_000, validate=True)


class TestReferences:
    def test_batch_dot_against_numpy(self):
        kernel = make_batch_dot(4, 4)
        inputs = kernel.random_inputs(1)
        out = kernel.reference_outputs(inputs)
        x = np.array(inputs["x"]).reshape(4, 4)
        y = np.array(inputs["y"]).reshape(4, 4)
        np.testing.assert_allclose(out, (x * y).sum(axis=1), rtol=1e-9)

    def test_matvec_against_numpy(self):
        kernel = make_matvec(3, 3)
        inputs = kernel.random_inputs(2)
        out = kernel.reference_outputs(inputs)
        m = np.array(inputs["m"]).reshape(3, 3)
        v = np.array(inputs["v"])
        np.testing.assert_allclose(out, m @ v, rtol=1e-9)

    def test_xcorr_against_numpy(self):
        kernel = make_correlate_valid(6, 3)
        inputs = kernel.random_inputs(3)
        out = np.array(kernel.reference_outputs(inputs)).reshape(4, 4)
        img = np.array(inputs["img"]).reshape(6, 6)
        flt = np.array(inputs["flt"]).reshape(3, 3)
        expected = np.zeros((4, 4))
        for r in range(4):
            for c in range(4):
                expected[r, c] = (img[r : r + 3, c : c + 3] * flt).sum()
        np.testing.assert_allclose(out, expected, rtol=1e-9)

    def test_xcorr_rejects_oversized_filter(self):
        with pytest.raises(ValueError):
            make_correlate_valid(2, 3)

    def test_inverse2x2(self):
        kernel = make_inverse2x2()
        inputs = {"m": [4.0, 7.0, 2.0, 6.0]}
        out = np.array(kernel.reference_outputs(inputs)).reshape(2, 2)
        m = np.array(inputs["m"]).reshape(2, 2)
        np.testing.assert_allclose(out @ m, np.eye(2), atol=1e-9)

    def test_normalize(self):
        kernel = make_normalize(8)
        inputs = kernel.random_inputs(4)
        out = np.array(kernel.reference_outputs(inputs))
        assert np.linalg.norm(out) == pytest.approx(1.0, rel=1e-9)

    def test_quat_to_rot_orthonormal(self):
        kernel = make_quat_to_rot()
        q = np.array([0.1, 0.2, 0.3, 0.5])
        q = q / np.linalg.norm(q)
        out = np.array(kernel.reference_outputs({"q": list(q)})).reshape(3, 3)
        np.testing.assert_allclose(out @ out.T, np.eye(3), atol=1e-9)
        assert np.linalg.det(out) == pytest.approx(1.0, rel=1e-6)


class TestCompilation:
    @pytest.mark.parametrize("kernel", extra_kernels(), ids=lambda k: k.name)
    def test_compiles_validates_and_simulates(self, kernel):
        result = compile_spec(kernel.spec(), OPTIONS)
        assert result.validated, [
            (l.index, l.detail) for l in result.validation.failing_lanes()
        ]
        inputs = kernel.random_inputs(0)
        run = simulate(result.program, inputs)
        reference = kernel.reference_outputs(inputs)
        for got, want in zip(run.output("out"), reference):
            assert abs(got - want) <= 1e-4 * max(1.0, abs(want))

    def test_xcorr_vectorizes(self):
        """The valid correlation has no boundary irregularity at all:
        it should vectorize into MAC chains."""
        kernel = make_correlate_valid(6, 3)
        result = compile_spec(kernel.spec(), OPTIONS)
        assert "VecMAC" in result.optimized.to_sexpr()

    def test_matvec_uses_vector_unit(self):
        kernel = make_matvec(4, 4)
        result = compile_spec(kernel.spec(), OPTIONS)
        hist = result.program.opcode_histogram()
        assert any(op.startswith("vmac") or op.startswith("vbin") for op in hist)
