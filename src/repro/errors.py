"""Staged error taxonomy and compilation diagnostics.

The paper's central robustness claim is that a timed-out saturation is
still useful: "extraction operates on the partially saturated graph"
(Section 5.5).  This module generalizes that stance from the clean
timeout path to *every* failure mode of the pipeline.  Each stage of
``compile_spec`` -- lifting, saturation, extraction, lowering,
validation -- gets a dedicated exception type that carries the stage
name, the kernel name, and whatever partial artifacts existed when the
stage failed, so callers (the evaluation sweep, a service wrapping the
compiler) can degrade instead of dying.

:class:`CompileDiagnostics` is the per-compilation flight recorder: it
accumulates stage timings, retry counts, swallowed errors, and the
*degradation ladder* steps the compiler took (see DESIGN.md,
"Failure semantics & degradation ladder").  It is attached to every
:class:`repro.compiler.CompileResult` as ``result.diagnostics``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "CompileError",
    "LiftError",
    "SaturationError",
    "ExtractionError",
    "LoweringError",
    "ValidationError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "CircuitOpenError",
    "InjectedFaultError",
    "ShutdownError",
    "DeadlineExceededError",
    "OverloadError",
    "RateLimitError",
    "Degradation",
    "StageRecord",
    "CompileDiagnostics",
    "STAGES",
    "is_resource_failure",
]

#: Pipeline stages in execution order (Figure 1 of the paper, plus the
#: candidate-selection sub-stage the compiler adds).
STAGES = ("lift", "saturation", "extraction", "lowering", "validation")


def _obs_event(kind: str, **details) -> None:
    """Forward a diagnostics event to the ambient observability session
    (lazy import: errors.py is a leaf module everything else imports)."""
    from .observability.config import event

    event(kind, **details)


class CompileError(Exception):
    """Base of the staged exception taxonomy.

    ``stage`` names the pipeline stage that failed, ``kernel`` the spec
    being compiled, and ``partial`` holds whatever artifacts the stage
    had produced before failing (e.g. the partially saturated e-graph,
    a half-validated term), so fault-tolerant callers can resume from
    them instead of recomputing.
    """

    stage: str = "compile"

    def __init__(
        self,
        message: str,
        *,
        kernel: Optional[str] = None,
        partial: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.kernel = kernel
        self.partial = dict(partial or {})

    def __str__(self) -> str:
        prefix = f"[{self.stage}" + (f":{self.kernel}" if self.kernel else "") + "] "
        return prefix + super().__str__()


class LiftError(CompileError):
    """Symbolic evaluation of the reference kernel failed.  There is no
    spec to degrade to, so this is the one stage that always raises."""

    stage = "lift"


class SaturationError(CompileError):
    """The rewrite loop crashed (a rule's searcher or applier raised).
    ``partial`` carries the ``report`` of the run up to the failure;
    the e-graph itself is left in its last consistent rebuilt state."""

    stage = "saturation"


class ExtractionError(CompileError):
    """No term could be extracted under the requested cost model."""

    stage = "extraction"


class LoweringError(CompileError):
    """The extracted DSL term could not be lowered to vector IR (or the
    lowered kernel failed LVN / code generation)."""

    stage = "lowering"


class ValidationError(CompileError):
    """Translation validation *crashed* (as opposed to returning a
    negative verdict, which is an ordinary ``ValidationResult``)."""

    stage = "validation"


class WorkerCrashError(CompileError):
    """A sandboxed compilation worker died without delivering a result
    (segfault, SIGKILL from the OOM killer, an rlimit trip).  ``signal``
    holds the killing signal number when the exit status names one, and
    ``stderr_tail`` the last lines the worker wrote to stderr before
    dying (the supervisor redirects worker stderr to a scratch file
    precisely so this survives a SIGKILL)."""

    stage = "worker"

    def __init__(
        self,
        message: str,
        *,
        kernel: Optional[str] = None,
        exitcode: Optional[int] = None,
        signal: Optional[int] = None,
        stderr_tail: Optional[str] = None,
        partial: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message, kernel=kernel, partial=partial)
        self.exitcode = exitcode
        self.signal = signal
        self.stderr_tail = stderr_tail

    def __str__(self) -> str:
        text = super().__str__()
        if self.stderr_tail:
            text += "\n--- worker stderr (tail) ---\n" + self.stderr_tail
        return text


class WorkerTimeoutError(WorkerCrashError):
    """A sandboxed worker blew through its hard kill-timeout and was
    SIGKILLed by the supervisor.  Distinct from a clean saturation
    timeout, which still yields a result; this one yields nothing."""


class CircuitOpenError(CompileError):
    """The per-kernel circuit breaker is open: the kernel accumulated
    too many strikes and further compiles fail fast until the breaker
    is reset (``CompileService.reset_breaker``)."""

    stage = "service"


class InjectedFaultError(CompileError):
    """A fault deliberately injected by the chaos subsystem
    (:mod:`repro.chaos`) fired at an instrumented seam.  Part of the
    typed taxonomy so the chaos invariant "every failure surfaces as a
    ``repro.errors`` exception" holds for the injections themselves."""

    stage = "chaos"

    def __init__(
        self,
        message: str,
        *,
        kernel: Optional[str] = None,
        site: Optional[str] = None,
        action: Optional[str] = None,
        partial: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message, kernel=kernel, partial=partial)
        self.site = site
        self.action = action


class ShutdownError(CompileError):
    """The compile service is draining (SIGTERM/SIGINT or an explicit
    ``CompileService.shutdown``): the compile was refused or its
    in-flight worker was killed as part of the drain.  Distinct from a
    worker crash -- retrying inside the dying supervisor is pointless,
    so this error is never retried."""

    stage = "service"


class DeadlineExceededError(CompileError):
    """The request's end-to-end deadline expired (or its residual
    budget is too small to finish): the compile was shed *before*
    spending more work on it.  Raised by the supervisor ahead of
    forking a worker, by ``compile_spec`` when the deadline has already
    passed at entry, and by the gateway when a queued request's budget
    ran out while it waited.  Never retried -- a request that is out of
    budget stays out of budget.

    ``deadline`` is the absolute wall-clock deadline (``time.time()``
    scale) and ``residual`` the remaining budget (<= 0) observed when
    the request was shed."""

    stage = "deadline"

    def __init__(
        self,
        message: str,
        *,
        kernel: Optional[str] = None,
        deadline: Optional[float] = None,
        residual: Optional[float] = None,
        partial: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message, kernel=kernel, partial=partial)
        self.deadline = deadline
        self.residual = residual


class OverloadError(CompileError):
    """The compile gateway refused the request to protect the farm:
    the admission queue was full, CoDel-style queue-delay shedding
    kicked in, or the brownout ladder reached cache-only mode and the
    request missed.  The typed alternative to queueing unboundedly and
    timing out; clients should back off and retry later.

    ``reason`` is one of ``queue-full``, ``queue-delay``,
    ``cache-only``; ``queue_depth`` / ``queue_delay`` carry the
    measurements that triggered the shed."""

    stage = "gateway"

    def __init__(
        self,
        message: str,
        *,
        kernel: Optional[str] = None,
        reason: str = "overload",
        queue_depth: Optional[int] = None,
        queue_delay: Optional[float] = None,
        partial: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message, kernel=kernel, partial=partial)
        self.reason = reason
        self.queue_depth = queue_depth
        self.queue_delay = queue_delay


class RateLimitError(OverloadError):
    """A tenant exceeded its token-bucket rate limit; the request was
    refused at admission without consuming a queue slot.  ``tenant``
    names the offender and ``retry_after`` estimates the seconds until
    the bucket holds a token again."""

    def __init__(
        self,
        message: str,
        *,
        kernel: Optional[str] = None,
        tenant: Optional[str] = None,
        retry_after: Optional[float] = None,
        partial: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(
            message, kernel=kernel, reason="rate-limit", partial=partial
        )
        self.tenant = tenant
        self.retry_after = retry_after


_STAGE_ERRORS = {
    cls.stage: cls
    for cls in (LiftError, SaturationError, ExtractionError, LoweringError,
                ValidationError, DeadlineExceededError)
}


def stage_error(stage: str) -> type:
    """The exception class for a stage name (``CompileError`` for
    unknown stages)."""
    return _STAGE_ERRORS.get(stage, CompileError)


def is_resource_failure(exc: BaseException) -> bool:
    """Node-limit / memory / worker-death failures are worth a retry at
    a smaller budget; logic errors are not.

    This is the retry taxonomy shared by the evaluation sweeps (PR 1's
    halved-budget retry) and the compilation service's backoff loop: it
    walks the cause chain so a ``MemoryError`` wrapped in a staged
    ``CompileError`` still classifies as a resource failure.
    """
    seen = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if isinstance(current, (MemoryError, RecursionError, WorkerCrashError)):
            return True
        text = str(current).lower()
        if "node limit" in text or "node_limit" in text or "memory" in text:
            return True
        current = current.__cause__ or current.__context__
    return False


@dataclass
class Degradation:
    """One rung of the degradation ladder the compiler descended.

    ``stage`` is where the failure happened, ``reason`` what failed,
    and ``action`` what the compiler did instead of raising.
    """

    stage: str
    reason: str
    action: str

    def __str__(self) -> str:
        return f"{self.stage}: {self.reason} -> {self.action}"


@dataclass
class StageRecord:
    """Timing/outcome of one executed pipeline stage."""

    stage: str
    elapsed: float
    ok: bool = True
    error: str = ""


@dataclass
class CompileDiagnostics:
    """Per-compilation flight recorder.

    Populated by :func:`repro.compiler.compile_spec`; downstream
    consumers MUST check :attr:`degraded` (or the mirroring
    ``CompileResult.degraded`` flag) before trusting a result -- a
    degraded result is runnable but may be unvectorized, unvalidated,
    or extracted from a partially rewritten e-graph.
    """

    kernel: str = ""
    stages: List[StageRecord] = field(default_factory=list)
    degradations: List[Degradation] = field(default_factory=list)
    #: stage name -> number of retries performed (e.g. validation
    #: rerun with an escalated random-testing budget).
    retries: Dict[str, int] = field(default_factory=dict)
    #: Errors that were swallowed by design (e.g. candidate selection
    #: keeping the primary extraction when the alternative failed to
    #: lower).  Recorded so they are observable, per the taxonomy's
    #: no-silent-failure rule.
    swallowed: List[str] = field(default_factory=list)
    #: Validation was skipped/failed after retries but the result was
    #: still emitted ("degraded-unvalidated").
    unvalidated: bool = False
    #: The result was served from the on-disk artifact cache (set by
    #: ``repro.service``; the compilation stages above describe the run
    #: that originally produced the artifact).
    cache_hit: bool = False
    #: Number of worker attempts the compilation service spent on this
    #: result (1 = first try; 0 = compiled outside the service).
    attempts: int = 0

    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    def record_stage(
        self, stage: str, elapsed: float, ok: bool = True, error: str = ""
    ) -> None:
        self.stages.append(StageRecord(stage, elapsed, ok, error))

    def degrade(self, stage: str, reason: str, action: str) -> Degradation:
        entry = Degradation(stage, reason, action)
        self.degradations.append(entry)
        # Mirror the rung into the ambient observability session (trace
        # event + flight recorder) so a post-mortem shows *when* in the
        # pipeline each fallback fired.  No-op when observability is off.
        _obs_event("degradation", stage=stage, reason=reason, action=action)
        return entry

    def retry(self, stage: str) -> int:
        self.retries[stage] = self.retries.get(stage, 0) + 1
        _obs_event("retry", stage=stage, count=self.retries[stage])
        return self.retries[stage]

    def swallow(self, description: str) -> None:
        self.swallowed.append(description)
        _obs_event("swallowed_error", description=description)

    def stage_time(self, stage: str) -> float:
        return sum(r.elapsed for r in self.stages if r.stage == stage)

    def summary(self) -> str:
        timings = ", ".join(
            f"{r.stage} {r.elapsed:.3f}s" + ("" if r.ok else " FAILED")
            for r in self.stages
        )
        lines = [f"{self.kernel or '<spec>'}: {timings or 'no stages ran'}"]
        if self.cache_hit:
            lines.append("  served from artifact cache")
        if self.attempts > 1:
            lines.append(f"  service attempts: {self.attempts}")
        for d in self.degradations:
            lines.append(f"  degraded -- {d}")
        for stage, count in self.retries.items():
            lines.append(f"  retried {stage} x{count}")
        for s in self.swallowed:
            lines.append(f"  swallowed -- {s}")
        return "\n".join(lines)
