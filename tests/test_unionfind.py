"""Unit tests for the union-find substrate (repro.egraph.unionfind)."""

import random

from repro.egraph import UnionFind


class TestBasics:
    def test_make_set_allocates_densely(self):
        uf = UnionFind()
        assert [uf.make_set() for _ in range(5)] == [0, 1, 2, 3, 4]
        assert len(uf) == 5

    def test_fresh_sets_are_their_own_roots(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        assert uf.find(a) == a
        assert uf.find(b) == b
        assert not uf.in_same_set(a, b)

    def test_union_merges(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        root = uf.union(a, b)
        assert uf.find(a) == uf.find(b) == root
        assert uf.in_same_set(a, b)

    def test_union_idempotent(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        first = uf.union(a, b)
        assert uf.union(a, b) == first
        assert uf.num_sets() == 1

    def test_union_transitive(self):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(4)]
        uf.union(ids[0], ids[1])
        uf.union(ids[2], ids[3])
        assert not uf.in_same_set(ids[0], ids[3])
        uf.union(ids[1], ids[2])
        assert uf.in_same_set(ids[0], ids[3])

    def test_num_sets(self):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(6)]
        assert uf.num_sets() == 6
        uf.union(ids[0], ids[1])
        uf.union(ids[0], ids[2])
        assert uf.num_sets() == 4


class TestStress:
    def test_random_unions_match_naive_model(self):
        """Differential test against a dict-of-sets model."""
        rng = random.Random(7)
        uf = UnionFind()
        n = 200
        ids = [uf.make_set() for _ in range(n)]
        labels = list(range(n))  # naive model: label per element

        for _ in range(300):
            a, b = rng.randrange(n), rng.randrange(n)
            uf.union(ids[a], ids[b])
            la, lb = labels[a], labels[b]
            if la != lb:
                labels = [la if l == lb else l for l in labels]

        for i in range(n):
            for j in range(i + 1, i + 5):
                if j >= n:
                    break
                assert uf.in_same_set(ids[i], ids[j]) == (labels[i] == labels[j])

    def test_long_chain_path_compression(self):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(1000)]
        for a, b in zip(ids, ids[1:]):
            uf.union(a, b)
        root = uf.find(ids[0])
        assert all(uf.find(i) == root for i in ids)
        assert uf.num_sets() == 1
