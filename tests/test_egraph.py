"""Unit tests for the e-graph core (repro.egraph.egraph)."""

import pytest

from repro.dsl import parse
from repro.egraph import EGraph, ENode


class TestAdd:
    def test_hashcons_dedupes(self):
        eg = EGraph()
        a = eg.add_term(parse("(+ 1 2)"))
        b = eg.add_term(parse("(+ 1 2)"))
        assert eg.find(a) == eg.find(b)

    def test_distinct_terms_distinct_classes(self):
        eg = EGraph()
        a = eg.add_term(parse("(+ 1 2)"))
        b = eg.add_term(parse("(+ 2 1)"))
        assert eg.find(a) != eg.find(b)

    def test_subterms_get_classes(self):
        eg = EGraph()
        eg.add_term(parse("(+ (Get a 0) 2)"))
        assert eg.lookup_term(parse("(Get a 0)")) is not None
        assert eg.lookup_term(parse("2")) is not None

    def test_num_nodes_and_classes(self):
        eg = EGraph()
        eg.add_term(parse("(+ 1 2)"))
        # Nodes: 1, 2, (+ 1 2); plus Num/Symbol leaves counted once each.
        assert eg.num_classes == 3
        assert eg.num_nodes == 3

    def test_contains(self):
        eg = EGraph()
        eg.add_term(parse("(* (Get a 0) 3)"))
        assert parse("(Get a 0)") in eg
        assert parse("(Get a 1)") not in eg

    def test_version_monotone(self):
        eg = EGraph()
        v0 = eg.version
        eg.add_term(parse("(+ 1 2)"))
        assert eg.version == v0 + 3
        eg.add_term(parse("(+ 1 2)"))  # fully memoized
        assert eg.version == v0 + 3


class TestUnionRebuild:
    def test_union_then_find(self):
        eg = EGraph()
        a = eg.add_term(parse("(+ x 0)"))
        b = eg.add_term(parse("x"))
        assert eg.union(a, b)
        eg.rebuild()
        assert eg.find(a) == eg.find(b)

    def test_union_same_class_returns_false(self):
        eg = EGraph()
        a = eg.add_term(parse("x"))
        assert not eg.union(a, a)

    def test_congruence_propagates_upward(self):
        """If x == y then f(x) == f(y) after rebuilding."""
        eg = EGraph()
        fx = eg.add_term(parse("(neg x)"))
        fy = eg.add_term(parse("(neg y)"))
        x = eg.add_term(parse("x"))
        y = eg.add_term(parse("y"))
        assert eg.find(fx) != eg.find(fy)
        eg.union(x, y)
        eg.rebuild()
        assert eg.find(fx) == eg.find(fy)

    def test_congruence_cascades(self):
        """Congruence closure is transitive through layers."""
        eg = EGraph()
        ffx = eg.add_term(parse("(neg (neg x))"))
        ffy = eg.add_term(parse("(neg (neg y))"))
        eg.union(eg.add_term(parse("x")), eg.add_term(parse("y")))
        eg.rebuild()
        assert eg.find(ffx) == eg.find(ffy)

    def test_union_merges_node_lists(self):
        eg = EGraph()
        a = eg.add_term(parse("(+ x 0)"))
        b = eg.add_term(parse("x"))
        eg.union(a, b)
        eg.rebuild()
        ops = {n.op for n in eg.nodes_of(a)}
        assert ops == {"+", "Symbol"}

    def test_equiv(self):
        eg = EGraph()
        a = eg.add_term(parse("(+ x 0)"))
        b = eg.add_term(parse("x"))
        assert not eg.equiv(parse("(+ x 0)"), parse("x"))
        eg.union(a, b)
        eg.rebuild()
        assert eg.equiv(parse("(+ x 0)"), parse("x"))

    def test_rebuild_dedupes_nodes_in_class(self):
        """After a union makes two nodes congruent, the surviving class
        stores the canonical node once."""
        eg = EGraph()
        na = eg.add_term(parse("(neg x)"))
        nb = eg.add_term(parse("(neg y)"))
        eg.union(eg.add_term(parse("x")), eg.add_term(parse("y")))
        eg.union(na, nb)
        eg.rebuild()
        nodes = eg.nodes_of(na)
        assert len(nodes) == len(set(nodes))
        assert len([n for n in nodes if n.op == "neg"]) == 1


class TestOpIndex:
    def test_classes_with_op_finds_all(self):
        eg = EGraph()
        eg.add_term(parse("(+ 1 2)"))
        eg.add_term(parse("(+ 3 4)"))
        eg.add_term(parse("(* 1 2)"))
        assert len(eg.classes_with_op("+")) == 2
        assert len(eg.classes_with_op("*")) == 1
        assert eg.classes_with_op("VecAdd") == []

    def test_index_survives_unions(self):
        eg = EGraph()
        a = eg.add_term(parse("(+ 1 2)"))
        b = eg.add_term(parse("(+ 3 4)"))
        eg.union(a, b)
        eg.rebuild()
        found = eg.classes_with_op("+")
        assert found == [eg.find(a)]

    def test_index_ids_are_canonical(self):
        eg = EGraph()
        a = eg.add_term(parse("(neg x)"))
        b = eg.add_term(parse("y"))
        eg.union(a, b)
        eg.rebuild()
        for cid in eg.classes_with_op("neg"):
            assert eg.find(cid) == cid


class TestLookup:
    def test_lookup_missing(self):
        eg = EGraph()
        assert eg.lookup_term(parse("(+ 1 2)")) is None
        one = eg.add_term(parse("1"))
        assert eg.lookup(ENode("+", (one, one))) is None

    def test_lookup_after_union_is_canonical(self):
        eg = EGraph()
        a = eg.add_term(parse("(+ x 0)"))
        b = eg.add_term(parse("x"))
        eg.union(a, b)
        eg.rebuild()
        assert eg.lookup_term(parse("(+ x 0)")) == eg.find(b)

    def test_dump_mentions_classes(self):
        eg = EGraph()
        eg.add_term(parse("(+ 1 2)"))
        text = eg.dump()
        assert "e0" in text and "+" in text
