"""Custom multiply–accumulate searcher (paper Section 3.3).

Without general commutativity of ``+``, a single pattern cannot fuse a
vector of sums into a ``VecMAC`` when the lanes disagree about operand
order or length (the paper's motivating 4-lane example).  This searcher
matches each lane independently against the pattern options

    (+ a (* b c))    (+ (* b c) a)    (- a (* b c))    (- (* b c) a)
    (* b c)          0

and combines the results into

    (VecMAC (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3) (Vec c0 c1 c2 c3))

mapping missing accumulators / zero lanes to the literal 0.  The
subtraction forms negate one operand (``a - b*c == a + (-b)*c``), which
lets sign-mixed reductions like quaternion products fuse; when a whole
operand vector ends up negated, the unary vectorization rule
subsequently hoists it into a single ``VecNeg``.

As the paper notes, these per-lane equivalences are *recomputed* on
every iteration instead of being persisted as AC facts in the e-graph
-- trading compute for the memory that full AC-saturation would
consume.

Like the binary vectorizer, a second candidate with the multiplication
operands of each lane sorted by the data-locality key is emitted so the
cost model can choose the single-array gather layout.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from ..egraph.egraph import EGraph, ENode
from ..egraph.rewrite import CustomRewrite, Match, Rewrite, SearchContext
from .vector import class_is_zero, operand_sort_key

__all__ = ["mac_rule"]


@dataclass(frozen=True)
class _LaneMac:
    """One lane's decomposition into ``acc + (±b) * c``.

    ``acc`` is ``None`` for bare products; a fully-zero lane has all
    three class ids ``None``.  ``negate_acc`` / ``negate_b`` record the
    subtraction forms.
    """

    acc: Optional[int]
    b: Optional[int]
    c: Optional[int]
    negate_acc: bool = False
    negate_b: bool = False


def _find_mul(egraph: EGraph, eclass_id: int) -> Optional[Tuple[int, int]]:
    """First ``(* b c)`` node in the class, if any."""
    for node in egraph.nodes_of(eclass_id):
        if node.op == "*":
            return node.children[0], node.children[1]
    return None


def _match_mac_lane(egraph: EGraph, lane: int) -> Optional[_LaneMac]:
    """Match one lane against the MAC pattern options, in priority
    order: additive forms, subtractive forms, bare product, zero."""
    for node in egraph.nodes_of(lane):
        if node.op == "+":
            left, right = node.children
            mul = _find_mul(egraph, right)
            if mul is not None:
                return _LaneMac(left, mul[0], mul[1])
            mul = _find_mul(egraph, left)
            if mul is not None:
                return _LaneMac(right, mul[0], mul[1])
        elif node.op == "-":
            left, right = node.children
            mul = _find_mul(egraph, right)
            if mul is not None:
                # a - b*c == a + (-b)*c
                return _LaneMac(left, mul[0], mul[1], negate_b=True)
            mul = _find_mul(egraph, left)
            if mul is not None:
                # b*c - a == (-a) + b*c
                return _LaneMac(right, mul[0], mul[1], negate_acc=True)
    mul = _find_mul(egraph, lane)
    if mul is not None:
        return _LaneMac(None, mul[0], mul[1])
    if class_is_zero(egraph, lane):
        return _LaneMac(None, None, None)
    return None


def mac_rule(width: int) -> Rewrite:
    """Fuse a width-lane ``Vec`` of sums-of-products into ``VecMAC``."""

    def searcher(egraph: EGraph, ctx: SearchContext) -> List[Match]:
        matches: List[Match] = []
        candidates = egraph.classes_with_op(
            "Vec", since=ctx.since, counters=ctx.counters
        )
        for root in candidates:
            for node in egraph.nodes_of(root):
                if node.op != "Vec" or len(node.children) != width:
                    continue
                matches.extend(_mac_matches_for(egraph, root, node))
        return matches

    return CustomRewrite(f"vec-mac-w{width}", searcher, tags=("mac", "vector"))


def _mac_matches_for(egraph: EGraph, root: int, node: ENode) -> List[Match]:
    lanes = node.children
    per_lane: List[_LaneMac] = []
    mul_lanes = 0
    for lane in lanes:
        found = _match_mac_lane(egraph, lane)
        if found is None:
            return []
        if found.b is not None:
            mul_lanes += 1
        per_lane.append(found)
    if mul_lanes == 0:
        return []

    def assemble(choice: List[_LaneMac]) -> Callable[[EGraph], int]:
        def build(eg: EGraph) -> int:
            zero = eg.add(ENode("Num", (), 0))

            def maybe_neg(cid: Optional[int], negate: bool) -> int:
                if cid is None:
                    return zero
                if negate:
                    return eg.add(ENode("neg", (cid,)))
                return cid

            accs = tuple(maybe_neg(l.acc, l.negate_acc) for l in choice)
            bs = tuple(maybe_neg(l.b, l.negate_b) for l in choice)
            cs = tuple(zero if l.c is None else l.c for l in choice)
            vec_acc = eg.add(ENode("Vec", accs))
            vec_b = eg.add(ENode("Vec", bs))
            vec_c = eg.add(ENode("Vec", cs))
            return eg.add(ENode("VecMAC", (vec_acc, vec_b, vec_c)))

        return build

    def dedup_key(choice: List[_LaneMac]) -> Tuple:
        # -2 marks zero-pad slots (negative => never a class id); the
        # negate flags ride along as booleans, which canonicalization
        # leaves untouched.
        flat: List = [root]
        for l in choice:
            flat.extend(
                (
                    -2 if l.acc is None else l.acc,
                    -2 if l.b is None else l.b,
                    -2 if l.c is None else l.c,
                    l.negate_acc,
                    l.negate_b,
                )
            )
        return tuple(flat)

    matches = [
        Match(root, assemble(per_lane), "vec-mac", dedup_key=dedup_key(per_lane))
    ]

    # Locality-sorted multiplication operands (x * y commutes; the
    # negation flag stays with the first operand either way, since
    # (-b)*c == b*(-c)).
    sorted_lanes: List[_LaneMac] = []
    for lane_match in per_lane:
        b, c = lane_match.b, lane_match.c
        if b is not None and c is not None:
            if operand_sort_key(egraph, c) < operand_sort_key(egraph, b):
                lane_match = replace(lane_match, b=c, c=b)
        sorted_lanes.append(lane_match)
    if sorted_lanes != per_lane:
        matches.append(
            Match(
                root,
                assemble(sorted_lanes),
                "vec-mac-sorted",
                dedup_key=dedup_key(sorted_lanes),
            )
        )
    return matches
