"""On-disk seed corpus and spec serialization.

A seed is one kernel specification that extended coverage at some
point; campaigns persist seeds so later runs (and CI nightlies) start
from accumulated interesting inputs rather than from scratch.  Seeds
serialize as small JSON documents -- array declarations plus the spec
term's s-expression -- keyed by a content hash, so re-adding an
existing seed is a no-op and two machines independently discovering
the same kernel converge on one file.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from ..dsl.parser import parse
from ..frontend.lift import ArrayDecl, Spec

__all__ = [
    "SEED_SCHEMA",
    "spec_to_json",
    "spec_from_json",
    "spec_key",
    "Corpus",
]

SEED_SCHEMA = "conformance_seed/v1"


def _shape_to_json(shape):
    return list(shape) if isinstance(shape, tuple) else shape


def _shape_from_json(shape):
    return tuple(shape) if isinstance(shape, list) else int(shape)


def spec_to_json(spec: Spec) -> Dict:
    """Serialize a spec losslessly (decls + term s-expression)."""
    return {
        "schema": SEED_SCHEMA,
        "name": spec.name,
        "inputs": [[d.name, _shape_to_json(d.shape)] for d in spec.inputs],
        "outputs": [[d.name, _shape_to_json(d.shape)] for d in spec.outputs],
        "term": spec.term.to_sexpr(),
    }


def spec_from_json(payload: Dict) -> Spec:
    if payload.get("schema") != SEED_SCHEMA:
        raise ValueError(
            f"seed schema mismatch: {payload.get('schema')!r} != {SEED_SCHEMA!r}"
        )
    return Spec(
        name=str(payload["name"]),
        inputs=tuple(
            ArrayDecl(n, _shape_from_json(s)) for n, s in payload["inputs"]
        ),
        outputs=tuple(
            ArrayDecl(n, _shape_from_json(s)) for n, s in payload["outputs"]
        ),
        term=parse(payload["term"]),
    )


def spec_key(spec: Spec) -> str:
    """Content hash of a spec (name excluded: same kernel, same key)."""
    payload = {
        "inputs": [[d.name, _shape_to_json(d.shape)] for d in spec.inputs],
        "outputs": [[d.name, _shape_to_json(d.shape)] for d in spec.outputs],
        "term": spec.term.to_sexpr(),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class Corpus:
    """A set of seed specs, optionally mirrored to a directory.

    In-memory order is insertion order (deterministic for a fixed
    campaign); loading from disk sorts by key so two machines with the
    same files see the same order.  ``root=None`` keeps the corpus
    memory-only (unit tests, throwaway campaigns).
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root
        self._seeds: Dict[str, Spec] = {}
        if root is not None:
            os.makedirs(root, exist_ok=True)
            self._load()

    def _load(self) -> None:
        assert self.root is not None
        for entry in sorted(os.listdir(self.root)):
            if not entry.endswith(".json"):
                continue
            path = os.path.join(self.root, entry)
            try:
                with open(path) as handle:
                    spec = spec_from_json(json.load(handle))
            except (ValueError, KeyError, json.JSONDecodeError):
                # A corrupt seed must not kill the campaign; skip it.
                continue
            self._seeds.setdefault(spec_key(spec), spec)

    # -- mutation ------------------------------------------------------

    def add(self, spec: Spec) -> Tuple[str, bool]:
        """Add a seed; returns (key, was_new).  New seeds are written
        to disk immediately (atomic rename) when the corpus is rooted."""
        key = spec_key(spec)
        if key in self._seeds:
            return key, False
        self._seeds[key] = spec
        if self.root is not None:
            path = os.path.join(self.root, f"{key}.json")
            tmp = path + ".tmp"
            with open(tmp, "w") as handle:
                json.dump(spec_to_json(spec), handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        return key, True

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._seeds)

    def __contains__(self, spec: Spec) -> bool:
        return spec_key(spec) in self._seeds

    def seeds(self) -> List[Spec]:
        return list(self._seeds.values())

    def keys(self) -> List[str]:
        return list(self._seeds.keys())
