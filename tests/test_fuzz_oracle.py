"""Tests for the differential-fuzzing correctness oracle.

The unit suite runs a moderate deterministic campaign (the full
200-kernel smoke run lives in CI's fuzz-smoke job), checks the
generator's envelope, and -- crucially -- proves the oracle can
actually *detect* a miscompile by feeding it deliberately mismatched
artifacts.
"""

import copy
import random

import pytest

from repro.compiler import CompileOptions, compile_spec
from repro.dsl.ast import Term, get, lst, num
from repro.frontend.lift import ArrayDecl, Spec
from repro.validation.fuzz import (
    FuzzDivergence,
    check_result,
    random_spec,
    render_fuzz_report,
    run_fuzz,
    smoke_options,
)

CAMPAIGN = 40  # moderate unit-suite size; CI smoke runs >= 200


# ----------------------------------------------------------------------
# Generator envelope
# ----------------------------------------------------------------------


class TestRandomSpec:
    def test_shapes_stay_in_envelope(self):
        rng = random.Random(7)
        for index in range(50):
            spec = random_spec(rng, index)
            assert 1 <= len(spec.inputs) <= 2
            assert all(1 <= d.length <= 6 for d in spec.inputs)
            assert spec.outputs[0].name == "out"
            assert 1 <= spec.n_outputs <= 6
            assert len(spec.term.args) == spec.n_outputs

    def test_generation_is_deterministic(self):
        a = [random_spec(random.Random(3), i).term.to_sexpr() for i in range(20)]
        b = [random_spec(random.Random(3), i).term.to_sexpr() for i in range(20)]
        # Note: a fresh Random(3) per call makes each pair identical.
        assert a == b

    def test_specs_exhibit_sharing(self):
        """The pool-based generator must produce DAG sharing at least
        sometimes -- that is what LVN and memoization exist for."""
        rng = random.Random(11)
        shared = 0
        for index in range(30):
            spec = random_spec(rng, index, max_outputs=6, max_depth=3)
            seen = set()

            def walk(term):
                nonlocal shared
                if id(term) in seen and term.args:
                    shared += 1
                seen.add(id(term))
                for arg in term.args:
                    walk(arg)

            walk(spec.term)
        assert shared > 0


# ----------------------------------------------------------------------
# Campaign behavior
# ----------------------------------------------------------------------


class TestCampaign:
    def test_moderate_campaign_has_no_divergences(self):
        report = run_fuzz(count=CAMPAIGN, seed=1)
        assert report.ok
        assert report.generated == CAMPAIGN
        assert report.compiled == CAMPAIGN
        assert report.compile_failures == []
        assert report.checked_trials == CAMPAIGN * 3
        assert not report.truncated

    def test_campaign_is_deterministic(self):
        a = run_fuzz(count=10, seed=5)
        b = run_fuzz(count=10, seed=5)
        assert (a.compiled, a.degraded, len(a.divergences)) == (
            b.compiled, b.degraded, len(b.divergences)
        )

    def test_time_budget_truncation_is_reported(self):
        report = run_fuzz(count=10_000, seed=2, time_budget=0.5)
        assert report.truncated
        assert report.generated < 10_000
        assert "TRUNCATED" in render_fuzz_report(report)

    def test_compile_failure_recorded_not_fatal(self, monkeypatch):
        import repro.validation.fuzz as fuzz_mod
        calls = {"n": 0}
        real = fuzz_mod.compile_spec

        def flaky(spec, options):
            calls["n"] += 1
            if calls["n"] == 2:
                raise MemoryError("injected compiler OOM")
            return real(spec, options)

        monkeypatch.setattr(fuzz_mod, "compile_spec", flaky)
        report = run_fuzz(count=4, seed=3)
        assert report.compiled == 3
        assert len(report.compile_failures) == 1
        assert "MemoryError" in report.compile_failures[0][1]
        assert report.ok  # a compile failure is not a divergence

    def test_report_rendering(self):
        report = run_fuzz(count=5, seed=4)
        text = render_fuzz_report(report)
        assert "VERDICT: OK" in text
        assert "divergences: 0" in text


# ----------------------------------------------------------------------
# The oracle actually detects miscompiles
# ----------------------------------------------------------------------


def _tiny_spec(offset: float = 0.0) -> Spec:
    term = lst(Term("+", (get("in0", 0), num(offset))))
    return Spec(
        name=f"tamper-{offset}",
        inputs=(ArrayDecl("in0", 2),),
        outputs=(ArrayDecl("out", 1),),
        term=term,
    )


class TestDetection:
    OPTIONS = CompileOptions(
        time_limit=1.0, node_limit=4_000, iter_limit=8, validate=False
    )

    def test_wrong_optimized_term_is_an_extraction_divergence(self):
        spec = _tiny_spec(0.0)
        result = copy.copy(compile_spec(spec, self.OPTIONS))
        # Tamper: pretend extraction picked x+1 instead of x+0.
        result.optimized = _tiny_spec(1.0).term
        divergences = check_result(spec, result, random.Random(0))
        assert divergences
        assert all(isinstance(d, FuzzDivergence) for d in divergences)
        assert "extraction" in {d.stage for d in divergences}

    def test_wrong_program_is_a_backend_divergence(self):
        spec = _tiny_spec(0.0)
        good = compile_spec(spec, self.OPTIONS)
        bad = compile_spec(_tiny_spec(1.0), self.OPTIONS)
        result = copy.copy(good)
        # Tamper: the lowered program computes a different kernel.
        result.program = bad.program
        divergences = check_result(spec, result, random.Random(0))
        assert divergences
        assert {d.stage for d in divergences} == {"backend"}
        div = divergences[0]
        assert abs(div.expected - div.actual) > 0.5  # off by the +1
        assert div.spec_sexpr != ""

    def test_divergence_fails_the_report(self, monkeypatch):
        import repro.validation.fuzz as fuzz_mod
        real = fuzz_mod.check_result

        def tampering_check(spec, result, rng, trials=3, tolerance=1e-5):
            tampered = copy.copy(result)
            tampered.optimized = Term(
                "+", (result.optimized, num(1.0))
            )  # wrong shape on purpose -- force disagreement
            try:
                return real(spec, tampered, rng, trials, tolerance)
            except Exception:
                # Shape mismatch may raise instead; fall back to a real
                # check with a zero tolerance to force divergences.
                return real(spec, result, rng, trials, -1.0)

        monkeypatch.setattr(fuzz_mod, "check_result", tampering_check)
        report = run_fuzz(count=3, seed=6)
        assert not report.ok
        assert "DIVERGENCE DETECTED" in render_fuzz_report(report)

    def test_smoke_options_are_tiny(self):
        options = smoke_options(seed=9)
        assert options.time_limit <= 1.0
        assert options.node_limit <= 8_000
        assert options.seed == 9
        assert not options.validate
