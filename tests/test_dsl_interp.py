"""Unit tests for the concrete DSL interpreter (repro.dsl.interp)."""

import time

import pytest

from repro.dsl import EvalError, evaluate, evaluate_output, parse
from repro.dsl.ast import Term, add, mul, num


ENV = {"a": [1.0, 2.0, 3.0, 4.0], "b": [10.0, 20.0, 30.0, 40.0], "s": 5.0}


class TestScalar:
    def test_num(self):
        assert evaluate(parse("7"), {}) == 7.0

    def test_get(self):
        assert evaluate(parse("(Get a 2)"), ENV) == 3.0

    def test_scalar_symbol(self):
        assert evaluate(parse("s"), ENV) == 5.0

    def test_arithmetic(self):
        assert evaluate(parse("(+ (* 2 3) (- 10 4))"), {}) == 12.0

    def test_division(self):
        assert evaluate(parse("(/ 7 2)"), {}) == 3.5

    def test_neg_sqrt_sgn(self):
        assert evaluate(parse("(neg 3)"), {}) == -3.0
        assert evaluate(parse("(sqrt 9)"), {}) == 3.0
        assert evaluate(parse("(sgn -7)"), {}) == -1.0
        assert evaluate(parse("(sgn 0)"), {}) == 0.0

    def test_call_with_table(self):
        t = parse("(square 3)")
        assert evaluate(t, {}, {"square": lambda x: x * x}) == 9.0

    def test_call_without_table_raises(self):
        with pytest.raises(EvalError):
            evaluate(parse("(square 3)"), {})

    def test_unbound_array(self):
        with pytest.raises(EvalError):
            evaluate(parse("(Get zz 0)"), ENV)

    def test_get_out_of_range(self):
        with pytest.raises(EvalError):
            evaluate(parse("(Get a 99)"), ENV)

    def test_array_used_as_scalar(self):
        with pytest.raises(EvalError):
            evaluate(parse("a"), ENV)

    def test_scalar_used_as_array(self):
        with pytest.raises(EvalError):
            evaluate(parse("(Get s 0)"), ENV)


class TestVector:
    def test_vec(self):
        assert evaluate(parse("(Vec 1 2 3)"), {}) == [1.0, 2.0, 3.0]

    def test_concat(self):
        assert evaluate(parse("(Concat (Vec 1 2) (Vec 3 4))"), {}) == [1, 2, 3, 4]

    def test_vecadd(self):
        t = parse("(VecAdd (Vec (Get a 0) (Get a 1)) (Vec (Get b 0) (Get b 1)))")
        assert evaluate(t, ENV) == [11.0, 22.0]

    def test_vecminus_vecmul_vecdiv(self):
        assert evaluate(parse("(VecMinus (Vec 5 6) (Vec 1 2))"), {}) == [4, 4]
        assert evaluate(parse("(VecMul (Vec 2 3) (Vec 4 5))"), {}) == [8, 15]
        assert evaluate(parse("(VecDiv (Vec 8 9) (Vec 2 3))"), {}) == [4, 3]

    def test_vecmac(self):
        t = parse("(VecMAC (Vec 1 1) (Vec 2 3) (Vec 10 10))")
        assert evaluate(t, {}) == [21.0, 31.0]

    def test_vec_unary(self):
        assert evaluate(parse("(VecNeg (Vec 1 -2))"), {}) == [-1.0, 2.0]
        assert evaluate(parse("(VecSqrt (Vec 4 9))"), {}) == [2.0, 3.0]
        assert evaluate(parse("(VecSgn (Vec -3 5))"), {}) == [-1.0, 1.0]

    def test_lane_mismatch(self):
        with pytest.raises(EvalError):
            evaluate(parse("(VecAdd (Vec 1 2) (Vec 1 2 3))"), {})

    def test_scalar_op_on_vector_position_rejected(self):
        with pytest.raises(EvalError):
            evaluate(Term("VecAdd", (num(1), num(2))), {})


class TestList:
    def test_list_of_scalars(self):
        assert evaluate(parse("(List 1 (+ 1 1) 3)"), {}) == [1.0, 2.0, 3.0]

    def test_list_flattens_vectors(self):
        t = parse("(List (VecAdd (Vec 1 2) (Vec 3 4)) 9)")
        assert evaluate(t, {}) == [4.0, 6.0, 9.0]

    def test_evaluate_output_scalar(self):
        assert evaluate_output(parse("(+ 1 2)"), {}) == [3.0]

    def test_evaluate_output_vector(self):
        assert evaluate_output(parse("(Vec 1 2)"), {}) == [1.0, 2.0]


class TestSharing:
    def test_deep_shared_dag_is_fast(self):
        """Without memoization this is 2^40 work; with it, linear."""
        t = parse("(Get a 0)")
        for _ in range(40):
            t = add(t, t)
        start = time.perf_counter()
        value = evaluate(t, ENV)
        assert time.perf_counter() - start < 1.0
        assert value == 2.0 ** 40
