"""Fault-injection tests for the degradation ladder and sweep resilience.

Each test breaks one pipeline stage on purpose -- a crashing rewrite
rule, a lowering backend that rejects vector terms, a validator that
raises -- and asserts the compiler still produces a runnable (and
correct) kernel, with the failure recorded in the diagnostics instead
of silently swallowed or fatally raised.
"""

import dataclasses
import math
import tracemalloc

import pytest

from tests.conftest import run_and_compare
from repro.compiler import CompileOptions, compile_spec
from repro.costs import DiospyrosCostModel
from repro.egraph import CustomRewrite, Match
from repro.errors import LoweringError, SaturationError, ValidationError
from repro.evaluation.common import (
    Budget,
    SweepError,
    compile_kernel_resilient,
)
from repro.evaluation.figure5 import render_figure5, run_figure5
from repro.kernels import make_matmul, table1_kernels
from repro.validation.validate import validate as real_validate

FAST = CompileOptions(time_limit=5.0, node_limit=30_000, iter_limit=25, validate=False)


@pytest.fixture(scope="module")
def kernel():
    return make_matmul(2, 2, 2)


def _options(**overrides):
    return dataclasses.replace(FAST, **overrides)


def _crash_on_second_search():
    """A rule whose searcher lets iteration 0 proceed, then raises --
    so the crash hits an e-graph that already holds useful rewrites."""
    calls = {"n": 0}

    def searcher(eg):
        calls["n"] += 1
        if calls["n"] >= 2:
            raise RuntimeError("injected searcher crash")
        return iter(())

    return CustomRewrite("inject-search-crash", searcher)


def _crashing_applier():
    def bad_build(e):
        raise RuntimeError("injected applier crash")

    def searcher(eg):
        for cid in list(eg.classes_with_op("+"))[:1]:
            yield Match(cid, bad_build)

    return CustomRewrite("inject-apply-crash", searcher)


def _has_vec(term):
    return term.op.startswith("Vec") or any(_has_vec(a) for a in term.args)


# ----------------------------------------------------------------------
# Rung 1: saturation crashes
# ----------------------------------------------------------------------


class TestSaturationCrash:
    def test_searcher_crash_yields_correct_kernel(self, kernel):
        options = _options(extra_rules=(_crash_on_second_search(),))
        result = compile_spec(kernel.spec(), options)
        assert result.degraded
        assert result.report.errored
        assert result.report.failed_rule == "inject-search-crash"
        assert [d.stage for d in result.diagnostics.degradations] == ["saturation"]
        run_and_compare(kernel, result.program)

    def test_searcher_crash_with_checkpoint(self, kernel):
        options = _options(
            extra_rules=(_crash_on_second_search(),), checkpoint_egraph=True
        )
        result = compile_spec(kernel.spec(), options)
        assert result.degraded and result.report.errored
        run_and_compare(kernel, result.program)

    def test_applier_crash_yields_correct_kernel(self, kernel):
        options = _options(extra_rules=(_crashing_applier(),))
        result = compile_spec(kernel.spec(), options)
        assert result.degraded and result.report.errored
        assert result.report.failed_rule == "inject-apply-crash"
        run_and_compare(kernel, result.program)

    def test_fault_tolerance_off_raises_staged_error(self, kernel):
        options = _options(
            extra_rules=(_crash_on_second_search(),), fault_tolerance=False
        )
        with pytest.raises(SaturationError) as exc_info:
            compile_spec(kernel.spec(), options)
        assert exc_info.value.stage == "saturation"
        assert exc_info.value.kernel == kernel.name
        assert exc_info.value.partial["report"].errored

    def test_tracemalloc_stopped_when_stage_raises(self, kernel):
        """The seed leaked the tracemalloc trace on any stage failure."""
        options = _options(
            extra_rules=(_crash_on_second_search(),),
            fault_tolerance=False,
            track_memory=True,
        )
        with pytest.raises(SaturationError):
            compile_spec(kernel.spec(), options)
        assert not tracemalloc.is_tracing()


# ----------------------------------------------------------------------
# Rungs 2/3: extraction and lowering fallbacks
# ----------------------------------------------------------------------


class TestLoweringFallback:
    def test_vector_lowering_failure_falls_back_to_scalar(self, kernel, monkeypatch):
        """A backend that rejects vector terms forfeits vectorization
        but still emits a correct scalar kernel."""
        import repro.compiler as compiler_mod
        real_lower = compiler_mod.lower_spec_program

        def flaky_lower(spec, term, *args, **kwargs):
            if _has_vec(term):
                raise RuntimeError("injected vector lowering failure")
            return real_lower(spec, term, *args, **kwargs)

        monkeypatch.setattr(compiler_mod, "lower_spec_program", flaky_lower)
        result = compile_spec(kernel.spec(), _options())
        assert result.degraded
        assert "lowering" in [d.stage for d in result.diagnostics.degradations]
        assert not _has_vec(result.optimized)
        run_and_compare(kernel, result.program)

    def test_total_lowering_failure_uses_spec_term(self, kernel, monkeypatch):
        """Only the unrewritten spec term lowers: the last rung still
        produces runnable IR, flagged degraded with infinite cost."""
        import repro.compiler as compiler_mod
        spec = kernel.spec()
        real_lower = compiler_mod.lower_spec_program

        def only_spec_lowers(spec_arg, term, *args, **kwargs):
            if term is not spec.term:
                raise RuntimeError("injected lowering failure")
            return real_lower(spec_arg, term, *args, **kwargs)

        monkeypatch.setattr(compiler_mod, "lower_spec_program", only_spec_lowers)
        result = compile_spec(spec, _options())
        assert result.degraded
        assert result.optimized is spec.term
        assert math.isinf(result.cost)
        run_and_compare(kernel, result.program)

    def test_unloweable_spec_always_raises(self, kernel, monkeypatch):
        """When even the spec term cannot lower there is nothing to
        degrade to: LoweringError propagates despite fault tolerance."""
        import repro.compiler as compiler_mod

        def never_lowers(*args, **kwargs):
            raise RuntimeError("injected lowering failure")

        monkeypatch.setattr(compiler_mod, "lower_spec_program", never_lowers)
        with pytest.raises(LoweringError) as exc_info:
            compile_spec(kernel.spec(), _options())
        assert exc_info.value.stage == "lowering"


class TestExtractionFallback:
    def test_vector_cost_failure_falls_back_to_scalar_model(self, kernel, monkeypatch):
        import repro.compiler as compiler_mod
        real_extractor = compiler_mod.Extractor

        class FlakyExtractor:
            def __init__(self, egraph, cost_model):
                if isinstance(cost_model, DiospyrosCostModel):
                    raise RuntimeError("injected extraction failure")
                self._inner = real_extractor(egraph, cost_model)

            def extract(self, root):
                return self._inner.extract(root)

        monkeypatch.setattr(compiler_mod, "Extractor", FlakyExtractor)
        result = compile_spec(kernel.spec(), _options())
        assert result.degraded
        stages = [d.stage for d in result.diagnostics.degradations]
        assert "extraction" in stages
        assert not _has_vec(result.optimized)
        run_and_compare(kernel, result.program)


class TestCandidateSelection:
    def test_forfeiting_candidate_is_recorded_not_silent(self, kernel, monkeypatch):
        """Satellite fix: _pick_candidate swallows ONLY lowering-stage
        failures, and records them in the diagnostics."""
        import repro.compiler as compiler_mod
        real_lower = compiler_mod.lower_spec_program

        def scalar_candidates_fail(spec, term, *args, **kwargs):
            if not _has_vec(term):
                raise RuntimeError("injected scalar candidate failure")
            return real_lower(spec, term, *args, **kwargs)

        monkeypatch.setattr(compiler_mod, "lower_spec_program", scalar_candidates_fail)
        result = compile_spec(kernel.spec(), _options(select_best_candidate=True))
        # The scalar alternative forfeited; the vector extraction won.
        assert _has_vec(result.optimized)
        assert any(
            "candidate selection" in s for s in result.diagnostics.swallowed
        )
        assert not result.degraded  # a forfeit is not a degradation
        run_and_compare(kernel, result.program)

    def test_non_lowering_failure_degrades_instead(self, kernel, monkeypatch):
        """A cost-model crash inside candidate selection is NOT a
        forfeit: it degrades (or raises without fault tolerance)."""
        import repro.machine.config as machine_config

        def broken_cycles(program):
            raise RuntimeError("injected cost-model crash")

        monkeypatch.setattr(machine_config, "static_cycles", broken_cycles)
        result = compile_spec(kernel.spec(), _options(select_best_candidate=True))
        assert result.degraded
        assert any(
            "candidate selection failed" in d.reason
            for d in result.diagnostics.degradations
        )
        run_and_compare(kernel, result.program)


# ----------------------------------------------------------------------
# Rung 4: validation crashes
# ----------------------------------------------------------------------


class TestValidationCrash:
    def test_persistent_crash_degrades_unvalidated(self, kernel, monkeypatch):
        import repro.compiler as compiler_mod

        def always_crashes(spec, term, **kwargs):
            raise RuntimeError("injected validation crash")

        monkeypatch.setattr(compiler_mod, "validate", always_crashes)
        result = compile_spec(kernel.spec(), _options(validate=True))
        assert result.validation is None
        assert result.diagnostics.unvalidated
        assert result.diagnostics.retries.get("validation") == 1
        assert result.degraded
        run_and_compare(kernel, result.program)

    def test_retry_with_escalated_budget_succeeds(self, kernel, monkeypatch):
        import repro.compiler as compiler_mod
        calls = {"n": 0}

        def flaky_validate(spec, term, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected transient validation crash")
            return real_validate(spec, term, **kwargs)

        monkeypatch.setattr(compiler_mod, "validate", flaky_validate)
        options = _options(validate=True, validation_retry_trials=16)
        result = compile_spec(kernel.spec(), options)
        assert result.validation is not None
        assert result.validated
        assert result.diagnostics.retries.get("validation") == 1
        assert not result.diagnostics.unvalidated
        assert not result.degraded

    def test_fault_tolerance_off_raises(self, kernel, monkeypatch):
        import repro.compiler as compiler_mod

        def always_crashes(spec, term, **kwargs):
            raise RuntimeError("injected validation crash")

        monkeypatch.setattr(compiler_mod, "validate", always_crashes)
        options = _options(validate=True, fault_tolerance=False)
        with pytest.raises(ValidationError):
            compile_spec(kernel.spec(), options)


# ----------------------------------------------------------------------
# Sweep resilience
# ----------------------------------------------------------------------

TINY_BUDGET = Budget(paper_seconds=180, seconds=2.0, node_limit=20_000, iter_limit=15)


@pytest.fixture(scope="module")
def cached_result(kernel):
    """One real, cheap compilation reused by the sweep fakes."""
    return compile_spec(kernel.spec(), FAST)


class TestCompileKernelResilient:
    def test_resource_failure_retried_at_halved_budget(
        self, kernel, cached_result, monkeypatch
    ):
        import repro.evaluation.common as common_mod
        budgets = []

        def fake(kernel_arg, budget=TINY_BUDGET, **overrides):
            budgets.append(budget.node_limit)
            if len(budgets) == 1:
                raise MemoryError("out of memory")
            return cached_result

        monkeypatch.setattr(common_mod, "compile_kernel_with_budget", fake)
        errors = []
        result = compile_kernel_resilient(kernel, TINY_BUDGET, errors=errors)
        assert result is cached_result
        assert errors == []
        assert budgets == [20_000, 10_000]

    def test_node_limit_text_counts_as_resource_failure(
        self, kernel, monkeypatch
    ):
        import repro.evaluation.common as common_mod
        calls = {"n": 0}

        def fake(kernel_arg, budget=TINY_BUDGET, **overrides):
            calls["n"] += 1
            raise SaturationError("node limit exceeded", kernel=kernel_arg.name)

        monkeypatch.setattr(common_mod, "compile_kernel_with_budget", fake)
        errors = []
        assert compile_kernel_resilient(kernel, TINY_BUDGET, errors=errors) is None
        assert calls["n"] == 2  # one retry
        assert len(errors) == 1
        assert errors[0].retried
        assert errors[0].stage == "saturation"

    def test_logic_failure_not_retried(self, kernel, monkeypatch):
        import repro.evaluation.common as common_mod
        calls = {"n": 0}

        def fake(kernel_arg, budget=TINY_BUDGET, **overrides):
            calls["n"] += 1
            raise ValueError("a logic bug")

        monkeypatch.setattr(common_mod, "compile_kernel_with_budget", fake)
        errors = []
        assert compile_kernel_resilient(kernel, TINY_BUDGET, errors=errors) is None
        assert calls["n"] == 1
        assert len(errors) == 1
        assert not errors[0].retried
        assert errors[0].stage == "compile"
        assert "ValueError" in errors[0].error


class TestSweepWithInjectedFailures:
    #: Three of the 21 kernels fail; the sweep must survive all three.
    FAILING = ("matmul-4x4-4x4", "2dconv-3x3-3x3", "qrdecomp-3x3")

    def test_figure5_sweep_survives_and_aggregates(
        self, cached_result, monkeypatch
    ):
        import repro.evaluation.common as common_mod
        import repro.evaluation.figure5 as figure5_mod

        def fake_compile(kernel_arg, budget=TINY_BUDGET, **overrides):
            if kernel_arg.name in self.FAILING:
                raise SaturationError(
                    "injected saturation crash", kernel=kernel_arg.name
                )
            return cached_result

        monkeypatch.setattr(common_mod, "compile_kernel_with_budget", fake_compile)
        monkeypatch.setattr(
            figure5_mod, "measure", lambda program, kernel, seed=0: (100.0, True)
        )

        kernels = table1_kernels()
        assert len(kernels) == 21
        result = run_figure5(TINY_BUDGET, kernels)

        assert len(result.rows) == len(kernels) - len(self.FAILING)
        assert len(result.errors) == 3
        assert sorted(e.kernel for e in result.errors) == sorted(self.FAILING)
        assert all(e.stage == "saturation" for e in result.errors)
        assert math.isfinite(result.geomean_vs_best)

        rendered = render_figure5(result, TINY_BUDGET)
        assert "surviving kernel(s)" in rendered
        assert "Failed kernels (3):" in rendered
        for name in self.FAILING:
            assert name in rendered

    def test_sweep_error_rendering(self):
        error = SweepError(
            kernel="matmul-4x4-4x4",
            stage="saturation",
            error="SaturationError: boom",
            elapsed=1.5,
            retried=True,
        )
        text = str(error)
        assert "matmul-4x4-4x4" in text
        assert "saturation" in text
        assert "halved-budget retry" in text
