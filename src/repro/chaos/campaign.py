"""Chaos campaign runner: fault-matrix x kernel grid, invariants after
every cell (DESIGN.md §11; ``repro chaos`` drives this).

A *cell* is one fault schedule (usually a single :class:`FaultSpec`,
sometimes a compound like "SIGKILL attempt 0 + corrupt the checkpoint
the retry reads") applied to one kernel's compile through a fresh
:class:`~repro.service.CompileService`.  After the cell finishes --
result, typed error, or anything else -- the invariant catalog
(:mod:`repro.chaos.invariants`) is evaluated against the cell's cache
directory, breaker log, wall-clock, and outcome.  All randomness is
pinned: the campaign seed derives every plan seed and compile seed via
:func:`repro.seeding.stable_seed`, so a red cell replays exactly.

This module imports the service stack and must be imported as
``repro.chaos.campaign`` (the package ``__init__`` stays a leaf; see
its docstring).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compiler import CompileOptions
from ..frontend.lift import Spec, lift
from ..observability import Observability
from ..seeding import stable_seed
from ..service import ArtifactCache, CompileService, RetryPolicy, WorkerLimits
from .inject import FaultPlan, FaultSpec, active_plan
from .invariants import (
    Violation,
    check_breaker_log,
    check_cache_integrity,
    check_ladder,
    check_phase_resume_identical,
    check_typed_error,
    check_wallclock,
)

__all__ = [
    "CampaignCell",
    "CellOutcome",
    "CampaignReport",
    "default_kernels",
    "default_matrix",
    "smoke_matrix",
    "run_campaign",
]


@dataclass
class CampaignCell:
    """One row of the fault matrix (crossed with every kernel)."""

    site: str
    action: str
    specs: Tuple[FaultSpec, ...]
    #: Run this cell's compiles in sandboxed worker processes.  Required
    #: for process-killing faults at worker seams; parent-seam and
    #: degradation-ladder faults run in-process for speed.
    isolate: bool = False
    #: Compile (and cache) the kernel once *before* installing the
    #: plan, so read-path faults have a real cache hit to corrupt.
    prime_cache: bool = False
    #: Per-cell CompileOptions overrides.
    options: Dict[str, Any] = field(default_factory=dict)
    #: Compile the kernel once in-process *without* the fault plan and
    #: require the faulted run's program to fingerprint identically
    #: (the ``phase-resume-identical`` invariant).
    verify_identical: bool = False

    @property
    def name(self) -> str:
        return f"{self.site}:{self.action}"


@dataclass
class CellOutcome:
    """What one (cell, kernel) run did and whether invariants held."""

    cell: str
    kernel: str
    site: str
    action: str
    ok: bool = False
    degraded: bool = False
    error_type: Optional[str] = None
    attempts: int = 0
    resumed_from: Optional[int] = None
    stop_reason: Optional[str] = None
    elapsed: float = 0.0
    #: Faults that actually fired (from ``FaultPlan.fired``).  A cell
    #: whose fault never fired still ran its invariants, but reports it
    #: so coverage gaps are visible instead of silently green.
    fired: List[Dict[str, Any]] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell": self.cell,
            "kernel": self.kernel,
            "site": self.site,
            "action": self.action,
            "ok": self.ok,
            "degraded": self.degraded,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "resumed_from": self.resumed_from,
            "stop_reason": self.stop_reason,
            "elapsed": round(self.elapsed, 3),
            "fired": self.fired,
            "violations": [v.to_dict() for v in self.violations],
        }


@dataclass
class CampaignReport:
    """Full campaign outcome (serialized to the CI artifact JSON)."""

    seed: int
    cells: List[CellOutcome] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def violations(self) -> List[Violation]:
        return [v for cell in self.cells for v in cell.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def fault_actions(self) -> List[str]:
        return sorted({c.action for c in self.cells})

    @property
    def kernels(self) -> List[str]:
        return sorted({c.kernel for c in self.cells})

    @property
    def fired_actions(self) -> List[str]:
        """Actions that actually fired at least once."""
        return sorted(
            {f["action"] for c in self.cells for f in c.fired}
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "elapsed": round(self.elapsed, 3),
            "fault_actions": self.fault_actions,
            "fired_actions": self.fired_actions,
            "kernels": self.kernels,
            "cells": [c.to_dict() for c in self.cells],
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        lines = [
            f"chaos campaign: seed {self.seed}, {len(self.cells)} cells "
            f"({len(self.fault_actions)} fault actions x "
            f"{len(self.kernels)} kernels), {self.elapsed:.1f}s"
        ]
        for cell in self.cells:
            status = "ok" if cell.ok else f"error={cell.error_type}"
            extras = []
            if cell.degraded:
                extras.append("degraded")
            if cell.attempts > 1:
                extras.append(f"attempts={cell.attempts}")
            if cell.resumed_from is not None:
                extras.append(f"resumed@{cell.resumed_from}")
            if not cell.fired:
                extras.append("fault-never-fired")
            suffix = (" [" + ", ".join(extras) + "]") if extras else ""
            lines.append(
                f"  {cell.cell} ({cell.kernel}): {status}, "
                f"{cell.elapsed:.2f}s{suffix}"
            )
            for violation in cell.violations:
                lines.append(f"    VIOLATION {violation}")
        lines.append(
            "RESULT: "
            + (
                "zero invariant violations"
                if self.ok
                else f"{len(self.violations)} INVARIANT VIOLATIONS"
            )
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Default grid
# ----------------------------------------------------------------------


def default_kernels() -> List[Spec]:
    """Three tiny, fast-saturating kernels exercising distinct shapes:
    a reduction, an elementwise multiply-add, and a mixed expression."""

    def dot2(a, b, out):
        out[0] = a[0] * b[0] + a[1] * b[1]

    def axpy2(a, b, out):
        for i in range(2):
            out[i] = a[i] * b[i] + a[i]

    def mix2(a, b, out):
        for i in range(2):
            out[i] = (a[i] + b[i]) * b[i]

    return [
        lift("dot2", dot2, [("a", 2), ("b", 2)], [("out", 1)]),
        lift("axpy2", axpy2, [("a", 2), ("b", 2)], [("out", 2)]),
        lift("mix2", mix2, [("a", 2), ("b", 2)], [("out", 2)]),
    ]


def default_matrix() -> List[CampaignCell]:
    """The full fault matrix: every registered seam, every applicable
    action family, including the compound crash-then-corrupt cell."""
    return [
        CampaignCell(
            "cache.read", "corrupt",
            (FaultSpec("cache.read", "corrupt"),), prime_cache=True,
        ),
        CampaignCell(
            "cache.read", "truncate",
            (FaultSpec("cache.read", "truncate"),), prime_cache=True,
        ),
        CampaignCell(
            "cache.write", "enospc", (FaultSpec("cache.write", "enospc"),),
        ),
        CampaignCell(
            "worker.spawn", "spawnfail",
            (FaultSpec("worker.spawn", "spawnfail"),), isolate=True,
        ),
        CampaignCell(
            "worker.result", "drop",
            (FaultSpec("worker.result", "drop"),), isolate=True,
        ),
        CampaignCell(
            "runner.iteration", "raise",
            (FaultSpec("runner.iteration", "raise", nth=2),),
        ),
        CampaignCell(
            "runner.iteration", "sigkill",
            (FaultSpec("runner.iteration", "sigkill", nth=3, attempts=(0,)),),
            isolate=True,
        ),
        CampaignCell(
            "runner.iteration", "sleep",
            (FaultSpec("runner.iteration", "sleep", seconds=2.0),),
            options={"time_limit": 0.75},
        ),
        CampaignCell(
            "runner.memory", "memtrip", (FaultSpec("runner.memory", "memtrip"),),
        ),
        CampaignCell(
            "checkpoint.write", "enospc",
            (FaultSpec("checkpoint.write", "enospc"),),
        ),
        CampaignCell(
            # Compound: the first worker is SIGKILLed mid-saturation,
            # then the retry finds its persisted checkpoint *corrupted*
            # -- recovery must degrade to a cold start, never crash.
            "checkpoint.read", "corrupt",
            (
                FaultSpec("runner.iteration", "sigkill", nth=3, attempts=(0,)),
                FaultSpec("checkpoint.read", "corrupt"),
            ),
            isolate=True,
        ),
        CampaignCell(
            # Phased-saturation resume drill: SIGKILL the worker while
            # phase 2 (vectorize) is saturating -- cumulative runner
            # iteration 4 lands inside phase 2 for every chaos kernel
            # (layout saturates in 2) -- then require the retry's
            # resumed compile to fingerprint identically to an
            # unfaulted run.  Phase checkpoints are keyed by plan
            # fingerprint + phase index + round, so the resume can
            # never replay a phase-1 checkpoint into the phase-2 graph.
            "phase.saturate", "sigkill",
            (FaultSpec("runner.iteration", "sigkill", nth=4, attempts=(0,)),),
            isolate=True,
            options={"phases": "on"},
            verify_identical=True,
        ),
        CampaignCell(
            "extract.start", "raise", (FaultSpec("extract.start", "raise"),),
        ),
        CampaignCell(
            "lower.start", "oserror", (FaultSpec("lower.start", "oserror"),),
        ),
        CampaignCell(
            "validate.lane", "raise",
            (FaultSpec("validate.lane", "raise"),),
            options={"validate": True},
        ),
    ]


def smoke_matrix() -> List[CampaignCell]:
    """A small CI-friendly subset: one cell per fault family, still
    covering >= 6 distinct actions and the checkpoint/resume path."""
    wanted = {
        ("cache.read", "corrupt"),
        ("cache.write", "enospc"),
        ("worker.result", "drop"),
        ("runner.iteration", "raise"),
        ("runner.iteration", "sigkill"),
        ("runner.iteration", "sleep"),
        ("runner.memory", "memtrip"),
        ("phase.saturate", "sigkill"),
    }
    return [c for c in default_matrix() if (c.site, c.action) in wanted]


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------

#: Base compile options for campaign cells: small budgets (the kernels
#: saturate in a handful of iterations), validation off except where a
#: cell turns it on, per-iteration checkpoints, recorder-only
#: observability for post-mortems.
_BASE_OPTIONS = dict(
    time_limit=5.0,
    node_limit=20_000,
    iter_limit=8,
    validate=False,
    checkpoint_stride=1,
)


def run_campaign(
    seed: int = 0,
    kernels: Optional[Sequence[Spec]] = None,
    matrix: Optional[Sequence[CampaignCell]] = None,
    cell_budget: float = 60.0,
    scratch_dir: Optional[str] = None,
    postmortems: bool = True,
) -> CampaignReport:
    """Sweep ``matrix`` x ``kernels`` and check every invariant.

    Deterministic given ``seed``: plan seeds, compile seeds, and retry
    backoffs (jitter zeroed) all derive from it.  ``cell_budget`` is
    the ``bounded-wallclock`` invariant's per-cell ceiling.
    """
    kernels = list(kernels) if kernels is not None else default_kernels()
    matrix = list(matrix) if matrix is not None else default_matrix()
    own_scratch = scratch_dir is None
    scratch = scratch_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    cache_root = os.path.join(scratch, "cache")
    ckpt_root = os.path.join(scratch, "checkpoints")
    report = CampaignReport(seed=seed)
    started = time.perf_counter()

    for cell in matrix:
        for spec in kernels:
            report.cells.append(
                _run_cell(
                    cell, spec, seed, cache_root, ckpt_root, cell_budget,
                    postmortems,
                )
            )

    report.elapsed = time.perf_counter() - started
    if own_scratch:
        import shutil

        shutil.rmtree(scratch, ignore_errors=True)
    return report


def _cell_options(cell: CampaignCell, spec: Spec, seed: int) -> CompileOptions:
    overrides = dict(_BASE_OPTIONS)
    overrides.update(cell.options)
    # A distinct differential seed per (cell, kernel) doubles as cache
    # isolation: the seed is part of the options fingerprint, so cells
    # never hit each other's entries -- only their own primed ones.
    overrides["seed"] = stable_seed(seed, "chaos-compile", cell.name, spec.name) % (
        1 << 31
    )
    overrides["observability"] = Observability.on(trace=False, metrics=False)
    return CompileOptions(**overrides)


def _run_cell(
    cell: CampaignCell,
    spec: Spec,
    seed: int,
    cache_root: str,
    ckpt_root: str,
    cell_budget: float,
    postmortems: bool,
) -> CellOutcome:
    cell_id = f"{cell.site}:{cell.action}:{spec.name}"
    outcome = CellOutcome(
        cell=cell_id, kernel=spec.name, site=cell.site, action=cell.action
    )
    options = _cell_options(cell, spec, seed)
    policy = RetryPolicy(
        max_attempts=3,
        backoff_base=0.01,
        backoff_jitter=0.0,
        shrink_factor=1.0,
    )
    service = CompileService(
        cache=ArtifactCache(cache_root),
        policy=policy,
        isolate=cell.isolate,
        limits=WorkerLimits(kill_timeout=max(cell_budget / 2.0, 20.0)),
        seed=seed,
        checkpoint_dir=ckpt_root,
    )
    if cell.prime_cache:
        service.compile_spec(spec, options)
    baseline_fingerprint = None
    if cell.verify_identical:
        # Unfaulted reference, compiled in-process with the same
        # options but no plan installed and no cache in the way.
        from ..compiler import compile_spec

        baseline_fingerprint = compile_spec(
            spec, _cell_options(cell, spec, seed)
        ).program.fingerprint()

    plan = FaultPlan(
        list(cell.specs), seed=stable_seed(seed, "chaos-plan", cell_id)
    )
    result = None
    error: Optional[BaseException] = None
    start = time.perf_counter()
    with active_plan(plan):
        try:
            result = service.compile_spec(spec, options)
        except BaseException as exc:  # noqa: BLE001 - judged by invariants
            error = exc
    outcome.elapsed = time.perf_counter() - start
    outcome.fired = list(plan.fired)
    outcome.ok = result is not None
    if result is not None:
        outcome.degraded = result.degraded
        outcome.attempts = result.diagnostics.attempts
        outcome.resumed_from = result.report.resumed_from
        outcome.stop_reason = result.report.stop_reason
    if error is not None:
        outcome.error_type = type(error).__name__
    if cell.isolate and not outcome.fired and outcome.attempts > 1:
        # Worker-seam faults fire inside the sandboxed subprocess, so
        # the parent plan's log stays empty; the retry the crash forced
        # is the observable evidence.  Record an inferred entry so
        # coverage reporting does not show a false gap.
        for fault in cell.specs:
            outcome.fired.append(
                {
                    "site": fault.site,
                    "action": fault.action,
                    "hit": None,
                    "attempt": 0,
                    "inferred": True,
                }
            )

    violations: List[Violation] = []
    violations += check_typed_error(cell_id, error)
    violations += check_ladder(cell_id, result, error)
    violations += check_wallclock(cell_id, outcome.elapsed, cell_budget)
    violations += check_cache_integrity(cell_id, service.cache)
    violations += check_breaker_log(
        cell_id, service.breaker_log, policy.strike_threshold
    )
    if cell.verify_identical:
        violations += check_phase_resume_identical(
            cell_id, result, baseline_fingerprint
        )
    if violations and postmortems:
        post = {
            "fired": list(plan.fired),
            "breaker_log": list(service.breaker_log),
            "service_stats": service.stats.summary(),
            "error": repr(error) if error is not None else None,
        }
        recorder = _recorder_dump(result, error)
        if recorder is not None:
            post["flight_recorder"] = recorder
        for violation in violations:
            violation.post_mortem.update(post)
    outcome.violations = violations
    return outcome


def _recorder_dump(result, error) -> Optional[Dict[str, Any]]:
    """The flight-recorder dump of the cell's compile, wherever it
    ended up (result, or a CompileError's partial artifacts)."""
    data = getattr(result, "observability", None)
    if data is None and error is not None:
        data = getattr(error, "partial", {}).get("observability")
    if data is None:
        return None
    return getattr(data, "recorder", None)
