"""Tests of the VLIW list scheduler (repro.machine.scheduler)."""

import pytest

from repro.backend import vir
from repro.backend.vir import Program
from repro.machine import fusion_g3, schedule, scheduled_cycles
from repro.machine.scheduler import DEFAULT_SLOTS, FunctionalUnit, unit_of


def straight(instrs, inputs=None, outputs=None):
    p = Program("t", inputs=inputs or {"a": 8, "b": 8}, outputs=outputs or {"out": 8})
    p.extend(instrs)
    return p


class TestUnits:
    def test_unit_classification(self):
        assert unit_of(vir.SLoad("s0", "a", 0)) == FunctionalUnit.MEMORY
        assert unit_of(vir.VStore("out", 0, "v0", 4)) == FunctionalUnit.MEMORY
        assert unit_of(vir.VMac("v0", "v1", "v2", "v3")) == FunctionalUnit.VECTOR
        assert unit_of(vir.VBin("+", "v0", "v1", "v2")) == FunctionalUnit.VECTOR
        assert unit_of(vir.VShuffle("v0", "v1", (0,) * 4)) == FunctionalUnit.MOVE
        assert unit_of(vir.SBin("+", "s0", "s1", "s2")) == FunctionalUnit.SCALAR


class TestSchedule:
    def test_independent_ops_pack_into_one_cycle(self):
        """A load, a scalar add, and a vector add with no dependencies
        issue in the same bundle."""
        p = straight([
            vir.SConst("s0", 1.0),
            vir.VConst("v0", (0.0,) * 4),
            vir.VLoad("v1", "a", 0),
        ])
        s = schedule(p)
        assert len(s.bundles[0]) >= 2
        assert s.length < s.sequential

    def test_dependent_chain_cannot_overlap(self):
        p = straight([
            vir.SConst("s0", 1.0),
            vir.SBin("+", "s1", "s0", "s0"),
            vir.SBin("+", "s2", "s1", "s1"),
            vir.SBin("+", "s3", "s2", "s2"),
        ])
        s = schedule(p)
        assert s.length == s.sequential  # pure chain: no ILP

    def test_unit_contention_serializes(self):
        """Four independent loads still take four cycles on one memory
        slot."""
        p = straight([vir.VLoad(f"v{i}", "a", 0) for i in range(4)])
        s = schedule(p)
        assert s.length == 4.0

    def test_latency_respected(self):
        """A dependent of a sqrt cannot issue before it completes."""
        machine = fusion_g3()
        p = straight([
            vir.SLoad("s0", "a", 0),
            vir.SUn("sqrt", "s1", "s0"),
            vir.SBin("+", "s2", "s1", "s1"),
        ])
        s = schedule(p, machine)
        assert s.length >= 1 + machine.cost("sun.sqrt") + 1

    def test_store_load_ordering_preserved(self):
        """A load after a store to the same array must not be hoisted
        above it (memory dependence)."""
        p = straight([
            vir.SConst("s0", 7.0),
            vir.SStore("out", 0, "s0"),
            vir.SLoad("s1", "out", 0),
            vir.SStore("out", 1, "s1"),
        ])
        s = schedule(p)
        flat = [i for bundle in s.bundles for i in bundle]
        store_pos = flat.index(p.instructions[1])
        load_pos = flat.index(p.instructions[2])
        assert store_pos < load_pos

    def test_rejects_control_flow(self):
        p = straight([vir.Label("x")])
        with pytest.raises(ValueError):
            schedule(p)

    def test_empty_program(self):
        s = schedule(straight([]))
        assert s.length == 0.0
        assert s.bundles == []

    def test_ilp_between_one_and_slot_count(self):
        from repro.compiler import CompileOptions, compile_spec
        from repro.kernels import make_matmul

        kernel = make_matmul(3, 3, 3)
        result = compile_spec(
            kernel.spec(), CompileOptions(time_limit=4, validate=False)
        )
        s = schedule(result.program)
        assert 1.0 <= s.ilp <= sum(DEFAULT_SLOTS.values())

    def test_scheduled_cycles_shortcut(self):
        p = straight([
            vir.VLoad("v0", "a", 0),
            vir.VLoad("v1", "b", 0),
            vir.VBin("+", "v2", "v0", "v1"),
            vir.VStore("out", 0, "v2", 4),
        ])
        assert scheduled_cycles(p) == schedule(p).length

    def test_schedule_contains_every_instruction_once(self):
        from repro.baselines import naive_fixed
        from repro.kernels import make_matmul

        program = naive_fixed(make_matmul(3, 3, 3))
        s = schedule(program)
        flat = [i for bundle in s.bundles for i in bundle]
        assert len(flat) == len(program.instructions)
        assert set(map(id, flat)) == set(map(id, program.instructions))
