"""Property-based tests of the gather planner and the validator's
bug-finding power.

1. Random ``Vec`` terms (arbitrary mixes of array reads, literals, and
   computed lanes over arrays of random lengths) must lower to IR that
   the simulator evaluates exactly like the interpreter -- this
   hammers the contiguous/shuffle/select/insert strategy selection.
2. Mutation testing: corrupting a correct vectorized program (index
   off-by-one, operand swap, dropped MAC) must be caught by
   translation validation -- the validator earns its place in the
   trusted computing base by rejecting, not just accepting.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.backend.lower import lower_term
from repro.dsl import evaluate_output
from repro.dsl.ast import Term, get, num
from repro.frontend.lift import ArrayDecl, Spec
from repro.machine import simulate
from repro.validation import validate

ARRAYS = {"a": 11, "b": 6, "t": 3}
ENV = {
    "a": [float(i) + 0.5 for i in range(11)],
    "b": [2.0 * i - 3.0 for i in range(6)],
    "t": [9.0, -1.0, 4.0],
}

_lane = st.one_of(
    st.integers(-3, 3).map(num),
    st.one_of(
        *[
            st.integers(0, length - 1).map(lambda i, n=name: get(n, i))
            for name, length in ARRAYS.items()
        ]
    ),
    # A computed lane: product of two reads.
    st.tuples(st.integers(0, 10), st.integers(0, 5)).map(
        lambda p: Term("*", (get("a", p[0]), get("b", p[1])))
    ),
)

_vecs = st.lists(_lane, min_size=4, max_size=4).map(lambda l: Term("Vec", tuple(l)))


class TestGatherPlans:
    @given(_vecs)
    @settings(max_examples=120, deadline=None)
    def test_lowered_vec_matches_interpreter(self, vec_term):
        program = lower_term(vec_term, dict(ARRAYS), 4)
        result = simulate(program, ENV)
        expected = evaluate_output(vec_term, ENV)
        assert result.output("out") == expected

    @given(st.lists(_vecs, min_size=2, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_concat_of_random_vecs(self, chunks):
        term = chunks[0]
        for chunk in chunks[1:]:
            term = Term("Concat", (chunk, term))
        program = lower_term(term, dict(ARRAYS), 4 * len(chunks))
        result = simulate(program, ENV)
        assert result.output("out") == evaluate_output(term, ENV)

    @given(_vecs, _vecs)
    @settings(max_examples=60, deadline=None)
    def test_vecmac_of_random_gathers(self, va, vb):
        zero = Term("Vec", (num(0),) * 4)
        term = Term("VecMAC", (zero, va, vb))
        program = lower_term(term, dict(ARRAYS), 4)
        result = simulate(program, ENV)
        expected = evaluate_output(term, ENV)
        for got, want in zip(result.output("out"), expected):
            assert abs(got - want) < 1e-9 * max(1.0, abs(want))


def _vadd_spec():
    elements = tuple(
        Term("+", (get("a", i), get("b", i))) for i in range(4)
    )
    return Spec(
        "vadd",
        (ArrayDecl("a", 11), ArrayDecl("b", 6)),
        (ArrayDecl("o", 4),),
        Term("List", elements),
    )


def _correct_program():
    return Term(
        "VecAdd",
        (
            Term("Vec", tuple(get("a", i) for i in range(4))),
            Term("Vec", tuple(get("b", i) for i in range(4))),
        ),
    )


class TestValidatorMutationTesting:
    def test_accepts_correct(self):
        assert validate(_vadd_spec(), _correct_program()).ok

    @given(st.integers(0, 3), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_rejects_index_mutations(self, lane, wrong_index):
        correct = _correct_program()
        b_lanes = list(correct.args[1].args)
        if b_lanes[lane] == get("b", wrong_index):
            return  # not a mutation
        b_lanes[lane] = get("b", wrong_index)
        mutated = Term("VecAdd", (correct.args[0], Term("Vec", tuple(b_lanes))))
        assert not validate(_vadd_spec(), mutated).ok

    @given(st.sampled_from(["VecMinus", "VecMul", "VecDiv"]))
    @settings(max_examples=10, deadline=None)
    def test_rejects_operator_mutations(self, wrong_op):
        correct = _correct_program()
        mutated = Term(wrong_op, correct.args)
        assert not validate(_vadd_spec(), mutated).ok

    def test_rejects_swapped_chunks(self):
        spec_elements = tuple(
            Term("+", (get("a", i), get("b", i))) for i in range(8)
        )
        spec = Spec(
            "vadd8",
            (ArrayDecl("a", 11), ArrayDecl("b", 6)),
            (ArrayDecl("o", 8),),
            Term("List", spec_elements),
        )

        def chunk(lo):
            return Term(
                "VecAdd",
                (
                    Term("Vec", tuple(get("a", i) for i in range(lo, lo + 4))),
                    Term("Vec", tuple(get("b", i % 6) for i in range(lo, lo + 4))),
                ),
            )

        swapped = Term("Concat", (chunk(4), chunk(0)))
        assert not validate(spec, swapped).ok
