"""Render one compile's observability data for humans.

Consumes the picklable :class:`repro.observability.config.ObservabilityData`
(never live sessions, so it also renders worker-shipped or
disk-loaded captures) and produces:

* :func:`render_text` -- a terminal summary: stage waterfall (relative
  bar per pipeline stage), e-graph growth sparkline, top-k rules by
  search time, recorded events;
* :func:`render_html` -- a standalone dependency-free HTML page with
  the same content plus the raw span table.

``repro trace <kernel>`` drives both.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional, Tuple

from .config import ObservabilityData

__all__ = ["render_text", "render_html", "stage_waterfall", "top_rules"]

_SPARK = "▁▂▃▄▅▆▇█"


def _sparkline(values: List[float], width: int = 40) -> str:
    if not values:
        return "(no samples)"
    if len(values) > width:
        # Downsample by taking the max of each chunk (peaks matter).
        chunk = len(values) / width
        values = [
            max(values[int(i * chunk): max(int((i + 1) * chunk), int(i * chunk) + 1)])
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / span * (len(_SPARK) - 1)))]
        for v in values
    )


def stage_waterfall(data: ObservabilityData) -> List[Tuple[str, float, float]]:
    """``(stage, start_offset_s, duration_s)`` for each direct child of
    the root ``compile`` span, in start order."""
    root = data.span_named("compile")
    if root is None:
        return []
    children = [
        s for s in data.spans if s.get("parent_id") == root["span_id"]
    ]
    children.sort(key=lambda s: s["start"])
    return [
        (s["name"], s["start"] - root["start"], s.get("duration", 0.0))
        for s in children
    ]


def top_rules(data: ObservabilityData, k: int = 10) -> List[Tuple[str, Dict]]:
    """Rules ranked by cumulative search time (from the recorder)."""
    stats = (data.recorder or {}).get("rule_stats", {})
    ranked = sorted(
        stats.items(),
        key=lambda item: item[1].get("search_time", 0.0),
        reverse=True,
    )
    return ranked[:k]


def _waterfall_lines(
    stages: List[Tuple[str, float, float]], width: int = 36
) -> List[str]:
    if not stages:
        return ["  (no stage spans recorded)"]
    total = max((off + dur) for _, off, dur in stages) or 1.0
    lines = []
    for name, off, dur in stages:
        lead = int(off / total * width)
        bar = max(1, int(dur / total * width))
        lines.append(
            f"  {name:<12} {' ' * lead}{'█' * bar:<{width - lead}} "
            f"{dur * 1000:8.1f} ms"
        )
    return lines


def render_text(data: ObservabilityData, kernel: str = "") -> str:
    """Terminal report for one compile."""
    lines: List[str] = []
    root = data.span_named("compile")
    title = kernel or (root or {}).get("attributes", {}).get("kernel", "?")
    total = (root or {}).get("duration", 0.0)
    lines.append(f"== repro trace: {title} ==")
    if root is not None:
        lines.append(
            f"total {total * 1000:.1f} ms wall, "
            f"{root.get('cpu', 0.0) * 1000:.1f} ms cpu, "
            f"{len(data.spans)} spans"
        )

    lines.append("")
    lines.append("stage waterfall:")
    lines.extend(_waterfall_lines(stage_waterfall(data)))

    recorder = data.recorder or {}
    snapshots = recorder.get("snapshots", [])
    if snapshots:
        growth = [s["nodes"] for s in snapshots]
        lines.append("")
        lines.append(
            f"e-graph growth ({recorder.get('iterations_seen', len(growth))} "
            f"iterations, stop: {recorder.get('stop_reason')}):"
        )
        lines.append(f"  {_sparkline(growth)}  "
                     f"{growth[0]} -> {growth[-1]} nodes")

    ranked = top_rules(data)
    if ranked:
        lines.append("")
        lines.append("top rules by search time:")
        for name, s in ranked:
            lines.append(
                f"  {name:<28} {s.get('search_time', 0.0) * 1000:8.1f} ms  "
                f"{s.get('matches', 0):>6} matches  "
                f"{s.get('applied', 0):>6} applied"
                + (
                    f"  banned x{s['times_banned']}"
                    if s.get("times_banned")
                    else ""
                )
            )

    events = recorder.get("events", [])
    if events:
        lines.append("")
        lines.append(f"events ({len(events)}):")
        for e in events[-12:]:
            detail = ", ".join(f"{k}={v}" for k, v in e["details"].items())
            lines.append(f"  {e['kind']}" + (f": {detail}" if detail else ""))

    if data.prometheus:
        n_samples = sum(
            1
            for line in data.prometheus.splitlines()
            if line and not line.startswith("#")
        )
        lines.append("")
        lines.append(f"metrics: {n_samples} samples exported")
    return "\n".join(lines)


_HTML_HEAD = """<!doctype html>
<html><head><meta charset="utf-8"><title>repro trace: {title}</title>
<style>
 body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #222; }}
 h1 {{ font-size: 1.3rem; }} h2 {{ font-size: 1.05rem; margin-top: 2rem; }}
 table {{ border-collapse: collapse; }}
 td, th {{ padding: .2rem .6rem; border-bottom: 1px solid #ddd;
           text-align: left; font-variant-numeric: tabular-nums; }}
 .bar {{ background: #4c78a8; height: 12px; border-radius: 2px; }}
 .lane {{ position: relative; background: #eef1f5; height: 12px;
          width: 420px; border-radius: 2px; }}
 .lane div {{ position: absolute; top: 0; }}
 .muted {{ color: #777; }}
 pre {{ background: #f6f8fa; padding: .8rem; overflow-x: auto; }}
</style></head><body>
<h1>repro trace: {title}</h1>
"""


def render_html(data: ObservabilityData, kernel: str = "") -> str:
    """Standalone HTML report (no external assets)."""
    root = data.span_named("compile")
    title = html.escape(
        kernel or (root or {}).get("attributes", {}).get("kernel", "?")
    )
    parts: List[str] = [_HTML_HEAD.format(title=title)]
    if root is not None:
        parts.append(
            f"<p>total <b>{root.get('duration', 0) * 1000:.1f} ms</b> wall, "
            f"{root.get('cpu', 0) * 1000:.1f} ms cpu, "
            f"{len(data.spans)} spans</p>"
        )

    stages = stage_waterfall(data)
    parts.append("<h2>Stage waterfall</h2>")
    if stages:
        total = max((off + dur) for _, off, dur in stages) or 1.0
        parts.append("<table>")
        for name, off, dur in stages:
            left = off / total * 100
            width = max(dur / total * 100, 0.5)
            parts.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td><div class='lane'><div class='bar' "
                f"style='left:{left:.2f}%;width:{width:.2f}%'></div></div>"
                f"</td><td>{dur * 1000:.1f} ms</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p class='muted'>no stage spans recorded</p>")

    recorder = data.recorder or {}
    snapshots = recorder.get("snapshots", [])
    if snapshots:
        growth = [s["nodes"] for s in snapshots]
        peak = max(growth) or 1
        bars = "".join(
            f"<div style='display:inline-block;width:6px;margin-right:1px;"
            f"background:#4c78a8;height:{max(2, int(n / peak * 60))}px'></div>"
            for n in growth[-80:]
        )
        parts.append(
            f"<h2>E-graph growth</h2><p class='muted'>"
            f"{recorder.get('iterations_seen')} iterations, "
            f"stop: {html.escape(str(recorder.get('stop_reason')))}, "
            f"{growth[0]} &rarr; {growth[-1]} nodes</p>"
            f"<div style='display:flex;align-items:flex-end'>{bars}</div>"
        )

    ranked = top_rules(data)
    if ranked:
        parts.append("<h2>Top rules by search time</h2><table>")
        parts.append(
            "<tr><th>rule</th><th>search ms</th><th>matches</th>"
            "<th>applied</th><th>bans</th></tr>"
        )
        for name, s in ranked:
            parts.append(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{s.get('search_time', 0.0) * 1000:.1f}</td>"
                f"<td>{s.get('matches', 0)}</td>"
                f"<td>{s.get('applied', 0)}</td>"
                f"<td>{s.get('times_banned', 0)}</td></tr>"
            )
        parts.append("</table>")

    events = recorder.get("events", [])
    if events:
        parts.append(f"<h2>Events ({len(events)})</h2><table>")
        for e in events:
            detail = ", ".join(f"{k}={v}" for k, v in e["details"].items())
            parts.append(
                f"<tr><td>{html.escape(e['kind'])}</td>"
                f"<td class='muted'>{html.escape(detail)}</td></tr>"
            )
        parts.append("</table>")

    parts.append("<h2>Spans</h2><table>")
    parts.append(
        "<tr><th>name</th><th>pid</th><th>start +ms</th><th>wall ms</th>"
        "<th>cpu ms</th><th>attributes</th></tr>"
    )
    t0 = min((s["start"] for s in data.spans), default=0.0)
    for s in sorted(data.spans, key=lambda s: s["start"]):
        attrs = ", ".join(f"{k}={v}" for k, v in s.get("attributes", {}).items())
        parts.append(
            f"<tr><td>{html.escape(s['name'])}</td><td>{s.get('pid', 0)}</td>"
            f"<td>{(s['start'] - t0) * 1000:.1f}</td>"
            f"<td>{s.get('duration', 0) * 1000:.1f}</td>"
            f"<td>{s.get('cpu', 0) * 1000:.1f}</td>"
            f"<td class='muted'>{html.escape(attrs)}</td></tr>"
        )
    parts.append("</table>")

    if data.prometheus:
        parts.append("<h2>Metrics (Prometheus exposition)</h2>")
        parts.append(f"<pre>{html.escape(data.prometheus)}</pre>")
    parts.append("</body></html>\n")
    return "".join(parts)
