"""Unit tests for patterns and e-matching (repro.egraph.pattern)."""

import pytest

from repro.dsl import parse
from repro.egraph import EGraph, PNode, PVar, ematch, instantiate, pattern
from repro.egraph.pattern import match_in_class, pattern_vars


class TestPatternParsing:
    def test_var(self):
        assert pattern("?x") == PVar("x")

    def test_node_with_vars(self):
        p = pattern("(+ ?a ?b)")
        assert isinstance(p, PNode)
        assert p.op == "+"
        assert p.args == (PVar("a"), PVar("b"))

    def test_literal_in_pattern(self):
        p = pattern("(+ ?a 0)")
        assert p.args[1] == PNode("Num", (), 0)

    def test_pattern_vars_order(self):
        assert pattern_vars(pattern("(+ ?b (* ?a ?b))")) == ["b", "a"]

    def test_pattern_passthrough(self):
        p = pattern("(+ ?a ?b)")
        assert pattern(p) is p

    def test_str_rendering(self):
        assert str(pattern("(+ ?a 0)")) == "(+ ?a 0)"


class TestMatching:
    def test_simple_match(self):
        eg = EGraph()
        eg.add_term(parse("(+ (Get a 0) (Get b 0))"))
        matches = ematch(eg, pattern("(+ ?x ?y)"))
        assert len(matches) == 1
        _, subst = matches[0]
        assert eg.find(subst["x"]) == eg.find(eg.lookup_term(parse("(Get a 0)")))

    def test_var_matches_everything(self):
        eg = EGraph()
        eg.add_term(parse("(+ 1 2)"))
        matches = ematch(eg, pattern("?x"))
        assert len(matches) == eg.num_classes

    def test_nonlinear_variable_requires_same_class(self):
        eg = EGraph()
        eg.add_term(parse("(+ x x)"))
        eg.add_term(parse("(+ x y)"))
        matches = ematch(eg, pattern("(+ ?a ?a)"))
        assert len(matches) == 1

    def test_nonlinear_matches_after_union(self):
        eg = EGraph()
        root = eg.add_term(parse("(+ x y)"))
        eg.union(eg.add_term(parse("x")), eg.add_term(parse("y")))
        eg.rebuild()
        matches = ematch(eg, pattern("(+ ?a ?a)"))
        assert [eg.find(cid) for cid, _ in matches] == [eg.find(root)]

    def test_literal_pattern_matches_value(self):
        eg = EGraph()
        eg.add_term(parse("(+ q 0)"))
        eg.add_term(parse("(+ q 1)"))
        matches = ematch(eg, pattern("(+ ?a 0)"))
        assert len(matches) == 1

    def test_nested_pattern(self):
        eg = EGraph()
        eg.add_term(parse("(+ 1 (* 2 3))"))
        matches = ematch(eg, pattern("(+ ?a (* ?b ?c))"))
        assert len(matches) == 1

    def test_matches_inside_equivalence_class(self):
        """A pattern can match a non-representative node of a class."""
        eg = EGraph()
        a = eg.add_term(parse("(* q 2)"))
        b = eg.add_term(parse("(+ q q)"))
        eg.union(a, b)
        eg.rebuild()
        matched = {eg.find(cid) for cid, _ in ematch(eg, pattern("(+ ?x ?x)"))}
        assert eg.find(a) in matched

    def test_match_in_class_scoped(self):
        eg = EGraph()
        plus = eg.add_term(parse("(+ 1 2)"))
        eg.add_term(parse("(+ 3 4)"))
        substs = list(match_in_class(eg, pattern("(+ ?a ?b)"), plus))
        assert len(substs) == 1

    def test_multiple_matches_in_one_class(self):
        """Two nodes in one class can both match the pattern."""
        eg = EGraph()
        a = eg.add_term(parse("(+ 1 2)"))
        b = eg.add_term(parse("(+ 3 4)"))
        eg.union(a, b)
        eg.rebuild()
        matches = ematch(eg, pattern("(+ ?x ?y)"))
        assert len(matches) == 2


class TestInstantiate:
    def test_instantiate_var(self):
        eg = EGraph()
        cid = eg.add_term(parse("(Get a 0)"))
        assert instantiate(eg, pattern("?x"), {"x": cid}) == eg.find(cid)

    def test_instantiate_builds_nodes(self):
        eg = EGraph()
        x = eg.add_term(parse("x"))
        cid = instantiate(eg, pattern("(+ ?a ?a)"), {"a": x})
        assert eg.lookup_term(parse("(+ x x)")) == eg.find(cid)

    def test_instantiate_literals(self):
        eg = EGraph()
        cid = instantiate(eg, pattern("(+ 1 2)"), {})
        assert eg.lookup_term(parse("(+ 1 2)")) == eg.find(cid)

    def test_unbound_variable_raises(self):
        eg = EGraph()
        with pytest.raises(KeyError):
            instantiate(eg, pattern("?zzz"), {})
