"""The ``repro bench`` harness: report schema, determinism of the
counters, and the regression gate."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    bench_kernel,
    check_gate,
    run_bench,
    write_report,
    _bench_options,
)
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def small_report():
    """One-kernel quick report (module-scoped: saturation is the cost)."""
    return run_bench(quick=True, seed=0, name_filter="matmul-2x2-2x2")


def test_report_schema(small_report):
    assert small_report["schema"] == BENCH_SCHEMA
    assert small_report["quick"] is True
    assert small_report["largest_kernel"] == "matmul-2x2-2x2"
    (kernel,) = small_report["kernels"]
    assert set(kernel["stages"]) == {"saturate", "extract", "lower", "total"}
    egraph = kernel["egraph"]
    assert egraph["nodes"] > 0
    assert egraph["peak_nodes"] >= egraph["nodes"] > 0
    assert egraph["iterations"] > 0
    matcher = kernel["matcher"]
    assert matcher["incremental"]["visited"] > 0
    assert matcher["full_rescan"]["visited"] > 0
    assert matcher["extraction_identical"] is True
    assert kernel["rules"]  # per-rule stats present
    some_rule = next(iter(kernel["rules"].values()))
    assert {"matches", "applied", "search_time", "classes_visited"} <= set(
        some_rule
    )


def test_matcher_counters_deterministic():
    """The visited/skipped counters are pure functions of the kernel --
    two runs must agree exactly (the gate relies on this)."""
    options = _bench_options(quick=True, seed=0)
    spec = get_kernel("matmul-2x2-2x2").spec()
    a = bench_kernel(spec, options)
    b = bench_kernel(get_kernel("matmul-2x2-2x2").spec(), options)
    assert a["matcher"] == b["matcher"]
    assert a["egraph"] == b["egraph"]
    assert a["extracted_cost"] == b["extracted_cost"]


def test_gate_passes_without_baseline(small_report):
    gate = check_gate(small_report, baseline=None)
    assert gate.ok, gate.failures


def test_gate_fails_on_divergent_extraction(small_report):
    bad = json.loads(json.dumps(small_report))
    bad["kernels"][0]["matcher"]["extraction_identical"] = False
    gate = check_gate(bad)
    assert not gate.ok
    assert "different terms" in gate.failures[0]


def test_gate_fails_on_low_visit_ratio(small_report):
    bad = json.loads(json.dumps(small_report))
    bad["kernels"][0]["matcher"]["visit_ratio"] = 1.1
    gate = check_gate(bad)
    assert not gate.ok


def test_gate_fails_on_slowdown(small_report):
    baseline = json.loads(json.dumps(small_report))
    slow = json.loads(json.dumps(small_report))
    slow["kernels"][0]["stages"]["saturate"] = 10.0
    baseline["kernels"][0]["stages"]["saturate"] = 1.0
    gate = check_gate(slow, baseline)
    assert not gate.ok
    assert "10.000s" in gate.failures[0]


def test_gate_ignores_sub_floor_noise(small_report):
    """Stages faster than the floor never flap the gate, however large
    the relative slowdown."""
    baseline = json.loads(json.dumps(small_report))
    fast = json.loads(json.dumps(small_report))
    baseline["kernels"][0]["stages"]["lower"] = 0.0001
    fast["kernels"][0]["stages"]["lower"] = 0.003  # 30x but trivial
    gate = check_gate(fast, baseline)
    assert gate.ok, gate.failures


def test_write_report_round_trips(tmp_path, small_report):
    gate = check_gate(small_report)
    out = tmp_path / "BENCH_egraph.json"
    write_report(small_report, gate, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["schema"] == BENCH_SCHEMA
    assert loaded["gate"]["ok"] is True


def test_cli_bench_writes_json(tmp_path):
    from repro.__main__ import main

    out = tmp_path / "BENCH_egraph.json"
    rc = main(
        [
            "bench",
            "--quick",
            "--kernels",
            "matmul-2x2-2x2",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["kernels"][0]["name"] == "matmul-2x2-2x2"
