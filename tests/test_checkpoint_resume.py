"""Persistent saturation checkpoints and crash-recoverable resume.

The tentpole guarantee under test: a worker SIGKILLed mid-saturation
resumes from its persisted end-of-iteration checkpoint on the service
retry, skips the completed iterations, and produces a byte-identical
extraction (term and generated C) to an uninterrupted run.
"""

import dataclasses
import glob
import os

import pytest

from repro.chaos import FaultPlan, FaultSpec, active_plan, clear_plan
from repro.compiler import CompileOptions, compile_spec
from repro.frontend.lift import lift
from repro.service import (
    CheckpointStore,
    CompileService,
    FileCheckpointer,
    RetryPolicy,
    SaturationState,
    WorkerLimits,
    saturation_key,
)


@pytest.fixture(autouse=True)
def _no_ambient_plan():
    clear_plan()
    yield
    clear_plan()


def _axpy2():
    def axpy2(a, b, out):
        for i in range(2):
            out[i] = a[i] * b[i] + a[i]

    return lift("axpy2", axpy2, [("a", 2), ("b", 2)], [("out", 2)])


#: Per-iteration checkpoints so a kill at any iteration has a fresh one.
OPTS = CompileOptions(
    time_limit=5.0,
    node_limit=20_000,
    iter_limit=8,
    validate=False,
    checkpoint_stride=1,
)


# ------------------------------------------------------- FileCheckpointer


def _state(n=3):
    return SaturationState(
        next_iteration=n,
        egraph={"nodes": list(range(10))},
        applied_keys={("rule", 1), ("rule", 2)},
        rule_stats={"mul-comm": {"matches": 4}},
        iterations=[{"iteration": i} for i in range(n)],
    )


def test_checkpointer_round_trip(tmp_path):
    ckpt = FileCheckpointer(str(tmp_path / "k.satckpt"), key="k")
    assert ckpt.load() is None  # miss, not an error
    assert ckpt.save(_state()) is True
    assert ckpt.exists()
    loaded = ckpt.load()
    assert loaded is not None
    assert loaded.next_iteration == 3
    assert loaded.egraph == {"nodes": list(range(10))}
    assert loaded.applied_keys == {("rule", 1), ("rule", 2)}
    assert len(loaded.iterations) == 3
    ckpt.delete()
    assert not ckpt.exists()
    assert ckpt.stats.saves == 1 and ckpt.stats.loads == 1
    assert ckpt.stats.deletes == 1


def test_checkpointer_quarantines_corruption(tmp_path):
    path = str(tmp_path / "k.satckpt")
    ckpt = FileCheckpointer(path, key="k")
    ckpt.save(_state())
    blob = bytearray(open(path, "rb").read())
    blob[len(blob) // 2] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    assert ckpt.load() is None
    assert ckpt.stats.corrupt == 1
    assert not os.path.exists(path), "corrupt checkpoint must be moved aside"
    assert os.path.exists(path + ".corrupt")


def test_checkpointer_rejects_wrong_key(tmp_path):
    path = str(tmp_path / "k.satckpt")
    FileCheckpointer(path, key="other").save(_state())
    ckpt = FileCheckpointer(path, key="k")
    assert ckpt.load() is None
    assert ckpt.stats.corrupt == 1


def test_saturation_key_ignores_shrinkable_budgets():
    """Retries run at shrunk node/time budgets and shifted seeds; the
    checkpoint key must not move, or the retry could never find the
    dead attempt's checkpoint."""
    spec = _axpy2()
    base = saturation_key(spec, OPTS)
    for change in (
        {"node_limit": 5_000},
        {"time_limit": 1.25},
        {"seed": 99},
        {"checkpoint_dir": "/elsewhere"},
    ):
        assert saturation_key(spec, dataclasses.replace(OPTS, **change)) == base

    # ...but anything that changes what is compiled must move the key.
    assert saturation_key(spec, dataclasses.replace(OPTS, vector_width=8)) != base

    def other(a, b, out):
        out[0] = a[0] + b[0]

    other_spec = lift("other", other, [("a", 2), ("b", 2)], [("out", 1)])
    assert saturation_key(other_spec, OPTS) != base


def test_checkpoint_store_entries_and_clear(tmp_path):
    store = CheckpointStore(str(tmp_path))
    ckpt = store.checkpointer_for(_axpy2(), OPTS)
    ckpt.save(_state())
    assert len(store.entries()) == 1
    assert store.clear() == 1
    assert store.entries() == []


# ---------------------------------------------------- end-to-end resume


def test_uninterrupted_run_consumes_its_checkpoint(tmp_path):
    options = dataclasses.replace(OPTS, checkpoint_dir=str(tmp_path))
    result = compile_spec(_axpy2(), options)
    assert result.report.resumed_from is None
    assert glob.glob(str(tmp_path / "*.satckpt")) == [], (
        "a completed run must delete its checkpoint"
    )


def test_sigkilled_worker_resumes_byte_identical(tmp_path):
    """The acceptance scenario: attempt 0's worker is SIGKILLed at the
    start of saturation iteration 2 (after checkpoints for iterations
    0 and 1 were persisted); the retry resumes from iteration 2 and the
    final extraction is byte-identical to an uninterrupted compile."""
    spec = _axpy2()
    baseline = compile_spec(spec, OPTS)
    assert len(baseline.report.iterations) >= 3, (
        "kernel too small to exercise mid-run kill"
    )

    service = CompileService(
        cache=None,
        policy=RetryPolicy(
            max_attempts=3,
            backoff_base=0.01,
            backoff_jitter=0.0,
            # Identical budgets across attempts: the resumed run must
            # match the baseline exactly, not a shrunk variant of it.
            shrink_factor=1.0,
        ),
        isolate=True,
        limits=WorkerLimits(kill_timeout=60.0),
        checkpoint_dir=str(tmp_path),
    )
    plan = FaultPlan(
        [FaultSpec("runner.iteration", "sigkill", nth=3, attempts=(0,))],
        seed=3,
    )
    with active_plan(plan):
        result = service.compile_spec(spec, OPTS)

    assert result.diagnostics.attempts == 2
    assert service.stats.worker_crashes == 1
    # Completed iterations were skipped, not re-run: the retry resumed
    # at the iteration the checkpoint recorded (kill at hit 3 = start of
    # iteration index 2, so iterations 0 and 1 were already done).
    assert result.report.resumed_from == 2
    # The restored history plus the live iterations equal the baseline's.
    assert len(result.report.iterations) == len(baseline.report.iterations)
    assert result.report.stop_reason == baseline.report.stop_reason

    # Byte-identical extraction: same optimized term, same generated C.
    assert str(result.optimized) == str(baseline.optimized)
    assert result.c_code == baseline.c_code
    assert result.cost == baseline.cost

    # Recovery left no scratch state behind.
    assert glob.glob(str(tmp_path / "*")) == []


def test_resume_survives_corrupt_checkpoint(tmp_path):
    """Compound fault: the worker is SIGKILLed, then the retry reads a
    corrupted checkpoint.  Recovery must degrade to a cold start (no
    resume) and still produce the baseline artifacts."""
    spec = _axpy2()
    baseline = compile_spec(spec, OPTS)
    service = CompileService(
        cache=None,
        policy=RetryPolicy(
            max_attempts=3,
            backoff_base=0.01,
            backoff_jitter=0.0,
            shrink_factor=1.0,
        ),
        isolate=True,
        limits=WorkerLimits(kill_timeout=60.0),
        checkpoint_dir=str(tmp_path),
    )
    plan = FaultPlan(
        [
            FaultSpec("runner.iteration", "sigkill", nth=3, attempts=(0,)),
            FaultSpec("checkpoint.read", "corrupt"),
        ],
        seed=3,
    )
    with active_plan(plan):
        result = service.compile_spec(spec, OPTS)
    assert result.diagnostics.attempts == 2
    assert result.report.resumed_from is None
    assert result.c_code == baseline.c_code
