"""Open-loop soak harness for the compile gateway (``repro serve
--bench``; DESIGN.md §12, TESTING.md).

The harness answers one question: *does the gateway survive sustained
overload the way DESIGN.md §12 promises?*  It drives
:class:`~repro.service.gateway.CompileGateway` with an **open-loop**
arrival process -- request times are precomputed from the seed and do
not wait for completions, so a slow backend faces a growing queue
exactly as a real front end would -- through four phases:

``unloaded``
    A trickle, far below capacity.  Its completed-request p99 is the
    baseline the overload gate compares against.
``sustained``
    A steady rate the backend can serve.  The single-flight dedup
    probes run here: bursts of N identical fresh-key requests fired
    concurrently, whose collapse ratio (coalesced / (N - 1)) must
    clear the ``dedup_floor``.
``burst``
    ``burst_multiplier`` x the sustained rate -- genuine overload.  The
    gateway must shed (typed errors only), and admitted requests
    completed after a one-second control-loop warm-up must keep p99
    within ``admitted_p99_factor`` x the unloaded p99.
``recovery``
    Back to the trickle: sheds stop, the brownout ladder steps down.

Two request classes: **hot** requests draw from a three-kernel pool
whose options ``seed`` rotates every ``hot_epoch_seconds`` -- within an
epoch they share one artifact-cache content key, so the first arrival
compiles and the rest coalesce (single-flight) or hit the cache/LRU;
**unique** requests carry a fresh seed each (a ~80 ms 5x5 matmul
saturation), so they always cost real compile time -- they are what
saturates the backend.  Tenants: ``interactive`` (priority 0, hot
only), ``batch`` (priority 2, rate-limited at the sustained rate so
the 4x burst trips the token bucket), plus ``flood`` / slow-loris
clients injected through the chaos seams (``gateway.flood``,
``gateway.client``) when a fault plan is installed.

The run ends with the chaos invariant checkers (typed-errors,
bounded-queue, no-starvation, breaker-legality, cache-integrity) and a
gate table; the JSON report is what ``benchmarks/soak_baseline.json``
pins and the ``serve-smoke`` CI job asserts on.
"""

from __future__ import annotations

import asyncio
import dataclasses
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..chaos.inject import FaultPlan, FaultSpec, active_plan, chaos_flag
from ..chaos.invariants import (
    Violation,
    check_bounded_queue,
    check_breaker_log,
    check_cache_integrity,
    check_no_starvation,
    check_typed_error,
)
from ..compiler import CompileOptions
from ..errors import (
    CompileError,
    DeadlineExceededError,
    OverloadError,
)
from ..frontend.lift import Spec, lift
from ..observability import Observability, ObservabilitySession, activate
from ..seeding import stable_rng, stable_seed
from .cache import ArtifactCache
from .gateway import CompileGateway, GatewayConfig, TenantPolicy
from .supervisor import CompileService, RetryPolicy

__all__ = [
    "SOAK_SCHEMA",
    "SoakConfig",
    "soak_kernels",
    "default_chaos_plan",
    "run_soak",
    "run_soak_sync",
    "render_soak_report",
]

SOAK_SCHEMA = "repro-soak/v1"

#: Seconds of burst excluded from the admitted-p99 gate: the shedding
#: control loop needs one CoDel interval (plus dispatch slack) to react
#: to an overload step, and requests admitted before it engages
#: complete with transient queue delay that says nothing about the
#: steady-state SLO.  The full-phase percentiles are still reported.
_BURST_WARMUP = 1.0


@dataclass(frozen=True)
class SoakConfig:
    """Shape of one soak run.  All randomness derives from ``seed``."""

    seed: int = 0
    unloaded_seconds: float = 4.0
    sustained_seconds: float = 8.0
    burst_seconds: float = 6.0
    recovery_seconds: float = 3.0
    #: Arrival rates (requests/second, open loop).
    unloaded_rate: float = 3.0
    sustained_rate: float = 12.0
    burst_multiplier: float = 4.0
    #: Fraction of arrivals drawn from the hot (dedup/cache) pool.
    hot_fraction: float = 0.7
    #: Hot-pool content keys rotate this often, so dedup and the LRU
    #: tier both stay exercised instead of everything being a disk hit.
    hot_epoch_seconds: float = 2.0
    #: Single-flight probes: ``dedup_probes`` bursts of
    #: ``dedup_probe_size`` identical fresh-key concurrent requests.
    dedup_probes: int = 3
    dedup_probe_size: int = 20
    #: Gates.
    dedup_floor: float = 0.9
    admitted_p99_factor: float = 2.0
    shed_p99_ceiling: float = 0.5
    #: Per-compile budgets (small: the kernels saturate in well under
    #: a second; the *unique* class still costs ~80 ms of real work).
    time_limit: float = 2.0
    node_limit: int = 100_000
    iter_limit: int = 10
    #: In-process LRU capacity of the artifact cache.
    lru_capacity: int = 256
    gateway: GatewayConfig = field(
        default_factory=lambda: GatewayConfig(
            max_queue_depth=16,
            concurrency=1,
            codel_target=0.04,
            codel_interval=0.2,
            default_deadline=2.0,
        )
    )

    def tenants(self) -> Dict[str, TenantPolicy]:
        return {
            "interactive": TenantPolicy("interactive", priority=0),
            # Loose enough that the 4x burst still floods the queue
            # (exercising CoDel and the brownout ladder), tight enough
            # that the token bucket visibly sheds part of it too.
            "batch": TenantPolicy(
                "batch",
                priority=2,
                rate=self.sustained_rate * 2.0,
                burst=max(8, int(self.sustained_rate * 2.0)),
            ),
            "probe": TenantPolicy("probe", priority=1),
            "flood": TenantPolicy("flood", priority=3, rate=2.0, burst=2),
        }


def soak_kernels() -> Tuple[List[Spec], Spec]:
    """``(hot_pool, unique)``: three tiny fast kernels for the hot
    class, and a 5x5 matmul (~80 ms of saturation) for the unique
    class that actually loads the backend."""

    def sdot(a, b, out):
        out[0] = a[0] * b[0] + a[1] * b[1]

    def saxpy(a, b, out):
        for i in range(2):
            out[i] = a[i] * b[i] + a[i]

    def smix(a, b, out):
        for i in range(2):
            out[i] = (a[i] + b[i]) * b[i]

    def mm5(a, b, out):
        for i in range(5):
            for j in range(5):
                acc = 0
                for k in range(5):
                    acc = acc + a[i * 5 + k] * b[k * 5 + j]
                out[i * 5 + j] = acc

    hot = [
        lift("soak-dot", sdot, [("a", 2), ("b", 2)], [("out", 1)]),
        lift("soak-axpy", saxpy, [("a", 2), ("b", 2)], [("out", 2)]),
        lift("soak-mix", smix, [("a", 2), ("b", 2)], [("out", 2)]),
    ]
    unique = lift("soak-mm5", mm5, [("a", 25), ("b", 25)], [("out", 25)])
    return hot, unique


def default_chaos_plan(seed: int = 0) -> FaultPlan:
    """The serve-smoke fault schedule: a queue-delay spike at the
    admission seam, tenant-flood bursts, and slow-loris clients."""
    return FaultPlan(
        [
            FaultSpec("gateway.enqueue", "sleep", nth=40, seconds=0.2),
            FaultSpec("gateway.flood", "flag", probability=0.02, max_fires=3),
            FaultSpec("gateway.client", "flag", probability=0.05, max_fires=10),
        ],
        seed=stable_seed(seed, "soak-chaos"),
    )


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _latency_block(values_ms: List[float]) -> Dict[str, float]:
    return {
        "count": len(values_ms),
        "p50": round(_percentile(values_ms, 0.50), 3),
        "p90": round(_percentile(values_ms, 0.90), 3),
        "p99": round(_percentile(values_ms, 0.99), 3),
        "max": round(max(values_ms), 3) if values_ms else 0.0,
    }


class _Soak:
    """One run's mutable state (records, raw errors, schedule)."""

    def __init__(self, config: SoakConfig, gateway: CompileGateway) -> None:
        self.config = config
        self.gateway = gateway
        self.records: List[Dict[str, Any]] = []
        self.raw_errors: List[BaseException] = []
        self.tasks: List["asyncio.Task"] = []
        self.hot_pool, self.unique_spec = soak_kernels()
        self.base_options = CompileOptions(
            time_limit=config.time_limit,
            node_limit=config.node_limit,
            iter_limit=config.iter_limit,
            validate=False,
        )
        self.dedup = {"submitted": 0, "coalesced": 0, "probes": 0}

    # ------------------------------------------------------- schedule

    def phases(self) -> List[Tuple[str, float, float, float]]:
        """``(name, start_offset, end_offset, rate)`` per phase."""
        c = self.config
        out: List[Tuple[str, float, float, float]] = []
        cursor = 0.0
        for name, seconds, rate in (
            ("unloaded", c.unloaded_seconds, c.unloaded_rate),
            ("sustained", c.sustained_seconds, c.sustained_rate),
            ("burst", c.burst_seconds, c.sustained_rate * c.burst_multiplier),
            ("recovery", c.recovery_seconds, c.unloaded_rate),
        ):
            out.append((name, cursor, cursor + seconds, rate))
            cursor += seconds
        return out

    def arrivals(self) -> List[Tuple[float, str, str, Spec, CompileOptions]]:
        """Precomputed ``(offset, phase, tenant, spec, options)`` list.
        Open loop: nothing here depends on service behavior."""
        c = self.config
        rng = stable_rng(c.seed, "soak-arrivals")
        plan: List[Tuple[float, str, str, Spec, CompileOptions]] = []
        unique_index = 0
        for name, start, end, rate in self.phases():
            if rate <= 0:
                continue
            step = 1.0 / rate
            offset = start + rng.random() * step
            while offset < end:
                if rng.random() < c.hot_fraction:
                    spec = self.hot_pool[rng.randrange(len(self.hot_pool))]
                    epoch = int(offset / c.hot_epoch_seconds)
                    options = dataclasses.replace(
                        self.base_options,
                        seed=stable_seed(c.seed, "soak-hot", epoch) % (1 << 31),
                    )
                    tenant = "interactive" if rng.random() < 0.4 else "batch"
                else:
                    spec = self.unique_spec
                    unique_index += 1
                    options = dataclasses.replace(
                        self.base_options,
                        seed=stable_seed(c.seed, "soak-uniq", unique_index)
                        % (1 << 31),
                    )
                    tenant = "batch"
                plan.append((offset, name, tenant, spec, options))
                offset += step
        return plan

    def probe_times(self) -> List[float]:
        c = self.config
        start = c.unloaded_seconds
        return [
            start + c.sustained_seconds * (k + 1) / (c.dedup_probes + 1)
            for k in range(c.dedup_probes)
        ]

    # -------------------------------------------------------- clients

    async def client(
        self,
        offset: float,
        phase: str,
        tenant: str,
        spec: Spec,
        options: CompileOptions,
        cls: str,
    ) -> None:
        record: Dict[str, Any] = {
            "offset": round(offset, 3),
            "phase": phase,
            "tenant": tenant,
            "cls": cls,
            "kernel": spec.name,
        }
        started = time.monotonic()
        try:
            result = await self.gateway.submit(spec, options, tenant=tenant)
        except OverloadError as exc:
            record["outcome"] = "shed"
            record["reason"] = exc.reason
        except DeadlineExceededError:
            record["outcome"] = "deadline"
        except CompileError as exc:
            record["outcome"] = "error"
            record["error"] = type(exc).__name__
        except Exception as exc:  # noqa: BLE001 - judged by typed-errors
            record["outcome"] = "raw-error"
            record["error"] = type(exc).__name__
            self.raw_errors.append(exc)
        else:
            record["outcome"] = "ok"
            record["cache_hit"] = bool(result.diagnostics.cache_hit)
        record["latency"] = time.monotonic() - started
        self.records.append(record)

    def abandon(
        self,
        offset: float,
        phase: str,
        tenant: str,
        spec: Spec,
        options: CompileOptions,
    ) -> None:
        """Slow-loris client: submit, then walk away without awaiting.
        The shielded single-flight future must keep serving everyone
        else; the abandoned exception (if any) still feeds the
        typed-errors invariant."""
        task = asyncio.create_task(
            self.gateway.submit(spec, options, tenant=tenant)
        )

        def _reap(done: "asyncio.Task") -> None:
            if done.cancelled():
                return
            error = done.exception()
            if error is not None and not isinstance(error, CompileError):
                self.raw_errors.append(error)

        task.add_done_callback(_reap)
        self.tasks.append(task)
        self.records.append(
            {
                "offset": round(offset, 3),
                "phase": phase,
                "tenant": tenant,
                "cls": "slow-loris",
                "kernel": spec.name,
                "outcome": "abandoned",
                "latency": 0.0,
            }
        )

    async def dedup_probe(self, index: int, offset: float) -> None:
        """Fire N identical fresh-key requests concurrently and count
        how many collapsed onto the leader."""
        c = self.config
        options = dataclasses.replace(
            self.base_options,
            seed=stable_seed(c.seed, "soak-probe", index) % (1 << 31),
        )
        tstats = self.gateway.stats.tenants.get("probe")
        before = tstats.coalesced if tstats is not None else 0
        probes = [
            self.client(offset, "sustained", "probe", self.unique_spec,
                        options, "probe")
            for _ in range(c.dedup_probe_size)
        ]
        await asyncio.gather(*probes)
        tstats = self.gateway.stats.tenants.get("probe")
        after = tstats.coalesced if tstats is not None else 0
        self.dedup["probes"] += 1
        self.dedup["submitted"] += c.dedup_probe_size
        self.dedup["coalesced"] += after - before

    # ----------------------------------------------------------- pump

    async def pump(self) -> None:
        """Open-loop arrival generator: walks the precomputed schedule
        on the wall clock, spawning one task per arrival."""
        loop = asyncio.get_running_loop()
        start = loop.time()
        schedule: List[Tuple[float, Tuple[str, ...], Any]] = []
        for offset, phase, tenant, spec, options in self.arrivals():
            schedule.append((offset, ("arrival", phase, tenant), (spec, options)))
        for index, offset in enumerate(self.probe_times()):
            schedule.append((offset, ("probe",), index))
        schedule.sort(key=lambda item: item[0])

        flood_epoch_options = None
        for offset, kind, payload in schedule:
            delay = start + offset - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if kind[0] == "probe":
                self.tasks.append(
                    asyncio.create_task(self.dedup_probe(payload, offset))
                )
                continue
            _, phase, tenant = kind
            spec, options = payload
            if chaos_flag("gateway.flood"):
                # Tenant flood: one arrival tick fans out into a burst
                # from the rate-limited flood tenant; the token bucket
                # must shed most of it with typed RateLimitErrors while
                # the interactive tenant keeps completing (the
                # no-starvation invariant watches exactly this).
                flood_epoch_options = flood_epoch_options or options
                for _ in range(12):
                    self.tasks.append(
                        asyncio.create_task(
                            self.client(offset, phase, "flood", spec,
                                        flood_epoch_options, "flood")
                        )
                    )
            if chaos_flag("gateway.client"):
                self.abandon(offset, phase, tenant, spec, options)
                continue
            cls = "hot" if spec in self.hot_pool else "unique"
            self.tasks.append(
                asyncio.create_task(
                    self.client(offset, phase, tenant, spec, options, cls)
                )
            )


async def run_soak(
    config: Optional[SoakConfig] = None,
    chaos: Optional[FaultPlan] = None,
    scratch_dir: Optional[str] = None,
    gate_latency: bool = True,
) -> Dict[str, Any]:
    """Run one soak and return the JSON-ready report.

    ``chaos`` installs a fault plan for the run (the serve-smoke job
    passes :func:`default_chaos_plan`); latency/dedup gates are then
    skipped automatically -- injected sleeps and floods make them
    meaningless -- leaving the invariant and shed-latency gates.
    ``gate_latency=False`` skips them too (tiny unit-test configs).
    """
    config = config or SoakConfig()
    own_scratch = scratch_dir is None
    scratch = scratch_dir or tempfile.mkdtemp(prefix="repro-soak-")
    session = ObservabilitySession(
        Observability.on(trace=False, recorder=False)
    )
    cache = ArtifactCache(scratch, lru_capacity=config.lru_capacity)
    service = CompileService(
        cache=cache,
        isolate=False,
        policy=RetryPolicy(
            max_attempts=2, backoff_base=0.01, backoff_jitter=0.0
        ),
        seed=config.seed,
    )
    started = time.perf_counter()
    with activate(session), active_plan(chaos):
        gateway = CompileGateway(
            service, config.gateway, tenants=config.tenants()
        )
        soak = _Soak(config, gateway)
        async with gateway:
            await soak.pump()
            if soak.tasks:
                await asyncio.gather(*soak.tasks, return_exceptions=True)
    elapsed = time.perf_counter() - started

    report = _build_report(
        config, soak, gateway, service, cache, session, elapsed,
        chaos=chaos, gate_latency=gate_latency and chaos is None,
    )
    if own_scratch:
        shutil.rmtree(scratch, ignore_errors=True)
    return report


def run_soak_sync(*args: Any, **kwargs: Any) -> Dict[str, Any]:
    """Blocking wrapper around :func:`run_soak` (CLI / tests)."""
    return asyncio.run(run_soak(*args, **kwargs))


# ----------------------------------------------------------------------
# Report assembly
# ----------------------------------------------------------------------


def _build_report(
    config: SoakConfig,
    soak: _Soak,
    gateway: CompileGateway,
    service: CompileService,
    cache: ArtifactCache,
    session: ObservabilitySession,
    elapsed: float,
    chaos: Optional[FaultPlan],
    gate_latency: bool,
) -> Dict[str, Any]:
    records = soak.records
    phase_stats: Dict[str, Any] = {}
    for name, start, end, rate in soak.phases():
        phase_records = [r for r in records if r["phase"] == name]
        ok_ms = [
            r["latency"] * 1e3 for r in phase_records if r["outcome"] == "ok"
        ]
        shed_ms = [
            r["latency"] * 1e3 for r in phase_records if r["outcome"] == "shed"
        ]
        seconds = max(1e-9, end - start)
        phase_stats[name] = {
            "window": [round(start, 3), round(end, 3)],
            "rate": rate,
            "arrivals": len(phase_records),
            "completed": len(ok_ms),
            "shed": len(shed_ms),
            "deadline": sum(
                1 for r in phase_records if r["outcome"] == "deadline"
            ),
            "errors": sum(1 for r in phase_records if r["outcome"] == "error"),
            "abandoned": sum(
                1 for r in phase_records if r["outcome"] == "abandoned"
            ),
            "throughput": round(len(ok_ms) / seconds, 2),
            "latency_ms": _latency_block(ok_ms),
            "shed_latency_ms": _latency_block(shed_ms),
        }

    snapshot = gateway.stats.snapshot()
    violations: List[Violation] = []
    for error in soak.raw_errors:
        violations += check_typed_error("soak", error)
    violations += check_bounded_queue(
        "soak", snapshot, gateway.config.max_queue_depth
    )
    violations += check_no_starvation("soak", snapshot["tenants"])
    violations += check_breaker_log(
        "soak", service.breaker_log, service.policy.strike_threshold
    )
    violations += check_cache_integrity("soak", cache)

    gates: Dict[str, Any] = {
        "zero-violations": {
            "violations": len(violations),
            "ok": not violations,
        }
    }
    shed_ms_all = [
        r["latency"] * 1e3 for r in records if r["outcome"] == "shed"
    ]
    gates["shed-p99"] = {
        "p99_ms": round(_percentile(shed_ms_all, 0.99), 3),
        "ceiling_ms": config.shed_p99_ceiling * 1e3,
        "sheds": len(shed_ms_all),
        "ok": _percentile(shed_ms_all, 0.99) <= config.shed_p99_ceiling * 1e3,
    }
    if gate_latency:
        unloaded_p99 = phase_stats["unloaded"]["latency_ms"]["p99"]
        burst_start = phase_stats["burst"]["window"][0]
        steady_ms = [
            r["latency"] * 1e3
            for r in records
            if r["phase"] == "burst"
            and r["outcome"] == "ok"
            and r["offset"] >= burst_start + _BURST_WARMUP
        ]
        limit_ms = config.admitted_p99_factor * unloaded_p99
        gates["admitted-p99"] = {
            "unloaded_p99_ms": unloaded_p99,
            "burst_steady_p99_ms": round(_percentile(steady_ms, 0.99), 3),
            "warmup_excluded_s": _BURST_WARMUP,
            "limit_ms": round(limit_ms, 3),
            "ok": bool(steady_ms)
            and _percentile(steady_ms, 0.99) <= limit_ms,
        }
        submitted = soak.dedup["submitted"]
        ideal = max(1, submitted - soak.dedup["probes"])
        ratio = soak.dedup["coalesced"] / ideal
        gates["dedup-collapse"] = {
            "probes": soak.dedup["probes"],
            "submitted": submitted,
            "coalesced": soak.dedup["coalesced"],
            "ratio": round(ratio, 4),
            "floor": config.dedup_floor,
            "ok": ratio >= config.dedup_floor,
        }
        gates["sheds-under-burst"] = {
            "burst_sheds": phase_stats["burst"]["shed"],
            "ok": phase_stats["burst"]["shed"] > 0,
        }

    lru = cache.lru
    report: Dict[str, Any] = {
        "schema": SOAK_SCHEMA,
        "seed": config.seed,
        "elapsed": round(elapsed, 3),
        "chaos": [dict(f) for f in chaos.fired] if chaos is not None else None,
        "config": {
            "rates": {
                "unloaded": config.unloaded_rate,
                "sustained": config.sustained_rate,
                "burst": config.sustained_rate * config.burst_multiplier,
            },
            "hot_fraction": config.hot_fraction,
            "gateway": dataclasses.asdict(config.gateway),
        },
        "phases": phase_stats,
        "dedup": dict(soak.dedup),
        "gateway": snapshot,
        "service": dataclasses.asdict(service.stats),
        "cache": {
            "stats": cache.stats.summary(),
            "lru": dataclasses.asdict(lru.stats) if lru is not None else None,
        },
        "metrics": session.metrics.to_json() if session.metrics else {},
        "violations": [v.to_dict() for v in violations],
        "gates": gates,
        "ok": all(gate["ok"] for gate in gates.values()),
    }
    return report


def render_soak_report(report: Dict[str, Any]) -> str:
    lines = [
        f"soak: seed {report['seed']}, {report['elapsed']:.1f}s wall clock"
        + (", chaos plan active" if report.get("chaos") is not None else "")
    ]
    for name, phase in report["phases"].items():
        lat = phase["latency_ms"]
        lines.append(
            f"  {name:<10} {phase['rate']:>5.1f}/s arrivals={phase['arrivals']:<4} "
            f"ok={phase['completed']:<4} shed={phase['shed']:<4} "
            f"p50={lat['p50']:.0f}ms p99={lat['p99']:.0f}ms "
            f"tput={phase['throughput']:.1f}/s"
        )
    gw = report["gateway"]
    lines.append(
        f"  gateway: {gw['admitted']} admitted, {gw['shed_total']} shed "
        f"{gw['sheds']}, {gw['dedup_coalesced']} coalesced, "
        f"depth max {gw['queue_depth_max']}, brownout level "
        f"{gw['brownout_level']} ({gw['brownout_transitions']} transitions)"
    )
    if report["cache"]["lru"] is not None:
        lru = report["cache"]["lru"]
        lines.append(
            f"  lru: {lru['hits']} hits, {lru['misses']} misses, "
            f"{lru['evictions']} evictions"
        )
    for name, gate in report["gates"].items():
        verdict = "ok" if gate["ok"] else "FAIL"
        detail = ", ".join(
            f"{k}={v}" for k, v in gate.items() if k != "ok"
        )
        lines.append(f"  gate {name:<18} {verdict:<5} ({detail})")
    lines.append(
        "RESULT: " + ("all gates passed" if report["ok"] else "GATES FAILED")
    )
    return "\n".join(lines)
