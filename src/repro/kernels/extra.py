"""Additional small-kernel workloads beyond Table 1.

The paper's introduction motivates Diospyros with the broader family
of "small-scale kernels" in machine-perception pipelines -- products
and convolutions of small matrices, pose math, camera models.  These
extra kernels exercise the compiler on more of that family (and are
used by the generality tests):

* batched dot products (feature matching scores),
* matrix-vector products (applying a pose),
* 3x3 cross-correlation (valid convolution, no boundary),
* 2x2 matrix inverse via the adjugate (homography normalization),
* vector normalization (sqrt + division),
* an axis-angle-free quaternion-to-rotation-matrix conversion.

None of these appear in the paper's evaluation; they are extension
workloads demonstrating that the rewrite system was not overfit to the
four Table 1 shapes.
"""

from __future__ import annotations

from ..frontend.symbolic import sym_sqrt
from .base import Kernel

__all__ = [
    "make_batch_dot",
    "make_matvec",
    "make_correlate_valid",
    "make_inverse2x2",
    "make_normalize",
    "make_quat_to_rot",
    "extra_kernels",
]


def make_batch_dot(batch: int, length: int) -> Kernel:
    """``out[b] = dot(x[b, :], y[b, :])`` for a batch of vectors."""

    def batch_dot(x, y, out) -> None:
        for b in range(batch):
            acc = 0.0
            for i in range(length):
                acc = acc + x[b][i] * y[b][i]
            out[b] = acc

    return Kernel(
        name=f"batchdot-{batch}x{length}",
        category="Extra",
        size_label=f"{batch} x {length}",
        reference=batch_dot,
        inputs=(("x", (batch, length)), ("y", (batch, length))),
        outputs=(("d", batch),),
        params={"batch": batch, "length": length},
    )


def make_matvec(rows: int, cols: int) -> Kernel:
    """``out = M v`` for a small fixed-size matrix."""

    def matvec(m, v, out) -> None:
        for r in range(rows):
            acc = 0.0
            for c in range(cols):
                acc = acc + m[r][c] * v[c]
            out[r] = acc

    return Kernel(
        name=f"matvec-{rows}x{cols}",
        category="Extra",
        size_label=f"{rows}x{cols}",
        reference=matvec,
        inputs=(("m", (rows, cols)), ("v", cols)),
        outputs=(("o", rows),),
        params={"rows": rows, "cols": cols},
    )


def make_correlate_valid(i_size: int, f_size: int) -> Kernel:
    """'Valid' 2-D cross-correlation: no boundary handling, output
    shrinks (the other common conv flavour in vision kernels)."""
    o_size = i_size - f_size + 1
    if o_size < 1:
        raise ValueError("filter larger than image")

    def correlate(image, filt, out) -> None:
        for r in range(o_size):
            for c in range(o_size):
                acc = 0.0
                for p in range(f_size):
                    for q in range(f_size):
                        acc = acc + image[r + p][c + q] * filt[p][q]
                out[r][c] = acc

    return Kernel(
        name=f"xcorr-{i_size}x{i_size}-{f_size}x{f_size}",
        category="Extra",
        size_label=f"{i_size}x{i_size}, {f_size}x{f_size}",
        reference=correlate,
        inputs=(("img", (i_size, i_size)), ("flt", (f_size, f_size))),
        outputs=(("o", (o_size, o_size)),),
        params={"i_size": i_size, "f_size": f_size},
    )


def make_inverse2x2() -> Kernel:
    """2x2 matrix inverse via the adjugate (division included)."""

    def inverse(m, out) -> None:
        a, b = m[0][0], m[0][1]
        c, d = m[1][0], m[1][1]
        det = a * d - b * c
        inv_det = 1.0 / det
        out[0][0] = d * inv_det
        out[0][1] = -b * inv_det
        out[1][0] = -c * inv_det
        out[1][1] = a * inv_det

    return Kernel(
        name="inverse-2x2",
        category="Extra",
        size_label="2x2",
        reference=inverse,
        inputs=(("m", (2, 2)),),
        outputs=(("inv", (2, 2)),),
    )


def make_normalize(length: int) -> Kernel:
    """Unit-normalize a vector (sqrt and division)."""

    def normalize(v, out) -> None:
        norm_sq = 0.0
        for i in range(length):
            norm_sq = norm_sq + v[i] * v[i]
        inv = 1.0 / sym_sqrt(norm_sq)
        for i in range(length):
            out[i] = v[i] * inv

    return Kernel(
        name=f"normalize-{length}",
        category="Extra",
        size_label=str(length),
        reference=normalize,
        inputs=(("v", length),),
        outputs=(("u", length),),
        params={"length": length},
    )


def make_quat_to_rot() -> Kernel:
    """Quaternion [x, y, z, w] -> 3x3 rotation matrix (pose math)."""

    def quat_to_rot(q, r) -> None:
        x, y, z, w = q[0], q[1], q[2], q[3]
        r[0][0] = 1 - 2 * (y * y + z * z)
        r[0][1] = 2 * (x * y - w * z)
        r[0][2] = 2 * (x * z + w * y)
        r[1][0] = 2 * (x * y + w * z)
        r[1][1] = 1 - 2 * (x * x + z * z)
        r[1][2] = 2 * (y * z - w * x)
        r[2][0] = 2 * (x * z - w * y)
        r[2][1] = 2 * (y * z + w * x)
        r[2][2] = 1 - 2 * (x * x + y * y)

    return Kernel(
        name="quat2rot",
        category="Extra",
        size_label="4 -> 3x3",
        reference=quat_to_rot,
        inputs=(("q", 4),),
        outputs=(("r", (3, 3)),),
    )


def extra_kernels():
    """A representative instance of each extension workload."""
    return [
        make_batch_dot(4, 4),
        make_matvec(3, 3),
        make_correlate_valid(6, 3),
        make_inverse2x2(),
        make_normalize(8),
        make_quat_to_rot(),
    ]
