"""The chaos invariant catalog (DESIGN.md §11).

Every chaos-campaign cell ends with these checks.  An invariant is a
property the service stack promises to hold *under any fault*, not just
on the happy path:

``typed-errors``
    Every failure surfaces as a typed :class:`repro.errors.CompileError`
    subclass -- never a raw traceback escaping the service boundary.
``cache-integrity``
    The artifact cache passes fsck with **zero corrupt entries**.
    Quarantine debris and orphaned temp files are tolerated (crash-safe
    writes produce them by design) and merely recorded.
``breaker-legality``
    Circuit-breaker transitions recorded in
    ``CompileService.breaker_log`` follow the legal protocol: strikes
    count up one at a time, ``open`` fires exactly at the threshold,
    ``reject`` only happens while open, ``close``/``reset`` return the
    kernel to zero strikes.
``bounded-wallclock``
    The cell finished inside its wall-clock budget -- no fault may turn
    into a hang the watchdogs do not catch.
``ladder-terminates``
    ``compile_spec``'s degradation ladder terminated: the cell produced
    either a usable :class:`~repro.compiler.CompileResult` (runnable
    program, C code, diagnostics) or a typed error.  Nothing in between.
``bounded-queue``
    The gateway's admission queue never exceeded its configured depth:
    overload turns into typed sheds, never into unbounded buffering
    (DESIGN.md §12).
``no-starvation``
    Under overload, the highest-priority tenant still makes progress:
    if it had admitted work while lower-priority tenants were completing
    compiles, at least one of its requests must have completed too.

Violations carry a post-mortem payload (flight-recorder dump, fired
faults, breaker log) so a red campaign is debuggable from its JSON
report alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import CompileError

__all__ = [
    "INVARIANTS",
    "Violation",
    "check_typed_error",
    "check_cache_integrity",
    "check_breaker_log",
    "check_wallclock",
    "check_ladder",
    "check_bounded_queue",
    "check_no_starvation",
    "check_phase_resume_identical",
]

#: Names of every invariant a campaign checks, for reports and docs.
INVARIANTS = (
    "typed-errors",
    "cache-integrity",
    "breaker-legality",
    "bounded-wallclock",
    "ladder-terminates",
    "bounded-queue",
    "no-starvation",
    "phase-resume-identical",
)


@dataclass
class Violation:
    """One broken invariant in one campaign cell."""

    invariant: str
    cell: str
    detail: str
    #: Debugging payload: fired faults, breaker log, flight-recorder
    #: dump -- whatever the campaign had at hand.
    post_mortem: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "cell": self.cell,
            "detail": self.detail,
            "post_mortem": _jsonable(self.post_mortem),
        }

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.cell}: {self.detail}"


def _jsonable(value: Any) -> Any:
    """Best-effort reduction of a post-mortem payload to JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ----------------------------------------------------------------------
# Checkers.  Each returns a list of Violations (empty = invariant held).
# ----------------------------------------------------------------------


def check_typed_error(
    cell: str, error: Optional[BaseException]
) -> List[Violation]:
    """``typed-errors``: a failing compile must raise a taxonomy error."""
    if error is None or isinstance(error, CompileError):
        return []
    return [
        Violation(
            "typed-errors",
            cell,
            f"raw {type(error).__name__} escaped the service: {error}",
            {"error_type": type(error).__name__, "error": str(error)},
        )
    ]


def check_cache_integrity(cell: str, cache) -> List[Violation]:
    """``cache-integrity``: fsck finds zero corrupt entries.  Debris
    (quarantine files, temp litter) is fine -- the crash-safe write
    protocol creates it deliberately."""
    if cache is None:
        return []
    report = cache.fsck(repair=False)
    if report.corrupt == 0:
        return []
    return [
        Violation(
            "cache-integrity",
            cell,
            f"fsck found {report.corrupt} corrupt cache entries",
            {"fsck": report.summary()},
        )
    ]


def check_breaker_log(
    cell: str, breaker_log: List[Dict[str, Any]], threshold: int
) -> List[Violation]:
    """``breaker-legality``: replay the transition log per kernel and
    flag any step the breaker protocol does not allow.

    ``breaker_log`` may be a plain list or the supervisor's ring-
    buffered :class:`~repro.service.supervisor.BoundedLog`.  When the
    ring has dropped entries (``breaker_log.dropped > 0``) the prefix
    of each kernel's history may be missing, so the first sighting of
    a kernel seeds its replay state from that entry instead of being
    judged against an empty history -- truncation must never manufacture
    false violations."""
    violations: List[Violation] = []
    strikes: Dict[str, int] = {}
    is_open: Dict[str, bool] = {}
    truncated = getattr(breaker_log, "dropped", 0) > 0
    seen: set = set()

    def bad(detail: str, entry: Dict[str, Any]) -> None:
        violations.append(
            Violation(
                "breaker-legality", cell, detail, {"entry": dict(entry)}
            )
        )

    for entry in breaker_log:
        kernel = str(entry.get("kernel", "?"))
        event = entry.get("event")
        count = int(entry.get("strikes", -1))
        previous = strikes.get(kernel, 0)
        if truncated and kernel not in seen:
            # Adopt the first surviving entry as this kernel's baseline.
            seen.add(kernel)
            if event == "strike":
                strikes[kernel] = count
            elif event in ("open", "reject"):
                strikes[kernel] = max(count, threshold)
                is_open[kernel] = True
            elif event in ("close", "reset"):
                strikes[kernel] = 0
                is_open[kernel] = False
            else:
                bad(f"{kernel}: unknown breaker event {event!r}", entry)
            continue
        seen.add(kernel)
        if event == "strike":
            if count != previous + 1:
                bad(
                    f"{kernel}: strike jumped {previous} -> {count} "
                    f"(must increment by one)",
                    entry,
                )
            strikes[kernel] = count
        elif event == "open":
            if count < threshold:
                bad(
                    f"{kernel}: breaker opened at {count} strikes, "
                    f"below the threshold of {threshold}",
                    entry,
                )
            if is_open.get(kernel):
                bad(f"{kernel}: breaker opened twice without a reset", entry)
            is_open[kernel] = True
        elif event == "reject":
            if not is_open.get(kernel) and previous < threshold:
                bad(
                    f"{kernel}: compile rejected with the breaker closed "
                    f"({previous} strikes < threshold {threshold})",
                    entry,
                )
        elif event in ("close", "reset"):
            strikes[kernel] = 0
            is_open[kernel] = False
        else:
            bad(f"{kernel}: unknown breaker event {event!r}", entry)
    return violations


def check_wallclock(
    cell: str, elapsed: float, budget: float
) -> List[Violation]:
    """``bounded-wallclock``: the cell may not outlive its budget."""
    if elapsed <= budget:
        return []
    return [
        Violation(
            "bounded-wallclock",
            cell,
            f"cell took {elapsed:.1f}s, budget was {budget:.1f}s",
            {"elapsed": elapsed, "budget": budget},
        )
    ]


def check_ladder(
    cell: str, result, error: Optional[BaseException]
) -> List[Violation]:
    """``ladder-terminates``: exactly one of (usable result, typed
    error), and a result must be runnable -- lowered program, generated
    C, and diagnostics all present."""
    violations: List[Violation] = []
    if result is None and error is None:
        violations.append(
            Violation(
                "ladder-terminates",
                cell,
                "compile returned neither a result nor an error",
            )
        )
        return violations
    if result is not None and error is not None:
        violations.append(
            Violation(
                "ladder-terminates",
                cell,
                "compile produced both a result and an error",
                {"error": repr(error)},
            )
        )
    if result is not None:
        problems = []
        if not getattr(result, "program", None):
            problems.append("empty lowered program")
        if not getattr(result, "c_code", ""):
            problems.append("no generated C")
        if getattr(result, "diagnostics", None) is None:
            problems.append("missing diagnostics")
        if problems:
            violations.append(
                Violation(
                    "ladder-terminates",
                    cell,
                    "degraded result is not usable: " + ", ".join(problems),
                )
            )
    return violations

def check_phase_resume_identical(
    cell: str, result, baseline_fingerprint: Optional[str]
) -> List[Violation]:
    """``phase-resume-identical``: a phased compile that crashed
    mid-plan and resumed must emit **byte-identical** VIR to an
    unfaulted compile with the same options.  Phase checkpoints are
    keyed by plan fingerprint + phase index + extend round
    (``phase_saturation_key``), so the resumed attempt restores exactly
    the interrupted round's trajectory -- any fingerprint drift means a
    stale or cross-phase checkpoint leaked into the resumed graph."""
    if result is None or baseline_fingerprint is None:
        return []
    fingerprint = result.program.fingerprint()
    if fingerprint == baseline_fingerprint:
        return []
    return [
        Violation(
            "phase-resume-identical",
            cell,
            f"resumed program fingerprint {fingerprint} differs from "
            f"the unfaulted baseline {baseline_fingerprint}",
        )
    ]


def check_bounded_queue(
    cell: str, report: Dict[str, Any], max_depth: int
) -> List[Violation]:
    """``bounded-queue``: the gateway's queue-depth watermark may never
    exceed the configured admission bound.

    ``report`` is a gateway soak/stats report; the watermark lives under
    ``queue_depth_max`` (``GatewayStats.snapshot()`` writes it)."""
    observed = int(report.get("queue_depth_max", 0))
    if observed <= max_depth:
        return []
    return [
        Violation(
            "bounded-queue",
            cell,
            f"queue depth peaked at {observed}, bound is {max_depth}",
            {"queue_depth_max": observed, "max_queue_depth": max_depth},
        )
    ]


def check_no_starvation(
    cell: str, tenants: Dict[str, Dict[str, Any]]
) -> List[Violation]:
    """``no-starvation``: the highest-priority tenant with admitted work
    must complete at least one request whenever *any* lower-priority
    tenant completed one.

    ``tenants`` maps tenant name to per-tenant counters with at least
    ``priority`` (0 = most urgent), ``admitted`` and ``completed``."""
    active = {
        name: stats
        for name, stats in tenants.items()
        if int(stats.get("admitted", 0)) > 0
    }
    if not active:
        return []
    top = min(int(stats.get("priority", 0)) for stats in active.values())
    starved = [
        name
        for name, stats in active.items()
        if int(stats.get("priority", 0)) == top
        and int(stats.get("completed", 0)) == 0
    ]
    if not starved:
        return []
    others_completed = sum(
        int(stats.get("completed", 0))
        for stats in active.values()
        if int(stats.get("priority", 0)) > top
    )
    if others_completed == 0:
        # Nobody made progress; that is an overload/bounded-wallclock
        # story, not a priority-inversion one.
        return []
    return [
        Violation(
            "no-starvation",
            cell,
            "high-priority tenant(s) %s admitted work but completed "
            "nothing while lower-priority tenants completed %d requests"
            % (", ".join(sorted(starved)), others_completed),
            {"starved": sorted(starved), "others_completed": others_completed},
        )
    ]
