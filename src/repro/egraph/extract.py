"""Extraction: selecting the best program from a (partially) saturated
e-graph.

Diospyros extracts with a strictly monotonic cost model -- an
expression's cost exceeds the sum of its subexpressions' costs -- which
makes a bottom-up fixpoint sound and keeps extraction linear-ish in the
number of e-nodes rather than the number of represented programs
(paper Section 3.4).

The algorithm is the standard one: for every e-class keep the cheapest
(cost, e-node) choice found so far; relax all classes until no choice
improves.  Cost functions may inspect the *chosen* representative of a
child class (via :meth:`Extractor.best_node`), which is how the
Diospyros data-movement model can tell a Vec gathering from one input
array apart from a cross-array gather; because a child's choice can
change between passes, we simply re-relax to fixpoint.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dsl.ast import Term
from .egraph import EGraph, ENode

__all__ = ["CostFunction", "Extractor", "ExtractionResult"]

_MAX_PASSES = 1000


class CostFunction:
    """Interface for extraction cost models.

    Implementations must be strictly monotonic: ``node_cost`` must
    return ``sum(child_costs)`` *plus a strictly positive amount*.
    The default charges 1 per node, i.e. extracts the smallest term.
    """

    def node_cost(
        self, extractor: "Extractor", node: ENode, child_costs: List[float]
    ) -> float:
        return 1.0 + sum(child_costs)


@dataclass
class ExtractionResult:
    """The extracted term for one root, with its model cost."""

    term: Term
    cost: float


class Extractor:
    """Bottom-up cost-fixpoint extractor over an e-graph snapshot."""

    def __init__(self, egraph: EGraph, cost_function: Optional[CostFunction] = None):
        self.egraph = egraph
        self.cost_function = cost_function or CostFunction()
        #: class id -> (cost, chosen node); populated by :meth:`_relax`.
        self._best: Dict[int, Tuple[float, ENode]] = {}
        self._relax()

    # ------------------------------------------------------------------

    def best_cost(self, eclass_id: int) -> Optional[float]:
        """Cost of the best term in the class, or ``None`` when the
        class contains no finishable term (can happen mid-construction
        or for classes only reachable through cycles)."""
        entry = self._best.get(self.egraph.find(eclass_id))
        return None if entry is None else entry[0]

    def best_node(self, eclass_id: int) -> Optional[ENode]:
        """The chosen representative e-node of the class."""
        entry = self._best.get(self.egraph.find(eclass_id))
        return None if entry is None else entry[1]

    def extract(self, eclass_id: int) -> ExtractionResult:
        """Materialize the chosen term rooted at ``eclass_id``."""
        cid = self.egraph.find(eclass_id)
        entry = self._best.get(cid)
        if entry is None:
            raise ValueError(f"e-class {cid} has no extractable term")
        cache: Dict[int, Term] = {}
        term = self._build_term(cid, cache)
        return ExtractionResult(term=term, cost=entry[0])

    # ------------------------------------------------------------------

    def _relax(self) -> None:
        """Run choice relaxation to fixpoint, worklist-style.

        The old implementation swept every node of every class until a
        whole pass made no improvement -- O(passes x nodes) even when
        almost nothing changes per pass.  Instead we relax
        *parent-driven*: one seed pass evaluates every (class, node)
        pair (leaves acquire their costs here), and afterwards a pair
        is only re-evaluated when one of its children's best choice
        changed.  The reverse child->users index is derived from the
        nodes themselves (the canonical form of the ``parents`` links)
        with canonical child ids memoized per pair, so each improvement
        costs exactly its fan-out.

        The cost function may inspect a child's *chosen* node via
        :meth:`best_node`; any change of a child's choice goes through
        ``best`` and re-queues all users, so the hook stays sound.

        A work cap of ``_MAX_PASSES`` evaluations per node replicates
        the old non-convergence guard: a non-monotonic cost model on a
        cyclic graph keeps "improving" forever and trips it.
        """
        egraph = self.egraph
        find = egraph.find
        best = self._best
        cost_fn = self.cost_function

        # All (canonical class, node, canonical child ids) triples plus
        # the reverse index: child class -> triples that consume it.
        pairs: List[Tuple[int, ENode, Tuple[int, ...]]] = []
        users: Dict[int, List[int]] = {}
        for eclass in egraph.classes():
            cid = find(eclass.id)
            for node in eclass.nodes:
                kids = tuple(find(c) for c in node.children)
                idx = len(pairs)
                pairs.append((cid, node, kids))
                for k in set(kids):
                    users.setdefault(k, []).append(idx)

        total = len(pairs)
        ops_cap = _MAX_PASSES * max(1, total)
        ops = 0

        worklist = deque(range(total))
        queued = [True] * total

        while worklist:
            idx = worklist.popleft()
            queued[idx] = False
            ops += 1
            if ops > ops_cap:
                raise RuntimeError(
                    "extraction did not converge; is the cost function "
                    "strictly monotonic?"
                )
            cid, node, kids = pairs[idx]
            child_entries = [best.get(k) for k in kids]
            if any(entry is None for entry in child_entries):
                # Not yet extractable; when a child gains an entry its
                # users (this pair included) are re-queued.
                continue
            child_costs = [entry[0] for entry in child_entries]  # type: ignore[index]
            cost = cost_fn.node_cost(self, node, child_costs)
            current = best.get(cid)
            if current is None or cost < current[0] - 1e-12:
                best[cid] = (cost, node)
                for uidx in users.get(cid, ()):
                    if not queued[uidx]:
                        queued[uidx] = True
                        worklist.append(uidx)

    def _build_term(self, cid: int, cache: Dict[int, Term]) -> Term:
        cid = self.egraph.find(cid)
        hit = cache.get(cid)
        if hit is not None:
            return hit
        entry = self._best.get(cid)
        if entry is None:
            raise ValueError(f"e-class {cid} has no extractable term")
        node = entry[1]
        args = tuple(self._build_term(c, cache) for c in node.children)
        term = Term(node.op, args, node.value)
        cache[cid] = term
        return term
