"""Unit tests for the term representation (repro.dsl.ast)."""

import pytest

from repro.dsl import ast
from repro.dsl.ast import (
    Term,
    add,
    get,
    lst,
    map_terms,
    mul,
    num,
    sub,
    substitute,
    subterms,
    sym,
    term_depth,
    term_size,
    unique_size,
    vec,
    vec_mac,
)


class TestConstruction:
    def test_num_leaf(self):
        t = num(3)
        assert t.op == "Num"
        assert t.value == 3
        assert t.is_leaf and t.is_num and not t.is_symbol

    def test_float_num(self):
        assert num(2.5).value == 2.5

    def test_symbol_leaf(self):
        t = sym("a")
        assert t.op == "Symbol"
        assert t.value == "a"
        assert t.is_symbol

    def test_get_coerces_strings_and_ints(self):
        t = get("a", 3)
        assert t.op == "Get"
        assert t.args[0] == sym("a")
        assert t.args[1] == num(3)

    def test_leaf_requires_value(self):
        with pytest.raises(ValueError):
            Term("Num")

    def test_leaf_rejects_children(self):
        with pytest.raises(ValueError):
            Term("Num", (num(1),), 2)

    def test_non_leaf_rejects_value(self):
        with pytest.raises(ValueError):
            Term("+", (num(1), num(2)), 7)

    def test_call_carries_name(self):
        t = ast.call("square", num(3))
        assert t.op == "Call"
        assert t.value == "square"
        assert len(t.args) == 1

    def test_vec_requires_lane(self):
        with pytest.raises(ValueError):
            vec()

    def test_list_requires_element(self):
        with pytest.raises(ValueError):
            lst()


class TestEquality:
    def test_structural_equality(self):
        assert add(num(1), sym("x")) == add(num(1), sym("x"))

    def test_hash_consistency(self):
        a = mul(get("a", 0), get("b", 1))
        b = mul(get("a", 0), get("b", 1))
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_value_distinguishes(self):
        assert num(1) != num(2)
        assert sym("a") != sym("b")

    def test_op_distinguishes(self):
        assert add(num(1), num(2)) != mul(num(1), num(2))

    def test_arg_order_matters(self):
        assert sub(sym("a"), sym("b")) != sub(sym("b"), sym("a"))

    def test_int_and_float_values_compare_like_python(self):
        # Python's 0 == 0.0; terms inherit that (harmless: semantics agree).
        assert num(0) == num(0.0)

    def test_not_equal_to_non_term(self):
        assert num(1) != 1
        assert not (num(1) == 1)


class TestZeroOne:
    def test_is_zero(self):
        assert num(0).is_zero()
        assert num(0.0).is_zero()
        assert not num(1).is_zero()
        assert not sym("a").is_zero()

    def test_is_one(self):
        assert num(1).is_one()
        assert not num(0).is_one()


class TestDisplay:
    def test_sexpr_roundtrip_shape(self):
        t = add(get("a", 0), mul(num(2), sym("x")))
        assert t.to_sexpr() == "(+ (Get a 0) (* 2 x))"

    def test_float_integral_renders_as_int(self):
        assert num(2.0).to_sexpr() == "2"

    def test_call_renders_name(self):
        assert ast.call("f", num(1)).to_sexpr() == "(f 1)"

    def test_repr_contains_sexpr(self):
        assert "(Get a 0)" in repr(get("a", 0))


class TestStructure:
    def test_subterms_preorder(self):
        t = add(num(1), mul(num(2), num(3)))
        ops = [s.op for s in subterms(t)]
        assert ops == ["+", "Num", "*", "Num", "Num"]

    def test_term_size_counts_occurrences(self):
        shared = get("a", 0)
        t = add(shared, shared)
        assert term_size(t) == 7  # +, 2 * (Get, Symbol, Num)

    def test_unique_size_counts_dag(self):
        shared = get("a", 0)
        t = add(shared, shared)
        assert unique_size(t) == 4  # +, Get, Symbol, Num

    def test_depth(self):
        assert term_depth(num(1)) == 1
        assert term_depth(add(num(1), mul(num(2), num(3)))) == 3

    def test_substitute_replaces_all(self):
        t = add(sym("x"), mul(sym("x"), num(2)))
        result = substitute(t, {sym("x"): num(5)})
        assert result == add(num(5), mul(num(5), num(2)))

    def test_substitute_no_match_returns_same(self):
        t = add(num(1), num(2))
        assert substitute(t, {sym("q"): num(0)}) == t

    def test_map_terms_rewrites_bottom_up(self):
        t = add(num(1), num(2))

        def fold(node):
            if node.op == "+" and node.args[0].is_num and node.args[1].is_num:
                return num(node.args[0].value + node.args[1].value)
            return None

        assert map_terms(t, fold) == num(3)

    def test_map_terms_nested_fold(self):
        t = add(add(num(1), num(2)), num(3))

        def fold(node):
            if node.op == "+" and all(a.is_num for a in node.args):
                return num(sum(a.value for a in node.args))
            return None

        assert map_terms(t, fold) == num(6)


class TestConstructors:
    def test_vec_mac_arity(self):
        t = vec_mac(sym("a"), sym("b"), sym("c"))
        assert t.op == "VecMAC"
        assert len(t.args) == 3

    def test_all_vector_constructors(self):
        a, b = vec(num(1), num(2)), vec(num(3), num(4))
        assert ast.vec_add(a, b).op == "VecAdd"
        assert ast.vec_minus(a, b).op == "VecMinus"
        assert ast.vec_mul(a, b).op == "VecMul"
        assert ast.vec_div(a, b).op == "VecDiv"
        assert ast.vec_neg(a).op == "VecNeg"
        assert ast.vec_sqrt(a).op == "VecSqrt"
        assert ast.vec_sgn(a).op == "VecSgn"
        assert ast.concat(a, b).op == "Concat"

    def test_scalar_constructors(self):
        assert ast.neg(num(1)).op == "neg"
        assert ast.sqrt(num(4)).op == "sqrt"
        assert ast.sgn(num(-2)).op == "sgn"
        assert ast.div(num(1), num(2)).op == "/"
