"""2-D convolution kernels (the paper's motivating example, Section 2).

A "full" 2-D convolution: the input is zero-padded at the boundary and
the output is larger than the input, ``(iR + fR - 1) x (iC + fC - 1)``.
The boundary ``if`` is the feature that defeats loop vectorizers --
for these sizes *every* iteration is a boundary condition.
"""

from __future__ import annotations

from .base import Kernel

__all__ = ["make_conv2d", "conv2d_reference"]


def conv2d_reference(i_rows: int, i_cols: int, f_rows: int, f_cols: int):
    """The reference loop nest, a direct transliteration of the C code
    in Section 2 (with the filter transposition indices fRT/fCT)."""

    def conv2d(inp, filt, out) -> None:
        for o_row in range(i_rows + f_rows - 1):
            for o_col in range(i_cols + f_cols - 1):
                for f_row in range(f_rows):
                    for f_col in range(f_cols):
                        f_rt = f_rows - 1 - f_row
                        f_ct = f_cols - 1 - f_col
                        i_row = o_row - f_rt
                        i_col = o_col - f_ct
                        if 0 <= i_row < i_rows and 0 <= i_col < i_cols:
                            out[o_row][o_col] += inp[i_row][i_col] * filt[f_rt][f_ct]

    return conv2d


def make_conv2d(i_rows: int, i_cols: int, f_rows: int, f_cols: int) -> Kernel:
    """A fixed-size 2-D convolution kernel instance."""
    o_rows = i_rows + f_rows - 1
    o_cols = i_cols + f_cols - 1
    return Kernel(
        name=f"2dconv-{i_rows}x{i_cols}-{f_rows}x{f_cols}",
        category="2DConv",
        size_label=f"{i_rows}x{i_cols}, {f_rows}x{f_cols}",
        reference=conv2d_reference(i_rows, i_cols, f_rows, f_cols),
        inputs=(("i", (i_rows, i_cols)), ("f", (f_rows, f_cols))),
        outputs=(("o", (o_rows, o_cols)),),
        params={
            "i_rows": i_rows,
            "i_cols": i_cols,
            "f_rows": f_rows,
            "f_cols": f_cols,
        },
    )
