"""Section 5.7 reproduction: the Theia application case study.

Runs ``DecomposeProjectionMatrix`` twice -- with Eigen's generic QR
and with the Diospyros-compiled QR -- and reports per-stage cycles,
the QR share of the baseline (paper: 61%), and the end-to-end speedup
(paper: 2.1x, 64,025 vs 30,552 cycles on the real hardware model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..apps.theia import (
    TheiaResult,
    decompose_projection_matrix,
    diospyros_qr_program,
    eigen_qr_program,
)
from ..compiler import CompileOptions
from .common import Budget, DEFAULT_BUDGET, render_table

__all__ = ["CaseStudyResult", "run_casestudy", "render_casestudy"]

PAPER_SPEEDUP = 2.1
PAPER_QR_SHARE = 0.61
PAPER_BASELINE_CYCLES = 64_025
PAPER_OPTIMIZED_CYCLES = 30_552


@dataclass
class CaseStudyResult:
    baseline: TheiaResult
    optimized: TheiaResult

    @property
    def speedup(self) -> float:
        return self.baseline.total_cycles / self.optimized.total_cycles

    @property
    def qr_share_baseline(self) -> float:
        return self.baseline.qr_share

    @property
    def outputs_match(self) -> bool:
        pairs = [
            (self.baseline.calibration, self.optimized.calibration),
            (self.baseline.rotation_rq, self.optimized.rotation_rq),
            (self.baseline.position, self.optimized.position),
        ]
        for expected, actual in pairs:
            for a, b in zip(expected, actual):
                if abs(a - b) > 1e-3 * max(1.0, abs(a)):
                    return False
        return True


def run_casestudy(budget: Budget = DEFAULT_BUDGET) -> CaseStudyResult:
    """Compile the Diospyros QR under ``budget`` and run both
    configurations of the camera-model decomposition."""
    qr_options = budget.options(select_best_candidate=True)
    optimized_qr = diospyros_qr_program(qr_options)
    baseline = decompose_projection_matrix(qr_program=eigen_qr_program())
    optimized = decompose_projection_matrix(qr_program=optimized_qr)
    return CaseStudyResult(baseline=baseline, optimized=optimized)


def render_casestudy(result: CaseStudyResult) -> str:
    stages = sorted(result.baseline.stage_cycles)
    table = render_table(
        ["Stage", "Eigen baseline (cycles)", "Diospyros QR (cycles)"],
        [
            [s, result.baseline.stage_cycles[s], result.optimized.stage_cycles[s]]
            for s in stages
        ]
        + [["TOTAL", result.baseline.total_cycles, result.optimized.total_cycles]],
        title="Section 5.7: Theia DecomposeProjectionMatrix on the simulator",
    )
    return (
        f"{table}\n\n"
        f"QR share of baseline runtime: {result.qr_share_baseline:.0%} "
        f"(paper: {PAPER_QR_SHARE:.0%})\n"
        f"End-to-end speedup: {result.speedup:.2f}x (paper: {PAPER_SPEEDUP}x, "
        f"{PAPER_BASELINE_CYCLES} vs {PAPER_OPTIMIZED_CYCLES} cycles)\n"
        f"Outputs agree across configurations: {result.outputs_match}"
    )
