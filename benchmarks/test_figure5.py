"""Figure 5 regeneration (experiment F5 in DESIGN.md).

For every Table 1 kernel and every implementation (Diospyros + the
four baselines) this benchmarks the *simulated execution* and records
cycle counts; the summary test computes the paper's headline geomean
and checks the qualitative shapes:

* Diospyros beats Naive (fixed size) on every 2DConv and MatMul row;
* Naive (parametric) is slower than Naive (fixed size);
* Nature loses on tiny matmuls (generic-dispatch overhead) and beats
  fixed-size scalar code on large ones;
* every implementation computes bit-for-bit what the reference does.
"""

import pytest

from conftest import compile_cached, run_checked
from repro.baselines import baseline_program
from repro.evaluation.common import geomean, measure
from repro.kernels import get_kernel, table1_kernels
from repro.machine import simulate

KERNELS = table1_kernels()
IMPLEMENTATIONS = ("diospyros", "naive", "naive-fixed", "nature", "eigen", "expert")

_cycles = {}


def _program_for(name, kernel):
    if name == "diospyros":
        return compile_cached(kernel).program
    return baseline_program(name, kernel)


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
@pytest.mark.parametrize("impl", IMPLEMENTATIONS)
def test_figure5_cell(benchmark, kernel, impl):
    program = _program_for(impl, kernel)
    if program is None:
        pytest.skip(f"{impl} does not provide {kernel.name}")
    inputs = kernel.random_inputs(0)
    reference = kernel.reference_outputs(inputs)

    result = benchmark(simulate, program, inputs)

    produced = result.output("out")[: len(reference)]
    for got, want in zip(produced, reference):
        assert abs(got - want) <= 1e-4 * max(1.0, abs(want))
    _cycles[(kernel.name, impl)] = result.cycles
    benchmark.extra_info["cycles"] = result.cycles
    benchmark.extra_info["size"] = kernel.size_label


def _cycles_of(kernel_name, impl):
    key = (kernel_name, impl)
    if key not in _cycles:
        kernel = get_kernel(kernel_name)
        program = _program_for(impl, kernel)
        if program is None:
            return None
        _cycles[key] = measure(program, kernel)[0]
    return _cycles[key]


def _ratios():
    ratios = []
    for kernel in KERNELS:
        dio = _cycles_of(kernel.name, "diospyros")
        best = min(
            c
            for impl in ("naive", "naive-fixed", "nature", "eigen")
            if (c := _cycles_of(kernel.name, impl)) is not None
        )
        ratios.append(best / dio)
    return ratios


class TestFigure5Shapes:
    def test_geomean_speedup_over_best_baseline(self, benchmark):
        """Paper headline: geomean 3.1x over the best non-expert
        baseline.  We accept the band [1.5x, 6x]: the shape claim is
        'several-fold', not the exact constant."""

        def check():
            gm = geomean(_ratios())
            print(f"\nFigure 5 geomean vs best baseline: {gm:.2f}x (paper 3.1x)")
            assert 1.5 <= gm <= 6.0
            return gm

        benchmark.extra_info["geomean"] = run_checked(benchmark, check)

    @pytest.mark.parametrize(
        "kernel",
        [k for k in KERNELS if k.category in ("2DConv", "MatMul")],
        ids=lambda k: k.name,
    )
    def test_diospyros_beats_naive_fixed(self, benchmark, kernel):
        run_checked(
            benchmark,
            lambda: _check_less(
                _cycles_of(kernel.name, "diospyros"),
                _cycles_of(kernel.name, "naive-fixed"),
            ),
        )

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
    def test_parametric_naive_slowest_naive(self, benchmark, kernel):
        run_checked(
            benchmark,
            lambda: _check_less(
                _cycles_of(kernel.name, "naive-fixed"),
                _cycles_of(kernel.name, "naive") + 1,
            ),
        )

    def test_nature_loses_small_wins_large_matmul(self, benchmark):
        def check():
            assert _cycles_of("matmul-2x2-2x2", "nature") > _cycles_of(
                "matmul-2x2-2x2", "naive-fixed"
            )  # the paper's 2x2 observation
            assert _cycles_of("matmul-16x16-16x16", "nature") < _cycles_of(
                "matmul-16x16-16x16", "naive-fixed"
            )

        run_checked(benchmark, check)

    def test_nature_conv_wins_at_large_sizes(self, benchmark):
        run_checked(
            benchmark,
            lambda: _check_less(
                _cycles_of("2dconv-16x16-4x4", "nature"),
                _cycles_of("2dconv-16x16-4x4", "naive-fixed"),
            ),
        )


def _check_less(a, b):
    assert a < b, f"{a} !< {b}"


class TestExpertComparison:
    """Experiment E-expert: Section 5.4's hand-tuned kernel."""

    def test_same_vector_op_mix(self, benchmark):
        def check():
            kernel = get_kernel("matmul-2x3-3x3")
            hist = compile_cached(kernel).program.opcode_histogram()
            expert_hist = baseline_program("expert", kernel).opcode_histogram()
            assert hist.get("vbin.*") == expert_hist.get("vbin.*") == 2
            assert hist.get("vmac") == expert_hist.get("vmac") == 4

        run_checked(benchmark, check)

    def test_within_striking_distance_of_expert(self, benchmark):
        """Paper: within 8%.  Our backend is younger; accept <= 60%
        overhead while asserting the same order of magnitude."""

        def check():
            dio = _cycles_of("matmul-2x3-3x3", "diospyros")
            expert = _cycles_of("matmul-2x3-3x3", "expert")
            print(f"\nExpert comparison: diospyros {dio} vs expert {expert}")
            assert expert <= dio <= expert * 1.6

        run_checked(benchmark, check)
