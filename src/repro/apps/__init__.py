"""Application case studies (paper Section 5.7)."""

from .theia import (
    DEFAULT_PROJECTION_MATRIX,
    TheiaResult,
    decompose_projection_matrix,
    diospyros_qr_program,
    eigen_qr_program,
)

__all__ = [
    "DEFAULT_PROJECTION_MATRIX",
    "TheiaResult",
    "decompose_projection_matrix",
    "diospyros_qr_program",
    "eigen_qr_program",
]
