"""Sketch-guided phased saturation (DESIGN.md §13).

Splits one monolithic equality-saturation run into an ordered sequence
of *phases* -- each with its own rule subset, budgets, and goal sketch
-- extracting and re-seeding a fresh e-graph between phases.  This is
the repo's rendering of *Sketch-Guided Equality Saturation* (PAPERS.md)
and the mechanism that compiles kernels whose monolithic runs blow the
node budget (2DConv 8x8/4x4, MatMul 16x16; see EXPERIMENTS.md).

* :mod:`.sketch`  -- the goal-sketch DSL (shape predicates over terms).
* :mod:`.plan`    -- declarative :class:`PhasePlan` / :class:`Phase`,
  the shipped :func:`default_plan`, and the JSON form behind the
  ``--phase-plan`` CLI knob.
* :mod:`.execute` -- the executor wiring phases through the existing
  ``Runner``, with per-phase crash-recoverable checkpoints and
  observability.
"""

from .sketch import (
    All,
    AnyOf,
    Contains,
    CountAtLeast,
    NoneOf,
    NoneUnder,
    Not,
    Sketch,
    sketch_from_json,
)
from .plan import (
    ON_MISS_POLICIES,
    Phase,
    PhasePlan,
    default_plan,
    load_plan_file,
    plan_from_json,
)
from .execute import (
    PhaseExecution,
    PhaseReport,
    PhaseRoundReport,
    PlanReport,
    SketchBiasedCost,
    execute_plan,
)

__all__ = [
    "Sketch",
    "Contains",
    "CountAtLeast",
    "NoneOf",
    "NoneUnder",
    "Not",
    "All",
    "AnyOf",
    "sketch_from_json",
    "ON_MISS_POLICIES",
    "Phase",
    "PhasePlan",
    "default_plan",
    "plan_from_json",
    "load_plan_file",
    "SketchBiasedCost",
    "PhaseRoundReport",
    "PhaseReport",
    "PlanReport",
    "PhaseExecution",
    "execute_plan",
]
