#!/usr/bin/env python3
"""The paper's motivating example (Section 2): a fixed-size 2-D
convolution whose boundary conditions defeat loop vectorizers.

This script compiles the 3x5-input, 3x3-filter convolution, shows the
irregular data-movement strategy equality saturation discovers
(VecMAC chains over shuffled operand vectors), and races it against
the Naive, Naive-fixed-size, and Nature-library baselines on the
simulated DSP.

Run:  python examples/convolution.py
"""

from repro.baselines import baseline_program
from repro.compiler import CompileOptions, compile_spec
from repro.kernels import make_conv2d
from repro.machine import simulate


def main() -> None:
    kernel = make_conv2d(3, 5, 3, 3)
    spec = kernel.spec()
    print(f"=== {kernel.name}: {spec.n_outputs} outputs ===")
    print("\nSpec of output (1,1) -- the expression the paper lists:")
    print(f"  {spec.term.args[8].to_sexpr()}")
    print("(the corner output (0,0) has a single tap: "
          f"{spec.term.args[0].to_sexpr()})")

    print("\ncompiling with equality saturation (10 s budget)...")
    result = compile_spec(
        spec, CompileOptions(time_limit=10.0, node_limit=150_000, validate=True)
    )
    print(f"  {result.summary()}")
    print(f"  validated: {result.validated}")
    macs = result.optimized.to_sexpr().count("VecMAC")
    print(f"  fused multiply-accumulates in the extracted program: {macs}")

    inputs = kernel.random_inputs(0)
    reference = kernel.reference_outputs(inputs)

    rows = []
    dio = simulate(result.program, inputs)
    assert all(
        abs(a - b) < 1e-4 * max(1, abs(b))
        for a, b in zip(dio.output("out"), reference)
    )
    rows.append(("diospyros", dio.cycles))

    for name in ("naive", "naive-fixed", "nature"):
        program = baseline_program(name, kernel)
        run = simulate(program, inputs)
        assert all(
            abs(a - b) < 1e-4 * max(1, abs(b))
            for a, b in zip(run.output("out")[: len(reference)], reference)
        )
        rows.append((name, run.cycles))

    print("\nsimulated cycles (all outputs checked against the reference):")
    fixed = dict(rows)["naive-fixed"]
    for name, cycles in sorted(rows, key=lambda r: r[1]):
        print(f"  {name:<12} {cycles:>8.0f} cycles   "
              f"({fixed / cycles:.2f}x vs naive-fixed)")


if __name__ == "__main__":
    main()
