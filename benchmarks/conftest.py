"""Shared infrastructure for the benchmark harness.

Each ``benchmarks/test_*.py`` regenerates one paper artifact (see
DESIGN.md's experiment index).  Compilations are cached per session so
Table 1, Figure 5, and the ablations don't recompile the same kernels.

The saturation budget defaults to 4 seconds per kernel (the paper's
180 s scaled for a pure-Python engine and a CI-friendly total run
time); set ``REPRO_BENCH_SECONDS`` for longer runs, e.g.::

    REPRO_BENCH_SECONDS=18 pytest benchmarks/ --benchmark-only
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from repro.compiler import CompileResult
from repro.evaluation.common import Budget, compile_kernel_with_budget

BENCH_SECONDS = float(os.environ.get("REPRO_BENCH_SECONDS", "4.0"))

BENCH_BUDGET = Budget(
    paper_seconds=180.0,
    seconds=BENCH_SECONDS,
    node_limit=150_000,
    iter_limit=60,
)

_COMPILE_CACHE = {}


def compile_cached(kernel, **overrides) -> CompileResult:
    """Compile a kernel once per session per option set."""
    key = (kernel.name, tuple(sorted(overrides.items())))
    if key not in _COMPILE_CACHE:
        _COMPILE_CACHE[key] = compile_kernel_with_budget(
            kernel, BENCH_BUDGET, **overrides
        )
    return _COMPILE_CACHE[key]


@pytest.fixture(scope="session")
def budget() -> Budget:
    return BENCH_BUDGET


def run_checked(benchmark, fn):
    """Run a shape-assertion callable under the benchmark fixture so
    that ``--benchmark-only`` sessions still execute it (tests that do
    not touch the fixture are skipped in that mode)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
