"""Deterministic fault injection: named seams, seeded plans, no-op off.

Diospyros-style saturation is a long-running, resource-hungry process;
every recovery path the service stack grew (retries, circuit breaker,
watchdogs, cache quarantine, the degradation ladder) is only as
trustworthy as the faults it has actually seen.  This module turns
"the faults a test author anticipated" into a *systematic surface*:

* **Injection points** are named seams (``cache.read``,
  ``worker.spawn``, ``runner.iteration``, ``validate.lane``, ...)
  instrumented throughout the service, the saturation runner, the
  backend, and validation.  Every seam is registered in :data:`SITES`
  with its scope and supported fault family, so a typo in a plan is an
  error, not a silent no-op.  With no plan installed a seam costs one
  global load and a ``None`` check.

* A :class:`FaultPlan` is a *seeded, deterministic* schedule of
  :class:`FaultSpec` entries: fire on the Nth hit of a seam, or with
  probability ``p`` per hit drawn from the PR 5 domain-separated RNG
  (:func:`repro.seeding.stable_seed`), optionally restricted to
  specific service retry attempts.  Two processes given the same plan
  observe the same faults -- which is what makes a chaos campaign
  replayable and a violation shrinkable.

* **Fault actions** cover the real blast radii: raise a typed
  :class:`repro.errors.InjectedFaultError`, SIGKILL the current
  process, sleep past a deadline, bit-flip or truncate a byte payload,
  fake ``ENOSPC``/``EIO`` on IO, and trip seam-interpreted flags (drop
  a worker result, trip the memory watchdog).

The plan is installed process-globally (:func:`install_plan` /
:func:`active_plan`); the compile service forwards the ambient plan to
its sandboxed workers on the :class:`~repro.service.worker.CompileTask`
so worker-side seams fire inside the real subprocess, exercising the
real kill/retry/resume machinery rather than monkeypatched stand-ins.
"""

from __future__ import annotations

import errno
import fnmatch
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import InjectedFaultError
from ..seeding import stable_seed

__all__ = [
    "SiteInfo",
    "SITES",
    "PAYLOAD_ACTIONS",
    "FLAG_ACTIONS",
    "RAISE_ACTIONS",
    "ALL_ACTIONS",
    "FaultSpec",
    "FaultPlan",
    "install_plan",
    "clear_plan",
    "current_plan",
    "active_plan",
    "set_attempt",
    "chaos_point",
    "chaos_flag",
]


@dataclass(frozen=True)
class SiteInfo:
    """Registry entry for one injection seam."""

    name: str
    #: ``point`` seams execute generic actions (raise/sigkill/sleep/io
    #: errors), ``payload`` seams additionally support corrupt/truncate
    #: transforms of a bytes payload, ``flag`` seams only report that a
    #: fault fired and implement the effect themselves.
    kind: str
    #: ``parent`` seams run in the supervisor process, ``worker`` seams
    #: inside the (possibly sandboxed) compile; campaign builders must
    #: not schedule process-killing actions at parent seams.
    where: str
    description: str


#: Every instrumented seam.  Keep in sync with the call sites; the
#: chaos campaign enumerates this table and FaultPlan validates
#: against it.
SITES: Dict[str, SiteInfo] = {
    s.name: s
    for s in (
        SiteInfo("cache.read", "payload", "parent",
                 "artifact-cache entry bytes after the disk read"),
        SiteInfo("cache.write", "point", "parent",
                 "artifact-cache store, before the temp-file write"),
        SiteInfo("worker.spawn", "flag", "parent",
                 "supervisor about to fork a sandboxed worker"),
        SiteInfo("worker.result", "flag", "parent",
                 "supervisor received a worker's result message "
                 "(firing drops it, simulating a lost pipe)"),
        SiteInfo("runner.iteration", "point", "worker",
                 "top of each equality-saturation iteration"),
        SiteInfo("runner.memory", "flag", "worker",
                 "memory-watchdog poll (firing trips the limit)"),
        SiteInfo("checkpoint.write", "point", "worker",
                 "persistent saturation checkpoint, before the write"),
        SiteInfo("checkpoint.read", "payload", "worker",
                 "persistent saturation checkpoint bytes after the read"),
        SiteInfo("extract.start", "point", "worker",
                 "start of cost-based extraction"),
        SiteInfo("lower.start", "point", "worker",
                 "start of lowering an extracted term"),
        SiteInfo("validate.lane", "point", "worker",
                 "validation of one output lane"),
        SiteInfo("gateway.enqueue", "point", "parent",
                 "gateway admission, after rate-limit/depth checks "
                 "passed (a 'sleep' here is a queue-delay spike)"),
        SiteInfo("gateway.dispatch", "point", "parent",
                 "gateway dispatcher dequeued a request, before the "
                 "compile executes"),
        SiteInfo("gateway.flood", "flag", "parent",
                 "soak-harness arrival tick (firing turns one arrival "
                 "into a burst from the flood tenant)"),
        SiteInfo("gateway.client", "flag", "parent",
                 "soak-harness client about to await its response "
                 "(firing makes it a slow-loris that walks away)"),
    )
}

#: Actions only meaningful at ``payload`` seams.
PAYLOAD_ACTIONS = ("corrupt", "truncate")
#: Seam-interpreted actions at ``flag`` seams (the seam implements the
#: effect; the names document intent in campaign reports).
FLAG_ACTIONS = ("drop", "spawnfail", "memtrip", "flag")
#: Generic actions every ``point`` seam executes directly.
RAISE_ACTIONS = ("raise", "oserror", "enospc", "sigkill", "sleep")
ALL_ACTIONS = RAISE_ACTIONS + PAYLOAD_ACTIONS + FLAG_ACTIONS


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: where, what, and when it fires.

    Exactly one of ``nth`` (1-based hit index of the seam) or
    ``probability`` (per-hit chance, drawn deterministically from the
    plan seed) selects the firing policy; ``nth=1`` is the default.
    ``attempts`` optionally restricts firing to specific 0-based
    service retry attempts -- "crash attempt 0, succeed on the retry"
    is ``attempts=(0,)``.  ``max_fires`` bounds total firings
    (``None`` = unbounded).
    """

    site: str
    action: str
    nth: Optional[int] = None
    probability: Optional[float] = None
    attempts: Optional[Tuple[int, ...]] = None
    max_fires: Optional[int] = 1
    #: Sleep duration of the ``sleep`` action, seconds.
    seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.action not in ALL_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} (choose from "
                f"{', '.join(ALL_ACTIONS)})"
            )
        if self.nth is not None and self.probability is not None:
            raise ValueError("give nth or probability, not both")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def matches_site(self, site: str) -> bool:
        if self.site == site:
            return True
        return ("*" in self.site or "?" in self.site) and fnmatch.fnmatchcase(
            site, self.site
        )


class FaultPlan:
    """A seeded, deterministic schedule of faults.

    Thread-compatible (hit counters behind a lock) and picklable (it
    crosses the supervisor -> worker pipe on the
    :class:`~repro.service.worker.CompileTask`).  Per-hit probability
    draws use ``stable_seed(seed, "chaos", site, hit_index)`` so the
    decision for the Kth hit of a seam is a pure function of the plan
    seed -- independent of thread timing, ``PYTHONHASHSEED``, and every
    other seam's traffic.
    """

    def __init__(self, specs: List[FaultSpec], seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = seed
        #: Ambient 0-based service attempt index, set by the worker /
        #: supervisor via :func:`set_attempt` before the compile runs.
        self.attempt = 0
        self._hits: Dict[str, int] = {}
        self._fires: Dict[int, int] = {}
        #: Log of every firing: (site, action, hit index, attempt).
        self.fired: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        for spec in self.specs:
            if "*" in spec.site or "?" in spec.site:
                if not any(spec.matches_site(s) for s in SITES):
                    raise ValueError(
                        f"fault site pattern {spec.site!r} matches no "
                        f"registered injection point"
                    )
            elif spec.site not in SITES:
                raise ValueError(
                    f"unknown fault site {spec.site!r} (registered: "
                    f"{', '.join(sorted(SITES))})"
                )

    # -- pickling (the lock must not cross the pipe) -------------------

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def hits(self, site: str) -> int:
        return self._hits.get(site, 0)

    def fire(self, site: str) -> Optional[FaultSpec]:
        """Record one hit of ``site``; return the spec that fires on
        this hit, if any (first matching spec wins)."""
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            for index, spec in enumerate(self.specs):
                if not spec.matches_site(site):
                    continue
                if spec.attempts is not None and self.attempt not in spec.attempts:
                    continue
                fires = self._fires.get(index, 0)
                if spec.max_fires is not None and fires >= spec.max_fires:
                    continue
                if spec.nth is not None:
                    if hit != spec.nth:
                        continue
                elif spec.probability is not None:
                    draw = stable_seed(self.seed, "chaos", site, hit) / float(
                        1 << 63
                    )
                    if draw >= spec.probability:
                        continue
                # nth=None and probability=None: fire on the first hit.
                elif hit != 1:
                    continue
                self._fires[index] = fires + 1
                self.fired.append(
                    {
                        "site": site,
                        "action": spec.action,
                        "hit": hit,
                        "attempt": self.attempt,
                    }
                )
                return spec
        return None


# ----------------------------------------------------------------------
# Ambient plan (the seams consult one process-global slot)
# ----------------------------------------------------------------------

#: A module global rather than a contextvar: seams fire from the
#: supervisor's worker threads and from forked children, both of which
#: must see the plan installed by the campaign runner.
_PLAN: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan], attempt: int = 0) -> None:
    """Install ``plan`` process-globally (``None`` clears)."""
    global _PLAN
    if plan is not None:
        plan.attempt = attempt
    _PLAN = plan


def clear_plan() -> None:
    install_plan(None)


def current_plan() -> Optional[FaultPlan]:
    return _PLAN


class active_plan:
    """Context manager installing a plan for a dynamic extent."""

    def __init__(self, plan: Optional[FaultPlan], attempt: int = 0) -> None:
        self.plan = plan
        self.attempt = attempt
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> Optional[FaultPlan]:
        self._previous = current_plan()
        install_plan(self.plan, self.attempt)
        return self.plan

    def __exit__(self, exc_type, exc, tb) -> bool:
        install_plan(self._previous)
        return False


def set_attempt(attempt: int) -> None:
    """Tell the ambient plan which service attempt is running (no-op
    without a plan)."""
    plan = _PLAN
    if plan is not None:
        plan.attempt = attempt


# ----------------------------------------------------------------------
# Seam helpers (the instrumented call sites)
# ----------------------------------------------------------------------


def chaos_point(site: str, payload: Optional[bytes] = None) -> Optional[bytes]:
    """Generic seam: executes a firing fault and returns the (possibly
    transformed) payload.  No-op -- one global load -- without a plan."""
    plan = _PLAN
    if plan is None:
        return payload
    spec = plan.fire(site)
    if spec is None:
        return payload
    return _execute(spec, site, payload)


def chaos_flag(site: str) -> bool:
    """Flag seam: returns True when a fault fires here; the call site
    implements the effect (drop a message, trip a watchdog, ...)."""
    plan = _PLAN
    if plan is None:
        return False
    return plan.fire(site) is not None


def _announce(site: str, action: str) -> None:
    """Stamp the fault on stderr before executing it: real crashes
    leave a trace there, and the supervisor's stderr-tail capture (and
    therefore every post-mortem) is tested against this line."""
    import sys

    print(f"injected chaos fault: {action} at {site}", file=sys.stderr,
          flush=True)


def _execute(
    spec: FaultSpec, site: str, payload: Optional[bytes]
) -> Optional[bytes]:
    action = spec.action
    _announce(site, action)
    if action == "raise":
        raise InjectedFaultError(
            f"injected fault at {site}", site=site, action=action
        )
    if action == "oserror":
        raise OSError(errno.EIO, f"injected I/O error at {site}")
    if action == "enospc":
        raise OSError(errno.ENOSPC, f"injected ENOSPC at {site}")
    if action == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
        raise RuntimeError("unreachable: SIGKILL returned")  # pragma: no cover
    if action == "sleep":
        time.sleep(spec.seconds)
        return payload
    if action == "corrupt":
        if payload:
            index = len(payload) // 2
            return payload[:index] + bytes([payload[index] ^ 0xFF]) + payload[
                index + 1:
            ]
        return payload
    if action == "truncate":
        if payload:
            return payload[: len(payload) // 2]
        return payload
    # Flag-family actions reaching a generic seam behave like "raise"
    # so a mis-targeted plan is loud instead of silently inert.
    raise InjectedFaultError(
        f"flag action {action!r} fired at generic seam {site}",
        site=site,
        action=action,
    )
