"""Unit tests for the s-expression parser (repro.dsl.parser)."""

import pytest

from repro.dsl import parse, parse_many
from repro.dsl.ast import add, get, lst, num, sym, vec
from repro.dsl.parser import ParseError


class TestAtoms:
    def test_integer(self):
        assert parse("42") == num(42)

    def test_negative_integer(self):
        assert parse("-3") == num(-3)

    def test_float(self):
        assert parse("2.5") == num(2.5)

    def test_symbol(self):
        assert parse("alpha") == sym("alpha")


class TestApplications:
    def test_add(self):
        assert parse("(+ 1 2)") == add(num(1), num(2))

    def test_get(self):
        assert parse("(Get a 3)") == get("a", 3)

    def test_nested(self):
        t = parse("(+ (Get a 0) (* 2 (Get b 1)))")
        assert t.op == "+"
        assert t.args[1].op == "*"

    def test_vec_variadic(self):
        assert parse("(Vec 1 2 3 4)") == vec(num(1), num(2), num(3), num(4))

    def test_list(self):
        assert parse("(List 1 2)") == lst(num(1), num(2))

    def test_unknown_head_becomes_call(self):
        t = parse("(square 3)")
        assert t.op == "Call"
        assert t.value == "square"

    def test_vecmac(self):
        t = parse("(VecMAC (Vec 0 0) (Vec 1 2) (Vec 3 4))")
        assert t.op == "VecMAC"


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")

    def test_unbalanced_open(self):
        with pytest.raises(ParseError):
            parse("(+ 1 2")

    def test_unbalanced_close(self):
        with pytest.raises(ParseError):
            parse("+ 1 2)")

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse("(+ 1 2) extra")

    def test_empty_application(self):
        with pytest.raises(ParseError):
            parse("()")

    def test_wrong_arity(self):
        with pytest.raises(ParseError):
            parse("(+ 1)")

    def test_wrong_arity_get(self):
        with pytest.raises(ParseError):
            parse("(Get a)")


class TestRoundTrip:
    EXAMPLES = [
        "(+ (Get a 0) (Get b 0))",
        "(List (+ 1 2) (* 3 4))",
        "(VecMAC (Vec 0 0 0 0) (Vec (Get a 0) (Get a 1) (Get a 2) (Get a 3)) (Vec 1 1 1 1))",
        "(Concat (Vec 1 2) (Vec 3 4))",
        "(sqrt (sgn (neg (Get x 5))))",
        "(/ 1 (Get d 0))",
    ]

    @pytest.mark.parametrize("text", EXAMPLES)
    def test_roundtrip(self, text):
        term = parse(text)
        assert parse(term.to_sexpr()) == term

    def test_parse_many(self):
        terms = parse_many("(+ 1 2) (Get a 0) 7")
        assert len(terms) == 3
        assert terms[2] == num(7)

    def test_parse_many_empty(self):
        assert parse_many("") == []

    def test_whitespace_insensitive(self):
        assert parse("(+\n  1\t 2)") == parse("(+ 1 2)")
