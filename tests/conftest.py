"""Shared fixtures and helpers for the test suite."""

import random

import pytest

from repro.compiler import CompileOptions
from repro.dsl import evaluate_output
from repro.machine import simulate


def approx_list(actual, expected, rel=1e-6, abs_tol=1e-9):
    """Element-wise approximate comparison for float lists."""
    assert len(actual) >= len(expected), (len(actual), len(expected))
    for i, (a, b) in enumerate(zip(actual, expected)):
        scale = max(1.0, abs(b))
        assert abs(a - b) <= rel * scale + abs_tol, (
            f"lane {i}: {a} != {b} (rel {rel})"
        )


def run_and_compare(kernel, program, seed=0, rel=1e-4):
    """Simulate an IR program for ``kernel`` and compare against the
    trusted reference on the same random inputs."""
    inputs = kernel.random_inputs(seed)
    result = simulate(program, inputs)
    reference = kernel.reference_outputs(inputs)
    approx_list(result.output("out"), reference, rel=rel)
    return result


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def fast_options():
    """Compile options for unit tests: small budgets, no validation."""
    return CompileOptions(
        time_limit=5.0, node_limit=30_000, iter_limit=25, validate=False
    )


@pytest.fixture
def validated_options():
    return CompileOptions(
        time_limit=5.0, node_limit=30_000, iter_limit=25, validate=True
    )
