"""Property-based soundness tests for every rewrite rule: any
equivalence the e-graph derives must hold under concrete evaluation.

Instead of trusting that each rule was transcribed correctly, we
saturate random expressions, pick random pairs of terms the e-graph
claims equal (extracted under different cost models from the same
class), and evaluate both -- the rewrite-system analogue of the
paper's translation validation, applied to the rules themselves.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.costs import DiospyrosCostModel, ScalarOnlyCostModel, TermSizeCostModel
from repro.dsl import evaluate
from repro.dsl.ast import Term, get, num
from repro.egraph import EGraph, Extractor, Runner
from repro.rules import build_ruleset, scalar_rules

_leaves = st.one_of(
    st.integers(-2, 2).map(num),
    st.tuples(st.sampled_from(["a", "b"]), st.integers(0, 7)).map(
        lambda p: get(*p)
    ),
)


def _compound(children):
    binop = st.builds(
        lambda op, l, r: Term(op, (l, r)),
        st.sampled_from(["+", "-", "*"]),
        children,
        children,
    )
    unop = st.builds(lambda x: Term("neg", (x,)), children)
    return st.one_of(binop, unop)


_exprs = st.recursive(_leaves, _compound, max_leaves=7)

_ENVS = [
    {"a": [1.0, -2.0, 0.5, 3.0, -0.25, 2.0, 1.5, -1.0],
     "b": [0.5, 1.5, -3.0, 2.0, 4.0, -0.5, 0.25, 1.0]},
    {"a": [float(i) for i in range(8)],
     "b": [float(-i) for i in range(8)]},
]


def _agree(t1, t2, tol=1e-7):
    for env in _ENVS:
        v1, v2 = evaluate(t1, env), evaluate(t2, env)
        if abs(v1 - v2) > tol * max(1.0, abs(v1)):
            return False
    return True


class TestScalarRuleSoundness:
    @given(_exprs)
    @settings(max_examples=60, deadline=None)
    def test_every_derived_scalar_equality_holds(self, expr):
        eg = EGraph()
        root = eg.add_term(expr)
        Runner(scalar_rules(), iter_limit=8, node_limit=5_000).run(eg)
        # Extract under two different models: both terms come from the
        # root class, so the e-graph claims they are equal.
        small = Extractor(eg, TermSizeCostModel()).extract(root).term
        scal = Extractor(eg, ScalarOnlyCostModel()).extract(root).term
        assert _agree(expr, small), (expr.to_sexpr(), small.to_sexpr())
        assert _agree(expr, scal), (expr.to_sexpr(), scal.to_sexpr())


class TestVectorRuleSoundness:
    @given(st.lists(_exprs, min_size=4, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_vectorized_lanes_evaluate_identically(self, lanes):
        """Saturate a 4-lane Vec of random scalar expressions with the
        full ruleset; whatever vector form extraction prefers must
        agree lane-wise with the originals."""
        from repro.dsl import evaluate_output

        vec = Term("Vec", tuple(lanes))
        eg = EGraph()
        root = eg.add_term(vec)
        Runner(build_ruleset(4), iter_limit=10, node_limit=10_000).run(eg)
        best = Extractor(eg, DiospyrosCostModel()).extract(root).term
        for env in _ENVS:
            expected = evaluate_output(vec, env)
            actual = evaluate_output(best, env)
            for a, b in zip(expected, actual):
                assert abs(a - b) <= 1e-7 * max(1.0, abs(a)), (
                    vec.to_sexpr(),
                    best.to_sexpr(),
                )
