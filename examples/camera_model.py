#!/usr/bin/env python3
"""The Theia structure-from-motion case study (paper Section 5.7).

Decomposes a 3x4 camera projection matrix on the simulated DSP twice:
once with Eigen-style generic QR (the baseline Theia uses) and once
with a Diospyros-compiled 3x3 QR kernel -- the only difference between
the two configurations.  Prints the per-stage cycle profile and the
end-to-end speedup (paper: QR is 61% of the baseline; swapping it
gives 2.1x).

Run:  python examples/camera_model.py
"""

import numpy as np

from repro.apps.theia import (
    DEFAULT_PROJECTION_MATRIX,
    decompose_projection_matrix,
    diospyros_qr_program,
    eigen_qr_program,
)


def main() -> None:
    print("=== DecomposeProjectionMatrix on the simulated Fusion-G3 ===")
    P = np.array(DEFAULT_PROJECTION_MATRIX).reshape(3, 4)
    print(f"projection matrix P =\n{np.round(P, 2)}\n")

    baseline = decompose_projection_matrix(qr_program=eigen_qr_program())
    print("baseline (Eigen QR) per-stage cycles:")
    for stage, cycles in sorted(baseline.stage_cycles.items(), key=lambda s: -s[1]):
        share = cycles / baseline.total_cycles
        print(f"  {stage:<12} {cycles:>8.0f}  {share:>5.0%}")
    print(f"  {'TOTAL':<12} {baseline.total_cycles:>8.0f}")
    print(f"QR share: {baseline.qr_share:.0%} (paper profiles 61%)\n")

    print("compiling the Diospyros 3x3 QR kernel (~20 s)...")
    optimized = decompose_projection_matrix(qr_program=diospyros_qr_program())
    print("optimized (Diospyros QR) per-stage cycles:")
    for stage, cycles in sorted(optimized.stage_cycles.items(), key=lambda s: -s[1]):
        print(f"  {stage:<12} {cycles:>8.0f}")
    print(f"  {'TOTAL':<12} {optimized.total_cycles:>8.0f}")

    speedup = baseline.total_cycles / optimized.total_cycles
    print(f"\nend-to-end speedup: {speedup:.2f}x (paper: 2.1x)")

    # Check the decomposition is right, both ways.
    K = np.array(optimized.calibration).reshape(3, 3)
    R = np.array(optimized.rotation_rq).reshape(3, 3)
    c = np.array(optimized.position)
    assert np.allclose(K @ R, P[:, :3], rtol=1e-3)
    assert np.allclose(R @ R.T, np.eye(3), atol=1e-3)
    assert np.allclose(P[:, :3] @ c, -P[:, 3], rtol=1e-3)
    print("calibration * rotation == M, rotation orthonormal, "
          "position solves M c = -p4: all verified")


if __name__ == "__main__":
    main()
