"""Incremental (dirty-set) e-matching: exactness, counters, dedup,
checkpoint stride, and the live node counter.

The load-bearing property (ISSUE 3): for every rule, a search
restricted to classes dirtied since the rule's last *completed* search
reports exactly the matches a full rescan would, modulo matches it
already reported (canonicalized).  E-graphs are monotone -- terms and
equalities are never removed -- so

    canon(full_i)  ==  canon(incr_i)  |  canon_at_i(full_{i-1})

must hold at every iteration of a saturation run, for randomized
kernels from the fuzz generator.
"""

import random

import pytest

from repro.egraph import (
    EGraph,
    MatchCounters,
    Runner,
    ematch,
    pattern,
)
from repro.egraph.egraph import ENode
from repro.egraph.extract import Extractor
from repro.egraph.rewrite import CustomRewrite, Match, rewrite
from repro.egraph.scheduler import BackoffScheduler, Deadline
from repro.rules import build_ruleset
from repro.validation.fuzz import random_spec


def _canon_matches(egraph, found):
    """Canonicalize (class, subst) pairs into a comparable set."""
    return {
        (
            egraph.find(cid),
            tuple(sorted((k, egraph.find(v)) for k, v in subst.items())),
        )
        for cid, subst in found
    }


_PATTERNS = [
    "(+ ?a ?b)",
    "(* ?a ?b)",
    "(+ ?a 0)",
    "(* ?a (+ ?b ?c))",
]


@pytest.mark.parametrize("seed", [0, 1, 2, 7])
def test_incremental_ematch_equals_full_rescan(seed):
    """Per-iteration dirty-set match sets union previously-seen ones to
    exactly the full-rescan sets, across unions and rebuilds."""
    rng = random.Random(seed)
    spec = random_spec(rng, index=seed, max_inputs=3, max_input_len=8)
    egraph = EGraph()
    egraph.add_term(spec.term)
    rules = build_ruleset(width=4)
    pats = [pattern(p) for p in _PATTERNS]
    cursors = {i: 0 for i in range(len(pats))}
    previous = {i: set() for i in range(len(pats))}

    for _ in range(6):
        # Check the property for every probe pattern BEFORE mutating.
        for i, pat in enumerate(pats):
            tick_before = egraph.tick
            full = _canon_matches(egraph, ematch(egraph, pat))
            incr_counters = MatchCounters()
            incr = _canon_matches(
                egraph,
                ematch(
                    egraph, pat, since=cursors[i], counters=incr_counters
                ),
            )
            assert incr_counters.completed
            recanon_prev = {
                (egraph.find(cid), tuple((k, egraph.find(v)) for k, v in s))
                for cid, s in previous[i]
            }
            assert incr | recanon_prev == full, (
                f"pattern {pat} diverged at tick {tick_before}"
            )
            cursors[i] = tick_before
            previous[i] = full

        # One saturation iteration's worth of mutation.
        runner = Runner(rules, iter_limit=1, node_limit=20_000)
        runner.run(egraph)


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_incremental_runner_matches_full_rescan_end_to_end(seed):
    """Full pipeline equivalence: saturating with dirty-set matching
    (custom vector searchers included) extracts the identical term at
    the identical cost, and grows the identical e-graph."""
    rng = random.Random(seed)
    spec = random_spec(rng, index=seed, max_inputs=2, max_input_len=6)

    results = {}
    for incremental in (True, False):
        egraph = EGraph()
        root = egraph.add_term(spec.term)
        runner = Runner(
            build_ruleset(width=4),
            iter_limit=15,
            node_limit=30_000,
            incremental=incremental,
        )
        report = runner.run(egraph)
        extraction = Extractor(egraph).extract(root)
        results[incremental] = (
            extraction.term,
            extraction.cost,
            egraph.num_nodes,
            egraph.num_classes,
            report.stop_reason,
        )

    assert results[True] == results[False]


def test_incremental_visits_fewer_classes():
    """On a multi-iteration run the dirty-set matcher must examine
    strictly fewer candidate classes than a full rescan (the counters
    are deterministic, so this cannot flake)."""
    rng = random.Random(5)
    spec = random_spec(rng, index=5, max_inputs=3, max_input_len=8)
    visited = {}
    for incremental in (True, False):
        egraph = EGraph()
        egraph.add_term(spec.term)
        runner = Runner(
            build_ruleset(width=4),
            iter_limit=15,
            node_limit=30_000,
            incremental=incremental,
        )
        report = runner.run(egraph)
        visited[incremental] = sum(
            s.classes_visited for s in report.rule_stats.values()
        )
        if incremental:
            skipped = sum(
                s.classes_skipped for s in report.rule_stats.values()
            )
            assert skipped > 0
            assert any(it.skipped > 0 for it in report.iterations)
    assert visited[True] < visited[False]


def test_truncated_search_does_not_advance_cursor():
    """A deadline-truncated search must leave the rule's high-water
    mark untouched so the unexamined matches are found next time."""
    egraph = EGraph()
    a = egraph.add(ENode("Symbol", (), "a"))
    zero = egraph.add(ENode("Num", (), 0))
    egraph.add(ENode("+", (a, zero)))
    scheduler = BackoffScheduler(incremental=True)
    rule = rewrite("plus-zero", "(+ ?x 0)", "?x")

    expired = Deadline(at=0.0)
    matches = scheduler.search_rewrite(0, egraph, rule, deadline=expired)
    assert matches == []
    assert scheduler.rule_stats(rule.name).last_search_tick == 0

    matches = scheduler.search_rewrite(1, egraph, rule)
    assert len(matches) == 1
    assert scheduler.rule_stats(rule.name).last_search_tick > 0


def test_banned_rule_does_not_advance_cursor():
    """Backoff-banned matches are discarded; advancing the cursor past
    them would lose them forever once the ban lifts."""
    egraph = EGraph()
    a = egraph.add(ENode("Symbol", (), "a"))
    zero = egraph.add(ENode("Num", (), 0))
    for i in range(4):
        s = egraph.add(ENode("Symbol", (), f"s{i}"))
        egraph.add(ENode("+", (s, zero)))
    egraph.add(ENode("+", (a, zero)))
    scheduler = BackoffScheduler(match_limit=4, incremental=True)
    rule = rewrite("plus-zero", "(+ ?x 0)", "?x")

    assert scheduler.search_rewrite(0, egraph, rule) == []  # banned
    stats = scheduler.rule_stats(rule.name)
    assert stats.times_banned == 1
    assert stats.last_search_tick == 0  # cursor held back

    # Once the ban lifts the full set is still reported.
    later = stats.banned_until
    matches = scheduler.search_rewrite(later, egraph, rule)
    assert len(matches) == 5


def test_scheduler_resets_cursors_on_new_graph():
    """Cursors refer to one graph's tick clock; reusing the scheduler
    on a different graph must start from a full rescan."""
    rule = rewrite("plus-zero", "(+ ?x 0)", "?x")
    scheduler = BackoffScheduler(incremental=True)

    g1 = EGraph()
    a = g1.add(ENode("Symbol", (), "a"))
    zero = g1.add(ENode("Num", (), 0))
    g1.add(ENode("+", (a, zero)))
    assert len(scheduler.search_rewrite(0, g1, rule)) == 1
    assert scheduler.rule_stats(rule.name).last_search_tick > 0

    g2 = EGraph()
    b = g2.add(ENode("Symbol", (), "b"))
    zero2 = g2.add(ENode("Num", (), 0))
    g2.add(ENode("+", (b, zero2)))
    # Without the identity check the stale cursor would hide this match.
    assert len(scheduler.search_rewrite(0, g2, rule)) == 1


def test_periodic_full_rescan_safeguard():
    """Every ``rescan_stride`` searches the cursor is ignored once."""
    egraph = EGraph()
    a = egraph.add(ENode("Symbol", (), "a"))
    zero = egraph.add(ENode("Num", (), 0))
    egraph.add(ENode("+", (a, zero)))
    scheduler = BackoffScheduler(incremental=True, rescan_stride=3)
    rule = rewrite("plus-zero", "(+ ?x 0)", "?x")
    for i in range(7):
        scheduler.search_rewrite(i, egraph, rule)
    stats = scheduler.rule_stats(rule.name)
    # Searches 1, 4, 7 are full rescans (first ever + every third).
    assert stats.full_rescans == 3


def test_match_dedup_skips_repeat_applications():
    """A saturated rule's matches are applied once; later iterations
    drop them via the seen-set (visible in IterationReport.deduped)."""
    rng = random.Random(9)
    spec = random_spec(rng, index=9, max_inputs=2, max_input_len=6)
    egraph = EGraph()
    root = egraph.add_term(spec.term)
    runner = Runner(
        build_ruleset(width=4),
        iter_limit=15,
        node_limit=30_000,
        incremental=False,  # full rescan re-reports everything...
        dedup_matches=True,  # ...and the dedup layer drops the repeats
    )
    report = runner.run(egraph)
    assert sum(it.deduped for it in report.iterations) > 0

    # Dedup must not change the outcome.
    egraph2 = EGraph()
    root2 = egraph2.add_term(spec.term)
    Runner(
        build_ruleset(width=4),
        iter_limit=15,
        node_limit=30_000,
        incremental=False,
        dedup_matches=False,
    ).run(egraph2)
    assert (
        Extractor(egraph, ).extract(root).term
        == Extractor(egraph2).extract(root2).term
    )


def test_live_node_counter_matches_recount():
    """num_nodes is maintained incrementally through add/union/repair;
    it must always agree with an O(classes) recount."""
    rng = random.Random(13)
    spec = random_spec(rng, index=13, max_inputs=3, max_input_len=8)
    egraph = EGraph()
    egraph.add_term(spec.term)
    assert egraph.num_nodes == egraph.recount_nodes()
    runner = Runner(build_ruleset(width=4), iter_limit=10, node_limit=30_000)
    runner.run(egraph)
    assert egraph.num_nodes == egraph.recount_nodes()
    snapshot = egraph.copy()
    assert snapshot.num_nodes == snapshot.recount_nodes() == egraph.num_nodes


def test_deadline_polled_inside_single_class():
    """One huge class must not blow past the budget: the gate is polled
    inside match_in_class, not just between candidate classes."""
    egraph = EGraph()
    ids = [egraph.add(ENode("Symbol", (), f"s{i}")) for i in range(400)]
    target = ids[0]
    for other in ids[1:]:
        egraph.union(target, other)
    egraph.rebuild()
    # The merged class now holds 400 nodes; match a variable pattern
    # against it with an already-expired deadline.
    counters = MatchCounters()
    found = ematch(
        egraph,
        pattern("(+ ?a ?b)"),
        deadline=Deadline(at=0.0),
        counters=counters,
    )
    assert found == []
    # Nothing to find here anyway; now add + nodes and verify the
    # expired deadline truncates and reports incompleteness.
    zero = egraph.add(ENode("Num", (), 0))
    for i in range(100):
        egraph.add(ENode("+", (ids[0], zero)))
    counters = MatchCounters()
    found = ematch(
        egraph,
        pattern("(+ ?a ?b)"),
        deadline=Deadline(at=0.0),
        counters=counters,
    )
    assert not counters.completed


def test_checkpoint_stride_rolls_back_to_last_checkpoint():
    """With a stride > 1 an error rolls back to the most recent
    checkpoint (losing at most stride-1 iterations, never consistency)."""
    egraph = EGraph()
    a = egraph.add(ENode("Symbol", (), "a"))
    zero = egraph.add(ENode("Num", (), 0))
    egraph.add(ENode("+", (a, zero)))

    calls = {"n": 0}

    def searcher(eg):
        calls["n"] += 1
        if calls["n"] >= 2:
            def boom(_eg):
                raise RuntimeError("applier crash")

            return [Match(a, boom, "boom")]
        return []

    crashing = CustomRewrite("boom", searcher)
    rules = [rewrite("plus-zero", "(+ ?x 0)", "?x"), crashing]
    runner = Runner(
        rules,
        iter_limit=10,
        checkpoint=True,
        checkpoint_stride=3,
        incremental=False,
    )
    report = runner.run(egraph)
    assert report.errored
    # The graph is consistent after rollback.
    assert egraph.num_nodes == egraph.recount_nodes()
    egraph.rebuild()
    assert egraph.num_nodes == egraph.recount_nodes()


def test_old_style_custom_searchers_keep_working():
    """One-argument custom searchers (no SearchContext) full-scan and
    still participate in incremental runs unchanged."""
    seen = []

    def searcher(eg):
        seen.append(eg.num_classes)
        return []

    rule = CustomRewrite("legacy", searcher)
    assert rule._takes_context is False
    egraph = EGraph()
    egraph.add(ENode("Symbol", (), "a"))
    scheduler = BackoffScheduler(incremental=True)
    for i in range(3):
        scheduler.search_rewrite(i, egraph, rule)
    assert len(seen) == 3
