"""Direct unit tests of the structured loop emitter
(repro.baselines.loops), which all parametric baselines build on."""

import pytest

from repro.backend import vir
from repro.backend.vir import Program
from repro.baselines.loops import LoopEmitter
from repro.machine import simulate


def fresh():
    program = Program("t", inputs={"a": 8}, outputs={"out": 8})
    return program, LoopEmitter(program)


A = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]


class TestLoop:
    def test_counts_iterations(self):
        program, em = fresh()
        acc = em.const(0.0)
        one = em.const(1.0)

        def body(i):
            em.program.emit(vir.SBin("+", acc, acc, one))

        em.loop(5, body)
        em.store_idx("out", em.const(0), acc)
        assert simulate(program, {"a": A}).output("out")[0] == 5.0

    def test_zero_trip_loop(self):
        program, em = fresh()
        acc = em.const(0.0)

        def body(i):
            em.program.emit(vir.SBin("+", acc, acc, em.const(1.0)))

        em.loop(0, body)
        em.store_idx("out", em.const(0), acc)
        assert simulate(program, {"a": A}).output("out")[0] == 0.0

    def test_index_visible_in_body(self):
        program, em = fresh()

        def body(i):
            value = em.load_idx("a", i)
            em.store_idx("out", i, value)

        em.loop(8, body)
        assert simulate(program, {"a": A}).output("out") == A

    def test_nested_loops(self):
        program, em = fresh()
        acc = em.const(0.0)
        one = em.const(1.0)

        def outer(i):
            def inner(j):
                em.program.emit(vir.SBin("+", acc, acc, one))

            em.loop(3, inner)

        em.loop(4, outer)
        em.store_idx("out", em.const(0), acc)
        assert simulate(program, {"a": A}).output("out")[0] == 12.0


class TestLoopRange:
    def test_partial_range(self):
        program, em = fresh()
        acc = em.const(0.0)

        def body(i):
            em.program.emit(vir.SBin("+", acc, acc, em.load_idx("a", i)))

        em.loop_range(2, 5, body)  # a[2] + a[3] + a[4] = 3+4+5
        em.store_idx("out", em.const(0), acc)
        assert simulate(program, {"a": A}).output("out")[0] == 12.0

    def test_empty_range(self):
        program, em = fresh()
        acc = em.const(7.0)

        def body(i):
            em.program.emit(vir.SBin("+", acc, acc, acc))

        em.loop_range(5, 5, body)
        em.store_idx("out", em.const(0), acc)
        assert simulate(program, {"a": A}).output("out")[0] == 7.0

    def test_register_bounds(self):
        program, em = fresh()
        start = em.const(1)
        stop = em.const(4)
        acc = em.const(0.0)

        def body(i):
            em.program.emit(vir.SBin("+", acc, acc, em.load_idx("a", i)))

        em.loop_range(start, stop, body)  # a[1]+a[2]+a[3] = 9
        em.store_idx("out", em.const(0), acc)
        assert simulate(program, {"a": A}).output("out")[0] == 9.0


class TestLoopStep:
    def test_strided_iteration(self):
        program, em = fresh()
        acc = em.const(0.0)

        def body(i):
            em.program.emit(vir.SBin("+", acc, acc, em.load_idx("a", i)))

        em.loop_step(0, 8, 2, body)  # a[0]+a[2]+a[4]+a[6] = 16
        em.store_idx("out", em.const(0), acc)
        assert simulate(program, {"a": A}).output("out")[0] == 16.0

    def test_chunked_vector_copy(self):
        program, em = fresh()

        def body(i):
            v = em.vload_idx("a", i)
            em.vstore_idx("out", i, v, 4)

        em.loop_step(0, 8 - 4 + 1, 4, body)
        assert simulate(program, {"a": A}).output("out") == A

    def test_negative_stop_never_runs(self):
        program, em = fresh()
        acc = em.const(3.0)

        def body(i):
            em.program.emit(vir.SBin("+", acc, acc, acc))

        em.loop_step(0, -3, 4, body)
        em.store_idx("out", em.const(0), acc)
        assert simulate(program, {"a": A}).output("out")[0] == 3.0


class TestGuard:
    def test_guard_true_executes(self):
        program, em = fresh()
        zero = em.const(0)
        one = em.const(1)
        flag = em.const(0.0)

        def body():
            em.program.emit(vir.SConst(flag, 1.0))

        em.guard([("lt", zero, one)], body)
        em.store_idx("out", zero, flag)
        assert simulate(program, {"a": A}).output("out")[0] == 1.0

    def test_guard_false_skips(self):
        program, em = fresh()
        zero = em.const(0)
        one = em.const(1)
        flag = em.const(0.0)

        def body():
            em.program.emit(vir.SConst(flag, 1.0))

        em.guard([("gt", zero, one)], body)
        em.store_idx("out", zero, flag)
        assert simulate(program, {"a": A}).output("out")[0] == 0.0

    def test_multiple_conditions_all_required(self):
        program, em = fresh()
        zero = em.const(0)
        one = em.const(1)
        flag = em.const(0.0)

        def body():
            em.program.emit(vir.SConst(flag, 1.0))

        em.guard([("lt", zero, one), ("ge", zero, one)], body)
        em.store_idx("out", zero, flag)
        assert simulate(program, {"a": A}).output("out")[0] == 0.0

    def test_vector_helpers(self):
        program, em = fresh()
        s = em.const(3.0)
        splat = em.vsplat(s)
        z = em.vzero()
        acc = em.vmac(z, splat, splat)  # 9 per lane
        em.vstore_idx("out", em.const(0), acc, 4)
        assert simulate(program, {"a": A}).output("out")[:4] == [9.0] * 4

    def test_labels_unique(self):
        program, em = fresh()
        for _ in range(3):
            em.loop(1, lambda i: None)
        program.validate_labels()  # no duplicates
