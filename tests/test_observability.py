"""Tests for the observability subsystem (tracing, metrics, recorder,
reports) and its integration with the compile pipeline.

Covers the ISSUE's required scenarios: trace and metrics exports
round-trip through their text formats, a disabled-observability
pipeline run constructs no session and records no spans, and a
deadline-expired compile still dumps a flight-recorder post-mortem.
"""

import json
import os
import threading

import pytest

from repro.compiler import CompileOptions, compile_spec
from repro.kernels import get_kernel
from repro.observability import (
    METRICS_SCHEMA,
    RECORDER_SCHEMA,
    TRACE_SCHEMA,
    FlightRecorder,
    MetricsRegistry,
    Observability,
    ObservabilitySession,
    Tracer,
    activate,
    current_session,
    event,
    parse_json,
    parse_prometheus,
    span,
    to_chrome,
    to_json,
    validate_chrome_trace,
    validate_chrome_trace_file,
    validate_spans,
)
from repro.observability.report import render_html, render_text, stage_waterfall


def _small_spec():
    return get_kernel("matmul-2x2-2x2").spec()


# ---------------------------------------------------------------------------
# Tracer


class TestTracer:
    def test_nested_spans_parentage(self):
        tracer = Tracer()
        with tracer.span("outer", kernel="k") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = tracer.export()
        assert len(spans) == 2
        validate_spans(spans)
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["duration"] >= by_name["inner"]["duration"]

    def test_span_exception_marks_not_ok(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (s,) = tracer.export()
        assert s["ok"] is False
        assert "boom" in s["attributes"]["error"]

    def test_trace_json_roundtrip(self):
        tracer = Tracer()
        with tracer.span("a", x=1):
            with tracer.span("b"):
                tracer.event("tick", n=2)
        payload = to_json(tracer.export())
        assert payload["schema"] == TRACE_SCHEMA
        text = json.dumps(payload)
        spans = parse_json(json.loads(text))
        assert spans == tracer.export()

    def test_parse_json_refuses_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            parse_json({"schema": "something/v9", "spans": []})

    def test_chrome_trace_export(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.event("marker")
        chrome = to_chrome(tracer.export())
        n = validate_chrome_trace(chrome)
        assert n == 2  # one X event, one i event
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(chrome))
        assert validate_chrome_trace_file(str(path)) == 2

    def test_threaded_spans_do_not_interleave(self):
        tracer = Tracer()
        errors = []

        def work(i):
            try:
                with tracer.span(f"thread-{i}"):
                    with tracer.span(f"child-{i}") as child:
                        assert child.parent_id is not None
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = tracer.export()
        assert len(spans) == 16
        validate_spans(spans)
        by_id = {s["span_id"]: s for s in spans}
        for s in spans:
            if s["name"].startswith("child-"):
                i = s["name"].split("-")[1]
                assert by_id[s["parent_id"]]["name"] == f"thread-{i}"

    def test_adopt_reparents_foreign_roots(self):
        worker = Tracer()
        with worker.span("compile"):
            with worker.span("saturation"):
                pass
        supervisor = Tracer()
        with supervisor.span("service.attempt") as att:
            supervisor.adopt(worker.export(), att.span_id)
        spans = supervisor.export()
        by_name = {s["name"]: s for s in spans}
        assert by_name["compile"]["parent_id"] == by_name["service.attempt"]["span_id"]
        # Non-root worker spans keep their worker-local parent.
        assert by_name["saturation"]["parent_id"] == by_name["compile"]["span_id"]
        validate_spans(spans)


# ---------------------------------------------------------------------------
# Metrics


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "jobs", labels=("status",))
        c.labels(status="ok").inc()
        c.labels(status="ok").inc(2)
        c.labels(status="fail").inc()
        g = reg.gauge("depth", "queue depth")
        g.set(5)
        g.dec(2)
        h = reg.histogram("latency_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(10.0)
        samples = {(n, tuple(sorted(l.items()))): v for n, l, v in reg.samples()}
        assert samples[("jobs_total", (("status", "ok"),))] == 3
        assert samples[("jobs_total", (("status", "fail"),))] == 1
        assert samples[("depth", ())] == 3
        assert samples[("latency_seconds_count", ())] == 3
        assert samples[("latency_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("latency_seconds_bucket", (("le", "1"),))] == 2
        assert samples[("latency_seconds_bucket", (("le", "+Inf"),))] == 3

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x_total", "x").inc(-1)

    def test_prometheus_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "a", labels=("k",)).labels(k="v1").inc(7)
        reg.gauge("b", "b").set(2.5)
        reg.histogram("c_seconds", "c", buckets=(1.0,)).observe(0.5)
        text = reg.to_prometheus()
        parsed = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in parse_prometheus(text)
        }
        expected = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in reg.samples()
        }
        assert parsed == expected

    def test_json_export_schema(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "a").inc()
        payload = reg.to_json()
        assert payload["schema"] == METRICS_SCHEMA
        assert json.loads(json.dumps(payload)) == payload

    def test_idempotent_declaration(self):
        reg = MetricsRegistry()
        c1 = reg.counter("a_total", "a")
        c2 = reg.counter("a_total", "a")
        assert c1 is c2
        with pytest.raises(ValueError):
            reg.gauge("a_total", "different kind")


# ---------------------------------------------------------------------------
# Flight recorder


class TestFlightRecorder:
    def test_ring_buffer_drops_oldest(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record_iteration(
                i, nodes=i * 10, classes=i, matches=0, applied=0,
                unions=0, elapsed=0.0,
            )
        dump = rec.dump()
        assert dump["schema"] == RECORDER_SCHEMA
        assert dump["iterations_seen"] == 10
        assert dump["iterations_dropped"] == 6
        assert [s["index"] for s in dump["snapshots"]] == [6, 7, 8, 9]
        assert rec.growth_curve() == [60, 70, 80, 90]

    def test_events_and_stop_reason(self, tmp_path):
        rec = FlightRecorder()
        rec.record_event("watchdog_trip", limit=100, nodes=150)
        rec.record_event("scheduler_ban", rule="assoc")
        rec.record_stop("node_limit")
        assert [e["kind"] for e in rec.events_of("watchdog_trip")] == [
            "watchdog_trip"
        ]
        path = tmp_path / "rec.json"
        rec.dump_to(str(path))
        dump = json.loads(path.read_text())
        assert dump["stop_reason"] == "node_limit"
        assert len(dump["events"]) == 2


# ---------------------------------------------------------------------------
# Ambient session helpers


class TestAmbientSession:
    def test_helpers_are_noops_without_session(self):
        assert current_session() is None
        with span("anything", x=1) as s:
            assert s is None
        event("ignored")  # must not raise

    def test_activate_scopes_the_session(self):
        session = ObservabilitySession(Observability.on())
        with activate(session):
            assert current_session() is session
            with span("inside") as s:
                assert s is not None
        assert current_session() is None
        assert [s["name"] for s in session.tracer.export()] == ["inside"]


# ---------------------------------------------------------------------------
# Pipeline integration


class TestPipelineIntegration:
    def test_disabled_observability_records_nothing(self):
        # No config at all: the result carries no observability data
        # and no ambient session is ever activated.
        result = compile_spec(_small_spec(), CompileOptions())
        assert result.observability is None
        assert current_session() is None

    def test_enabled_false_config_records_nothing(self):
        result = compile_spec(
            _small_spec(),
            CompileOptions(observability=Observability(enabled=False)),
        )
        assert result.observability is None

    def test_enabled_pipeline_produces_full_bundle(self):
        obs = Observability.on()
        result = compile_spec(
            _small_spec(), CompileOptions(observability=obs)
        )
        data = result.observability
        assert data is not None
        names = {s["name"] for s in data.spans}
        assert {"compile", "saturation", "extraction", "lowering",
                "backend.lower", "backend.lvn", "backend.codegen",
                "validation", "validation.validate"} <= names
        validate_spans(data.spans)
        validate_chrome_trace(data.chrome_trace())
        # Stage spans nest under the compile root.
        root = data.span_named("compile")
        sat = data.span_named("saturation")
        assert sat["parent_id"] == root["span_id"]
        # Metrics round-trip through the Prometheus exposition.
        parsed = parse_prometheus(data.prometheus)
        assert parsed  # non-empty
        names = {n for n, _, _ in parsed}
        assert "repro_compile_seconds_count" in names
        assert "repro_stage_seconds_count" in names
        assert "repro_validation_lanes_total" in names
        # Recorder saw every saturation iteration.
        assert data.recorder["iterations_seen"] == len(
            result.report.iterations
        )

    def test_options_and_data_are_picklable(self):
        import pickle

        obs = Observability.on(trace_dir="/tmp/x")
        opts = CompileOptions(observability=obs)
        assert pickle.loads(pickle.dumps(opts)).observability == obs
        result = compile_spec(_small_spec(), CompileOptions(observability=Observability.on()))
        clone = pickle.loads(pickle.dumps(result.observability))
        assert clone.spans == result.observability.spans

    def test_deadline_timeout_dumps_postmortem(self, tmp_path):
        pm_dir = tmp_path / "pm"
        obs = Observability.on(
            postmortem_dir=str(pm_dir), trace_dir=str(tmp_path / "tr")
        )
        options = CompileOptions(
            time_limit=0.02, observability=obs, validate=False
        )
        result = compile_spec(get_kernel("2dconv-3x3-3x3").spec(), options)
        assert result.timed_out
        (pm_file,) = list(pm_dir.iterdir())
        dump = json.loads(pm_file.read_text())
        assert dump["schema"] == RECORDER_SCHEMA
        assert dump["stop_reason"] == "time_limit"
        # The deadline can fire between iterations (deadline_expired)
        # or inside the apply loop (watchdog_trip with the time limit).
        assert any(
            e["kind"] == "deadline_expired"
            or (
                e["kind"] == "watchdog_trip"
                and e["details"].get("limit") == "time_limit"
            )
            for e in dump["events"]
        )
        # The trace artifact is written too.
        assert validate_chrome_trace_file(
            str(tmp_path / "tr" / "2dconv-3x3-3x3.trace.json")
        )

    def test_scheduler_bans_land_in_recorder(self):
        # A tiny match budget forces bans on the AC rules.
        obs = Observability.on()
        options = CompileOptions(
            observability=obs, match_limit=1, validate=False,
            time_limit=None, iter_limit=6, node_limit=5_000,
        )
        result = compile_spec(_small_spec(), options)
        bans = [
            e for e in result.observability.recorder["events"]
            if e["kind"] == "scheduler_ban"
        ]
        assert bans, "expected at least one scheduler ban event"
        assert {"rule", "matches", "threshold"} <= set(bans[0]["details"])


# ---------------------------------------------------------------------------
# Report rendering


class TestReports:
    def _data(self):
        result = compile_spec(
            _small_spec(), CompileOptions(observability=Observability.on())
        )
        return result.observability

    def test_stage_waterfall(self):
        data = self._data()
        stages = stage_waterfall(data)
        names = [name for name, _, _ in stages]
        assert "saturation" in names and "lowering" in names
        for _, offset, duration in stages:
            assert offset >= 0 and duration >= 0

    def test_render_text(self):
        text = render_text(self._data(), kernel="matmul-2x2-2x2")
        assert "matmul-2x2-2x2" in text
        assert "stage waterfall" in text
        assert "saturation" in text

    def test_render_html(self):
        html = render_html(self._data(), kernel="matmul-2x2-2x2")
        assert html.lower().startswith("<!doctype html>")
        assert "matmul-2x2-2x2" in html
        assert "saturation" in html


# ---------------------------------------------------------------------------
# Overhead


def test_enabled_overhead_is_bounded():
    """Tracing on vs off on one kernel: < 3% wall-clock overhead is the
    ISSUE's budget; this smoke assertion allows CI noise headroom but
    still catches pathological (e.g. 2x) regressions."""
    import time

    spec = get_kernel("2dconv-3x3-2x2").spec()
    base = CompileOptions(validate=False, time_limit=None, iter_limit=12,
                          node_limit=30_000)
    traced = CompileOptions(
        validate=False, time_limit=None, iter_limit=12, node_limit=30_000,
        observability=Observability.on(),
    )
    compile_spec(spec, base)  # warm caches

    def best_of(options, n=3):
        times = []
        for _ in range(n):
            start = time.perf_counter()
            compile_spec(spec, options)
            times.append(time.perf_counter() - start)
        return min(times)

    off = best_of(base)
    on = best_of(traced)
    assert on <= off * 1.5, f"observability overhead too high: {off:.4f}s -> {on:.4f}s"
