"""Satellite: extraction on a *partially* saturated e-graph.

A deadline that fires mid-iteration must still yield valid, validated
code -- the e-graph is left in a consistent state and extraction picks
the best term found so far (possibly the unvectorized original)."""

import pytest

from repro.compiler import CompileOptions, compile_spec
from repro.egraph.runner import StopReason
from repro.kernels import table1_kernels
from repro.seeding import stable_rng
from repro.validation.fuzz import check_result

# qrdecomp-3x3 saturates in tens of seconds; a sub-second deadline is
# guaranteed to interrupt saturation partway through on any machine.
KERNEL = "qrdecomp-3x3"
TIME_LIMIT = 0.25


def _spec():
    return {k.name: k for k in table1_kernels()}[KERNEL].spec()


@pytest.fixture(scope="module")
def partial_result():
    options = CompileOptions(
        time_limit=TIME_LIMIT,
        iter_limit=50,
        node_limit=200_000,
        validate=True,
        track_memory=False,
        seed=0,
    )
    return compile_spec(_spec(), options)


def test_deadline_fires_mid_saturation(partial_result):
    report = partial_result.report
    assert report.stop_reason == StopReason.TIME_LIMIT
    assert report.timed_out
    # Mid-run, not before the first iteration and not at the limit.
    assert 0 < len(report.iterations) < 50


def test_partial_extraction_is_validated(partial_result):
    assert partial_result.validation is not None
    assert partial_result.validated, [
        str(l) for l in partial_result.validation.failing_lanes()
    ]
    assert not partial_result.degraded
    assert partial_result.diagnostics.unvalidated is False
    assert partial_result.program.instructions
    assert partial_result.cost > 0


def test_partial_extraction_passes_differential_oracle(partial_result):
    divergences = check_result(
        _spec(),
        partial_result,
        stable_rng(0, "partial-saturation-check"),
        trials=3,
    )
    assert not divergences, [str(d) for d in divergences]
