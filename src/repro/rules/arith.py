"""Scalar simplification rules.

These are the "scalar rewrite rules" the paper keeps enabled even in
the vectorization ablation (Section 5.6): identity/annihilator laws and
negation normalization.  They are sound over the reals (the DSL's
semantics, Section 3.4 "Floating point accuracy") -- like the paper we
deliberately do not restrict ourselves to bit-exact float semantics.

Rules that are *unsound* over the reals (e.g. ``x / x => 1`` without a
non-zero guard) are intentionally absent.
"""

from __future__ import annotations

from typing import List

from ..egraph.rewrite import Rewrite, birewrite, rewrite

__all__ = ["scalar_rules"]


def scalar_rules() -> List[Rewrite]:
    """The default scalar simplification ruleset."""
    rules: List[Rewrite] = [
        # Additive identity.
        rewrite("add-0-r", "(+ ?a 0)", "?a"),
        rewrite("add-0-l", "(+ 0 ?a)", "?a"),
        rewrite("sub-0", "(- ?a 0)", "?a"),
        # Multiplicative identity and annihilator.
        rewrite("mul-1-r", "(* ?a 1)", "?a"),
        rewrite("mul-1-l", "(* 1 ?a)", "?a"),
        rewrite("mul-0-r", "(* ?a 0)", "0"),
        rewrite("mul-0-l", "(* 0 ?a)", "0"),
        rewrite("div-1", "(/ ?a 1)", "?a"),
        # Self-cancellation (sound over the reals).
        rewrite("sub-self", "(- ?a ?a)", "0"),
        # Negation normalization.
        *birewrite("neg-sub", "(neg ?a)", "(- 0 ?a)"),
        rewrite("neg-neg", "(neg (neg ?a))", "?a"),
        rewrite("mul-neg-1", "(* ?a -1)", "(neg ?a)"),
        rewrite("neg-mul-l", "(* (neg ?a) ?b)", "(neg (* ?a ?b))"),
        rewrite("neg-mul-r", "(* ?a (neg ?b))", "(neg (* ?a ?b))"),
        rewrite("neg-mul-push", "(neg (* ?a ?b))", "(* (neg ?a) ?b)"),
        rewrite("add-neg", "(+ ?a (neg ?b))", "(- ?a ?b)"),
        rewrite("sub-to-add-neg", "(- ?a ?b)", "(+ ?a (neg ?b))"),
        # sgn/sqrt interaction used by QR decomposition kernels:
        # sgn(x) * sgn(x) * y = y is *not* sound at x = 0, so it is not
        # included; the following are.
        rewrite("sqrt-0", "(sqrt 0)", "0"),
        rewrite("sqrt-1", "(sqrt 1)", "1"),
        rewrite("sgn-0", "(sgn 0)", "0"),
        # Limited, targeted reassociation over mixed +/- chains.  These
        # are the paper's "more complex rewrite rules to selectively
        # re-enable some limited forms of AC rules that we have found
        # to be profitable in practice" (Section 3.3): they let a
        # sign-mixed reduction (a quaternion product lane) float its
        # subtracted products together, exposing the (- pos-sum
        # neg-sum) shape that VecMinus + VecMAC chains vectorize.
        rewrite("float-sub-left", "(+ (- ?a ?b) ?c)", "(- (+ ?a ?c) ?b)"),
        rewrite("float-sub-right", "(+ ?a (- ?b ?c))", "(- (+ ?a ?b) ?c)"),
        rewrite("sink-add", "(- (+ ?a ?b) ?c)", "(+ (- ?a ?c) ?b)"),
        rewrite("fuse-subs", "(- (- ?a ?b) ?c)", "(- ?a (+ ?b ?c))"),
        rewrite("split-subs", "(- ?a (+ ?b ?c))", "(- (- ?a ?b) ?c)"),
    ]
    for rule in rules:
        rule.tags = frozenset({"scalar"})
    return rules
