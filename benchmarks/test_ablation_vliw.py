"""VLIW-scheduling ablation (DESIGN.md section 5).

Our cycle simulator is sequential; the real Fusion G3 is VLIW and the
vendor compiler bundles independent operations.  This benchmark list-
schedules the straight-line kernels (Diospyros output and the unrolled
scalar baseline) and reports the achieved ILP -- quantifying how much
the sequential model understates each side, which explains the one
Figure 5 crossover that does not reproduce (see EXPERIMENTS.md).
"""

import pytest

from conftest import compile_cached, run_checked
from repro.baselines import naive_fixed
from repro.kernels import make_conv2d, make_matmul, make_qprod
from repro.machine import schedule

KERNELS = [
    make_matmul(3, 3, 3),
    make_matmul(4, 4, 4),
    make_conv2d(3, 3, 2, 2),
    make_qprod(),
]


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
@pytest.mark.parametrize("impl", ["diospyros", "naive-fixed"])
def test_vliw_ilp(benchmark, kernel, impl):
    if impl == "diospyros":
        program = compile_cached(kernel).program
    else:
        program = naive_fixed(kernel)

    result = benchmark.pedantic(schedule, args=(program,), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "sequential_cycles": result.sequential,
            "scheduled_cycles": result.length,
            "ilp": round(result.ilp, 2),
        }
    )
    # Scheduling never makes code slower than sequential issue, and
    # the ILP is bounded by the machine's total slot count (4).
    assert result.length <= result.sequential
    assert 1.0 <= result.ilp <= 4.0


def test_scheduling_narrows_but_preserves_diospyros_win(benchmark):
    """Even granting both sides perfect VLIW packing, the vectorized
    kernel stays ahead on a representative matmul."""

    def check():
        kernel = make_matmul(4, 4, 4)
        dio = schedule(compile_cached(kernel).program)
        fixed = schedule(naive_fixed(kernel))
        seq_ratio = fixed.sequential / dio.sequential
        sched_ratio = fixed.length / dio.length
        print(
            f"\nmatmul 4x4 speedup: sequential {seq_ratio:.2f}x, "
            f"scheduled {sched_ratio:.2f}x"
        )
        assert sched_ratio > 1.0

    run_checked(benchmark, check)
