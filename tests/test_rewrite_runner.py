"""Unit tests for rewrites and the saturation runner."""

import time

import pytest

from repro.dsl import parse
from repro.egraph import (
    CustomRewrite,
    EGraph,
    ENode,
    Match,
    Runner,
    StopReason,
    birewrite,
    rewrite,
)


class TestSyntacticRewrite:
    def test_simple_fire(self):
        eg = EGraph()
        root = eg.add_term(parse("(+ (Get a 0) 0)"))
        rule = rewrite("add-0", "(+ ?a 0)", "?a")
        matches = rule.search(eg)
        assert len(matches) == 1
        new_id = matches[0].build(eg)
        eg.union(matches[0].eclass, new_id)
        eg.rebuild()
        assert eg.equiv(parse("(+ (Get a 0) 0)"), parse("(Get a 0)"))

    def test_rhs_variable_must_be_bound(self):
        with pytest.raises(ValueError):
            rewrite("bad", "(+ ?a 0)", "?b")

    def test_guard_vetoes(self):
        eg = EGraph()
        eg.add_term(parse("(+ x 0)"))
        rule = rewrite("never", "(+ ?a 0)", "?a", guard=lambda eg_, s: False)
        assert rule.search(eg) == []

    def test_guard_allows(self):
        eg = EGraph()
        eg.add_term(parse("(+ x 0)"))
        rule = rewrite("always", "(+ ?a 0)", "?a", guard=lambda eg_, s: True)
        assert len(rule.search(eg)) == 1

    def test_birewrite_creates_two_rules(self):
        rules = birewrite("mac", "(VecAdd ?a (VecMul ?b ?c))", "(VecMAC ?a ?b ?c)")
        assert len(rules) == 2
        assert rules[0].name == "mac"
        assert rules[1].name == "mac-rev"

    def test_rhs_with_new_structure(self):
        eg = EGraph()
        eg.add_term(parse("(- x y)"))
        rule = rewrite("sub-neg", "(- ?a ?b)", "(+ ?a (neg ?b))")
        for m in rule.search(eg):
            eg.union(m.eclass, m.build(eg))
        eg.rebuild()
        assert eg.equiv(parse("(- x y)"), parse("(+ x (neg y))"))


class TestCustomRewrite:
    def test_custom_searcher(self):
        def searcher(eg):
            for cid in eg.classes_with_op("Num"):
                for node in eg.nodes_of(cid):
                    if node.op == "Num" and node.value == 7:
                        yield Match(cid, lambda e: e.add(ENode("Num", (), 7.0)))

        eg = EGraph()
        eg.add_term(parse("7"))
        rule = CustomRewrite("sevens", searcher)
        matches = rule.search(eg)
        assert len(matches) == 1
        assert matches[0].rule_name == "sevens"


class TestRunner:
    def test_saturation_detected(self):
        eg = EGraph()
        eg.add_term(parse("(+ (+ x 0) 0)"))
        report = Runner([rewrite("add-0", "(+ ?a 0)", "?a")]).run(eg)
        assert report.stop_reason == StopReason.SATURATED
        assert report.saturated and not report.timed_out
        assert eg.equiv(parse("(+ (+ x 0) 0)"), parse("x"))

    def test_iteration_limit(self):
        # Commutativity ping-pongs forever on its own; growth stops,
        # but the runner must halt via saturation (no new unions).
        eg = EGraph()
        eg.add_term(parse("(+ x y)"))
        report = Runner(
            [rewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)")], iter_limit=3
        ).run(eg)
        assert report.stop_reason in (
            StopReason.SATURATED,
            StopReason.ITERATION_LIMIT,
        )
        assert eg.equiv(parse("(+ x y)"), parse("(+ y x)"))

    @staticmethod
    def _counter_rule(sleep: float = 0.0):
        """A rule that genuinely grows the graph forever: each
        iteration unions the largest literal's class with a fresh
        literal one larger.  (Pattern-based "growing" rules like
        ``?a => (+ ?a 1)`` saturate instantly -- the e-graph represents
        the infinite family finitely -- so limits need a rule that
        mints genuinely new nodes.)"""

        def searcher(eg):
            if sleep:
                time.sleep(sleep)
            best = None
            for cid in eg.classes_with_op("Num"):
                for node in eg.nodes_of(cid):
                    if node.op == "Num" and (best is None or node.value > best[1]):
                        best = (cid, node.value)
            if best is not None:
                cid, value = best
                yield Match(
                    cid, lambda e, v=value: e.add(ENode("Num", (), v + 1))
                )

        return CustomRewrite("counter", searcher)

    def test_node_limit(self):
        eg = EGraph()
        eg.add_term(parse("0"))
        report = Runner(
            [self._counter_rule()], node_limit=20, iter_limit=1000
        ).run(eg)
        assert report.stop_reason == StopReason.NODE_LIMIT
        assert report.timed_out  # node limits count as timeouts (paper: †)

    def test_time_limit(self):
        eg = EGraph()
        eg.add_term(parse("0"))
        start = time.perf_counter()
        report = Runner(
            [self._counter_rule(sleep=0.02)],
            node_limit=10_000_000,
            iter_limit=1_000_000,
            time_limit=0.3,
        ).run(eg)
        assert report.stop_reason == StopReason.TIME_LIMIT
        assert time.perf_counter() - start < 5.0

    def test_iteration_reports_populated(self):
        eg = EGraph()
        eg.add_term(parse("(+ (+ x 0) 0)"))
        report = Runner([rewrite("add-0", "(+ ?a 0)", "?a")]).run(eg)
        assert len(report.iterations) >= 1
        first = report.iterations[0]
        assert first.matches >= 1
        assert first.nodes == report.iterations[0].nodes
        assert report.nodes == eg.num_nodes
        assert "stopped" in report.summary()

    def test_match_limit_caps_rule(self):
        eg = EGraph()
        for i in range(10):
            eg.add_term(parse(f"(+ x{i} 0)"))
        report = Runner(
            [rewrite("add-0", "(+ ?a 0)", "?a")], match_limit=3, iter_limit=1
        ).run(eg)
        assert report.iterations[0].applied <= 3

    def test_empty_ruleset_rejected(self):
        with pytest.raises(ValueError):
            Runner([])

    def test_phase_order_independence(self):
        """The same rules in any order produce the same equivalences
        (the core promise of equality saturation over destructive
        rewriting)."""
        rules_a = [
            rewrite("add-0", "(+ ?a 0)", "?a"),
            rewrite("mul-1", "(* ?a 1)", "?a"),
        ]
        rules_b = list(reversed(rules_a))
        term = parse("(* (+ (Get a 0) 0) 1)")
        results = []
        for rules in (rules_a, rules_b):
            eg = EGraph()
            eg.add_term(term)
            Runner(rules).run(eg)
            results.append(eg.equiv(term, parse("(Get a 0)")))
        assert results == [True, True]
