"""QR decomposition kernels (Householder reflections).

Like both Eigen and the paper's implementation, we use the Householder
algorithm: for an ``n x n`` input ``A``, produce an orthogonal ``Q``
and right-triangular ``R`` with ``A = Q * R``, built from ``n - 1``
reflections using matrix multiplications plus scalar ``sqrt`` /
``sgn`` / division (Section 5.7: "about 170 lines of imperative
Racket" whose lifted spec has tens of thousands of multiplies).

The lifted expressions nest one reflection inside the next, which is
exactly why QRDecomp is the paper's pathological compile-time case
(Table 1: 4x4 takes hours and never saturates).
"""

from __future__ import annotations

from ..frontend.symbolic import sym_sgn, sym_sqrt
from .base import Kernel

__all__ = ["make_qr", "qr_reference"]


def qr_reference(n: int):
    """Householder QR for a fixed ``n x n`` size.

    Data-independent control flow only: loop bounds and the reflection
    index are compile-time, so the same function lifts symbolically and
    runs concretely.
    """

    def qr(a, q_out, r_out) -> None:
        # Working copies: R starts as A, Q as the identity.
        r = [[a[i][j] for j in range(n)] for i in range(n)]
        q = [[1.0 if i == j else 0.0 for j in range(n)] for i in range(n)]

        for k in range(n - 1):
            # Householder vector for column k, rows k..n-1.
            norm_sq = 0.0
            for i in range(k, n):
                norm_sq = norm_sq + r[i][k] * r[i][k]
            norm = sym_sqrt(norm_sq)
            alpha = -(sym_sgn(r[k][k]) * norm)
            v = [0.0] * n
            v[k] = r[k][k] - alpha
            for i in range(k + 1, n):
                v[i] = r[i][k]
            vtv = 0.0
            for i in range(k, n):
                vtv = vtv + v[i] * v[i]
            beta = 2.0 / vtv

            # R <- (I - beta v v^T) R
            for j in range(n):
                dot = 0.0
                for i in range(k, n):
                    dot = dot + v[i] * r[i][j]
                for i in range(k, n):
                    r[i][j] = r[i][j] - beta * v[i] * dot

            # Q <- Q (I - beta v v^T)
            for i in range(n):
                dot = 0.0
                for j in range(k, n):
                    dot = dot + q[i][j] * v[j]
                for j in range(k, n):
                    q[i][j] = q[i][j] - beta * dot * v[j]

        for i in range(n):
            for j in range(n):
                q_out[i][j] = q[i][j]
                r_out[i][j] = r[i][j]

    return qr


def make_qr(n: int) -> Kernel:
    """A fixed-size QR decomposition kernel instance."""
    return Kernel(
        name=f"qrdecomp-{n}x{n}",
        category="QRDecomp",
        size_label=f"{n}x{n}",
        reference=qr_reference(n),
        inputs=(("a", (n, n)),),
        outputs=(("q", (n, n)), ("r", (n, n))),
        params={"n": n},
    )
