"""Crash-safe, content-keyed on-disk cache for compilation artifacts.

Motivated by the durable-artifact story of the eqsat MLIR dialect work
(see PAPERS.md): equality-saturation results are expensive and
deterministic, so they should survive the process that computed them.
A cache entry is a completed :class:`~repro.compiler.CompileResult`
(lowered VIR, diagnostics, cost, validation verdict) keyed by
everything that could change the answer:

``key = sha256(code version | spec fingerprint | options fingerprint)``

* **code version** -- a digest over the ``repro`` package sources, so
  any compiler change invalidates every entry;
* **spec fingerprint** -- the kernel name, array declarations, and the
  s-expression of the lifted term;
* **options fingerprint** -- the semantically relevant
  :class:`~repro.compiler.CompileOptions` fields (budgets, rule-family
  switches, cost configuration, ...); extra rules contribute their
  names.

Durability contract (exercised by ``tests/test_service_cache.py``):

* writes go to a temp file in the cache directory, are flushed +
  fsynced, then published with ``os.replace`` -- a ``kill -9``
  mid-write leaves at worst an orphan temp file, never a half entry;
* every entry embeds a SHA-256 checksum of its payload; truncation,
  bit flips, a stale code version, or any deserialization failure
  degrade to a cache *miss* (counted, corrupt file quarantined), never
  a crash or a wrong result;
* concurrent writers race benignly: ``os.replace`` is atomic, last
  writer wins, both entries were equivalent by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from ..chaos.inject import chaos_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..compiler import CompileOptions, CompileResult
    from ..frontend.lift import Spec

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "CacheEntryInfo",
    "FsckIssue",
    "FsckReport",
    "LRUTier",
    "LRUStats",
    "cache_key",
    "code_fingerprint",
    "spec_fingerprint",
    "options_fingerprint",
]

#: Bump to invalidate every existing cache entry on format changes.
_FORMAT = "repro-cache-v1"
_MAGIC = b"RPROCACHE1\n"
_SUFFIX = ".rcache"

_code_fingerprint_cache: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of the ``repro`` package sources (cached per process).

    Any edit to any compiler module changes the digest, so stale cache
    entries produced by older code can never be served.  Non-source
    artifacts (``.pyc``, editor droppings) are ignored.
    """
    global _code_fingerprint_cache
    if _code_fingerprint_cache is not None:
        return _code_fingerprint_cache
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, package_root).encode())
            try:
                with open(path, "rb") as handle:
                    digest.update(handle.read())
            except OSError:
                digest.update(b"<unreadable>")
    _code_fingerprint_cache = digest.hexdigest()[:16]
    return _code_fingerprint_cache


def spec_fingerprint(spec: "Spec") -> str:
    """Stable digest of a lifted specification."""
    parts = [spec.name]
    for decl in (*spec.inputs, *spec.outputs):
        parts.append(f"{decl.name}:{decl.shape}")
    parts.append(spec.term.to_sexpr())
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def options_fingerprint(options: "CompileOptions") -> str:
    """Digest of the semantically relevant compile options.

    ``track_memory`` and ``checkpoint_egraph`` change observability and
    recovery strategy, not the produced artifact, but they do change
    the *diagnostics* we persist -- include everything except the
    unhashable rule objects, which contribute their names.

    ``checkpoint_dir`` is excluded outright: it names the scratch
    location where crash-recovery state lives, and two compilations
    that differ only in scratch placement must share one cache entry
    (otherwise every retry pointed at a fresh temp dir would miss).
    ``deadline`` likewise: it says when the *client* stops caring, not
    what is being compiled -- two identical requests with different
    deadlines must coalesce onto one cache entry (and one in-flight
    compile, in the gateway's single-flight path).
    """
    payload = {}
    for key, value in sorted(vars(options).items()):
        if key in ("checkpoint_dir", "deadline"):
            continue
        if key == "extra_rules":
            value = [getattr(r, "name", repr(r)) for r in value]
        elif key == "cost_config":
            value = repr(value)
        payload[key] = value
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()


def cache_key(
    spec: "Spec", options: "CompileOptions", code_version: Optional[str] = None
) -> str:
    """Content key for one (spec, options, compiler version) triple."""
    code = code_version if code_version is not None else code_fingerprint()
    joined = "|".join(
        (_FORMAT, code, spec_fingerprint(spec), options_fingerprint(options))
    )
    return hashlib.sha256(joined.encode()).hexdigest()


@dataclass
class CacheStats:
    """Counters for one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    store_failures: int = 0

    def summary(self) -> str:
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores, {self.corrupt} corrupt, "
            f"{self.store_failures} store failures"
        )


@dataclass
class CacheEntryInfo:
    """Metadata of one on-disk entry (``ArtifactCache.entries``)."""

    key: str
    kernel: str
    size_bytes: int
    created: float
    code_version: str


@dataclass
class FsckIssue:
    """One problem ``ArtifactCache.fsck`` found.

    ``kind`` is one of ``corrupt`` (bad magic / header / checksum /
    filename-key mismatch), ``stale`` (valid entry from an older code
    version), ``tmp`` (orphaned temp file from an interrupted write),
    or ``quarantine`` (a ``.corrupt`` file a previous read set aside).
    """

    name: str
    kind: str
    detail: str = ""
    repaired: bool = False


@dataclass
class FsckReport:
    """Outcome of one cache integrity scan (``repro cache fsck``)."""

    root: str
    scanned: int = 0
    ok: int = 0
    issues: List[FsckIssue] = field(default_factory=list)
    repaired: int = 0

    def count(self, kind: str) -> int:
        return sum(1 for issue in self.issues if issue.kind == kind)

    @property
    def corrupt(self) -> int:
        return self.count("corrupt")

    @property
    def stale(self) -> int:
        return self.count("stale")

    @property
    def tmp_litter(self) -> int:
        return self.count("tmp")

    @property
    def quarantine_debris(self) -> int:
        return self.count("quarantine")

    @property
    def clean(self) -> bool:
        """No issues of any kind (the chaos invariant is weaker: it
        tolerates ``stale``/``tmp``/``quarantine`` debris, which crash-
        safe writes produce by design, but never ``corrupt``)."""
        return not self.issues

    def summary(self) -> str:
        head = (
            f"fsck {self.root}: {self.scanned} entries scanned, "
            f"{self.ok} ok, {self.corrupt} corrupt, {self.stale} stale, "
            f"{self.tmp_litter} temp litter, "
            f"{self.quarantine_debris} quarantined"
        )
        if self.repaired:
            head += f", {self.repaired} repaired"
        lines = [head]
        for issue in self.issues:
            mark = " (removed)" if issue.repaired else ""
            detail = f": {issue.detail}" if issue.detail else ""
            lines.append(f"  [{issue.kind}] {issue.name}{detail}{mark}")
        return "\n".join(lines)


@dataclass
class LRUStats:
    """Counters for one in-process :class:`LRUTier`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def summary(self) -> str:
        return (
            f"lru: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores, {self.evictions} evictions"
        )


class LRUTier:
    """Thread-safe in-process LRU of deserialized compile results.

    The read-through tier the gateway's single-flight path (and any
    long-lived :class:`ArtifactCache` user) sits on: a disk hit costs a
    read + checksum + unpickle per request, which at service request
    rates dominates the cache's benefit; the LRU serves repeat keys
    from memory at dict speed.  Capacity is a hard entry bound --
    eviction is strict LRU -- so a long-lived server's memory cannot
    grow with the key universe.

    Entries are shared objects, not copies: callers must treat cached
    :class:`~repro.compiler.CompileResult`\\ s as immutable (the only
    sanctioned mutation is the idempotent ``diagnostics.cache_hit``
    flag the supervisor sets).  Hit/miss/eviction counts are mirrored
    into the ambient metrics registry as
    ``repro_cache_lru_{hits,misses,evictions}_total``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("LRU capacity must be positive")
        self.capacity = capacity
        self.stats = LRUStats()
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
        _count_lru("hits" if entry is not None else "misses")
        return entry

    def put(self, key: str, value: object) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.stats.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                evicted += 1
        for _ in range(evicted):
            _count_lru("evictions")

    def invalidate(self, key: str) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class ArtifactCache:
    """Content-keyed store of pickled :class:`CompileResult` objects.

    All failure modes on the read path degrade to a miss; all failure
    modes on the write path degrade to "not cached".  The cache is
    therefore always safe to wire in -- it can slow a run down by at
    most one checksum per kernel, and can never change an answer.

    ``lru_capacity`` > 0 adds an in-process read-through LRU tier in
    front of the disk store (:class:`LRUTier`): reads consult memory
    first, disk hits populate memory, writes populate both.  The
    memory tier never weakens durability -- every store still goes
    through the crash-safe disk protocol.
    """

    def __init__(
        self,
        root: str,
        code_version: Optional[str] = None,
        lru_capacity: int = 0,
    ) -> None:
        self.root = os.path.abspath(root)
        self.code_version = (
            code_version if code_version is not None else code_fingerprint()
        )
        self.stats = CacheStats()
        self.lru: Optional[LRUTier] = (
            LRUTier(lru_capacity) if lru_capacity else None
        )
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------- keys

    def key_for(self, spec: "Spec", options: "CompileOptions") -> str:
        return cache_key(spec, options, self.code_version)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key + _SUFFIX)

    # ------------------------------------------------------------- read

    def get(self, key: str) -> Optional["CompileResult"]:
        """Load an entry; any integrity failure is a counted miss.
        With the memory tier on, a hot key never touches disk and a
        disk hit populates the tier for the next reader."""
        if self.lru is not None:
            cached = self.lru.get(key)
            if cached is not None:
                self.stats.hits += 1
                return cached
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            blob = chaos_point("cache.read", blob)
            result = self._decode(key, blob)
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._quarantine(path)
            return None
        self.stats.hits += 1
        if self.lru is not None:
            self.lru.put(key, result)
        return result

    def lookup(
        self, spec: "Spec", options: "CompileOptions"
    ) -> Optional["CompileResult"]:
        return self.get(self.key_for(spec, options))

    def _decode(self, key: str, blob: bytes) -> "CompileResult":
        if not blob.startswith(_MAGIC):
            raise ValueError("bad magic")
        rest = blob[len(_MAGIC):]
        newline = rest.index(b"\n")
        header = json.loads(rest[:newline].decode())
        payload = rest[newline + 1:]
        if header.get("key") != key:
            raise ValueError("key mismatch")
        if header.get("code") != self.code_version:
            raise ValueError("stale code version")
        if header.get("sha256") != hashlib.sha256(payload).hexdigest():
            raise ValueError("checksum mismatch")
        result = pickle.loads(payload)
        # Guard against a pickle that deserializes to garbage.
        if not hasattr(result, "program") or not hasattr(result, "diagnostics"):
            raise ValueError("payload is not a CompileResult")
        return result

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside so it cannot mis-count again."""
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass
        _count_quarantine()

    # ------------------------------------------------------------ write

    def put(self, key: str, result: "CompileResult") -> bool:
        """Persist an entry atomically; returns False if not cached."""
        try:
            chaos_point("cache.write")
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.stats.store_failures += 1
            return False
        header = json.dumps(
            {
                "format": _FORMAT,
                "key": key,
                "code": self.code_version,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "kernel": getattr(result.spec, "name", ""),
                "created": time.time(),
            },
            sort_keys=True,
        ).encode()
        blob = _MAGIC + header + b"\n" + payload
        path = self._path(key)
        try:
            fd, tmp_path = tempfile.mkstemp(
                prefix=".tmp-" + key[:12] + "-", dir=self.root
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            self._fsync_dir()
        except Exception:
            self.stats.store_failures += 1
            return False
        self.stats.stores += 1
        if self.lru is not None:
            self.lru.put(key, result)
        return True

    def store(
        self, spec: "Spec", options: "CompileOptions", result: "CompileResult"
    ) -> bool:
        return self.put(self.key_for(spec, options), result)

    def _fsync_dir(self) -> None:
        try:
            dir_fd = os.open(self.root, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass  # durability best-effort on exotic filesystems

    # ------------------------------------------------------- management

    def entries(self) -> List[CacheEntryInfo]:
        """Metadata of every readable entry (corrupt ones skipped)."""
        infos: List[CacheEntryInfo] = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(_SUFFIX):
                continue
            path = os.path.join(self.root, name)
            try:
                with open(path, "rb") as handle:
                    blob = handle.read(64 * 1024)
                if not blob.startswith(_MAGIC):
                    continue
                rest = blob[len(_MAGIC):]
                header = json.loads(rest[: rest.index(b"\n")].decode())
                infos.append(
                    CacheEntryInfo(
                        key=header.get("key", name[: -len(_SUFFIX)]),
                        kernel=header.get("kernel", "?"),
                        size_bytes=os.path.getsize(path),
                        created=float(header.get("created", 0.0)),
                        code_version=header.get("code", "?"),
                    )
                )
            except Exception:
                continue
        return infos

    def fsck(self, repair: bool = False) -> FsckReport:
        """Scan the cache directory for integrity problems.

        Validates every ``.rcache`` file without unpickling it (magic,
        parseable header, filename/key agreement, payload checksum) and
        inventories the two kinds of debris crash-safe writes leave
        behind: orphaned ``.tmp-*`` files and quarantined ``.corrupt``
        entries.  With ``repair=True``, every flagged file is deleted.
        Issue counts are mirrored into the ambient metrics registry
        (``repro_cache_fsck_issues_total``); quarantine debris finally
        becomes visible to metrics this way.
        """
        report = FsckReport(root=self.root)
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            if name.startswith(".tmp-"):
                report.issues.append(
                    FsckIssue(name, "tmp", "orphaned temp file")
                )
            elif name.endswith(".corrupt"):
                report.issues.append(
                    FsckIssue(name, "quarantine", "quarantined entry")
                )
            elif name.endswith(_SUFFIX):
                report.scanned += 1
                problem = self._verify_entry(name, path)
                if problem is None:
                    report.ok += 1
                else:
                    report.issues.append(problem)
        if repair:
            for issue in report.issues:
                try:
                    os.unlink(os.path.join(self.root, issue.name))
                    issue.repaired = True
                    report.repaired += 1
                except OSError:
                    pass
        _count_fsck(report)
        return report

    def _verify_entry(self, name: str, path: str) -> Optional[FsckIssue]:
        """Integrity-check one entry file (header + checksum only; the
        payload is never unpickled, so fsck is safe on hostile data)."""
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            return FsckIssue(name, "corrupt", f"unreadable: {exc}")
        if not blob.startswith(_MAGIC):
            return FsckIssue(name, "corrupt", "bad magic")
        rest = blob[len(_MAGIC):]
        try:
            newline = rest.index(b"\n")
            header = json.loads(rest[:newline].decode())
        except Exception:
            return FsckIssue(name, "corrupt", "unparseable header")
        payload = rest[newline + 1:]
        if header.get("key") != name[: -len(_SUFFIX)]:
            return FsckIssue(name, "corrupt", "key does not match filename")
        if header.get("sha256") != hashlib.sha256(payload).hexdigest():
            return FsckIssue(name, "corrupt", "payload checksum mismatch")
        if header.get("code") != self.code_version:
            return FsckIssue(
                name, "stale", f"code version {header.get('code', '?')}"
            )
        return None

    def clear(self) -> int:
        """Delete every entry (and quarantined/temp litter); returns
        the number of files removed."""
        if self.lru is not None:
            self.lru.clear()
        removed = 0
        for name in os.listdir(self.root):
            if (
                name.endswith(_SUFFIX)
                or name.endswith(".corrupt")
                or name.startswith(".tmp-")
            ):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        return sum(
            1 for name in os.listdir(self.root) if name.endswith(_SUFFIX)
        )


# ----------------------------------------------------------------------
# Metrics bridges (lazy observability imports: this module is loaded by
# the compiler stack, which observability itself instruments).
# ----------------------------------------------------------------------


def _count_lru(kind: str) -> None:
    """Mirror one LRU-tier event (hits / misses / evictions) into the
    ambient metrics registry, if any."""
    from ..observability.config import current_session

    session = current_session()
    if session is not None and session.metrics is not None:
        session.metrics.counter(
            f"repro_cache_lru_{kind}_total",
            f"In-process LRU cache tier {kind}",
        ).inc()


def _count_quarantine() -> None:
    """Record one quarantine event on the ambient metrics registry.
    Before this counter existed, quarantines were invisible to metrics
    -- only the per-instance ``CacheStats.corrupt`` knew."""
    from ..observability.config import current_session

    session = current_session()
    if session is not None and session.metrics is not None:
        session.metrics.counter(
            "repro_cache_quarantines_total",
            "Corrupt cache entries quarantined on read",
        ).inc()


def _count_fsck(report: FsckReport) -> None:
    from ..observability.config import current_session

    session = current_session()
    if session is None or session.metrics is None:
        return
    counter = session.metrics.counter(
        "repro_cache_fsck_issues_total",
        "Cache integrity issues found by fsck, by kind",
        labels=("kind",),
    )
    for kind in ("corrupt", "stale", "tmp", "quarantine"):
        count = report.count(kind)
        if count:
            counter.labels(kind=kind).inc(count)
    session.metrics.gauge(
        "repro_cache_fsck_entries",
        "Entries scanned by the last cache fsck",
    ).set(report.scanned)
