"""Circuit-breaker recovery and retry-budget floor tests.

PR 6 satellites: the breaker must *close* again -- strikes -> open ->
``reset_breaker`` -> success -- including under concurrent
``compile_many`` traffic, with every transition recorded legally in
``breaker_log``; and ``RetryPolicy.shrunk_options`` must never shrink
budgets below the documented floors.
"""

import dataclasses

import pytest

from repro.chaos.invariants import check_breaker_log
from repro.compiler import CompileOptions
from repro.errors import CircuitOpenError, WorkerCrashError
from repro.frontend.lift import lift
from repro.service import CompileService, FaultInjection, RetryPolicy

FAST = CompileOptions(
    time_limit=5.0, node_limit=20_000, iter_limit=8, validate=False
)
#: One attempt, two strikes to open, near-zero backoff.
POLICY = RetryPolicy(
    max_attempts=1,
    backoff_base=0.0,
    backoff_jitter=0.0,
    strike_threshold=2,
)
#: In-process "worker death" on every attempt (see _run_once).
CRASH = FaultInjection("sigkill", attempts=tuple(range(16)))


def _spec(name="breaker-k"):
    def body(a, b, out):
        out[0] = a[0] * b[0] + a[1] * b[1]

    return lift(name, body, [("a", 2), ("b", 2)], [("out", 1)])


def _service(**kwargs):
    kwargs.setdefault("policy", POLICY)
    return CompileService(cache=None, isolate=False, **kwargs)


def test_breaker_opens_resets_and_closes():
    spec = _spec()
    service = _service()

    for _ in range(2):
        with pytest.raises(WorkerCrashError):
            service.compile_spec(spec, FAST, inject=CRASH)
    assert service.strikes(spec.name) == 2
    with pytest.raises(CircuitOpenError):
        service.compile_spec(spec, FAST)
    assert service.stats.breaker_trips == 1

    # Operator intervention reopens the path...
    service.reset_breaker(spec.name)
    assert service.strikes(spec.name) == 0
    result = service.compile_spec(spec, FAST)
    assert result.program and not result.degraded

    # ...and a success after a non-opening strike closes the breaker.
    with pytest.raises(WorkerCrashError):
        service.compile_spec(spec, FAST, inject=CRASH)
    assert service.strikes(spec.name) == 1
    service.compile_spec(spec, FAST)
    assert service.strikes(spec.name) == 0

    events = [e["event"] for e in service.breaker_log]
    assert events == [
        "strike", "strike", "open", "reject", "reset", "strike", "close",
    ]
    # The recorded history replays as a legal protocol.
    assert check_breaker_log("t", service.breaker_log, POLICY.strike_threshold) == []


def test_reset_all_kernels():
    spec_a, spec_b = _spec("brk-a"), _spec("brk-b")
    service = _service()
    for spec in (spec_a, spec_b):
        with pytest.raises(WorkerCrashError):
            service.compile_spec(spec, FAST, inject=CRASH)
    service.reset_breaker()  # no kernel argument: reset everything
    assert service.strikes(spec_a.name) == 0
    assert service.strikes(spec_b.name) == 0
    resets = [e for e in service.breaker_log if e["event"] == "reset"]
    assert {e["kernel"] for e in resets} == {spec_a.name, spec_b.name}


def test_breaker_under_concurrent_compile_many():
    """A poisoned kernel repeated across a concurrent batch strikes out
    and gets rejected, the healthy kernel still compiles, and the
    interleaved transition log stays legal."""
    bad = _spec("brk-poison")
    good = _spec("brk-good")
    service = _service(
        max_workers=4, inject_for={bad.name: CRASH}
    )
    items = service.compile_many([bad, good, bad, bad, bad], FAST)

    assert items[1].ok and items[1].result.program
    bad_items = [items[0], *items[2:]]
    assert all(not item.ok for item in bad_items)
    for item in bad_items:
        assert isinstance(item.error, (WorkerCrashError, CircuitOpenError))
    # At least one compile was refused outright by the open breaker.
    assert any(
        isinstance(item.error, CircuitOpenError) for item in bad_items
    )
    assert check_breaker_log(
        "t", service.breaker_log, POLICY.strike_threshold
    ) == []

    # Recovery also works after concurrent damage (stop poisoning the
    # kernel first -- the drill is over).
    service.inject_for.pop(bad.name)
    service.reset_breaker(bad.name)
    assert service.compile_spec(bad, FAST).program


# ------------------------------------------------------- shrink floors


def test_shrunk_options_respects_documented_floors():
    policy = RetryPolicy(shrink_factor=0.5)
    options = dataclasses.replace(FAST, node_limit=100_000, time_limit=10.0)
    previous = options
    for attempt in range(1, 12):
        shrunk = policy.shrunk_options(options, attempt)
        assert shrunk.node_limit >= policy.min_node_limit == 1_000
        assert shrunk.time_limit >= policy.min_time_limit == 0.25
        # monotone non-increasing budgets across attempts
        assert shrunk.node_limit <= previous.node_limit
        assert shrunk.time_limit <= previous.time_limit
        previous = shrunk
    # Deep attempts bottom out exactly at the floors.
    deep = policy.shrunk_options(options, 40)
    assert deep.node_limit == policy.min_node_limit
    assert deep.time_limit == policy.min_time_limit


def test_shrunk_options_never_crosses_floor_even_from_tiny_budgets():
    policy = RetryPolicy(shrink_factor=0.1)
    options = dataclasses.replace(FAST, node_limit=1_200, time_limit=0.3)
    shrunk = policy.shrunk_options(options, 1)
    assert shrunk.node_limit == policy.min_node_limit
    assert shrunk.time_limit == policy.min_time_limit


def test_attempt_zero_runs_at_full_budget():
    policy = RetryPolicy()
    assert policy.shrunk_options(FAST, 0) is FAST
