#!/usr/bin/env python3
"""Retargeting the compiler (paper Section 6, "Limitations &
Portability").

The paper sketches the recipe for a new DSP: (1) add a scalar rewrite
rule for the new primitive, (2) tell the engine it has a vector
equivalent, (3) map it to the target intrinsic.  It also notes the
vector width is "a simple compile-time setting" and that targets
without a fast shuffle change the cost story.

This script demonstrates all three knobs:

* compiling the same kernel at vector width 2 and 4;
* adding a ``recip`` rule so ``1/x`` becomes a reciprocal primitive in
  the e-graph;
* re-running a compiled kernel on the no-fast-shuffle machine model to
  see data movement dominate.

Run:  python examples/custom_target.py
"""

from repro.compiler import CompileOptions, compile_kernel
from repro.dsl import parse
from repro.egraph import EGraph, Runner, rewrite
from repro.frontend import lift
from repro.kernels import make_matmul
from repro.machine import fusion_g3, no_shuffle_machine, simulate
from repro.rules import build_ruleset


def vector_add(a, b, out):
    for i in range(8):
        out[i] = a[i] + b[i]


def main() -> None:
    print("=== knob 1: the vector width is a compile-time setting ===")
    for width in (2, 4):
        result = compile_kernel(
            "vadd",
            vector_add,
            [("a", 8), ("b", 8)],
            [("o", 8)],
            CompileOptions(vector_width=width, time_limit=5.0, validate=False),
        )
        run = simulate(result.program, {"a": range(8), "b": range(8)})
        print(f"  width {width}: {len(result.program)} instructions, "
              f"{run.cycles:.0f} cycles")

    print("\n=== knob 2: teaching the engine a new primitive ===")
    recip = rewrite("recip-intro", "(/ 1 ?x)", "(recip ?x)")
    eg = EGraph()
    spec = lift(
        "normalize",
        lambda a, o: [o.__setitem__(i, 1.0 / a[i]) for i in range(4)] and None,
        [("a", 4)],
        [("o", 4)],
    )
    eg.add_term(spec.term)
    Runner(build_ruleset(4, extra_rules=[recip])).run(eg)
    found = eg.equiv(parse("(/ 1 (Get a 0))"), parse("(recip (Get a 0))"))
    print(f"  (/ 1 x) ~ (recip x) discovered in the e-graph: {found}")
    print("  (lowering it needs one backend table entry mapping recip to"
          " the vendor intrinsic -- paper: '1-2 lines of code')")

    print("\n=== knob 3: a target without a fast shuffle ===")
    kernel = make_matmul(3, 3, 3)
    from repro.compiler import compile_spec

    result = compile_spec(
        kernel.spec(), CompileOptions(time_limit=8.0, validate=False)
    )
    inputs = kernel.random_inputs(0)
    fast = simulate(result.program, inputs, fusion_g3())
    slow = simulate(result.program, inputs, no_shuffle_machine())
    print(f"  matmul 3x3 kernel: {fast.cycles:.0f} cycles on fusion-g3, "
          f"{slow.cycles:.0f} on a no-shuffle DSP "
          f"({slow.cycles / fast.cycles:.2f}x slower)")
    print("  (the paper's caveat: the unrestricted-shuffle assumption is "
          "baked into the cost model)")


if __name__ == "__main__":
    main()
