"""Unit tests for the structured imperative input language
(repro.frontend.lang)."""

import pytest

from repro.dsl import evaluate_output, parse
from repro.frontend.lang import (
    Add,
    AddStore,
    Cmp,
    Const,
    For,
    IdxAdd,
    IdxConst,
    IdxMul,
    IdxSub,
    If,
    Load,
    Mul,
    Program,
    Sqrt,
    Store,
    Var,
)
from repro.frontend.lift import random_inputs, run_reference


def vector_add_program(n=4):
    return Program(
        "vector-add",
        inputs=[("a", n), ("b", n)],
        outputs=[("c", n)],
        body=[
            For(
                "i",
                n,
                [Store("c", Var("i"), Add(Load("a", Var("i")), Load("b", Var("i"))))],
            )
        ],
    )


class TestIndexExpressions:
    def test_var_lookup(self):
        assert Var("i").evaluate({"i": 3}) == 3

    def test_unbound_var(self):
        with pytest.raises(NameError):
            Var("i").evaluate({})

    def test_arithmetic(self):
        env = {"i": 3, "j": 2}
        assert IdxAdd(Var("i"), Var("j")).evaluate(env) == 5
        assert IdxSub(Var("i"), Var("j")).evaluate(env) == 1
        assert IdxMul(Var("i"), IdxConst(4)).evaluate(env) == 12

    def test_cmp(self):
        env = {"i": 3}
        assert Cmp("<", Var("i"), IdxConst(5)).evaluate(env)
        assert not Cmp(">=", Var("i"), IdxConst(5)).evaluate(env)
        assert Cmp("==", Var("i"), IdxConst(3)).evaluate(env)

    def test_cmp_unknown_op(self):
        with pytest.raises(ValueError):
            Cmp("!=", Var("i"), IdxConst(0)).evaluate({"i": 1})


class TestPrograms:
    def test_vector_add_lifts(self):
        spec = vector_add_program().lift()
        assert spec.n_outputs == 4
        assert spec.term.args[0] == parse("(+ (Get a 0) (Get b 0))")

    def test_lift_matches_concrete_run(self, rng):
        prog = vector_add_program()
        spec = prog.lift()
        env = random_inputs(spec, rng)
        concrete = run_reference(prog.reference(), spec, env)
        symbolic = evaluate_output(spec.term, env)
        for c, s in zip(concrete, symbolic):
            assert abs(c - s) < 1e-9

    def test_nested_loops_with_accumulation(self):
        """A structured 2x2 matrix multiply via AddStore."""
        n = 2
        prog = Program(
            "mm",
            inputs=[("a", n * n), ("b", n * n)],
            outputs=[("c", n * n)],
            body=[
                For("i", n, [
                    For("j", n, [
                        For("k", n, [
                            AddStore(
                                "c",
                                IdxAdd(IdxMul(Var("i"), IdxConst(n)), Var("j")),
                                Mul(
                                    Load("a", IdxAdd(IdxMul(Var("i"), IdxConst(n)), Var("k"))),
                                    Load("b", IdxAdd(IdxMul(Var("k"), IdxConst(n)), Var("j"))),
                                ),
                            )
                        ]),
                    ]),
                ]),
            ],
        )
        spec = prog.lift()
        assert spec.term.args[0] == parse(
            "(+ (* (Get a 0) (Get b 0)) (* (Get a 1) (Get b 2)))"
        )

    def test_if_guards_boundary(self):
        """The boundary-condition If of the convolution example."""
        prog = Program(
            "shift",
            inputs=[("a", 3)],
            outputs=[("o", 3)],
            body=[
                For("i", 3, [
                    If(
                        [Cmp(">=", IdxSub(Var("i"), IdxConst(1)), IdxConst(0))],
                        [Store("o", Var("i"), Load("a", IdxSub(Var("i"), IdxConst(1))))],
                    )
                ]),
            ],
        )
        spec = prog.lift()
        assert spec.term.args[0] == parse("0")  # guarded out
        assert spec.term.args[1] == parse("(Get a 0)")

    def test_sqrt_in_program(self):
        prog = Program(
            "roots",
            inputs=[("a", 2)],
            outputs=[("o", 2)],
            body=[For("i", 2, [Store("o", Var("i"), Sqrt(Load("a", Var("i"))))])],
        )
        spec = prog.lift()
        assert spec.term.args[0] == parse("(sqrt (Get a 0))")

    def test_shadowed_loop_variable_rejected(self):
        prog = Program(
            "shadow",
            inputs=[("a", 1)],
            outputs=[("o", 1)],
            body=[For("i", 1, [For("i", 1, [Store("o", Var("i"), Const(1.0))])])],
        )
        with pytest.raises(NameError):
            prog.lift()

    def test_store_into_input_rejected(self):
        prog = Program(
            "bad",
            inputs=[("a", 1)],
            outputs=[("o", 1)],
            body=[Store("a", IdxConst(0), Const(1.0))],
        )
        with pytest.raises(TypeError):
            prog.lift()

    def test_output_readable_for_accumulation(self):
        prog = Program(
            "acc",
            inputs=[("a", 2)],
            outputs=[("o", 1)],
            body=[
                For("i", 2, [AddStore("o", IdxConst(0), Load("a", Var("i")))]),
            ],
        )
        spec = prog.lift()
        assert spec.term.args[0] == parse("(+ (Get a 0) (Get a 1))")

    def test_program_compiles_end_to_end(self, fast_options):
        """The structured language feeds the same compiler pipeline."""
        from repro.compiler import compile_spec
        from repro.machine import simulate

        spec = vector_add_program().lift()
        result = compile_spec(spec, fast_options)
        sim = simulate(result.program, {"a": [1, 2, 3, 4], "b": [10, 20, 30, 40]})
        assert sim.output("out") == [11.0, 22.0, 33.0, 44.0]
