"""End-to-end tests of the compiler driver (repro.compiler)."""

import pytest

from repro.compiler import CompileOptions, compile_kernel, compile_spec
from repro.frontend import lift, random_inputs, run_reference
from repro.machine import simulate


def vector_add(a, b, o):
    for i in range(len(o)):
        o[i] = a[i] + b[i]


def four_dots(a, b, o):
    """Four independent 2-term dot products: one per vector lane."""
    for j in range(4):
        acc = 0.0
        for i in range(2):
            acc = acc + a[2 * j + i] * b[2 * j + i]
        o[j] = acc


class TestEndToEnd:
    def test_vector_add_vectorizes(self, fast_options):
        result = compile_kernel(
            "vadd", vector_add, [("a", 8), ("b", 8)], [("o", 8)], fast_options
        )
        hist = result.program.opcode_histogram()
        assert hist.get("vbin.+", 0) == 2
        assert hist.get("vload", 0) == 4
        sim = simulate(result.program, {"a": range(8), "b": range(8)})
        assert sim.output("out") == [2.0 * i for i in range(8)]

    def test_dot_products_use_mac(self, fast_options):
        result = compile_kernel(
            "dots", four_dots, [("a", 8), ("b", 8)], [("o", 4)], fast_options
        )
        sexpr = result.optimized.to_sexpr()
        assert "VecMAC" in sexpr
        sim = simulate(
            result.program, {"a": [1] * 8, "b": [1, 2, 3, 4, 5, 6, 7, 8]}
        )
        assert sim.output("out") == [3.0, 7.0, 11.0, 15.0]

    def test_single_dot_product_stays_scalar(self, fast_options):
        """A 1-output reduction cannot profitably vectorize without a
        horizontal-sum instruction (absent from the paper's DSL); the
        cost model must keep the scalar form."""

        def dot(a, b, o):
            acc = 0.0
            for i in range(4):
                acc = acc + a[i] * b[i]
            o[0] = acc

        result = compile_kernel(
            "dot", dot, [("a", 4), ("b", 4)], [("o", 1)], fast_options
        )
        assert result.optimized.op == "List"
        sim = simulate(result.program, {"a": [1, 2, 3, 4], "b": [5, 6, 7, 8]})
        assert sim.output("out")[0] == 70.0

    def test_result_fields_populated(self, fast_options):
        result = compile_kernel(
            "vadd", vector_add, [("a", 4), ("b", 4)], [("o", 4)], fast_options
        )
        assert result.compile_time > 0
        assert result.egraph_nodes > 0
        assert result.egraph_classes > 0
        assert result.cost > 0
        assert "PDX_" in result.c_code
        assert "vadd" in result.summary()
        assert not result.timed_out

    def test_validation_runs(self, validated_options):
        result = compile_kernel(
            "vadd", vector_add, [("a", 4), ("b", 4)], [("o", 4)], validated_options
        )
        assert result.validation is not None
        assert result.validated

    def test_track_memory(self):
        options = CompileOptions(
            time_limit=5, node_limit=10_000, validate=False, track_memory=True
        )
        result = compile_kernel(
            "vadd", vector_add, [("a", 4), ("b", 4)], [("o", 4)], options
        )
        assert result.peak_memory_bytes is not None
        assert result.peak_memory_bytes > 0

    def test_differential_against_reference(self, fast_options, rng):
        def kernel(a, b, o):
            for i in range(3):
                o[i] = a[i] * b[i] - a[(i + 1) % 3]

        spec = lift("k", kernel, [("a", 3), ("b", 3)], [("o", 3)])
        result = compile_spec(spec, fast_options)
        env = random_inputs(spec, rng)
        sim = simulate(result.program, env)
        expected = run_reference(kernel, spec, env)
        for got, want in zip(sim.output("out"), expected):
            assert abs(got - want) < 1e-9


class TestOptions:
    def test_vector_rules_disabled_yields_scalar(self, fast_options):
        from dataclasses import replace

        options = replace(fast_options, enable_vector_rules=False)
        result = compile_kernel(
            "vadd", vector_add, [("a", 8), ("b", 8)], [("o", 8)], options
        )
        hist = result.program.opcode_histogram()
        assert all(not op.startswith("v") for op in hist)

    def test_lvn_disabled_leaves_redundancy(self, fast_options):
        from dataclasses import replace

        def square_twice(a, o):
            o[0] = (a[0] + a[1]) * (a[0] + a[1])

        options = replace(fast_options, run_lvn=False, enable_vector_rules=False)
        result = compile_kernel("sq", square_twice, [("a", 2)], [("o", 1)], options)
        with_lvn = compile_kernel(
            "sq", square_twice, [("a", 2)], [("o", 1)],
            replace(fast_options, enable_vector_rules=False),
        )
        assert len(result.program) >= len(with_lvn.program)

    def test_select_best_candidate_never_worse(self, fast_options):
        from dataclasses import replace

        from repro.machine.config import static_cycles

        def sums(a, o):
            o[0] = (a[0] + a[1]) + (a[2] + a[3])

        base = compile_kernel("s", sums, [("a", 4)], [("o", 1)], fast_options)
        best = compile_kernel(
            "s", sums, [("a", 4)], [("o", 1)],
            replace(fast_options, select_best_candidate=True),
        )
        assert static_cycles(best.program) <= static_cycles(base.program)

    def test_custom_width(self, fast_options):
        from dataclasses import replace

        options = replace(fast_options, vector_width=2)
        result = compile_kernel(
            "vadd", vector_add, [("a", 4), ("b", 4)], [("o", 4)], options
        )
        assert result.program.vector_width == 2
        sim = simulate(result.program, {"a": [1, 2, 3, 4], "b": [4, 3, 2, 1]})
        assert sim.output("out") == [5.0] * 4

    def test_extra_rule_extension(self, fast_options):
        """The Section 6 portability recipe: add a recip rule and its
        catalogue entry, and the pipeline picks it up."""
        from dataclasses import replace

        from repro.egraph import rewrite

        recip_rule = rewrite("recip-intro", "(/ 1 ?x)", "(recip ?x)")
        options = replace(fast_options, extra_rules=(recip_rule,))

        def reciprocal(a, o):
            o[0] = 1.0 / a[0]

        spec = lift("rec", reciprocal, [("a", 1)], [("o", 1)])
        from repro.egraph import EGraph, Runner
        from repro.rules import build_ruleset

        eg = EGraph()
        eg.add_term(spec.term)
        Runner(build_ruleset(4, extra_rules=[recip_rule])).run(eg)
        from repro.dsl import parse

        assert eg.equiv(parse("(/ 1 (Get a 0))"), parse("(recip (Get a 0))"))

    def test_timeout_still_produces_code(self):
        """A starved budget must still emit a correct kernel
        (extraction from a partially saturated e-graph)."""
        options = CompileOptions(
            time_limit=0.0, node_limit=10, iter_limit=0, validate=False
        )
        result = compile_kernel(
            "vadd", vector_add, [("a", 4), ("b", 4)], [("o", 4)], options
        )
        sim = simulate(result.program, {"a": [1, 2, 3, 4], "b": [1, 1, 1, 1]})
        assert sim.output("out") == [2.0, 3.0, 4.0, 5.0]
