"""Local value numbering and dead-code elimination (paper Section 4).

Fully unrolling loop nests creates heavily redundant straight-line
code; the e-graph dedupes it implicitly, but a naive lowering would
re-materialize it ("over 100,000 lines of C++ to under 500" for the
quaternion product).  This pass removes that redundancy from IR
kernels:

* **LVN** -- every pure instruction is keyed by (opcode, immediates,
  value numbers of operands); a repeated key reuses the earlier
  destination register.  Commutative operations (scalar/vector ``+``
  and ``*``, and the multiplicand pair of ``vmac``) are canonicalized
  by sorting operand value numbers, catching ``a+b`` vs ``b+a``.
* **DCE** -- instructions whose results are never used by a store (or
  transitively by one) are dropped.

The pass only runs on straight-line programs (Diospyros output);
loop-based baseline kernels pass through untouched, exactly as the
vendor compiler -- not Diospyros -- optimizes those.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

from . import vir
from .vir import Instr, Program

__all__ = ["run_lvn", "eliminate_dead_code", "optimize"]

_COMMUTATIVE_BIN = {"+", "*"}


def _rewrite_uses(instr: Instr, replacement: Dict[str, str]) -> Instr:
    """Return ``instr`` with every used register renamed through the
    replacement map (definitions are left alone)."""
    updates = {}
    for field in dataclasses.fields(instr):
        value = getattr(instr, field.name)
        if field.name in ("dst",):
            continue
        if isinstance(value, str) and value in replacement:
            # Register operands are the only string fields that can be
            # in the map (array names and labels never collide with
            # register names by construction: regs are s<N>/v<N>).
            updates[field.name] = replacement[value]
    if not updates:
        return instr
    return dataclasses.replace(instr, **updates)


def _value_key(instr: Instr) -> Tuple:
    """Hashable value identity of a pure instruction."""
    kind = type(instr).__name__
    if isinstance(instr, vir.SBin) and instr.op in _COMMUTATIVE_BIN:
        return (kind, instr.op) + tuple(sorted((instr.a, instr.b)))
    if isinstance(instr, vir.VBin) and instr.op in _COMMUTATIVE_BIN:
        return (kind, instr.op) + tuple(sorted((instr.a, instr.b)))
    if isinstance(instr, vir.VMac):
        return (kind, instr.acc) + tuple(sorted((instr.a, instr.b)))
    parts: List = [kind]
    for field in dataclasses.fields(instr):
        if field.name == "dst":
            continue
        parts.append(getattr(instr, field.name))
    return tuple(parts)


def run_lvn(program: Program) -> Program:
    """Value-number a straight-line program; returns a new Program."""
    if not program.is_straight_line():
        return program
    replacement: Dict[str, str] = {}
    table: Dict[Tuple, str] = {}
    new_instructions: List[Instr] = []
    for instr in program.instructions:
        instr = _rewrite_uses(instr, replacement)
        if not instr.is_pure():
            new_instructions.append(instr)
            continue
        key = _value_key(instr)
        existing = table.get(key)
        defs = instr.defs()
        if existing is not None and defs:
            replacement[defs[0]] = existing
            continue
        if defs:
            table[key] = defs[0]
        new_instructions.append(instr)
    return dataclasses.replace(program, instructions=new_instructions)


def eliminate_dead_code(program: Program) -> Program:
    """Drop pure instructions whose results never reach a store."""
    if not program.is_straight_line():
        return program
    live: Set[str] = set()
    kept_reversed: List[Instr] = []
    for instr in reversed(program.instructions):
        defs = instr.defs()
        if instr.is_pure() and defs and not any(d in live for d in defs):
            continue
        kept_reversed.append(instr)
        live.update(instr.uses())
    return dataclasses.replace(program, instructions=list(reversed(kept_reversed)))


def optimize(program: Program) -> Program:
    """LVN followed by DCE, to fixpoint (two rounds suffice in
    practice, but iterate defensively)."""
    from ..observability import span

    with span("backend.lvn", instructions_in=len(program)) as s:
        previous = -1
        current = program
        rounds = 0
        while len(current) != previous:
            previous = len(current)
            current = eliminate_dead_code(run_lvn(current))
            rounds += 1
        if s is not None:
            s.set(instructions_out=len(current), rounds=rounds)
    return current
