"""Deterministic replay of packaged divergence repros.

A repro payload (:func:`repro.conformance.shrink.repro_payload`) is a
self-contained JSON document: the minimal kernel, the scalar compile
options it diverged under, and the differential-check parameters.
``replay_repro`` runs the exact same compile + check and reports
whether the divergence still manifests -- byte-identically on any
machine, because every random stream derives from the payload content
via :mod:`repro.seeding` and compiles run without wall-clock limits.

The generated pytest files under ``tests/repros/`` are thin wrappers
around this module, so fixing a replay bug fixes every repro at once.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..compiler import CompileOptions, compile_spec
from ..frontend.lift import Spec
from ..seeding import stable_rng
from ..validation.fuzz import FuzzDivergence, check_result
from .corpus import spec_from_json, spec_key

__all__ = [
    "REPRO_SCHEMA",
    "options_to_json",
    "options_from_json",
    "ReplayReport",
    "replay_repro",
]

REPRO_SCHEMA = "conformance_repro/v1"

#: CompileOptions fields a repro serializes: every scalar knob that can
#: change compilation behavior.  Non-scalar fields (extra_rules,
#: cost_config, observability) are deliberately excluded -- a repro
#: must be a plain-JSON artifact; divergences that depend on injected
#: rules replay by passing the same ``options`` object in-process.
_OPTION_FIELDS = (
    "vector_width",
    "iter_limit",
    "node_limit",
    "time_limit",
    "match_limit",
    "enable_scalar_rules",
    "enable_vector_rules",
    "enable_ac_rules",
    "enable_constant_folding",
    "select_best_candidate",
    "validate",
    "run_lvn",
    "track_memory",
    "fault_tolerance",
    "checkpoint_egraph",
    "checkpoint_stride",
    "incremental_matching",
    "rescan_stride",
    "validation_retry_trials",
    "seed",
)


def options_to_json(options: CompileOptions) -> Dict:
    return {name: getattr(options, name) for name in _OPTION_FIELDS}


def options_from_json(payload: Dict) -> CompileOptions:
    known = {f.name for f in dataclasses.fields(CompileOptions)}
    kwargs = {
        name: payload[name]
        for name in _OPTION_FIELDS
        if name in payload and name in known
    }
    return CompileOptions(**kwargs)


@dataclass
class ReplayReport:
    """Outcome of replaying one repro payload."""

    spec: Spec
    key: str
    divergences: List[FuzzDivergence] = field(default_factory=list)
    compile_error: str = ""

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.compile_error

    def render(self) -> str:
        lines = [f"repro {self.key} ({self.spec.name}):"]
        if self.compile_error:
            lines.append(f"  compile error: {self.compile_error}")
        for d in self.divergences:
            lines.append(f"  {d}")
        if self.ok:
            lines.append("  OK -- divergence no longer reproduces")
        return "\n".join(lines)


def replay_repro(
    payload: Dict,
    options: Optional[CompileOptions] = None,
) -> ReplayReport:
    """Re-run a packaged repro; ``options`` overrides the serialized
    ones (used when the original divergence depended on non-JSON state
    such as injected rules)."""
    if payload.get("schema") != REPRO_SCHEMA:
        raise ValueError(
            f"repro schema mismatch: {payload.get('schema')!r} != "
            f"{REPRO_SCHEMA!r}"
        )
    spec = spec_from_json(payload["spec"])
    key = payload.get("key") or spec_key(spec)
    if options is None:
        options = options_from_json(payload.get("options", {}))
    report = ReplayReport(spec=spec, key=key)
    try:
        result = compile_spec(spec, options)
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        report.compile_error = f"{type(exc).__name__}: {exc}"
        return report
    rng = stable_rng(int(payload.get("seed", 0)), "shrink-check", key)
    report.divergences = check_result(
        spec,
        result,
        rng,
        int(payload.get("trials", 3)),
        float(payload.get("tolerance", 1e-5)),
    )
    return report
