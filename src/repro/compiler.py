"""The end-to-end Diospyros compiler pipeline (paper Figure 1).

``scalar program -> [symbolic evaluation] -> spec -> [equality
saturation] -> optimized DSL -> [translation validation] ->
[lowering + LVN] -> vector IR + C intrinsics``.

:func:`compile_spec` runs everything after lifting; :func:`compile_kernel`
starts from a Python reference function.  The result bundles every
artifact the evaluation needs: the optimized term, the saturation
report (Table 1's time/size/timeout columns), the IR kernel for the
cycle simulator (Figure 5/6), the generated C (LVN ablation), peak
memory, and the validation verdict.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .backend.codegen import emit_c
from .backend.lower import lower_spec_program
from .backend.lvn import optimize as lvn_optimize
from .backend.vir import Program
from .costs import CostConfig, DiospyrosCostModel
from .dsl.ast import Term
from .egraph.egraph import EGraph
from .egraph.extract import CostFunction, Extractor
from .egraph.rewrite import Rewrite
from .egraph.runner import Runner, RunReport
from .frontend.lift import Shape, Spec, lift
from .rules import build_ruleset
from .validation.validate import ValidationResult, validate

__all__ = ["CompileOptions", "CompileResult", "compile_spec", "compile_kernel"]


@dataclass(frozen=True)
class CompileOptions:
    """Configuration of one compilation (paper Section 5.2 defaults:
    width 4, AC off, 3-minute saturation timeout, node limit)."""

    vector_width: int = 4
    #: Saturation budget.  The paper uses 180 s / 10M nodes; our
    #: defaults are scaled to a pure-Python engine (see EXPERIMENTS.md
    #: for the budget mapping used in each experiment).
    iter_limit: int = 40
    node_limit: int = 400_000
    time_limit: Optional[float] = 60.0
    #: Rule-family switches (Section 5.6 ablation turns vector off).
    enable_scalar_rules: bool = True
    enable_vector_rules: bool = True
    enable_ac_rules: bool = False
    extra_rules: Tuple[Rewrite, ...] = ()
    #: Extraction cost model configuration.
    cost_config: Optional[CostConfig] = None
    #: Run translation validation on the extracted program.
    validate: bool = True
    #: Run local value numbering / DCE on the lowered kernel.
    run_lvn: bool = True
    #: Record peak memory with tracemalloc (small overhead; Table 1
    #: wants it, unit tests may turn it off).
    track_memory: bool = False
    #: Enable the e-graph's constant-folding analysis (an egg-style
    #: e-class analysis; an extension beyond the paper's configuration,
    #: off by default so evaluation runs match the paper).
    enable_constant_folding: bool = False
    #: Candidate selection: additionally extract with the scalar
    #: (term-size) cost model and keep whichever lowered kernel has the
    #: lower static cycle count.  This implements the improvement the
    #: paper itself proposes for the 4/21 kernels where "the
    #: non-vectorized code is actually faster ... Diospyros could
    #: improve on these cases with a better cost model that reflects
    #: the overheads of vector packing" (Section 5.6).  Off by default
    #: so the main evaluation matches the paper's compiler.
    select_best_candidate: bool = False

    def cost_model(self) -> CostFunction:
        config = self.cost_config or CostConfig(vector_width=self.vector_width)
        return DiospyrosCostModel(config)


@dataclass
class CompileResult:
    """Everything one compilation produced."""

    spec: Spec
    options: CompileOptions
    optimized: Term
    cost: float
    report: RunReport
    program: Program
    program_unoptimized: Program
    c_code: str
    compile_time: float
    egraph_nodes: int
    egraph_classes: int
    peak_memory_bytes: Optional[int] = None
    validation: Optional[ValidationResult] = None

    @property
    def timed_out(self) -> bool:
        return self.report.timed_out

    @property
    def validated(self) -> bool:
        return self.validation is not None and self.validation.ok

    def summary(self) -> str:
        mem = (
            f", peak {self.peak_memory_bytes / 1e6:.0f} MB"
            if self.peak_memory_bytes is not None
            else ""
        )
        flag = " (timeout)" if self.timed_out else ""
        return (
            f"{self.spec.name}: {self.compile_time:.2f}s{flag}, "
            f"{self.egraph_nodes} nodes, cost {self.cost:.1f}, "
            f"{len(self.program)} IR instrs{mem}"
        )


def compile_spec(spec: Spec, options: Optional[CompileOptions] = None) -> CompileResult:
    """Compile a lifted spec through saturation, extraction,
    validation, and lowering."""
    options = options or CompileOptions()
    if options.track_memory:
        tracemalloc.start()
    start = time.perf_counter()

    rules = build_ruleset(
        width=options.vector_width,
        enable_scalar=options.enable_scalar_rules,
        enable_vector=options.enable_vector_rules,
        enable_ac=options.enable_ac_rules,
        extra_rules=list(options.extra_rules),
    )
    egraph = EGraph(constant_folding=options.enable_constant_folding)
    root = egraph.add_term(spec.term)
    runner = Runner(
        rules,
        iter_limit=options.iter_limit,
        node_limit=options.node_limit,
        time_limit=options.time_limit,
    )
    report = runner.run(egraph)

    extractor = Extractor(egraph, options.cost_model())
    extraction = extractor.extract(root)
    if options.select_best_candidate:
        extraction = _pick_candidate(egraph, root, extraction, spec, options)

    validation = None
    if options.validate:
        validation = validate(spec, extraction.term)

    unoptimized = lower_spec_program(spec, extraction.term, options.vector_width)
    program = lvn_optimize(unoptimized) if options.run_lvn else unoptimized
    c_code = emit_c(program)

    compile_time = time.perf_counter() - start
    peak = None
    if options.track_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    return CompileResult(
        spec=spec,
        options=options,
        optimized=extraction.term,
        cost=extraction.cost,
        report=report,
        program=program,
        program_unoptimized=unoptimized,
        c_code=c_code,
        compile_time=compile_time,
        egraph_nodes=egraph.num_nodes,
        egraph_classes=egraph.num_classes,
        peak_memory_bytes=peak,
        validation=validation,
    )


def _pick_candidate(egraph, root, vector_extraction, spec, options):
    """Compare the vector-cost extraction against the best purely
    scalar extraction by static machine cycles; keep the cheaper
    kernel."""
    from .costs import ScalarOnlyCostModel
    from .machine.config import static_cycles

    alternative = Extractor(egraph, ScalarOnlyCostModel()).extract(root)
    if alternative.term == vector_extraction.term:
        return vector_extraction

    def cycles_of(term: Term) -> float:
        program = lvn_optimize(
            lower_spec_program(spec, term, options.vector_width)
        )
        return static_cycles(program)

    try:
        if cycles_of(alternative.term) < cycles_of(vector_extraction.term):
            return alternative
    except Exception:
        # If either candidate fails to lower, keep the primary result.
        return vector_extraction
    return vector_extraction


def compile_kernel(
    name: str,
    fn: Callable[..., None],
    inputs: Sequence[Tuple[str, Shape]],
    outputs: Sequence[Tuple[str, Shape]],
    options: Optional[CompileOptions] = None,
) -> CompileResult:
    """Lift a Python reference kernel and compile it."""
    spec = lift(name, fn, inputs, outputs)
    return compile_spec(spec, options)
