"""Eigen-like baselines.

Eigen is the portable C++ template linear-algebra library the paper
compares against (and the one Theia uses).  It is *not* tuned for the
Xtensa target (Section 5.2), so we model it as high-quality portable
scalar code:

* **Fixed-size dense ops** (MatMul on ``Matrix<float, M, N>``, the
  Sophus-style QProd): expression templates fully unroll and read each
  operand element into a local exactly once -- register tracing with
  load caching.
* **QR decomposition**: ``Eigen::HouseholderQR`` runs the generic
  runtime-loop algorithm regardless of the static size, which is
  exactly why the paper's case study finds 61% of the camera-model
  time inside it.  We emit ranged runtime loops (tighter than the
  naive version's guard-everything loops, but still loop-based).

No 2-D convolution entry point exists (Eigen core has none), matching
the missing Eigen bars in Figure 5.
"""

from __future__ import annotations

from typing import Optional

from ..backend import vir
from ..backend.vir import Program
from ..kernels.base import Kernel
from .loops import LoopEmitter
from .trace import trace_kernel

__all__ = ["eigen_kernel", "eigen_qr"]


def eigen_kernel(kernel: Kernel) -> Optional[Program]:
    """The Eigen implementation for this kernel, if one exists."""
    if kernel.category in ("MatMul", "QProd"):
        return trace_kernel(kernel, "eigen", cache_loads=True)
    if kernel.category == "QRDecomp":
        return eigen_qr(kernel)
    return None


def eigen_qr(kernel: Kernel) -> Program:
    """Householder QR with ranged runtime loops (HouseholderQR's
    shape: triangular iteration spaces, no per-element guards)."""
    n = kernel.params["n"]
    spec = kernel.spec()
    program = Program(
        name=f"{kernel.name}-eigen",
        inputs={d.name: d.length for d in spec.inputs},
        outputs={"out": spec.n_outputs, "vwork": n},
        vector_width=4,
    )
    em = LoopEmitter(program)

    n_reg = em.const(n)
    one_f = em.const(1.0)
    two_f = em.const(2.0)
    r_base = n * n

    # Q = I; R = A.
    def init_row(i: str) -> None:
        row_base = em.mul(i, n_reg)

        def init_col(j: str) -> None:
            idx = em.add(row_base, j)
            a_val = em.load_idx("a", idx)
            em.store_idx("out", idx, a_val, offset=r_base)

        em.loop(n, init_col)
        em.store_idx("out", em.add(row_base, i), one_f)

    em.loop(n, init_row)

    def reflection(k: str) -> None:
        norm_sq = em.const(0.0)

        def norm_body(i: str) -> None:
            val = em.load_idx("out", em.add(em.mul(i, n_reg), k), offset=r_base)
            em.program.emit(vir.SBin("+", norm_sq, norm_sq, em.mul(val, val)))

        em.loop_range(k, n_reg, norm_body)
        norm = em.unary("sqrt", norm_sq)
        rkk = em.load_idx("out", em.add(em.mul(k, n_reg), k), offset=r_base)
        alpha = em.unary("neg", em.mul(em.unary("sgn", rkk), norm))
        vk = em.binary("-", rkk, alpha)
        em.store_idx("vwork", k, vk)

        def v_body(i: str) -> None:
            val = em.load_idx("out", em.add(em.mul(i, n_reg), k), offset=r_base)
            em.store_idx("vwork", i, val)

        em.loop_range(em.binary("+", k, em.const(1)), n_reg, v_body)

        vtv = em.const(0.0)

        def vtv_body(i: str) -> None:
            v_val = em.load_idx("vwork", i)
            em.program.emit(vir.SBin("+", vtv, vtv, em.mul(v_val, v_val)))

        em.loop_range(k, n_reg, vtv_body)
        beta = em.binary("/", two_f, vtv)

        def r_col(j: str) -> None:
            dot = em.const(0.0)

            def dot_body(i: str) -> None:
                v_val = em.load_idx("vwork", i)
                r_val = em.load_idx("out", em.add(em.mul(i, n_reg), j), offset=r_base)
                em.program.emit(vir.SBin("+", dot, dot, em.mul(v_val, r_val)))

            em.loop_range(k, n_reg, dot_body)
            scaled = em.mul(beta, dot)

            def upd_body(i: str) -> None:
                idx = em.add(em.mul(i, n_reg), j)
                v_val = em.load_idx("vwork", i)
                r_val = em.load_idx("out", idx, offset=r_base)
                em.store_idx(
                    "out", idx, em.binary("-", r_val, em.mul(scaled, v_val)),
                    offset=r_base,
                )

            em.loop_range(k, n_reg, upd_body)

        em.loop(n, r_col)

        def q_row(i: str) -> None:
            row_base = em.mul(i, n_reg)
            dot = em.const(0.0)

            def dot_body(j: str) -> None:
                q_val = em.load_idx("out", em.add(row_base, j))
                v_val = em.load_idx("vwork", j)
                em.program.emit(vir.SBin("+", dot, dot, em.mul(q_val, v_val)))

            em.loop_range(k, n_reg, dot_body)
            scaled = em.mul(beta, dot)

            def upd_body(j: str) -> None:
                idx = em.add(row_base, j)
                q_val = em.load_idx("out", idx)
                v_val = em.load_idx("vwork", j)
                em.store_idx("out", idx, em.binary("-", q_val, em.mul(scaled, v_val)))

            em.loop_range(k, n_reg, upd_body)

        em.loop(n, q_row)

    em.loop(n - 1, reflection)
    return program
